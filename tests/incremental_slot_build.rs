//! Integration test: the incremental slot-build path and price
//! warm-starting end to end through the facade — every built-in scenario
//! must produce identical results under `SlotBuild::{Cold, Incremental}`,
//! warm-started sweeps must stay ε-close to cold ones, and the scenario
//! runner's workload-trace cache must be invisible in the output.

use isp_p2p::prelude::*;
use isp_p2p::scenario::{run_one, BUILTIN_NAMES};
use isp_p2p::sched::ChunkScheduler;

fn series(report: &ScenarioReport, run: usize) -> Vec<u64> {
    report.runs[run].recorder.slots().iter().map(|(_, m)| m.welfare.to_bits()).collect()
}

#[test]
fn every_builtin_is_identical_under_both_slot_build_modes() {
    for name in BUILTIN_NAMES {
        let base = builtin(name).unwrap().quick(10);
        let mut tables = Vec::new();
        let mut welfare = Vec::new();
        for mode in [SlotBuild::Cold, SlotBuild::Incremental] {
            let scenario = base.clone().with_slot_build(mode);
            let report = run_scenario(
                &scenario,
                vec![
                    scheduler_by_name("auction", scenario.seed).unwrap(),
                    scheduler_by_name("locality", scenario.seed).unwrap(),
                ],
            )
            .unwrap();
            // The header names the mode; everything below it must match.
            let table = report.summary_table();
            tables.push(table.lines().skip(1).collect::<Vec<_>>().join("\n"));
            welfare.push(series(&report, 0));
        }
        assert_eq!(welfare[0], welfare[1], "{name}: per-slot welfare must be bit-identical");
        assert_eq!(tables[0], tables[1], "{name}: summary rows must be byte-identical");
    }
}

#[test]
fn incremental_instances_match_the_cold_oracle_mid_scenario() {
    // Drive one scenario manually and diff each slot's instance against
    // the cold oracle — the instance-level counterpart of the welfare
    // equality above, with `InstanceDiff` pinpointing any divergence.
    let scenario =
        builtin("flash_crowd").unwrap().quick(10).with_slot_build(SlotBuild::Incremental);
    let mut sys =
        System::new(scenario.base_config(), scheduler_by_name("auction", scenario.seed).unwrap())
            .unwrap();
    sys.add_static_peers(scenario.initial_peers).unwrap();
    let mut scheduler = AuctionScheduler::paper();
    let mut events: Vec<_> = scenario.events.iter().collect();
    events.sort_by_key(|e| e.at_slot);
    for slot in 0..scenario.slots {
        for e in events.iter().filter(|e| e.at_slot == slot) {
            e.event.apply(&mut sys).unwrap();
        }
        let incremental = sys.prepare_slot().unwrap();
        let cold = sys.cold_slot_problem().unwrap();
        let diff = InstanceDiff::between(&cold.instance, &incremental.instance);
        assert!(diff.is_empty(), "slot {slot}: {diff:?}");
        assert_eq!(incremental, cold, "slot {slot}: urgency or ordering diverged");
        let schedule = scheduler.schedule(&incremental).unwrap();
        sys.complete_slot(&incremental, &schedule).unwrap();
    }
    let stats = sys.cache_stats();
    assert!(stats.blocks_reused > 0, "the cache must actually reuse blocks: {stats:?}");
}

#[test]
fn warm_started_sweep_stays_close_to_cold_welfare() {
    // Warm outcomes are ε-equivalent, not bit-identical: tie-breaks can
    // differ, but total welfare must stay within the certificate's slack.
    let scenario = builtin("flash_crowd").unwrap().quick(10);
    let report = run_scenario(
        &scenario,
        vec![
            scheduler_by_name("auction", scenario.seed).unwrap(),
            scheduler_by_name("auction_warm", scenario.seed).unwrap(),
        ],
    )
    .unwrap();
    assert_eq!(report.runs[0].summary.scheduler, "auction");
    assert_eq!(report.runs[1].summary.scheduler, "auction_warm");
    let cold = report.runs[0].summary.total_welfare;
    let warm = report.runs[1].summary.total_welfare;
    assert!(warm > 0.0, "warm-started runs must schedule transfers");
    // ε = 0 auctions abstain on ties within the 1e-9 floor; across a quick
    // sweep the totals agree to well under one valuation unit.
    assert!((cold - warm).abs() <= 1.0 + 1e-6, "cold {cold} vs warm {warm}");
}

#[test]
fn workload_trace_survives_scenario_and_system_round_trips() {
    // The runner's cached sweep equals per-scheduler live generation.
    let scenario = builtin("isp_outage").unwrap().quick(10);
    let report = run_scenario(
        &scenario,
        vec![
            scheduler_by_name("auction", scenario.seed).unwrap(),
            scheduler_by_name("greedy", scenario.seed).unwrap(),
        ],
    )
    .unwrap();
    for (i, name) in ["auction", "greedy"].iter().enumerate() {
        let solo = run_one(&scenario, scheduler_by_name(name, scenario.seed).unwrap()).unwrap();
        assert_eq!(
            report.runs[i].summary.table_row(),
            solo.summary.table_row(),
            "{name}: cached sweep must be byte-identical to live generation"
        );
    }
    // Direct System-level record/replay through the facade.
    let config = SystemConfig::small_test().with_seed(9).with_slot_build(SlotBuild::Incremental);
    let mut recorder = System::new(config.clone(), Box::new(AuctionScheduler::paper())).unwrap();
    recorder.record_workload();
    recorder.add_static_peers(8).unwrap();
    recorder.run_slots(5).unwrap();
    let trace = recorder.take_workload_trace().unwrap();
    assert!(!trace.is_empty());
    let mut replayer = System::new(config, Box::new(AuctionScheduler::paper())).unwrap();
    replayer.replay_workload(trace);
    assert!(replayer.is_replaying_workload());
    replayer.add_static_peers(8).unwrap(); // no-op under replay
    replayer.run_slots(5).unwrap();
    assert_eq!(
        recorder.recorder().slots(),
        replayer.recorder().slots(),
        "replayed metrics must equal the recorded run"
    );
}
