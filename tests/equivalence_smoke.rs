//! Deterministic engine-equivalence smoke test.
//!
//! One fixed, hand-checkable instance; three independent solvers — the
//! synchronous primal-dual auction, the message-level distributed auction,
//! and the exact transportation-problem solver — must all report the same
//! social welfare, and it must equal the value computed by hand below.
//!
//! This is the regression canary that still runs when the slow property
//! suites are filtered (e.g. `PROPTEST_CASES=1 cargo test equivalence_smoke`):
//! it is fast, seed-free and exact.

use isp_p2p::core::dist::{DistConfig, DistributedAuction, LatencyFn};
use isp_p2p::netflow::solve_max_profit;
use isp_p2p::prelude::*;

/// Two providers, three requests, no ties.
///
/// Utilities (valuation − cost):
///   r0: A → 5.0,  B → 3.0
///   r1: A → 3.5,  B → 3.0
///   r2:           B → 1.75
///
/// A has capacity 1, B has capacity 2. The optimum assigns r0→A, r1→B,
/// r2→B for welfare 5.0 + 3.0 + 1.75 = 9.75 (the alternative r1→A yields
/// only 3.5 + 3.0 + 1.75 = 8.25).
fn fixed_instance() -> WelfareInstance {
    let mut b = WelfareInstance::builder();
    let a = b.add_provider(PeerId::new(100), 1);
    let bb = b.add_provider(PeerId::new(101), 2);
    let r0 = b.add_request(RequestId::new(PeerId::new(0), ChunkId::new(VideoId::new(0), 0)));
    let r1 = b.add_request(RequestId::new(PeerId::new(1), ChunkId::new(VideoId::new(0), 1)));
    let r2 = b.add_request(RequestId::new(PeerId::new(2), ChunkId::new(VideoId::new(0), 2)));
    b.add_edge(r0, a, Valuation::new(6.0), Cost::new(1.0)).unwrap();
    b.add_edge(r0, bb, Valuation::new(6.0), Cost::new(3.0)).unwrap();
    b.add_edge(r1, a, Valuation::new(4.0), Cost::new(0.5)).unwrap();
    b.add_edge(r1, bb, Valuation::new(4.0), Cost::new(1.0)).unwrap();
    b.add_edge(r2, bb, Valuation::new(2.0), Cost::new(0.25)).unwrap();
    b.build().unwrap()
}

const EXPECTED_WELFARE: f64 = 9.75;

#[test]
fn all_three_solvers_agree_on_the_fixed_instance() {
    let inst = fixed_instance();

    // 1. Exact transportation solver (independent ground truth).
    let exact = solve_max_profit(&inst.to_transportation()).unwrap();
    assert!(
        (exact.total_profit - EXPECTED_WELFARE).abs() < 1e-9,
        "netflow found {} instead of the hand-computed optimum",
        exact.total_profit
    );

    // 2. Synchronous primal-dual auction, certified by Theorem 1.
    let sync = SyncAuction::new(AuctionConfig::paper()).run(&inst).unwrap();
    assert!(sync.converged);
    let sync_welfare = sync.assignment.welfare(&inst).get();
    assert!((sync_welfare - EXPECTED_WELFARE).abs() < 1e-9, "sync welfare {sync_welfare}");
    let report = verify_optimality(&inst, &sync.assignment, &sync.duals, 1e-9);
    assert!(report.is_optimal(), "certificate violations: {:?}", report.violations);

    // 3. Message-level distributed auction under deterministic latencies.
    let latency: LatencyFn = Box::new(|from, to| {
        SimDuration::from_millis(5 + u64::from(from.get() + 3 * to.get()) % 40)
    });
    let dist = DistributedAuction::new(DistConfig::paper(), latency).run(&inst).unwrap();
    let dist_welfare = dist.assignment.welfare(&inst).get();
    assert!((dist_welfare - EXPECTED_WELFARE).abs() < 1e-9, "distributed welfare {dist_welfare}");

    // All three agree with each other, not just with the constant.
    assert!((sync_welfare - exact.total_profit).abs() < 1e-9);
    assert!((dist_welfare - exact.total_profit).abs() < 1e-9);
}

#[test]
fn the_auction_picks_the_hand_computed_assignment() {
    let inst = fixed_instance();
    let out = SyncAuction::new(AuctionConfig::paper()).run(&inst).unwrap();
    // r0 must win provider A (edge 0), r1 and r2 land on B.
    let choices = out.assignment.choices();
    assert_eq!(choices.len(), 3);
    let provider_of = |r: usize| choices[r].map(|e| inst.request(r).edges[e].provider);
    assert_eq!(provider_of(0), Some(0), "r0 should buy from A");
    assert_eq!(provider_of(1), Some(1), "r1 should buy from B");
    assert_eq!(provider_of(2), Some(1), "r2 should buy from B");
}
