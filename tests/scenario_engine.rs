//! Integration test: the scenario subsystem end to end through the facade —
//! built-in library, spec parsing (including the shipped example file),
//! multi-scheduler sweeps, and cross-run determinism.

use isp_p2p::prelude::*;
use isp_p2p::scenario::{builtins, BUILTIN_NAMES};

fn sweep(scenario: &Scenario) -> ScenarioReport {
    run_scenario(
        scenario,
        vec![
            scheduler_by_name("auction", scenario.seed).unwrap(),
            scheduler_by_name("locality", scenario.seed).unwrap(),
        ],
    )
    .unwrap()
}

#[test]
fn every_builtin_runs_a_two_scheduler_comparison() {
    for name in BUILTIN_NAMES {
        let scenario = builtin(name).unwrap().quick(8);
        let report = sweep(&scenario);
        assert_eq!(report.runs.len(), 2, "{name}");
        for run in &report.runs {
            assert_eq!(run.recorder.len() as u64, scenario.slots, "{name}");
            assert!(
                run.recorder.slots().iter().all(|(_, m)| m.welfare.is_finite()),
                "{name}: welfare must stay finite through every event"
            );
        }
        assert!(report.summary_table().contains(name));
    }
    assert_eq!(builtins().len(), 7);
}

#[test]
fn summaries_are_byte_identical_for_fixed_seed() {
    let table = |seed| {
        let scenario = builtin("seed_starvation").unwrap().with_seed(seed).quick(10);
        sweep(&scenario).summary_table()
    };
    assert_eq!(table(42), table(42), "same seed, same bytes");
    assert_ne!(table(42), table(43), "different seed, different workload");
}

#[test]
fn shipped_example_spec_parses_and_runs() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/flash_crowd.toml");
    let text = std::fs::read_to_string(path).expect("example spec ships with the repo");
    let scenario = parse_scenario(&text).unwrap().quick(6);
    assert_eq!(scenario.name, "flash_crowd_file");
    let report = sweep(&scenario);
    let crowd_effect = report.runs[0].recorder.population_series().y_max().unwrap();
    assert!(crowd_effect > 12.0, "the flash crowd must outnumber the initial 12 watchers");
}

#[test]
fn events_change_outcomes_but_not_the_certificates() {
    // The same base workload with and without an outage: the outage must
    // change the metrics (it is a real event), while both runs keep the
    // auction's accounting invariants.
    let run = |with_outage: bool| {
        let mut scenario = builtin("flash_crowd").unwrap().quick(10);
        if with_outage {
            scenario.events.push(TimedEvent {
                at_slot: 2,
                event: ScenarioEvent::LinkReprice { factor: 40.0 },
            });
        }
        let report = sweep(&scenario);
        report.runs[0].summary.clone()
    };
    let base = run(false);
    let priced = run(true);
    assert!(base.transfers > 0 && priced.transfers > 0);
    assert!(
        priced.inter_isp_fraction < base.inter_isp_fraction,
        "a 40x repricing must localize auction traffic ({} vs {})",
        priced.inter_isp_fraction,
        base.inter_isp_fraction
    );
}
