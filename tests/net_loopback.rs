//! Multi-OS-process certification of the networked runtime: the `tracker`
//! and `peer` binaries as real processes over 127.0.0.1, asserting
//! bit-identity against the in-process flat engine and typed (never
//! hanging) failure paths across the process boundary.
//!
//! The binaries are compiled as part of the workspace build; set
//! `P2P_NET_BIN_DIR` to point elsewhere if the target layout differs.

use isp_p2p::net::{bin_path, run_multiprocess, MultiProcessConfig};
use isp_p2p::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// A generic (tie-free w.p. 1) random instance shaped like a slot problem,
/// same bands as the engine-equivalence oracle.
fn random_instance(seed: u64, providers: usize, requests: usize) -> WelfareInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = WelfareInstance::builder();
    let ps: Vec<_> = (0..providers)
        .map(|i| b.add_provider(PeerId::new(5000 + i as u32), rng.gen_range(1..5)))
        .collect();
    for d in 0..requests {
        let r = b.add_request(RequestId::new(
            PeerId::new(d as u32),
            ChunkId::new(VideoId::new(0), d as u32),
        ));
        let k = rng.gen_range(1..=providers.min(4));
        let mut used = std::collections::HashSet::new();
        for _ in 0..k {
            let u = ps[rng.gen_range(0..providers)];
            if used.insert(u) {
                b.add_edge(
                    r,
                    u,
                    Valuation::new(rng.gen_range(0.8..8.0)),
                    Cost::new(rng.gen_range(0.0..10.0)),
                )
                .unwrap();
            }
        }
    }
    b.build().unwrap()
}

#[test]
fn multiprocess_swarm_is_bit_identical_to_the_flat_engine() {
    for (seed, peers) in [(1, 3), (2, 5)] {
        let instance = random_instance(seed, 5, 24);
        let csr = CsrInstance::compile(&instance);
        let flat =
            FlatAuction::new(AuctionConfig::paper(), ShardCount::Fixed(1)).run(&csr).unwrap();
        let config = MultiProcessConfig { peers, ..MultiProcessConfig::default() };
        let net = run_multiprocess(&instance, &config).unwrap();
        assert_eq!(net.assignment.choices(), flat.assignment.choices(), "seed {seed}");
        assert_eq!(net.duals.lambda, flat.duals.lambda, "seed {seed}");
        assert_eq!(net.rounds, flat.rounds, "seed {seed}");
        assert_eq!(net.bids_submitted, flat.bids_submitted, "seed {seed}");
        // The wire run carries the same n·ε optimality certificate.
        let n = instance.request_count() as f64;
        let report = verify_optimality(&instance, &net.assignment, &net.duals, 1e-9 * (n + 1.0));
        assert!(report.is_optimal(), "seed {seed}: {report:?}");
    }
}

#[test]
fn crashing_peer_process_fails_the_run_with_a_typed_error() {
    let instance = random_instance(9, 4, 20);
    let config = MultiProcessConfig {
        io_timeout: Duration::from_millis(800),
        deadline: Duration::from_secs(30),
        fail_peer_after_polls: Some((1, 3)),
        ..MultiProcessConfig::default()
    };
    let err = run_multiprocess(&instance, &config).unwrap_err();
    assert!(
        matches!(err, P2pError::Disconnected { .. } | P2pError::Timeout { .. }),
        "expected a typed peer-crash error across the process boundary, got {err:?}"
    );
}

#[test]
fn peer_process_against_a_dead_port_reports_connect_failed() {
    // Bind then drop, so the port is (momentarily) known-dead.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let out = std::process::Command::new(bin_path("peer").unwrap())
        .args(["--tracker", &dead])
        .args(["--attempts", "2"])
        .args(["--backoff-ms", "10"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let last = stdout.lines().last().unwrap_or("");
    assert!(last.starts_with("PEER_ERR connect_failed"), "unexpected stdout: {stdout:?}");
}
