//! The paper's qualitative claims, asserted end-to-end at reduced scale:
//! every figure's ordering must hold on the same workloads the figure
//! binaries run at full scale.

use isp_p2p::core::dist::DistConfig;
use isp_p2p::prelude::*;
use isp_p2p::streaming::fig2::run_distributed_slot;

/// Paper configuration at reduced population (fast enough for CI); the
/// figure binaries run the full 500-peer versions.
fn paper_cfg(seed: u64) -> SystemConfig {
    SystemConfig::paper().with_seed(seed)
}

fn run_static(sched: Box<dyn ChunkScheduler>, peers: usize, slots: u64, seed: u64) -> SlotRecorder {
    let mut sys = System::new(paper_cfg(seed), sched).unwrap();
    sys.add_static_peers(peers).unwrap();
    sys.run_slots(slots).unwrap();
    sys.recorder().clone()
}

fn run_dynamic(sched: Box<dyn ChunkScheduler>, slots: u64, seed: u64, depart: f64) -> SlotRecorder {
    let mut sys = System::new(paper_cfg(seed).with_departures(depart), sched).unwrap();
    sys.enable_poisson_churn().unwrap();
    sys.run_slots(slots).unwrap();
    sys.recorder().clone()
}

#[test]
fn fig3_auction_welfare_dominates_locality_and_locality_goes_negative() {
    let a = run_dynamic(Box::new(AuctionScheduler::paper()), 12, 42, 0.0);
    let l = run_dynamic(Box::new(SimpleLocalityScheduler::new()), 12, 42, 0.0);
    let aw = a.welfare_series().mean_y().unwrap();
    let lw = l.welfare_series().mean_y().unwrap();
    assert!(aw > lw, "auction {aw} must beat locality {lw}");
    assert!(
        l.welfare_series().y_min().unwrap() < 0.0,
        "the locality baseline's welfare must dip negative (it ignores valuations)"
    );
    assert!(a.welfare_series().y_min().unwrap() >= 0.0, "auction welfare is never negative");
}

#[test]
fn fig4_auction_is_more_isp_friendly() {
    let a = run_static(Box::new(AuctionScheduler::paper()), 160, 12, 42);
    let l = run_static(Box::new(SimpleLocalityScheduler::new()), 160, 12, 42);
    let at = a.inter_isp_series().mean_y().unwrap();
    let lt = l.inter_isp_series().mean_y().unwrap();
    assert!(at < lt, "auction inter-ISP {at} must be below locality {lt}");
    assert!(at > 0.0, "some inter-ISP traffic must remain (seeds are not everywhere)");
}

#[test]
fn fig5_miss_rates_are_small_for_both() {
    let a = run_static(Box::new(AuctionScheduler::paper()), 160, 12, 42);
    let l = run_static(Box::new(SimpleLocalityScheduler::new()), 160, 12, 42);
    let am = a.miss_rate_series().mean_y().unwrap();
    let lm = l.miss_rate_series().mean_y().unwrap();
    // At reduced scale contention is light, so both are small; the full
    // 500-peer ordering (auction < locality) is asserted by the fig5
    // binary. Here we check the magnitude band the paper reports (< 10 %).
    assert!(am < 0.10, "auction miss {am}");
    assert!(lm < 0.10, "locality miss {lm}");
}

#[test]
fn fig6_orderings_survive_churn() {
    let a = run_dynamic(Box::new(AuctionScheduler::paper()), 12, 42, 0.6);
    let l = run_dynamic(Box::new(SimpleLocalityScheduler::new()), 12, 42, 0.6);
    assert!(a.welfare_series().mean_y().unwrap() > l.welfare_series().mean_y().unwrap());
    assert!(
        a.inter_isp_series().mean_y().unwrap() <= l.inter_isp_series().mean_y().unwrap() + 0.02
    );
}

#[test]
fn fig2_prices_reset_climb_and_converge_within_slot() {
    let mut sys = System::new(paper_cfg(42), Box::new(AuctionScheduler::paper())).unwrap();
    sys.add_static_peers(300).unwrap();
    sys.run_slots(6).unwrap();
    let slot_start = sys.now().as_secs_f64();
    let slot_len = sys.config().slot_len.as_secs_f64();
    let out = run_distributed_slot(&mut sys, DistConfig::paper()).unwrap();
    // Convergence strictly inside the slot.
    assert!(out.convergence_secs > slot_start);
    assert!(
        out.convergence_secs < slot_start + slot_len,
        "auction must converge before the slot ends"
    );
    // Per-provider price monotonicity (the paper's Fig. 2 shape).
    for t in &out.traces {
        for w in t.samples.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        for &(at, price) in &t.samples {
            assert!(at >= slot_start && at <= slot_start + slot_len);
            assert!(price >= 0.0);
        }
    }
    assert!(out.metrics.transfers > 0);
}

#[test]
fn theorem1_holds_on_a_real_slot_problem() {
    // Build a genuine slot problem from the streaming system and verify the
    // full optimality certificate on it.
    let mut sys = System::new(paper_cfg(7), Box::new(AuctionScheduler::paper())).unwrap();
    sys.add_static_peers(80).unwrap();
    sys.run_slots(3).unwrap();
    let problem = sys.prepare_slot().unwrap();
    assert!(problem.request_count() > 100, "the slot problem must be non-trivial");

    let out = SyncAuction::new(AuctionConfig::paper()).run(&problem.instance).unwrap();
    let exact = problem.instance.optimal_welfare().get();
    let got = out.assignment.welfare(&problem.instance).get();
    assert!((got - exact).abs() < 1e-5, "slot problem: auction {got} vs exact {exact}");
    let report = verify_optimality(&problem.instance, &out.assignment, &out.duals, 1e-6);
    assert!(report.is_optimal(), "{:?}", report.violations.first());
}
