//! Cross-crate integration: system-level invariants of the streaming
//! emulator under every scheduler.

use isp_p2p::prelude::*;
use isp_p2p::streaming::SeedPlacement;

fn small(seed: u64) -> SystemConfig {
    SystemConfig::small_test().with_seed(seed)
}

#[test]
fn transfers_never_exceed_provider_capacity() {
    // Indirectly verified through Assignment::validate inside the system,
    // but assert the aggregate too: per-slot transfers cannot exceed the
    // total online upload capacity.
    let mut sys = System::new(small(1), Box::new(AuctionScheduler::paper())).unwrap();
    sys.add_static_peers(15).unwrap();
    for _ in 0..6 {
        let online_capacity: u64 = (0..200u32)
            .filter_map(|i| sys.peer(PeerId::new(i)))
            .map(|p| u64::from(p.upload_capacity().chunks_per_slot()))
            .sum();
        let m = sys.step_slot().unwrap();
        assert!(m.transfers <= online_capacity, "{} > {online_capacity}", m.transfers);
    }
}

#[test]
fn miss_rate_is_a_valid_ratio_and_buffers_grow() {
    let mut sys = System::new(small(2), Box::new(AuctionScheduler::paper())).unwrap();
    sys.add_static_peers(12).unwrap();
    sys.run_slots(8).unwrap();
    for (_, m) in sys.recorder().slots() {
        assert!(m.missed_chunks <= m.due_chunks);
        assert!(m.inter_isp_transfers <= m.transfers);
        let rate = m.miss_rate();
        assert!((0.0..=1.0).contains(&rate));
    }
}

#[test]
fn welfare_equals_sum_of_transfer_utilities() {
    // The welfare the system records must equal the schedule's welfare:
    // drive one slot manually and compare.
    let mut sys = System::new(small(3), Box::new(AuctionScheduler::paper())).unwrap();
    sys.add_static_peers(10).unwrap();
    sys.run_slots(2).unwrap();
    let problem = sys.prepare_slot().unwrap();
    let mut sched = AuctionScheduler::paper();
    let schedule = sched.schedule(&problem).unwrap();
    let expected = schedule.welfare(&problem).get();
    let metrics = sys.complete_slot(&problem, &schedule).unwrap();
    assert!((metrics.welfare - expected).abs() < 1e-9);
}

#[test]
fn all_schedulers_drive_the_system() {
    let schedulers: Vec<Box<dyn ChunkScheduler>> = vec![
        Box::new(AuctionScheduler::paper()),
        Box::new(SimpleLocalityScheduler::new()),
        Box::new(RandomScheduler::new(9)),
        Box::new(GreedyScheduler::new()),
        Box::new(ExactScheduler::new()),
    ];
    for sched in schedulers {
        let mut sys = System::new(small(4), sched).unwrap();
        sys.add_static_peers(10).unwrap();
        sys.run_slots(4).unwrap();
        let transfers: u64 = sys.recorder().slots().iter().map(|(_, m)| m.transfers).sum();
        assert!(transfers > 0, "{} moved no chunks", sys.scheduler_name());
    }
}

#[test]
fn exact_scheduler_dominates_all_heuristics_on_welfare() {
    let run = |sched: Box<dyn ChunkScheduler>| {
        let mut sys = System::new(small(5), sched).unwrap();
        sys.add_static_peers(12).unwrap();
        sys.run_slots(5).unwrap();
        sys.recorder().slots().iter().map(|(_, m)| m.welfare).sum::<f64>()
    };
    let exact = run(Box::new(ExactScheduler::new()));
    let auction = run(Box::new(AuctionScheduler::paper()));
    let locality = run(Box::new(SimpleLocalityScheduler::new()));
    let random = run(Box::new(RandomScheduler::new(1)));
    // Per-slot exactness does not imply multi-slot dominance in general
    // (schedules change future buffer states), but on identical workloads
    // the auction must track the exact optimum closely and beat the naive
    // baselines.
    assert!(auction >= exact * 0.95, "auction {auction} vs exact {exact}");
    assert!(auction >= locality, "auction {auction} vs locality {locality}");
    assert!(auction >= random, "auction {auction} vs random {random}");
}

#[test]
fn churn_departures_shrink_population() {
    let config = small(6).with_departures(1.0); // everyone departs early
    let mut sys = System::new(config, Box::new(AuctionScheduler::paper())).unwrap();
    sys.enable_poisson_churn().unwrap();
    sys.run_slots(12).unwrap();
    let pops: Vec<f64> = sys.recorder().population_series().values().collect();
    // With certain early departure and short videos, population cannot grow
    // without bound.
    let peak = pops.iter().cloned().fold(0.0, f64::max);
    assert!(peak < 40.0, "population exploded: {peak}");
}

#[test]
fn seed_placements_produce_expected_rosters() {
    let mut c = small(7);
    c.seeds = SeedPlacement::PerVideoTotal(3);
    let sys = System::new(c, Box::new(AuctionScheduler::paper())).unwrap();
    assert_eq!(sys.online_count(), 3 * 5); // 3 seeds × 5 videos

    let mut c = small(8);
    c.seeds = SeedPlacement::PerIspPerVideo(1);
    let sys = System::new(c, Box::new(AuctionScheduler::paper())).unwrap();
    assert_eq!(sys.online_count(), 2 * 5); // 1 × 2 ISPs × 5 videos
}

#[test]
fn identical_seeds_reproduce_identical_runs() {
    let run = || {
        let mut sys = System::new(small(9), Box::new(AuctionScheduler::paper())).unwrap();
        sys.add_static_peers(10).unwrap();
        sys.run_slots(5).unwrap();
        sys.recorder()
            .slots()
            .iter()
            .map(|(_, m)| (m.welfare.to_bits(), m.transfers, m.inter_isp_transfers))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
