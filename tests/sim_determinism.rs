//! End-to-end determinism of the sim backend at the scenario layer: the
//! whole pipeline — spec → scheduler registry → streaming system on the
//! virtual clock → `RunReport` JSON — must be a pure function of the
//! scenario seed, across repeated runs *and* across `P2P_CORES` pins.
//! This binary mutates `P2P_CORES`, so it owns its own process-wide lock
//! (the `cores_pin.rs` pattern: each integration-test binary is its own
//! process).

use isp_p2p::scenario::{builtin, run_scenario_probed, scheduler_for};
use std::sync::Mutex;

/// Serializes every env-mutating test in this binary.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with `P2P_CORES` set to `value` (or unset for `None`),
/// restoring the previous state afterwards.
fn with_pin<R>(value: Option<&str>, f: impl FnOnce() -> R) -> R {
    let _guard = ENV_LOCK.lock().unwrap();
    let saved = std::env::var("P2P_CORES").ok();
    match value {
        Some(v) => std::env::set_var("P2P_CORES", v),
        None => std::env::remove_var("P2P_CORES"),
    }
    let out = f();
    match saved {
        Some(v) => std::env::set_var("P2P_CORES", v),
        None => std::env::remove_var("P2P_CORES"),
    }
    out
}

/// One probed flash-crowd run on the given sim scheduler: returns the
/// summary table plus the structured `RunReport` JSON — every byte the
/// scenario pipeline emits about the run.
fn probed_run(net: &str, scheduler: &str) -> (String, String) {
    let scenario = builtin("flash_crowd").unwrap().quick(6).with_net(net);
    let report =
        run_scenario_probed(&scenario, vec![scheduler_for(&scenario, scheduler).unwrap()], true)
            .unwrap();
    (report.summary_table(), report.runs[0].report.as_ref().unwrap().to_json())
}

/// Virtual-clock sim runs emit byte-identical summaries and `RunReport`
/// JSON on every repetition — including under fault injection, where the
/// schedule depends on the seeded `NetworkModel` draw, not on wall time.
#[test]
fn sim_reports_replay_byte_identically() {
    for net in ["ideal", "lossy"] {
        let (sum_a, json_a) = probed_run(net, "auction_sim");
        let (sum_b, json_b) = probed_run(net, "auction_sim");
        assert_eq!(sum_a, sum_b, "summary table diverged on net={net}");
        assert_eq!(json_a, json_b, "RunReport JSON diverged on net={net}");
    }
}

/// `P2P_CORES` pins change worker fan-out elsewhere in the workspace but
/// can never reach the single-threaded simulator: pinned and free runs of
/// the same scenario produce the same bytes.
#[test]
fn sim_reports_are_invariant_under_cores_pins() {
    let baseline = with_pin(None, || probed_run("lossy", "auction_sim_warm"));
    for pin in ["1", "16"] {
        let pinned = with_pin(Some(pin), || probed_run("lossy", "auction_sim_warm"));
        assert_eq!(pinned.0, baseline.0, "P2P_CORES={pin} changed the summary table");
        assert_eq!(pinned.1, baseline.1, "P2P_CORES={pin} changed the RunReport JSON");
    }
}
