//! Integration test: the sharded parallel auction end to end through the
//! facade — every built-in scenario scheduled by `auction_sharded`, with
//! chunk-delivery conservation and the Theorem 1 certificate checked on
//! every slot, plus determinism and worker-pool reuse guarantees.

use isp_p2p::prelude::*;
use isp_p2p::scenario::BUILTIN_NAMES;
use isp_p2p::sched::ScheduleStats;

/// Every built-in scenario runs under `auction_sharded` next to `auction`,
/// producing a full metrics series with real transfers.
#[test]
fn every_builtin_runs_under_the_sharded_scheduler() {
    for name in BUILTIN_NAMES {
        let scenario = builtin(name).unwrap().with_shards(ShardCount::Fixed(4)).quick(8);
        let report = run_scenario(
            &scenario,
            vec![
                scheduler_for(&scenario, "auction").unwrap(),
                scheduler_for(&scenario, "auction_sharded").unwrap(),
            ],
        )
        .unwrap();
        assert_eq!(report.runs.len(), 2, "{name}");
        assert_eq!(report.runs[1].summary.scheduler, "auction_sharded", "{name}");
        for run in &report.runs {
            assert_eq!(run.recorder.len() as u64, scenario.slots, "{name}");
            assert!(run.summary.transfers > 0, "{name}: the swarm must download");
            assert!(
                run.recorder.slots().iter().all(|(_, m)| m.welfare.is_finite()),
                "{name}: welfare must stay finite through every event"
            );
        }
    }
}

/// Conservation + Theorem 1 on every slot of every built-in scenario: the
/// sharded engine's assignment is primal-feasible (each request served at
/// most once, provider capacities respected) and the primal/dual pair
/// passes the complementary-slackness certificate within the ε-auction's
/// `n·ε` tolerance. (Streaming slots carry structural ties, so the ε > 0
/// configuration is the certified one — same caveat as the synchronous
/// engine's scenario suite.)
#[test]
fn sharded_slots_conserve_chunks_and_stay_certified() {
    const EPS: f64 = 1e-2;
    for name in BUILTIN_NAMES {
        let scenario = builtin(name).unwrap().quick(8);
        let mut events: Vec<&TimedEvent> = scenario.events.iter().collect();
        events.sort_by_key(|e| e.at_slot);
        let mut sys =
            System::new(scenario.base_config(), Box::new(AuctionScheduler::paper())).unwrap();
        if scenario.initial_peers > 0 {
            sys.add_static_peers(scenario.initial_peers).unwrap();
        }
        if scenario.churn {
            sys.enable_poisson_churn().unwrap();
        }
        let engine = ShardedAuction::new(AuctionConfig::with_epsilon(EPS), ShardCount::Fixed(8));
        for slot in 0..scenario.slots {
            for e in events.iter().filter(|e| e.at_slot == slot) {
                e.event.apply(&mut sys).unwrap();
            }
            let problem = sys.prepare_slot().unwrap();
            let outcome = engine.run(&problem.instance).unwrap();
            // Chunk-delivery conservation (primal feasibility).
            assert!(
                outcome.assignment.validate(&problem.instance).is_ok(),
                "{name} slot {slot}: infeasible assignment"
            );
            // Theorem 1: certified optimal within the ε-auction tolerance.
            let tol = EPS * (problem.instance.request_count() as f64 + 1.0);
            let report =
                verify_optimality(&problem.instance, &outcome.assignment, &outcome.duals, tol);
            assert!(report.is_optimal(), "{name} slot {slot}: violations {:?}", report.violations);
            let assigned = outcome.assignment.assigned_count() as u64;
            let metrics = sys
                .complete_slot(
                    &problem,
                    &Schedule { assignment: outcome.assignment, stats: ScheduleStats::default() },
                )
                .unwrap();
            assert_eq!(metrics.transfers, assigned, "{name} slot {slot}");
            assert!(metrics.inter_isp_transfers <= metrics.transfers, "{name} slot {slot}");
            assert!(metrics.missed_chunks <= metrics.due_chunks, "{name} slot {slot}");
        }
    }
}

/// The sharded sweep is deterministic: identical seeds produce byte-equal
/// summary tables.
#[test]
fn sharded_sweeps_are_byte_identical_across_repeats() {
    let table = || {
        let scenario = builtin("flash_crowd").unwrap().with_shards(ShardCount::Fixed(4)).quick(8);
        let report = run_scenario(
            &scenario,
            vec![
                scheduler_for(&scenario, "auction_sharded").unwrap(),
                scheduler_for(&scenario, "locality").unwrap(),
            ],
        )
        .unwrap();
        report.summary_table()
    };
    assert_eq!(table(), table());
}

/// The persistent worker pool eliminates per-run thread spawn/join: a
/// second threaded-auction run of the same swarm reuses every parked
/// worker (pool-level reuse is also asserted by the runtime's own tests).
#[test]
fn threaded_runtime_reuses_its_worker_pool_across_runs() {
    use isp_p2p::runtime::{ThreadedAuction, ThreadedConfig};
    use std::time::Duration;

    let mut b = WelfareInstance::builder();
    let u = b.add_provider(PeerId::new(50), 2);
    for d in 0..3u32 {
        let r = b.add_request(RequestId::new(PeerId::new(d), ChunkId::new(VideoId::new(0), 0)));
        b.add_edge(r, u, Valuation::new(5.0 - f64::from(d)), Cost::new(1.0)).unwrap();
    }
    let inst = b.build().unwrap();
    let auction = ThreadedAuction::new(ThreadedConfig::fast_test());
    auction.run(&inst, |_, _| Duration::from_micros(100)).unwrap();
    let spawned = auction.pool().spawned();
    assert!(spawned > 0);
    auction.run(&inst, |_, _| Duration::from_micros(100)).unwrap();
    assert_eq!(auction.pool().spawned(), spawned, "second run must spawn no new threads");
}
