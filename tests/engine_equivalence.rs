//! Cross-crate integration: the four independent solvers — synchronous
//! auction, discrete-event distributed auction, threaded auction and the
//! exact min-cost-flow — agree on the same instances.

use isp_p2p::core::bertsekas::solve_via_expansion;
use isp_p2p::core::dist::{DistConfig, DistributedAuction, LatencyFn};
use isp_p2p::prelude::*;
use isp_p2p::runtime::{ThreadedAuction, ThreadedConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// A generic (tie-free w.p. 1) random instance shaped like a slot problem.
fn random_instance(seed: u64, providers: usize, requests: usize) -> WelfareInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = WelfareInstance::builder();
    let ps: Vec<_> = (0..providers)
        .map(|i| b.add_provider(PeerId::new(5000 + i as u32), rng.gen_range(1..5)))
        .collect();
    for d in 0..requests {
        let r = b.add_request(RequestId::new(
            PeerId::new(d as u32),
            ChunkId::new(VideoId::new(0), d as u32),
        ));
        let k = rng.gen_range(1..=providers.min(4));
        let mut used = std::collections::HashSet::new();
        for _ in 0..k {
            let u = ps[rng.gen_range(0..providers)];
            if used.insert(u) {
                b.add_edge(
                    r,
                    u,
                    Valuation::new(rng.gen_range(0.8..8.0)),
                    Cost::new(rng.gen_range(0.0..10.0)),
                )
                .unwrap();
            }
        }
    }
    b.build().unwrap()
}

#[test]
fn sync_equals_exact_on_many_instances() {
    for seed in 0..25 {
        let inst = random_instance(seed, 6, 30);
        let out = SyncAuction::new(AuctionConfig::paper()).run(&inst).unwrap();
        let exact = inst.optimal_welfare().get();
        assert!(
            (out.assignment.welfare(&inst).get() - exact).abs() < 1e-6,
            "seed {seed}: {} vs {exact}",
            out.assignment.welfare(&inst).get()
        );
        let report = verify_optimality(&inst, &out.assignment, &out.duals, 1e-7);
        assert!(report.is_optimal(), "seed {seed}: {:?}", report.violations);
    }
}

#[test]
fn distributed_equals_exact_under_heterogeneous_latency() {
    for seed in 0..10 {
        let inst = random_instance(100 + seed, 5, 25);
        let latency: LatencyFn = Box::new(move |from, to| {
            SimDuration::from_millis(
                3 + (u64::from(from.get()) * 31 + u64::from(to.get()) * 17 + seed) % 120,
            )
        });
        let out = DistributedAuction::new(DistConfig::paper(), latency).run(&inst).unwrap();
        let exact = inst.optimal_welfare().get();
        assert!((out.assignment.welfare(&inst).get() - exact).abs() < 1e-6, "seed {seed}");
    }
}

#[test]
fn threaded_respects_epsilon_bound() {
    let inst = random_instance(555, 5, 20);
    let eps = 0.01;
    let cfg = ThreadedConfig { epsilon: eps, ..ThreadedConfig::fast_test() };
    let out = ThreadedAuction::new(cfg).run(&inst, |_, _| Duration::from_micros(150)).unwrap();
    let exact = inst.optimal_welfare().get();
    let bound = inst.request_count() as f64 * eps + 1e-9;
    assert!(out.assignment.welfare(&inst).get() >= exact - bound);
    assert!(out.assignment.validate(&inst).is_ok());
}

#[test]
fn fig1_expansion_respects_epsilon_bound() {
    for seed in 0..10 {
        let inst = random_instance(900 + seed, 4, 15);
        let eps = 0.02;
        let a = solve_via_expansion(&inst, eps).unwrap();
        let exact = inst.optimal_welfare().get();
        let bound = inst.request_count() as f64 * eps + 1e-9;
        assert!(a.welfare(&inst).get() >= exact - bound, "seed {seed}");
        assert!(a.validate(&inst).is_ok());
    }
}

#[test]
fn greedy_and_random_never_beat_exact() {
    use isp_p2p::sched::{ChunkScheduler, GreedyScheduler, RandomScheduler, SlotProblem};
    for seed in 0..10 {
        let inst = random_instance(333 + seed, 5, 25);
        let exact = inst.optimal_welfare().get();
        let n = inst.request_count();
        let problem = SlotProblem::new(inst, vec![SimDuration::from_secs(1); n]).unwrap();
        let g = GreedyScheduler::new().schedule(&problem).unwrap();
        let r = RandomScheduler::new(seed).schedule(&problem).unwrap();
        assert!(g.welfare(&problem).get() <= exact + 1e-9);
        assert!(r.welfare(&problem).get() <= exact + 1e-9);
        assert!(g.assignment.validate(&problem.instance).is_ok());
        assert!(r.assignment.validate(&problem.instance).is_ok());
    }
}
