//! Integration test: the flat CSR auction end to end through the facade —
//! every built-in scenario scheduled by `auction_flat` produces slot
//! metrics **bit-identical** to its nested-layout counterpart (`auction`
//! at shards = 1, `auction_sharded` at shards ≥ 2; warm variants
//! included), the incremental slot-build path feeds the flat scheduler its
//! cache-emitted CSR, and repeated scenario runs on one shared
//! `WorkerPool` spawn zero new threads.

use isp_p2p::prelude::*;
use isp_p2p::scenario::BUILTIN_NAMES;
use std::sync::Arc;

/// Every built-in scenario under `auction_flat` is bit-identical, slot by
/// slot, to the nested scheduler with the same shard count — in both
/// slot-build modes, so the cache-emitted CSR path is covered too.
#[test]
fn every_builtin_is_bit_identical_to_the_nested_scheduler() {
    for name in BUILTIN_NAMES {
        for (nested, shards) in
            [("auction", ShardCount::Fixed(1)), ("auction_sharded", ShardCount::Fixed(4))]
        {
            for slot_build in [SlotBuild::Cold, SlotBuild::Incremental] {
                let scenario =
                    builtin(name).unwrap().with_shards(shards).with_slot_build(slot_build).quick(6);
                let report = run_scenario(
                    &scenario,
                    vec![
                        scheduler_for(&scenario, nested).unwrap(),
                        scheduler_for(&scenario, "auction_flat").unwrap(),
                    ],
                )
                .unwrap();
                assert_eq!(report.runs[1].summary.scheduler, "auction_flat");
                assert_eq!(
                    report.runs[0].recorder.slots(),
                    report.runs[1].recorder.slots(),
                    "{name}: auction_flat diverged from {nested} at {shards:?} ({slot_build:?})"
                );
                assert!(report.runs[1].summary.transfers > 0, "{name}: the swarm must download");
            }
        }
    }
}

/// Warm-started flat scheduling composes with the price carry identically
/// to the nested warm schedulers, across scenario event sequences.
#[test]
fn warm_flat_sweeps_match_nested_warm_sweeps() {
    for name in ["flash_crowd", "isp_outage"] {
        let scenario = builtin(name).unwrap().with_shards(ShardCount::Fixed(4)).quick(6);
        let report = run_scenario(
            &scenario,
            vec![
                scheduler_for(&scenario, "auction_sharded_warm").unwrap(),
                scheduler_for(&scenario, "auction_flat_warm").unwrap(),
            ],
        )
        .unwrap();
        assert_eq!(
            report.runs[0].recorder.slots(),
            report.runs[1].recorder.slots(),
            "{name}: warm flat diverged from warm sharded"
        );
    }
}

/// `shards = auto` adapts to the live slot size identically for both
/// layouts (the ROADMAP's adaptive-shard follow-on), so the sweeps agree
/// there too.
#[test]
fn auto_shards_sweep_identically() {
    let scenario = builtin("flash_crowd").unwrap().with_shards(ShardCount::Auto).quick(6);
    let report = run_scenario(
        &scenario,
        vec![
            scheduler_for(&scenario, "auction_sharded").unwrap(),
            scheduler_for(&scenario, "auction_flat").unwrap(),
        ],
    )
    .unwrap();
    assert_eq!(report.runs[0].recorder.slots(), report.runs[1].recorder.slots());
}

/// One shared `WorkerPool` serves every flat scheduler of a sweep and
/// every sweep of a process: repeated runs spawn zero new threads beyond
/// the first lease.
#[test]
fn repeated_runs_on_one_shared_pool_spawn_zero_new_threads() {
    let pool = WorkerPool::new();
    let spawner: Arc<dyn WorkerSpawner> = Arc::new(pool.clone());
    let workers = 2;
    let scenario = builtin("flash_crowd").unwrap().with_shards(ShardCount::Fixed(4)).quick(4);
    let run_once = || {
        let scheduler = Box::new(
            isp_p2p::sched::FlatAuctionScheduler::paper(ShardCount::Fixed(4))
                .with_spawner(spawner.clone())
                .with_workers(workers),
        );
        let run = isp_p2p::scenario::run_one(&scenario, scheduler).unwrap();
        assert!(run.summary.transfers > 0);
        run.summary.table_row()
    };
    let first = run_once();
    let spawned_after_first = pool.spawned();
    assert!(
        spawned_after_first <= workers as u64,
        "one run leases at most {workers} workers, spawned {spawned_after_first}"
    );
    let second = run_once();
    assert_eq!(pool.spawned(), spawned_after_first, "repeated runs spawn zero new threads");
    assert_eq!(first, second, "shared-pool runs stay deterministic");
}

/// The incremental cache emits the CSR compilation directly: the flat
/// scheduler's problems carry it, and the emitted instance still matches
/// the cold oracle bit for bit.
#[test]
fn incremental_cache_emits_the_csr_compilation_directly() {
    let config = SystemConfig::small_test().with_seed(40).with_slot_build(SlotBuild::Incremental);
    let mut sys = System::new(
        config,
        Box::new(isp_p2p::sched::FlatAuctionScheduler::paper(ShardCount::Fixed(1))),
    )
    .unwrap();
    sys.add_static_peers(10).unwrap();
    for _ in 0..6 {
        let problem = sys.prepare_slot().unwrap();
        let csr = problem.csr.as_ref().expect("incremental builds attach the CSR");
        assert!(csr.matches(&problem.instance), "cache-emitted CSR must match the instance");
        let cold = sys.cold_slot_problem().unwrap();
        assert_eq!(problem, cold, "incremental emit must still match the cold oracle");
        assert!(cold.csr.is_none(), "the cold oracle compiles on demand instead");
        let schedule = isp_p2p::sched::FlatAuctionScheduler::paper(ShardCount::Fixed(1))
            .schedule(&problem)
            .unwrap();
        sys.complete_slot(&problem, &schedule).unwrap();
    }
}
