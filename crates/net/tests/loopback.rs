//! In-process loopback certification of the networked runtime: the full
//! wire stack (framing, control protocol, tracker coordinator, peer
//! actors) over real 127.0.0.1 TCP sockets, with the tracker and peers as
//! threads of this test process. Multi-OS-process certification lives in
//! the root `net_loopback` integration test; this file covers the
//! equivalence chain and every failure path at thread speed.

use p2p_core::{
    verify_optimality, AuctionConfig, CountingProbe, NoProbe, ShardCount, SyncAuction,
    WelfareInstance,
};
use p2p_net::{run_slot_local, NetConfig, Peer, PeerConfig, Tracker};
use p2p_types::{ChunkId, Cost, P2pError, PeerId, RequestId, Valuation, VideoId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Random tie-free instance shaped like a slot problem (same bands as the
/// bench generators: valuations `[0.8, 8)`, costs `[0, 10)`).
fn random_instance(seed: u64, providers: usize, requests: usize) -> WelfareInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = WelfareInstance::builder();
    let ps: Vec<usize> = (0..providers)
        .map(|i| b.add_provider(PeerId::new(100_000 + i as u32), rng.gen_range(1..=4)))
        .collect();
    for d in 0..requests {
        let r = b.add_request(RequestId::new(
            PeerId::new(d as u32),
            ChunkId::new(VideoId::new(0), d as u32),
        ));
        let k = rng.gen_range(1..=3.min(providers));
        let mut picked = std::collections::HashSet::new();
        for _ in 0..k {
            let u = ps[rng.gen_range(0..providers)];
            if picked.insert(u) {
                let v = Valuation::new(rng.gen_range(0.8..8.0));
                let w = Cost::new(rng.gen_range(0.0..10.0));
                b.add_edge(r, u, v, w).unwrap();
            }
        }
    }
    b.build().unwrap()
}

fn quick_config() -> NetConfig {
    NetConfig {
        io_timeout: Duration::from_secs(5),
        handshake_timeout: Duration::from_secs(5),
        ..NetConfig::default()
    }
}

#[test]
fn networked_slot_is_bit_identical_to_the_sync_engine() {
    for seed in 0..6 {
        let instance = random_instance(seed, 5, 24);
        let sync = SyncAuction::new(AuctionConfig::paper()).run(&instance).unwrap();
        for peers in [1, 3, 5] {
            let net =
                run_slot_local(&instance, peers, &quick_config(), None, &mut NoProbe).unwrap();
            assert_eq!(net.assignment, sync.assignment, "seed {seed}, {peers} peers");
            assert_eq!(net.duals, sync.duals, "seed {seed}, {peers} peers");
            assert_eq!(net.rounds, sync.rounds, "seed {seed}, {peers} peers");
            assert_eq!(net.bids_submitted, sync.bids_submitted, "seed {seed}, {peers} peers");
        }
    }
}

#[test]
fn networked_slot_is_bit_identical_to_the_flat_engine() {
    use p2p_core::{CsrInstance, FlatAuction};
    let instance = random_instance(42, 6, 32);
    let csr = CsrInstance::compile(&instance);
    let flat = FlatAuction::new(AuctionConfig::paper(), ShardCount::Fixed(1)).run(&csr).unwrap();
    let net = run_slot_local(&instance, 3, &quick_config(), None, &mut NoProbe).unwrap();
    assert_eq!(net.assignment.choices(), flat.assignment.choices());
    assert_eq!(net.duals.lambda, flat.duals.lambda);
    assert_eq!(net.rounds, flat.rounds);
    assert_eq!(net.bids_submitted, flat.bids_submitted);
}

#[test]
fn batched_polls_match_the_per_request_protocol_and_the_flat_engine() {
    use p2p_core::{CsrInstance, FlatAuction};
    use p2p_net::run_slot_local_stats;
    for seed in [13, 29] {
        let instance = random_instance(seed, 8, 64);
        let csr = CsrInstance::compile(&instance);
        let flat =
            FlatAuction::new(AuctionConfig::paper(), ShardCount::Fixed(1)).run(&csr).unwrap();
        for peers in [1, 2, 4] {
            let batched_cfg = NetConfig { batch_polls: true, ..quick_config() };
            let unbatched_cfg = NetConfig { batch_polls: false, ..quick_config() };
            let (batched, bstats) =
                run_slot_local_stats(&instance, peers, &batched_cfg, None, &mut NoProbe).unwrap();
            let (unbatched, ustats) =
                run_slot_local_stats(&instance, peers, &unbatched_cfg, None, &mut NoProbe).unwrap();
            for (label, got) in [("batched", &batched), ("unbatched", &unbatched)] {
                assert_eq!(
                    got.assignment.choices(),
                    flat.assignment.choices(),
                    "{label}, seed {seed}, {peers} peers"
                );
                assert_eq!(got.duals.lambda, flat.duals.lambda, "{label}, seed {seed}");
                assert_eq!(got.rounds, flat.rounds, "{label}, seed {seed}");
                assert_eq!(got.bids_submitted, flat.bids_submitted, "{label}, seed {seed}");
            }
            assert!(
                bstats.total() * 5 <= ustats.total(),
                "seed {seed}, {peers} peers: batching only cut frames from {} to {}",
                ustats.total(),
                bstats.total()
            );
        }
    }
}

#[test]
fn networked_outcome_carries_the_optimality_certificate() {
    let instance = random_instance(7, 4, 20);
    let outcome = run_slot_local(&instance, 3, &quick_config(), None, &mut NoProbe).unwrap();
    let n = instance.request_count() as f64;
    let report =
        verify_optimality(&instance, &outcome.assignment, &outcome.duals, 1e-9 * (n + 1.0));
    assert!(report.is_optimal(), "{report:?}");
}

#[test]
fn warm_start_repair_matches_the_sync_engine() {
    let epsilon = 0.01;
    let instance = random_instance(11, 4, 18);
    let shrunk = random_instance(12, 4, 10);
    let sync = SyncAuction::new(AuctionConfig::with_epsilon(epsilon));
    let first = sync.run(&instance).unwrap();
    let expect = sync.run_warm(&shrunk, &first.duals.lambda).unwrap();

    let config = NetConfig { epsilon, ..quick_config() };
    let net_first = run_slot_local(&instance, 3, &config, None, &mut NoProbe).unwrap();
    assert_eq!(net_first.duals, first.duals);
    let net_warm =
        run_slot_local(&shrunk, 3, &config, Some(&net_first.duals.lambda), &mut NoProbe).unwrap();
    assert_eq!(net_warm.assignment, expect.assignment);
    assert_eq!(net_warm.duals, expect.duals);
    assert_eq!(net_warm.rounds, expect.rounds);
    assert_eq!(net_warm.bids_submitted, expect.bids_submitted);
}

#[test]
fn probe_counters_match_the_sync_engine() {
    let instance = random_instance(3, 4, 16);
    let mut sync_probe = CountingProbe::new();
    SyncAuction::new(AuctionConfig::paper()).run_probed(&instance, &mut sync_probe).unwrap();
    let mut net_probe = CountingProbe::new();
    run_slot_local(&instance, 2, &quick_config(), None, &mut net_probe).unwrap();
    let sync_report = sync_probe.take_report();
    let net_report = net_probe.take_report();
    assert_eq!(net_report.rounds, sync_report.rounds);
    assert_eq!(net_report.bids, sync_report.bids);
    assert_eq!(net_report.conflicts, sync_report.conflicts);
}

#[test]
fn peer_drop_mid_round_is_a_typed_error_within_budget() {
    let instance = random_instance(5, 4, 20);
    let config = NetConfig { io_timeout: Duration::from_millis(500), ..quick_config() };
    let mut tracker = Tracker::bind("127.0.0.1:0", 2, config.clone()).unwrap();
    let addr = tracker.local_addr().to_string();
    let spawn_peer = |fail_after: Option<u64>| {
        let addr = addr.clone();
        let cfg = PeerConfig {
            io_timeout: config.io_timeout,
            fail_after_polls: fail_after,
            ..PeerConfig::default()
        };
        std::thread::spawn(move || {
            let result = Peer::connect(&addr, 0, cfg).and_then(|mut p| p.run());
            drop(result); // the tracker-side error is what this test asserts
        })
    };
    let healthy = spawn_peer(None);
    let doomed = spawn_peer(Some(3));
    let started = Instant::now();
    let err = tracker.run(&instance, &mut NoProbe).unwrap_err();
    let elapsed = started.elapsed();
    assert!(
        matches!(err, P2pError::Disconnected { .. } | P2pError::Timeout { .. }),
        "expected a typed drop error, got {err:?}"
    );
    assert!(elapsed < Duration::from_secs(5), "drop detection took {elapsed:?}");
    tracker.shutdown();
    healthy.join().unwrap();
    doomed.join().unwrap();
}

/// A hand-rolled tracker impostor that completes the handshake and then
/// dies the way a killed process does — no shutdown courtesy message.
/// (A real [`Tracker`] sends `Shutdown` even from its drop handler, so
/// rude death has to be staged manually.)
fn dead_tracker_after_handshake(wedge: bool) -> (P2pError, Duration) {
    use p2p_net::{decode_net, encode_net, FrameConn, NetMsg};
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let peer_cfg = PeerConfig { io_timeout: Duration::from_millis(300), ..PeerConfig::default() };
    let handle = std::thread::spawn(move || {
        let started = Instant::now();
        let err = Peer::connect(&addr, 0, peer_cfg)
            .and_then(|mut p| p.run())
            .expect_err("a dead tracker must error the peer out");
        (err, started.elapsed())
    });
    let (stream, _) = listener.accept().unwrap();
    let mut conn = FrameConn::new(stream, Some(Duration::from_secs(5))).unwrap();
    assert!(matches!(decode_net(&conn.recv().unwrap()).unwrap(), NetMsg::Hello { .. }));
    conn.send(&encode_net(&NetMsg::Welcome { peer_index: 0, peer_count: 1 })).unwrap();
    if wedge {
        // Wedged: socket open, no traffic, no heartbeats. Hold the
        // connection until the peer gives up on its read deadline.
        let result = handle.join().unwrap();
        drop(conn);
        result
    } else {
        // Killed: the kernel resets the connection.
        drop(conn);
        handle.join().unwrap()
    }
}

#[test]
fn tracker_death_is_a_typed_error_on_the_peer_within_budget() {
    let (err, elapsed) = dead_tracker_after_handshake(false);
    assert!(
        matches!(err, P2pError::Disconnected { .. } | P2pError::Timeout { .. }),
        "expected a typed tracker-death error, got {err:?}"
    );
    assert!(elapsed < Duration::from_secs(5), "tracker-death detection took {elapsed:?}");
}

#[test]
fn wedged_tracker_is_a_typed_timeout_on_the_peer_within_budget() {
    let (err, elapsed) = dead_tracker_after_handshake(true);
    assert!(matches!(err, P2pError::Timeout { .. }), "expected a typed timeout, got {err:?}");
    assert!(elapsed < Duration::from_secs(5), "wedge detection took {elapsed:?}");
}

#[test]
fn unreachable_tracker_fails_typed_within_the_backoff_budget() {
    // Bind then drop, so the port is (momentarily) known-dead.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let cfg = PeerConfig {
        connect_attempts: 3,
        connect_backoff: Duration::from_millis(10),
        ..PeerConfig::default()
    };
    let started = Instant::now();
    let err = Peer::connect(&dead, 0, cfg).expect_err("nothing is listening");
    let elapsed = started.elapsed();
    match err {
        P2pError::ConnectFailed { addr, attempts, .. } => {
            assert_eq!(addr, dead);
            assert_eq!(attempts, 3);
        }
        other => panic!("expected ConnectFailed, got {other:?}"),
    }
    // 3 attempts with 10 ms + 20 ms backoff: well under a second.
    assert!(elapsed < Duration::from_secs(2), "retry budget overrun: {elapsed:?}");
}

#[test]
fn incomplete_swarm_times_out_the_handshake() {
    let config = NetConfig { handshake_timeout: Duration::from_millis(200), ..quick_config() };
    let mut tracker = Tracker::bind("127.0.0.1:0", 2, config).unwrap();
    let err = tracker.accept_peers().unwrap_err();
    assert!(matches!(err, P2pError::Timeout { .. }), "{err:?}");
}

#[test]
fn zero_capacity_providers_survive_the_wire() {
    let mut b = WelfareInstance::builder();
    let dead = b.add_provider(PeerId::new(1), 0);
    let live = b.add_provider(PeerId::new(2), 1);
    let r = b.add_request(RequestId::new(PeerId::new(0), ChunkId::new(VideoId::new(0), 0)));
    b.add_edge(r, dead, Valuation::new(9.0), Cost::new(0.0)).unwrap();
    b.add_edge(r, live, Valuation::new(5.0), Cost::new(1.0)).unwrap();
    let instance = b.build().unwrap();
    let sync = SyncAuction::new(AuctionConfig::paper()).run(&instance).unwrap();
    let net = run_slot_local(&instance, 2, &quick_config(), None, &mut NoProbe).unwrap();
    assert_eq!(net.assignment, sync.assignment);
    assert_eq!(net.duals, sync.duals);
    assert_eq!(net.assignment.provider_of(&instance, r), Some(live));
}
