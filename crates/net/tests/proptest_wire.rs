//! Fuzz-shaped certification of the wire-version-2 batch frames: a
//! [`NetMsg::PollBatch`] / [`NetMsg::ReplyBatch`] with arbitrary nested
//! notices, snapshot prices (any `f64` bit pattern, NaN and ±∞ included)
//! and decisions survives encode → decode bit-exactly; the decoder fails
//! gracefully (typed error, no panic) on arbitrary junk, every strict
//! prefix, and foreign version bytes. The companion core-level suite
//! (`crates/core/tests/proptest_wire.rs`) certifies the embedded
//! [`AuctionMsg`] payload codec the batches nest.

use p2p_core::bidder::AbstainReason;
use p2p_core::codec::WIRE_VERSION;
use p2p_core::messages::AuctionMsg;
use p2p_core::BidDecision;
use p2p_net::{decode_net, encode_net, NetMsg};
use p2p_types::P2pError;
use proptest::prelude::*;

/// Any `f64` bit pattern — the codec promises NaNs, infinities,
/// subnormals and -0.0 all travel bit-exactly.
fn arb_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(f64::from_bits)
}

fn arb_index() -> impl Strategy<Value = usize> {
    any::<u64>().prop_map(|v| v as usize)
}

fn arb_notice() -> impl Strategy<Value = AuctionMsg> {
    prop_oneof![
        (arb_index(), arb_index())
            .prop_map(|(request, provider)| AuctionMsg::Accepted { request, provider }),
        (arb_index(), arb_index(), arb_f64()).prop_map(|(request, provider, price)| {
            AuctionMsg::Rejected { request, provider, price }
        }),
        (arb_index(), arb_index(), arb_f64()).prop_map(|(request, provider, price)| {
            AuctionMsg::Evicted { request, provider, price }
        }),
        (arb_index(), arb_index(), arb_f64()).prop_map(|(listener, provider, price)| {
            AuctionMsg::PriceUpdate { listener, provider, price }
        }),
    ]
}

fn arb_decision() -> impl Strategy<Value = BidDecision> {
    prop_oneof![
        prop_oneof![
            Just(AbstainReason::NoCandidates),
            Just(AbstainReason::Unprofitable),
            Just(AbstainReason::ZeroMargin),
        ]
        .prop_map(|reason| BidDecision::Abstain { reason }),
        (arb_index(), arb_index(), arb_f64())
            .prop_map(|(edge, provider, amount)| { BidDecision::Bid { edge, provider, amount } }),
    ]
}

fn arb_poll_batch() -> impl Strategy<Value = NetMsg> {
    (
        prop::collection::vec(arb_notice(), 0..6),
        prop::collection::vec((arb_index(), prop::collection::vec(arb_f64(), 0..5)), 0..6),
    )
        .prop_map(|(notices, polls)| NetMsg::PollBatch { notices, polls })
}

fn arb_reply_batch() -> impl Strategy<Value = NetMsg> {
    prop::collection::vec((arb_index(), arb_decision()), 0..8)
        .prop_map(|replies| NetMsg::ReplyBatch { replies })
}

fn arb_batch_msg() -> impl Strategy<Value = NetMsg> {
    prop_oneof![arb_poll_batch(), arb_reply_batch()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("PROPTEST_CASES").ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256)))]

    /// Encode → decode → encode reproduces the original bytes exactly,
    /// nested notice payloads and non-finite snapshot prices included.
    #[test]
    fn batch_roundtrip_is_bit_exact(msg in arb_batch_msg()) {
        let bytes = encode_net(&msg);
        let decoded = decode_net(&bytes).expect("valid encoding must decode");
        prop_assert_eq!(encode_net(&decoded), bytes);
    }

    /// Arbitrary byte junk never panics the control decoder, and when it
    /// *does* decode, the bytes were canonical.
    #[test]
    fn junk_decodes_gracefully_or_canonically(bytes in prop::collection::vec(any::<u8>(), 0..96)) {
        match decode_net(&bytes) {
            Ok(msg) => prop_assert_eq!(encode_net(&msg), bytes),
            Err(
                P2pError::WireTruncated { .. }
                | P2pError::WireVersion { .. }
                | P2pError::WireMalformed { .. },
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
        }
    }

    /// Every strict prefix of a valid batch encoding is rejected — a short
    /// read can never be mistaken for a complete batch.
    #[test]
    fn strict_prefixes_never_decode(msg in arb_batch_msg(), frac in 0.0f64..1.0) {
        let bytes = encode_net(&msg);
        let cut = ((bytes.len() as f64) * frac) as usize; // always < len
        prop_assert!(decode_net(&bytes[..cut]).is_err());
    }

    /// A foreign version byte on a batch frame is rejected with the
    /// version numbers — version-1 speakers cannot feed the batched sweep.
    #[test]
    fn foreign_versions_are_rejected(version in 0u8..=255, msg in arb_batch_msg()) {
        prop_assume!(version != WIRE_VERSION);
        let mut bytes = encode_net(&msg);
        bytes[0] = version;
        match decode_net(&bytes) {
            Err(P2pError::WireVersion { found, supported }) => {
                prop_assert_eq!(found, version);
                prop_assert_eq!(supported, WIRE_VERSION);
            }
            other => prop_assert!(false, "expected a version error, got {other:?}"),
        }
    }
}
