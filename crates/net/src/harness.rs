//! Loopback multi-process harness: spawns the `tracker` and `peer`
//! binaries as real OS processes on 127.0.0.1, runs one auction slot, and
//! returns the decoded [`AuctionOutcome`] — or the typed error the failing
//! process reported on its stdout (`TRACKER_ERR` / `PEER_ERR` token
//! lines), so failure-path tests can assert error classes across the
//! process boundary.

use crate::proto::{decode_outcome, encode_instance};
use p2p_core::{AuctionOutcome, WelfareInstance};
use p2p_types::{P2pError, Result};
use std::io::{BufRead, BufReader, Read};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Configuration of a multi-process loopback run.
#[derive(Debug, Clone)]
pub struct MultiProcessConfig {
    /// Number of peer processes to spawn.
    pub peers: usize,
    /// Bid increment ε handed to the tracker.
    pub epsilon: f64,
    /// Per-connection read deadline for every process.
    pub io_timeout: Duration,
    /// Wall-clock budget for the whole run (handshake + slot + shutdown);
    /// expiry kills the processes and returns [`P2pError::Timeout`].
    pub deadline: Duration,
    /// Fault injection: make peer process `index` drop its connection
    /// after serving `polls` polls.
    pub fail_peer_after_polls: Option<(usize, u64)>,
}

impl Default for MultiProcessConfig {
    fn default() -> Self {
        MultiProcessConfig {
            peers: 3,
            epsilon: 0.0,
            io_timeout: Duration::from_secs(5),
            deadline: Duration::from_secs(60),
            fail_peer_after_polls: None,
        }
    }
}

/// Directory holding the compiled `tracker` and `peer` binaries:
/// `P2P_NET_BIN_DIR` when set, otherwise the directory of the current
/// executable (minus a trailing `deps`, so it works from `cargo test`
/// binaries too).
pub fn bin_dir() -> Result<PathBuf> {
    if let Ok(dir) = std::env::var("P2P_NET_BIN_DIR") {
        return Ok(PathBuf::from(dir));
    }
    let exe = std::env::current_exe().map_err(|e| {
        P2pError::invalid_config("P2P_NET_BIN_DIR", format!("cannot locate current exe: {e}"))
    })?;
    let mut dir = exe
        .parent()
        .ok_or_else(|| P2pError::invalid_config("P2P_NET_BIN_DIR", "exe has no parent directory"))?
        .to_path_buf();
    if dir.file_name().is_some_and(|n| n == "deps") {
        dir.pop();
    }
    Ok(dir)
}

/// Full path of a networked-runtime binary (`tracker` or `peer`).
pub fn bin_path(name: &str) -> Result<PathBuf> {
    let path = bin_dir()?.join(format!("{name}{}", std::env::consts::EXE_SUFFIX));
    if !path.is_file() {
        return Err(P2pError::invalid_config(
            "P2P_NET_BIN_DIR",
            format!("binary not found at {} (build p2p-net's bins first)", path.display()),
        ));
    }
    Ok(path)
}

/// A unique scratch path under the OS temp directory.
pub fn temp_path(label: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("p2p_net_{}_{}_{}", std::process::id(), seq, label))
}

/// Kills and reaps every child still running when dropped, so a failing
/// assertion never leaks processes.
struct ReapGuard {
    children: Vec<Child>,
    files: Vec<PathBuf>,
}

impl Drop for ReapGuard {
    fn drop(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
        for f in &self.files {
            let _ = std::fs::remove_file(f);
        }
    }
}

/// Runs one auction slot across a tracker process and `peers` peer
/// processes on 127.0.0.1, returning the tracker's outcome. Every failure
/// mode — a crashed peer, an unresponsive tracker, the deadline expiring —
/// comes back as a typed error, never a hang.
pub fn run_multiprocess(
    instance: &WelfareInstance,
    config: &MultiProcessConfig,
) -> Result<AuctionOutcome> {
    let tracker_bin = bin_path("tracker")?;
    let peer_bin = bin_path("peer")?;
    let instance_path = temp_path("instance.bin");
    let out_path = temp_path("outcome.bin");
    std::fs::write(&instance_path, encode_instance(instance)).map_err(|e| {
        P2pError::invalid_config("instance_path", format!("cannot write the instance file: {e}"))
    })?;
    let mut guard =
        ReapGuard { children: Vec::new(), files: vec![instance_path.clone(), out_path.clone()] };
    let started = Instant::now();
    let deadline = started + config.deadline;
    let io_ms = config.io_timeout.as_millis().to_string();

    let mut tracker = Command::new(&tracker_bin)
        .args(["--listen", "127.0.0.1:0"])
        .args(["--peers", &config.peers.to_string()])
        .args(["--instance", &instance_path.display().to_string()])
        .args(["--out", &out_path.display().to_string()])
        .args(["--epsilon", &config.epsilon.to_string()])
        .args(["--io-timeout-ms", &io_ms])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| P2pError::Disconnected { context: format!("spawning the tracker: {e}") })?;
    let mut tracker_stdout = BufReader::new(tracker.stdout.take().expect("stdout was piped"));
    guard.children.push(tracker);

    let mut line = String::new();
    tracker_stdout
        .read_line(&mut line)
        .map_err(|e| P2pError::Disconnected { context: format!("reading tracker stdout: {e}") })?;
    let addr = match line.trim().strip_prefix("LISTENING ") {
        Some(addr) => addr.to_string(),
        None => return Err(parse_process_error("TRACKER_ERR", line.trim())),
    };

    for i in 0..config.peers {
        let mut cmd = Command::new(&peer_bin);
        cmd.args(["--tracker", &addr]).args(["--io-timeout-ms", &io_ms]);
        if let Some((index, polls)) = config.fail_peer_after_polls {
            if index == i {
                cmd.args(["--fail-after-polls", &polls.to_string()]);
            }
        }
        let peer =
            cmd.stdout(Stdio::piped()).stderr(Stdio::null()).spawn().map_err(|e| {
                P2pError::Disconnected { context: format!("spawning peer {i}: {e}") }
            })?;
        guard.children.push(peer);
    }

    // The tracker exits first (it writes the outcome, shuts the swarm
    // down, then quits); peers follow on the shutdown message.
    let tracker_status = wait_deadline(&mut guard.children[0], deadline)?;
    if !tracker_status.success() {
        let mut rest = String::new();
        let _ = tracker_stdout.read_to_string(&mut rest);
        let last = rest.lines().last().unwrap_or("").trim().to_string();
        return Err(parse_process_error("TRACKER_ERR", &last));
    }
    for i in 0..config.peers {
        let child = &mut guard.children[i + 1];
        let status = wait_deadline(child, deadline)?;
        if !status.success() {
            let mut out = String::new();
            if let Some(mut stdout) = child.stdout.take() {
                let _ = stdout.read_to_string(&mut out);
            }
            let last = out.lines().last().unwrap_or("").trim().to_string();
            return Err(parse_process_error("PEER_ERR", &last));
        }
    }

    let bytes = std::fs::read(&out_path).map_err(|e| {
        P2pError::invalid_config("out_path", format!("cannot read the outcome file: {e}"))
    })?;
    decode_outcome(&bytes, instance)
}

fn wait_deadline(child: &mut Child, deadline: Instant) -> Result<std::process::ExitStatus> {
    loop {
        match child.try_wait() {
            Ok(Some(status)) => return Ok(status),
            Ok(None) => {
                if Instant::now() > deadline {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(P2pError::Timeout { elapsed: deadline.elapsed(), messages: 0 });
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                return Err(P2pError::Disconnected {
                    context: format!("waiting on a child process: {e}"),
                })
            }
        }
    }
}

/// Maps a typed error to the stable token its process prints on stdout.
pub fn error_token(e: &P2pError) -> &'static str {
    match e {
        P2pError::Timeout { .. } => "timeout",
        P2pError::Disconnected { .. } => "disconnected",
        P2pError::ConnectFailed { .. } => "connect_failed",
        P2pError::AuctionDiverged { .. } => "diverged",
        P2pError::WireTruncated { .. }
        | P2pError::WireVersion { .. }
        | P2pError::WireMalformed { .. } => "wire",
        P2pError::WorkerPanicked { .. } => "panic",
        _ => "error",
    }
}

/// Reconstructs a typed error from a `TRACKER_ERR`/`PEER_ERR` stdout line.
/// Payload fields that do not survive the process boundary (durations,
/// counters) come back zeroed; the error *class* and display text do.
pub fn error_from_token(token: &str, message: &str) -> P2pError {
    match token {
        "timeout" => P2pError::Timeout { elapsed: Duration::ZERO, messages: 0 },
        "disconnected" => P2pError::Disconnected { context: message.to_string() },
        "connect_failed" => P2pError::ConnectFailed {
            addr: String::new(),
            attempts: 0,
            last_error: message.to_string(),
        },
        "diverged" => P2pError::AuctionDiverged { iterations: 0 },
        "wire" => P2pError::WireMalformed { reason: message.to_string() },
        "panic" => P2pError::WorkerPanicked { message: message.to_string() },
        _ => P2pError::WireMalformed { reason: format!("{token}: {message}") },
    }
}

fn parse_process_error(prefix: &str, line: &str) -> P2pError {
    if let Some(rest) = line.strip_prefix(prefix) {
        let rest = rest.trim_start();
        let (token, msg) = rest.split_once(' ').unwrap_or((rest, ""));
        return error_from_token(token, msg);
    }
    P2pError::Disconnected {
        context: format!("process exited without a structured error (last line: {line:?})"),
    }
}
