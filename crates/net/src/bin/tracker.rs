//! The tracker process: binds a loopback socket, hands out swarm
//! membership to `--peers` peer processes, runs one auction slot over the
//! wire, writes the outcome file and shuts the swarm down.
//!
//! stdout protocol (consumed by the multi-process harness):
//!   `LISTENING <addr>` once bound, then on success `OK`, or on failure
//!   `TRACKER_ERR <token> <message>` with a nonzero exit code.

use p2p_core::NoProbe;
use p2p_net::harness::error_token;
use p2p_net::proto::{decode_instance, encode_outcome};
use p2p_net::{NetConfig, Tracker};
use p2p_types::{P2pError, Result};
use std::io::Write;
use std::process::ExitCode;
use std::time::Duration;

struct Args(Vec<String>);

impl Args {
    fn get(&self, flag: &str) -> Option<&str> {
        self.0.iter().position(|a| a == flag).and_then(|i| self.0.get(i + 1)).map(String::as_str)
    }

    fn has(&self, flag: &str) -> bool {
        self.0.iter().any(|a| a == flag)
    }

    fn require(&self, flag: &str) -> Result<&str> {
        self.get(flag).ok_or_else(|| P2pError::invalid_config("args", format!("missing {flag}")))
    }

    fn parse<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T> {
        match self.get(flag) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| {
                P2pError::invalid_config("args", format!("cannot parse {flag} value {raw:?}"))
            }),
        }
    }
}

fn run(args: &Args) -> Result<()> {
    let listen = args.get("--listen").unwrap_or("127.0.0.1:0");
    let peers: usize = args.parse("--peers", 0)?;
    let instance_path = args.require("--instance")?;
    let out_path = args.get("--out");
    let config = NetConfig {
        epsilon: args.parse("--epsilon", 0.0)?,
        max_rounds: args.parse("--max-rounds", 1_000_000)?,
        retire_priced_out: args.has("--retire"),
        io_timeout: Duration::from_millis(args.parse("--io-timeout-ms", 5_000)?),
        handshake_timeout: Duration::from_millis(args.parse("--handshake-timeout-ms", 10_000)?),
        heartbeat_every: Duration::from_millis(args.parse("--heartbeat-ms", 1_000)?),
        batch_polls: !args.has("--no-batch"),
    };
    let bytes = std::fs::read(instance_path).map_err(|e| {
        P2pError::invalid_config("--instance", format!("cannot read {instance_path}: {e}"))
    })?;
    let instance = decode_instance(&bytes)?;

    let mut tracker = Tracker::bind(listen, peers, config)?;
    println!("LISTENING {}", tracker.local_addr());
    std::io::stdout().flush().ok();

    let outcome = tracker.run(&instance, &mut NoProbe)?;
    tracker.shutdown();
    if let Some(path) = out_path {
        std::fs::write(path, encode_outcome(&outcome))
            .map_err(|e| P2pError::invalid_config("--out", format!("cannot write {path}: {e}")))?;
    }
    println!("OK");
    Ok(())
}

fn main() -> ExitCode {
    let args = Args(std::env::args().skip(1).collect());
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            println!("TRACKER_ERR {} {e}", error_token(&e));
            std::io::stdout().flush().ok();
            ExitCode::FAILURE
        }
    }
}
