//! The peer process: dials the tracker with retry/backoff and serves its
//! partition of bidders until the tracker shuts the swarm down.
//!
//! stdout protocol (consumed by the multi-process harness): nothing on
//! success (exit 0), `PEER_ERR <token> <message>` with a nonzero exit code
//! on failure.

use p2p_net::harness::error_token;
use p2p_net::{Peer, PeerConfig};
use p2p_types::{P2pError, Result};
use std::io::Write;
use std::process::ExitCode;
use std::time::Duration;

struct Args(Vec<String>);

impl Args {
    fn get(&self, flag: &str) -> Option<&str> {
        self.0.iter().position(|a| a == flag).and_then(|i| self.0.get(i + 1)).map(String::as_str)
    }

    fn require(&self, flag: &str) -> Result<&str> {
        self.get(flag).ok_or_else(|| P2pError::invalid_config("args", format!("missing {flag}")))
    }

    fn parse<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T> {
        match self.get(flag) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| {
                P2pError::invalid_config("args", format!("cannot parse {flag} value {raw:?}"))
            }),
        }
    }
}

fn run(args: &Args) -> Result<()> {
    let tracker = args.require("--tracker")?;
    let config = PeerConfig {
        io_timeout: Duration::from_millis(args.parse("--io-timeout-ms", 5_000)?),
        connect_attempts: args.parse("--attempts", 10)?,
        connect_backoff: Duration::from_millis(args.parse("--backoff-ms", 50)?),
        fail_after_polls: args
            .get("--fail-after-polls")
            .map(|raw| raw.parse())
            .transpose()
            .map_err(|_| {
                P2pError::invalid_config("args", "cannot parse --fail-after-polls".to_string())
            })?,
    };
    Peer::connect(tracker, std::process::id() as u64, config)?.run()
}

fn main() -> ExitCode {
    let args = Args(std::env::args().skip(1).collect());
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            println!("PEER_ERR {} {e}", error_token(&e));
            std::io::stdout().flush().ok();
            ExitCode::FAILURE
        }
    }
}
