//! The tracker: swarm membership, heartbeats, and the coordinator that
//! replays the synchronous Gauss–Seidel sweep over TCP.
//!
//! The tracker hosts the [`AuctioneerNode`]s and owns the sweep schedule;
//! peers host the [`BidderNode`](p2p_core::BidderNode)s. Each round the
//! tracker polls every unassigned request *in index order* with the exact
//! current prices, exactly as [`p2p_core::SyncAuction`]'s sweep reads its
//! live price vector — so the networked outcome (assignment, duals,
//! rounds, bids) is bit-identical to the in-process engines' by the same
//! argument that makes the sharded, flat and ideal-swarm engines agree.
//! Per-connection FIFO delivery guarantees an `Accepted`/`Evicted` notice
//! reaches a peer before that peer's next `Poll`, so bidder phase and the
//! tracker's assignment view never disagree.
//!
//! Two wire drivers replay that same sweep. The per-request driver
//! ([`NetConfig::batch_polls`] `false`) sends one `Poll` frame per open
//! request and applies each reply before the next poll. The batched
//! driver (the default) sends one [`NetMsg::PollBatch`] per peer per
//! round — queued notices first, then a price *snapshot* per owned open
//! request — and collects one `ReplyBatch` per peer. The replies are
//! speculative; the tracker replays the sweep in index order and accepts
//! an entry only while its snapshot still bitwise-matches the live
//! prices, otherwise it recomputes the decision locally (with exact
//! aligned polls and `LearnPolicy::Monotone`, a polled bidder's decision
//! is a pure function of the live prices) and queues a rejection so the
//! peer's parked bidder re-idles before its next poll. Both drivers
//! funnel every authoritative decision through [`Sweep::apply`], so the
//! outcome is bit-identical either way — the batched driver just spends
//! ~`2 × peers × rounds` frames where the per-request one spends
//! `2 × polls + notices`.

use crate::frame::FrameConn;
use crate::proto::{encode_net, NetMsg, WireBidder};
use p2p_core::bidder::{decide_bid, AbstainReason};
use p2p_core::engine::{edge_views, final_prices_from, run_warm_with};
use p2p_core::messages::AuctionMsg;
use p2p_core::protocol::AuctioneerNode;
use p2p_core::{
    Assignment, AuctionOutcome, AuctionProbe, BidDecision, DualSolution, EdgeView, WelfareInstance,
};
use p2p_types::{P2pError, Result};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Configuration of the networked runtime (both ends).
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Bid increment ε (0 is the paper-faithful rule; deterministic replay
    /// makes it safe on the wire, unlike on lossy simulated networks).
    pub epsilon: f64,
    /// Safety cap on sweep rounds before declaring divergence.
    pub max_rounds: u64,
    /// Permanently retire priced-out requests (same trick, and same
    /// outcome-neutrality, as `AuctionConfig::retire_priced_out`).
    pub retire_priced_out: bool,
    /// Per-reply deadline: how long the coordinator waits for one peer's
    /// bid decision (and how long a peer waits for tracker traffic) before
    /// returning a typed [`P2pError::Timeout`].
    pub io_timeout: Duration,
    /// How long the tracker waits for the full swarm to connect.
    pub handshake_timeout: Duration,
    /// Tracker → peer keep-alive interval; must be comfortably below
    /// `io_timeout` so idle peers never trip their read deadline.
    pub heartbeat_every: Duration,
    /// Ship one [`NetMsg::PollBatch`] frame per peer per sweep round
    /// (wire version 2) instead of one `Poll` and one `Notice` frame per
    /// request. Bit-identical to the per-request protocol — each batch
    /// entry carries a price snapshot that the tracker revalidates at the
    /// entry's exact sweep position, repairing stale entries locally —
    /// while cutting frames per slot by roughly the poll count over the
    /// peer count × rounds. Disable to exercise the per-request path.
    pub batch_polls: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            epsilon: 0.0,
            max_rounds: 1_000_000,
            retire_priced_out: false,
            io_timeout: Duration::from_secs(5),
            handshake_timeout: Duration::from_secs(10),
            heartbeat_every: Duration::from_secs(1),
            batch_polls: true,
        }
    }
}

/// Wire-frame counters for one tracker slot (heartbeats and the
/// handshake excluded), accumulated across every warm-repair pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetRunStats {
    /// Frames the tracker sent: `Init`s, polls (batched or not), notices.
    pub frames_sent: u64,
    /// Reply frames the tracker received from peers.
    pub frames_recv: u64,
}

impl NetRunStats {
    /// Total frames in both directions.
    pub fn total(&self) -> u64 {
        self.frames_sent + self.frames_recv
    }
}

/// One connected peer: the shared writer (coordinator + heartbeat thread)
/// and its reader thread.
struct PeerLink {
    writer: Arc<Mutex<FrameConn>>,
    reader: Option<JoinHandle<()>>,
}

/// The tracker process: binds, hands out swarm membership, then runs
/// auction slots against the connected peers.
pub struct Tracker {
    listener: Option<TcpListener>,
    local_addr: SocketAddr,
    links: Vec<PeerLink>,
    rx: Option<Receiver<(usize, Result<NetMsg>)>>,
    peer_count: usize,
    config: NetConfig,
    heartbeat_stop: Arc<AtomicBool>,
    heartbeat: Option<JoinHandle<()>>,
    shut: bool,
    frames_sent: u64,
    frames_recv: u64,
}

impl Tracker {
    /// Binds the listening socket. Peers are accepted lazily by the first
    /// [`run`](Tracker::run) (or eagerly via
    /// [`accept_peers`](Tracker::accept_peers), which the binary does so it
    /// can separate "listening" from "swarm complete").
    pub fn bind(addr: impl ToSocketAddrs, peer_count: usize, config: NetConfig) -> Result<Self> {
        if peer_count == 0 {
            return Err(P2pError::invalid_config("peer_count", "must be at least 1"));
        }
        let listener = TcpListener::bind(addr).map_err(|e| P2pError::Disconnected {
            context: format!("binding the tracker socket: {e}"),
        })?;
        let local_addr = listener.local_addr().map_err(|e| P2pError::Disconnected {
            context: format!("reading the bound address: {e}"),
        })?;
        Ok(Tracker {
            listener: Some(listener),
            local_addr,
            links: Vec::new(),
            rx: None,
            peer_count,
            config,
            heartbeat_stop: Arc::new(AtomicBool::new(false)),
            heartbeat: None,
            shut: false,
            frames_sent: 0,
            frames_recv: 0,
        })
    }

    /// Wire-frame counters for the most recent [`run`](Tracker::run) /
    /// [`run_warm`](Tracker::run_warm) slot.
    pub fn frame_stats(&self) -> NetRunStats {
        NetRunStats { frames_sent: self.frames_sent, frames_recv: self.frames_recv }
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Accepts and handshakes the full swarm, then starts the reader and
    /// heartbeat threads. Returns [`P2pError::Timeout`] if the swarm is
    /// incomplete when `handshake_timeout` expires.
    pub fn accept_peers(&mut self) -> Result<()> {
        let listener = match self.listener.take() {
            Some(l) => l,
            None => return Ok(()), // already accepted
        };
        listener.set_nonblocking(true).map_err(|e| P2pError::Disconnected {
            context: format!("configuring the accept loop: {e}"),
        })?;
        let started = Instant::now();
        let (tx, rx) = channel();
        while self.links.len() < self.peer_count {
            if started.elapsed() > self.config.handshake_timeout {
                return Err(P2pError::Timeout {
                    elapsed: started.elapsed(),
                    messages: self.links.len() as u64,
                });
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false).map_err(|e| P2pError::Disconnected {
                        context: format!("unblocking an accepted socket: {e}"),
                    })?;
                    let index = self.links.len();
                    let mut conn = FrameConn::new(stream, Some(self.config.io_timeout))?;
                    match crate::proto::decode_net(&conn.recv()?)? {
                        NetMsg::Hello { .. } => {}
                        other => {
                            return Err(P2pError::WireMalformed {
                                reason: format!("expected a hello, got {other:?}"),
                            })
                        }
                    }
                    conn.send(&encode_net(&NetMsg::Welcome {
                        peer_index: index as u64,
                        peer_count: self.peer_count as u64,
                    }))?;
                    let reader_conn = conn.try_clone()?;
                    reader_conn.set_read_timeout(None)?;
                    let reader = spawn_reader(index, reader_conn, tx.clone());
                    self.links.push(PeerLink {
                        writer: Arc::new(Mutex::new(conn)),
                        reader: Some(reader),
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(2));
                }
                Err(e) => {
                    return Err(P2pError::Disconnected {
                        context: format!("accepting a peer connection: {e}"),
                    })
                }
            }
        }
        self.rx = Some(rx);
        self.heartbeat = Some(spawn_heartbeat(
            self.links.iter().map(|l| Arc::clone(&l.writer)).collect(),
            self.config.heartbeat_every,
            Arc::clone(&self.heartbeat_stop),
        ));
        Ok(())
    }

    /// Runs one cold auction slot across the swarm.
    pub fn run<P: AuctionProbe>(
        &mut self,
        instance: &WelfareInstance,
        probe: &mut P,
    ) -> Result<AuctionOutcome> {
        self.accept_peers()?;
        self.frames_sent = 0;
        self.frames_recv = 0;
        self.run_pass(instance, None, probe)
    }

    /// Runs one warm-started slot, repairing carried prices with the same
    /// CS 1 loop as the in-process engines (each repair pass re-`Init`s the
    /// swarm's bidders with the repaired prices).
    pub fn run_warm<P: AuctionProbe>(
        &mut self,
        instance: &WelfareInstance,
        prior_prices: &[f64],
        probe: &mut P,
    ) -> Result<AuctionOutcome> {
        self.accept_peers()?;
        self.frames_sent = 0;
        self.frames_recv = 0;
        let epsilon = self.config.epsilon;
        run_warm_with(instance, prior_prices, epsilon, |prices| {
            self.run_pass(instance, prices, probe)
        })
    }

    /// Sends `Shutdown` to every peer and stops the heartbeat thread.
    /// Idempotent; also invoked on drop.
    pub fn shutdown(&mut self) {
        if self.shut {
            return;
        }
        self.shut = true;
        for link in &self.links {
            if let Ok(mut w) = link.writer.lock() {
                let _ = w.send(&encode_net(&NetMsg::Shutdown));
            }
        }
        self.heartbeat_stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.heartbeat.take() {
            let _ = h.join();
        }
        // Reader threads exit when their peer closes the socket in
        // response to the shutdown (or already died).
        for link in &mut self.links {
            if let Some(r) = link.reader.take() {
                let _ = r.join();
            }
        }
    }

    /// One full sweep to quiescence — the networked image of
    /// `SyncAuction::run_from`, counter for counter.
    fn run_pass<P: AuctionProbe>(
        &mut self,
        instance: &WelfareInstance,
        initial_prices: Option<&[f64]>,
        probe: &mut P,
    ) -> Result<AuctionOutcome> {
        let views = edge_views(instance);
        let mut auctioneers: Vec<AuctioneerNode> = instance
            .providers()
            .iter()
            .enumerate()
            .map(|(u, p)| {
                let warm = initial_prices
                    .and_then(|ps| ps.get(u).copied())
                    .filter(|w| w.is_finite() && *w >= 0.0)
                    .unwrap_or(0.0);
                if p.capacity.is_zero() {
                    AuctioneerNode::new(u, 0)
                } else {
                    AuctioneerNode::with_price(u, p.capacity.chunks_per_slot(), warm)
                }
            })
            .collect();
        let mut eff_price: Vec<f64> = instance
            .providers()
            .iter()
            .enumerate()
            .map(|(u, p)| if p.capacity.is_zero() { f64::INFINITY } else { auctioneers[u].price() })
            .collect();

        // Hand out this pass's bidders: request r lives on peer r mod N.
        let n = instance.request_count();
        for (idx, link) in self.links.iter().enumerate() {
            let bidders: Vec<WireBidder> = (idx..n)
                .step_by(self.peer_count)
                .map(|r| WireBidder {
                    request: r,
                    edges: views[r]
                        .iter()
                        .map(|v| (v.provider, v.utility, eff_price[v.provider]))
                        .collect(),
                })
                .collect();
            send_to(link, &NetMsg::Init { epsilon: self.config.epsilon, bidders })?;
            self.frames_sent += 1;
        }

        let mut assigned: Vec<Option<usize>> = vec![None; n];
        let retire = self.config.retire_priced_out;
        let mut retired: Vec<bool> = vec![false; if retire { n } else { 0 }];
        let mut notices_q: Vec<Vec<AuctionMsg>> = vec![Vec::new(); self.peer_count];
        let mut rounds = 0u64;
        let mut bids_submitted = 0u64;

        loop {
            rounds += 1;
            if rounds > self.config.max_rounds {
                return Err(P2pError::AuctionDiverged { iterations: rounds - 1 });
            }
            let mut sweep = Sweep {
                views: &views,
                auctioneers: &mut auctioneers,
                eff_price: &mut eff_price,
                assigned: &mut assigned,
                retire,
                retired: &mut retired,
                notices_q: &mut notices_q,
                peer_count: self.peer_count,
                bids: 0,
                conflicts: 0,
                newly_retired: 0,
            };
            if self.config.batch_polls {
                self.sweep_batched(&mut sweep, probe)?;
            } else {
                self.sweep_unbatched(&mut sweep, probe)?;
            }
            let (bids_this_round, conflicts_this_round, retired_this_round) =
                (sweep.bids, sweep.conflicts, sweep.newly_retired);
            bids_submitted += bids_this_round;
            probe.round(rounds, bids_this_round, conflicts_this_round, 0, retired_this_round);
            if bids_this_round == 0 {
                break;
            }
        }

        // A quiescent final round can still queue repair rejections for
        // stale speculative bids; flush them so no peer bidder is left
        // parked in `Pending` when the pass ends.
        for (owner, queue) in notices_q.iter_mut().enumerate() {
            for msg in std::mem::take(queue) {
                self.send_counted(owner, &NetMsg::Notice(msg))?;
            }
        }

        let lambda =
            final_prices_from(instance, auctioneers.iter().map(AuctioneerNode::price).collect());
        let outcome = AuctionOutcome {
            assignment: Assignment::new(assigned),
            duals: DualSolution::from_prices(instance, lambda),
            rounds,
            bids_submitted,
            converged: true,
            price_trace: Vec::new(),
        };
        if probe.enabled() {
            let slack =
                outcome.duals.objective(instance) - outcome.assignment.welfare(instance).get();
            probe.run_complete(
                outcome.rounds,
                outcome.bids_submitted,
                outcome.assignment.assigned_count() as u64,
                slack,
            );
        }
        Ok(outcome)
    }

    /// One per-request sweep round: poll every open request individually
    /// and apply its decision immediately — the original wire protocol,
    /// two frames (plus notices) per poll.
    fn sweep_unbatched<P: AuctionProbe>(
        &mut self,
        sweep: &mut Sweep<'_>,
        probe: &mut P,
    ) -> Result<()> {
        let n = sweep.assigned.len();
        for r in 0..n {
            if sweep.is_closed(r) {
                continue;
            }
            let owner = r % self.peer_count;
            let prices: Vec<f64> =
                sweep.views[r].iter().map(|v| sweep.eff_price[v.provider]).collect();
            self.send_counted(owner, &NetMsg::Poll { request: r, prices })?;
            let decision = self.await_reply(owner, r)?;
            if let BidDecision::Bid { edge, provider, .. } = decision {
                check_bid_shape(sweep.views, r, edge, provider)?;
            }
            let notices = sweep.apply(r, decision, probe);
            for (target, msg) in notices {
                self.send_counted(target, &NetMsg::Notice(msg))?;
            }
        }
        Ok(())
    }

    /// One batched sweep round: a single [`NetMsg::PollBatch`] per peer
    /// carrying last round's notices and a price snapshot per open
    /// request, answered by one [`NetMsg::ReplyBatch`]. The replies are
    /// speculative — each was decided against its snapshot — so the
    /// tracker replays the sweep in index order and uses an entry only if
    /// its snapshot still bitwise-matches the live prices at that
    /// position; otherwise the decision is recomputed locally (the bid
    /// rule is a pure function of the live prices) and, if the discarded
    /// speculation was a bid, a rejection is queued so the peer's bidder
    /// leaves `Pending`. Bit-for-bit the same sweep, ~`polls/(peers ×
    /// rounds)` times fewer frames.
    fn sweep_batched<P: AuctionProbe>(
        &mut self,
        sweep: &mut Sweep<'_>,
        probe: &mut P,
    ) -> Result<()> {
        let n = sweep.assigned.len();
        // Ship one frame per peer: queued notices, then this round's polls.
        let mut snapshots: Vec<Option<Vec<f64>>> = vec![None; n];
        let mut awaiting: Vec<bool> = vec![false; self.peer_count];
        let mut outstanding = 0usize;
        for (owner, awaiting_reply) in awaiting.iter_mut().enumerate() {
            let mut polls: Vec<(usize, Vec<f64>)> = Vec::new();
            for r in (owner..n).step_by(self.peer_count) {
                if sweep.is_closed(r) {
                    continue;
                }
                let prices: Vec<f64> =
                    sweep.views[r].iter().map(|v| sweep.eff_price[v.provider]).collect();
                snapshots[r] = Some(prices.clone());
                polls.push((r, prices));
            }
            let notices = std::mem::take(&mut sweep.notices_q[owner]);
            if polls.is_empty() && notices.is_empty() {
                continue;
            }
            self.send_counted(owner, &NetMsg::PollBatch { notices, polls })?;
            *awaiting_reply = true;
            outstanding += 1;
        }

        // Collect every peer's reply (arrival order is theirs to choose).
        let mut spec: Vec<Option<BidDecision>> = vec![None; n];
        while outstanding > 0 {
            let (idx, replies) = self.await_reply_batch()?;
            if !std::mem::take(&mut awaiting[idx]) {
                return Err(P2pError::WireMalformed {
                    reason: format!("peer {idx} sent a reply batch it was not asked for"),
                });
            }
            outstanding -= 1;
            for (r, decision) in replies {
                let solicited = r % self.peer_count == idx
                    && snapshots.get(r).is_some_and(Option::is_some)
                    && spec[r].is_none();
                if !solicited {
                    return Err(P2pError::WireMalformed {
                        reason: format!("peer {idx} answered request {r} out of turn"),
                    });
                }
                spec[r] = Some(decision);
            }
        }

        // Replay the sweep in index order against live prices.
        for r in 0..n {
            if sweep.is_closed(r) {
                continue;
            }
            let owner = r % self.peer_count;
            let decision = match spec[r].take() {
                Some(d) => {
                    if let BidDecision::Bid { edge, provider, .. } = d {
                        check_bid_shape(sweep.views, r, edge, provider)?;
                    }
                    let snap = snapshots[r]
                        .as_ref()
                        .expect("every speculative reply was checked against a snapshot");
                    if sweep.snapshot_is_live(r, snap) {
                        d
                    } else {
                        // Prices moved before this sweep position: void
                        // the speculation. A discarded bid left the
                        // peer's bidder in `Pending`; a rejection at the
                        // live price re-idles it before its next poll.
                        if let BidDecision::Bid { provider, .. } = d {
                            sweep.notices_q[owner].push(AuctionMsg::Rejected {
                                request: r,
                                provider,
                                price: sweep.eff_price[provider],
                            });
                        }
                        sweep.decide_locally(r, self.config.epsilon)
                    }
                }
                None => {
                    if snapshots[r].is_some() {
                        return Err(P2pError::WireMalformed {
                            reason: format!("a reply batch omitted polled request {r}"),
                        });
                    }
                    // No batch entry: the request was assigned when the
                    // batch shipped and lost its unit mid-round. The
                    // per-request protocol would poll it now; its
                    // decision is the same pure function of live prices.
                    sweep.decide_locally(r, self.config.epsilon)
                }
            };
            let notices = sweep.apply(r, decision, probe);
            for (target, msg) in notices {
                sweep.notices_q[target].push(msg);
            }
        }
        Ok(())
    }

    fn send_counted(&mut self, peer: usize, msg: &NetMsg) -> Result<()> {
        send_to(&self.links[peer], msg)?;
        self.frames_sent += 1;
        Ok(())
    }

    /// Waits for `peer`'s decision about `request`, with the per-reply
    /// deadline. A reader-thread error (peer died) or a deadline expiry
    /// (peer silent) surfaces as the corresponding typed error.
    fn await_reply(&mut self, peer: usize, request: usize) -> Result<BidDecision> {
        let rx = self.rx.as_ref().expect("accept_peers ran before the sweep");
        match rx.recv_timeout(self.config.io_timeout) {
            Ok((idx, Ok(NetMsg::Reply { request: got, decision })))
                if idx == peer && got == request =>
            {
                self.frames_recv += 1;
                Ok(decision)
            }
            Ok((idx, Ok(other))) => Err(P2pError::WireMalformed {
                reason: format!(
                    "peer {idx} sent {other:?} while peer {peer} owed a reply for \
                     request {request}"
                ),
            }),
            Ok((_, Err(e))) => Err(e),
            Err(RecvTimeoutError::Timeout) => {
                Err(P2pError::Timeout { elapsed: self.config.io_timeout, messages: 0 })
            }
            Err(RecvTimeoutError::Disconnected) => {
                Err(P2pError::Disconnected { context: "every connection reader exited".into() })
            }
        }
    }

    /// Waits for any peer's [`NetMsg::ReplyBatch`] (peers finish their
    /// batches in whatever order the scheduler gives them), with the same
    /// deadline and error surface as [`await_reply`](Tracker::await_reply).
    fn await_reply_batch(&mut self) -> Result<(usize, Vec<(usize, BidDecision)>)> {
        let rx = self.rx.as_ref().expect("accept_peers ran before the sweep");
        match rx.recv_timeout(self.config.io_timeout) {
            Ok((idx, Ok(NetMsg::ReplyBatch { replies }))) => {
                self.frames_recv += 1;
                Ok((idx, replies))
            }
            Ok((idx, Ok(other))) => Err(P2pError::WireMalformed {
                reason: format!("peer {idx} sent {other:?} while a reply batch was owed"),
            }),
            Ok((_, Err(e))) => Err(e),
            Err(RecvTimeoutError::Timeout) => {
                Err(P2pError::Timeout { elapsed: self.config.io_timeout, messages: 0 })
            }
            Err(RecvTimeoutError::Disconnected) => {
                Err(P2pError::Disconnected { context: "every connection reader exited".into() })
            }
        }
    }
}

/// The mutable state of one sweep round, shared by the per-request and
/// batched drivers so the two wire protocols cannot drift: both funnel
/// every authoritative decision through [`Sweep::apply`].
struct Sweep<'a> {
    views: &'a [Vec<EdgeView>],
    auctioneers: &'a mut [AuctioneerNode],
    eff_price: &'a mut [f64],
    assigned: &'a mut [Option<usize>],
    retire: bool,
    retired: &'a mut [bool],
    /// Notices owed to each peer, delivered at the head of its next
    /// `PollBatch` (batched mode only; the per-request driver sends
    /// notices inline and leaves these queues empty).
    notices_q: &'a mut [Vec<AuctionMsg>],
    peer_count: usize,
    bids: u64,
    conflicts: u64,
    newly_retired: u64,
}

impl Sweep<'_> {
    /// Whether `r` is out of this round's sweep (assigned or retired).
    fn is_closed(&self, r: usize) -> bool {
        self.assigned[r].is_some() || (self.retire && self.retired[r])
    }

    /// Whether a batch entry's price snapshot still bitwise-matches the
    /// live prices of `r`'s candidates — the condition under which the
    /// peer's speculative decision equals the one it would make now.
    fn snapshot_is_live(&self, r: usize, snap: &[f64]) -> bool {
        snap.iter()
            .zip(&self.views[r])
            .all(|(s, v)| s.to_bits() == self.eff_price[v.provider].to_bits())
    }

    /// The decision the peer's bidder would return for a poll of `r` at
    /// the live prices. Exact polls overwrite every live price entry and
    /// a polled bidder is always `Idle`, so its decision is this pure
    /// function — which lets the tracker repair stale batch entries
    /// without a second round-trip.
    fn decide_locally(&self, r: usize, epsilon: f64) -> BidDecision {
        decide_bid(&self.views[r], |u| self.eff_price[u], epsilon)
    }

    /// Applies one authoritative decision at sweep position `r` — the
    /// body of the original per-request loop — and returns the owed
    /// notices as `(peer, message)` in delivery order.
    fn apply<P: AuctionProbe>(
        &mut self,
        r: usize,
        decision: BidDecision,
        probe: &mut P,
    ) -> Vec<(usize, AuctionMsg)> {
        let mut notices = Vec::new();
        match decision {
            BidDecision::Abstain { reason } => {
                if self.retire
                    && matches!(reason, AbstainReason::Unprofitable | AbstainReason::NoCandidates)
                {
                    self.retired[r] = true;
                    self.newly_retired += 1;
                }
            }
            BidDecision::Bid { edge, provider, amount } => {
                self.bids += 1;
                let before = self.eff_price[provider];
                let reply = self.auctioneers[provider].on_bid(r, amount);
                match reply.reply {
                    AuctionMsg::Accepted { .. } => {
                        self.assigned[r] = Some(edge);
                    }
                    _ => {
                        // Unreachable with exact polled prices: the
                        // bidder only bids strictly above λ. Mirror the
                        // sync engine (count the bid, continue) but still
                        // notify so the bidder re-idles.
                        debug_assert!(false, "networked bid rejected");
                    }
                }
                notices.push((r % self.peer_count, reply.reply));
                if let Some(ev) = reply.evicted {
                    if let AuctionMsg::Evicted { request: loser, .. } = ev {
                        self.assigned[loser] = None;
                        self.conflicts += 1;
                        notices.push((loser % self.peer_count, ev));
                    }
                }
                if let Some(p) = reply.price_changed {
                    probe.price_change(provider, p - before);
                    self.eff_price[provider] = p;
                }
            }
        }
        notices
    }
}

/// Validates that a wire bid's `(edge, provider)` pair is consistent with
/// the request's edge list before it can index anything.
fn check_bid_shape(views: &[Vec<EdgeView>], r: usize, edge: usize, provider: usize) -> Result<()> {
    if views[r].get(edge).map(|v| v.provider) != Some(provider) {
        return Err(P2pError::WireMalformed {
            reason: format!(
                "request {r} bid on edge {edge} which does not point at provider {provider}"
            ),
        });
    }
    Ok(())
}

impl Drop for Tracker {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Tracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracker")
            .field("local_addr", &self.local_addr)
            .field("peer_count", &self.peer_count)
            .field("connected", &self.links.len())
            .finish()
    }
}

fn send_to(link: &PeerLink, msg: &NetMsg) -> Result<()> {
    let mut w = link
        .writer
        .lock()
        .map_err(|_| P2pError::WorkerPanicked { message: "a writer lock was poisoned".into() })?;
    w.send(&encode_net(msg))
}

fn spawn_reader(
    index: usize,
    mut conn: FrameConn,
    tx: Sender<(usize, Result<NetMsg>)>,
) -> JoinHandle<()> {
    thread::spawn(move || loop {
        let msg = conn.recv().and_then(|bytes| crate::proto::decode_net(&bytes));
        let failed = msg.is_err();
        if tx.send((index, msg)).is_err() || failed {
            return;
        }
    })
}

fn spawn_heartbeat(
    writers: Vec<Arc<Mutex<FrameConn>>>,
    every: Duration,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    let beat = encode_net(&NetMsg::Heartbeat);
    thread::spawn(move || {
        let tick = Duration::from_millis(20).min(every);
        let mut since_beat = Duration::ZERO;
        while !stop.load(Ordering::Relaxed) {
            thread::sleep(tick);
            since_beat += tick;
            if since_beat >= every {
                since_beat = Duration::ZERO;
                for w in &writers {
                    if let Ok(mut conn) = w.lock() {
                        // Send errors are the sweep's to report; the
                        // heartbeat just stops bothering a dead socket.
                        let _ = conn.send(&beat);
                    }
                }
            }
        }
    })
}
