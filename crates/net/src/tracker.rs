//! The tracker: swarm membership, heartbeats, and the coordinator that
//! replays the synchronous Gauss–Seidel sweep over TCP.
//!
//! The tracker hosts the [`AuctioneerNode`]s and owns the sweep schedule;
//! peers host the [`BidderNode`](p2p_core::BidderNode)s. Each round the
//! tracker polls every unassigned request *in index order* with the exact
//! current prices, exactly as [`p2p_core::SyncAuction`]'s sweep reads its
//! live price vector — so the networked outcome (assignment, duals,
//! rounds, bids) is bit-identical to the in-process engines' by the same
//! argument that makes the sharded, flat and ideal-swarm engines agree.
//! Per-connection FIFO delivery guarantees an `Accepted`/`Evicted` notice
//! reaches a peer before that peer's next `Poll`, so bidder phase and the
//! tracker's assignment view never disagree.

use crate::frame::FrameConn;
use crate::proto::{encode_net, NetMsg, WireBidder};
use p2p_core::engine::{edge_views, final_prices_from, run_warm_with};
use p2p_core::messages::AuctionMsg;
use p2p_core::protocol::AuctioneerNode;
use p2p_core::{
    Assignment, AuctionOutcome, AuctionProbe, BidDecision, DualSolution, WelfareInstance,
};
use p2p_types::{P2pError, Result};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Configuration of the networked runtime (both ends).
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Bid increment ε (0 is the paper-faithful rule; deterministic replay
    /// makes it safe on the wire, unlike on lossy simulated networks).
    pub epsilon: f64,
    /// Safety cap on sweep rounds before declaring divergence.
    pub max_rounds: u64,
    /// Permanently retire priced-out requests (same trick, and same
    /// outcome-neutrality, as `AuctionConfig::retire_priced_out`).
    pub retire_priced_out: bool,
    /// Per-reply deadline: how long the coordinator waits for one peer's
    /// bid decision (and how long a peer waits for tracker traffic) before
    /// returning a typed [`P2pError::Timeout`].
    pub io_timeout: Duration,
    /// How long the tracker waits for the full swarm to connect.
    pub handshake_timeout: Duration,
    /// Tracker → peer keep-alive interval; must be comfortably below
    /// `io_timeout` so idle peers never trip their read deadline.
    pub heartbeat_every: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            epsilon: 0.0,
            max_rounds: 1_000_000,
            retire_priced_out: false,
            io_timeout: Duration::from_secs(5),
            handshake_timeout: Duration::from_secs(10),
            heartbeat_every: Duration::from_secs(1),
        }
    }
}

/// One connected peer: the shared writer (coordinator + heartbeat thread)
/// and its reader thread.
struct PeerLink {
    writer: Arc<Mutex<FrameConn>>,
    reader: Option<JoinHandle<()>>,
}

/// The tracker process: binds, hands out swarm membership, then runs
/// auction slots against the connected peers.
pub struct Tracker {
    listener: Option<TcpListener>,
    local_addr: SocketAddr,
    links: Vec<PeerLink>,
    rx: Option<Receiver<(usize, Result<NetMsg>)>>,
    peer_count: usize,
    config: NetConfig,
    heartbeat_stop: Arc<AtomicBool>,
    heartbeat: Option<JoinHandle<()>>,
    shut: bool,
}

impl Tracker {
    /// Binds the listening socket. Peers are accepted lazily by the first
    /// [`run`](Tracker::run) (or eagerly via
    /// [`accept_peers`](Tracker::accept_peers), which the binary does so it
    /// can separate "listening" from "swarm complete").
    pub fn bind(addr: impl ToSocketAddrs, peer_count: usize, config: NetConfig) -> Result<Self> {
        if peer_count == 0 {
            return Err(P2pError::invalid_config("peer_count", "must be at least 1"));
        }
        let listener = TcpListener::bind(addr).map_err(|e| P2pError::Disconnected {
            context: format!("binding the tracker socket: {e}"),
        })?;
        let local_addr = listener.local_addr().map_err(|e| P2pError::Disconnected {
            context: format!("reading the bound address: {e}"),
        })?;
        Ok(Tracker {
            listener: Some(listener),
            local_addr,
            links: Vec::new(),
            rx: None,
            peer_count,
            config,
            heartbeat_stop: Arc::new(AtomicBool::new(false)),
            heartbeat: None,
            shut: false,
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Accepts and handshakes the full swarm, then starts the reader and
    /// heartbeat threads. Returns [`P2pError::Timeout`] if the swarm is
    /// incomplete when `handshake_timeout` expires.
    pub fn accept_peers(&mut self) -> Result<()> {
        let listener = match self.listener.take() {
            Some(l) => l,
            None => return Ok(()), // already accepted
        };
        listener.set_nonblocking(true).map_err(|e| P2pError::Disconnected {
            context: format!("configuring the accept loop: {e}"),
        })?;
        let started = Instant::now();
        let (tx, rx) = channel();
        while self.links.len() < self.peer_count {
            if started.elapsed() > self.config.handshake_timeout {
                return Err(P2pError::Timeout {
                    elapsed: started.elapsed(),
                    messages: self.links.len() as u64,
                });
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false).map_err(|e| P2pError::Disconnected {
                        context: format!("unblocking an accepted socket: {e}"),
                    })?;
                    let index = self.links.len();
                    let mut conn = FrameConn::new(stream, Some(self.config.io_timeout))?;
                    match crate::proto::decode_net(&conn.recv()?)? {
                        NetMsg::Hello { .. } => {}
                        other => {
                            return Err(P2pError::WireMalformed {
                                reason: format!("expected a hello, got {other:?}"),
                            })
                        }
                    }
                    conn.send(&encode_net(&NetMsg::Welcome {
                        peer_index: index as u64,
                        peer_count: self.peer_count as u64,
                    }))?;
                    let reader_conn = conn.try_clone()?;
                    reader_conn.set_read_timeout(None)?;
                    let reader = spawn_reader(index, reader_conn, tx.clone());
                    self.links.push(PeerLink {
                        writer: Arc::new(Mutex::new(conn)),
                        reader: Some(reader),
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(2));
                }
                Err(e) => {
                    return Err(P2pError::Disconnected {
                        context: format!("accepting a peer connection: {e}"),
                    })
                }
            }
        }
        self.rx = Some(rx);
        self.heartbeat = Some(spawn_heartbeat(
            self.links.iter().map(|l| Arc::clone(&l.writer)).collect(),
            self.config.heartbeat_every,
            Arc::clone(&self.heartbeat_stop),
        ));
        Ok(())
    }

    /// Runs one cold auction slot across the swarm.
    pub fn run<P: AuctionProbe>(
        &mut self,
        instance: &WelfareInstance,
        probe: &mut P,
    ) -> Result<AuctionOutcome> {
        self.accept_peers()?;
        self.run_pass(instance, None, probe)
    }

    /// Runs one warm-started slot, repairing carried prices with the same
    /// CS 1 loop as the in-process engines (each repair pass re-`Init`s the
    /// swarm's bidders with the repaired prices).
    pub fn run_warm<P: AuctionProbe>(
        &mut self,
        instance: &WelfareInstance,
        prior_prices: &[f64],
        probe: &mut P,
    ) -> Result<AuctionOutcome> {
        self.accept_peers()?;
        let epsilon = self.config.epsilon;
        run_warm_with(instance, prior_prices, epsilon, |prices| {
            self.run_pass(instance, prices, probe)
        })
    }

    /// Sends `Shutdown` to every peer and stops the heartbeat thread.
    /// Idempotent; also invoked on drop.
    pub fn shutdown(&mut self) {
        if self.shut {
            return;
        }
        self.shut = true;
        for link in &self.links {
            if let Ok(mut w) = link.writer.lock() {
                let _ = w.send(&encode_net(&NetMsg::Shutdown));
            }
        }
        self.heartbeat_stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.heartbeat.take() {
            let _ = h.join();
        }
        // Reader threads exit when their peer closes the socket in
        // response to the shutdown (or already died).
        for link in &mut self.links {
            if let Some(r) = link.reader.take() {
                let _ = r.join();
            }
        }
    }

    /// One full sweep to quiescence — the networked image of
    /// `SyncAuction::run_from`, counter for counter.
    fn run_pass<P: AuctionProbe>(
        &mut self,
        instance: &WelfareInstance,
        initial_prices: Option<&[f64]>,
        probe: &mut P,
    ) -> Result<AuctionOutcome> {
        let views = edge_views(instance);
        let mut auctioneers: Vec<AuctioneerNode> = instance
            .providers()
            .iter()
            .enumerate()
            .map(|(u, p)| {
                let warm = initial_prices
                    .and_then(|ps| ps.get(u).copied())
                    .filter(|w| w.is_finite() && *w >= 0.0)
                    .unwrap_or(0.0);
                if p.capacity.is_zero() {
                    AuctioneerNode::new(u, 0)
                } else {
                    AuctioneerNode::with_price(u, p.capacity.chunks_per_slot(), warm)
                }
            })
            .collect();
        let mut eff_price: Vec<f64> = instance
            .providers()
            .iter()
            .enumerate()
            .map(|(u, p)| if p.capacity.is_zero() { f64::INFINITY } else { auctioneers[u].price() })
            .collect();

        // Hand out this pass's bidders: request r lives on peer r mod N.
        let n = instance.request_count();
        for (idx, link) in self.links.iter().enumerate() {
            let bidders: Vec<WireBidder> = (idx..n)
                .step_by(self.peer_count)
                .map(|r| WireBidder {
                    request: r,
                    edges: views[r]
                        .iter()
                        .map(|v| (v.provider, v.utility, eff_price[v.provider]))
                        .collect(),
                })
                .collect();
            send_to(link, &NetMsg::Init { epsilon: self.config.epsilon, bidders })?;
        }

        let mut assigned: Vec<Option<usize>> = vec![None; n];
        let retire = self.config.retire_priced_out;
        let mut retired: Vec<bool> = vec![false; if retire { n } else { 0 }];
        let mut rounds = 0u64;
        let mut bids_submitted = 0u64;

        loop {
            rounds += 1;
            if rounds > self.config.max_rounds {
                return Err(P2pError::AuctionDiverged { iterations: rounds - 1 });
            }
            let mut bids_this_round = 0u64;
            let mut conflicts_this_round = 0u64;
            let mut retired_this_round = 0u64;
            for r in 0..n {
                if assigned[r].is_some() {
                    continue;
                }
                if retire && retired[r] {
                    continue;
                }
                let owner = r % self.peer_count;
                let prices: Vec<f64> = views[r].iter().map(|v| eff_price[v.provider]).collect();
                send_to(&self.links[owner], &NetMsg::Poll { request: r, prices })?;
                match self.await_reply(owner, r)? {
                    BidDecision::Abstain { reason } => {
                        if retire
                            && matches!(
                                reason,
                                p2p_core::bidder::AbstainReason::Unprofitable
                                    | p2p_core::bidder::AbstainReason::NoCandidates
                            )
                        {
                            retired[r] = true;
                            retired_this_round += 1;
                        }
                    }
                    BidDecision::Bid { edge, provider, amount } => {
                        if views[r].get(edge).map(|v| v.provider) != Some(provider) {
                            return Err(P2pError::WireMalformed {
                                reason: format!(
                                    "request {r} bid on edge {edge} which does not point at \
                                     provider {provider}"
                                ),
                            });
                        }
                        bids_this_round += 1;
                        let reply = auctioneers[provider].on_bid(r, amount);
                        match reply.reply {
                            AuctionMsg::Accepted { .. } => {
                                assigned[r] = Some(edge);
                            }
                            _ => {
                                // Unreachable with exact polled prices: the
                                // bidder only bids strictly above λ. Mirror
                                // the sync engine (count the bid, continue)
                                // but still notify so the bidder re-idles.
                                debug_assert!(false, "networked bid rejected");
                            }
                        }
                        send_to(&self.links[owner], &NetMsg::Notice(reply.reply))?;
                        if let Some(ev) = reply.evicted {
                            if let AuctionMsg::Evicted { request: loser, .. } = ev {
                                assigned[loser] = None;
                                conflicts_this_round += 1;
                                send_to(&self.links[loser % self.peer_count], &NetMsg::Notice(ev))?;
                            }
                        }
                        if let Some(p) = reply.price_changed {
                            probe.price_change(provider, p - eff_price[provider]);
                            eff_price[provider] = p;
                        }
                    }
                }
            }
            bids_submitted += bids_this_round;
            probe.round(rounds, bids_this_round, conflicts_this_round, 0, retired_this_round);
            if bids_this_round == 0 {
                break;
            }
        }

        let lambda =
            final_prices_from(instance, auctioneers.iter().map(AuctioneerNode::price).collect());
        let outcome = AuctionOutcome {
            assignment: Assignment::new(assigned),
            duals: DualSolution::from_prices(instance, lambda),
            rounds,
            bids_submitted,
            converged: true,
            price_trace: Vec::new(),
        };
        if probe.enabled() {
            let slack =
                outcome.duals.objective(instance) - outcome.assignment.welfare(instance).get();
            probe.run_complete(
                outcome.rounds,
                outcome.bids_submitted,
                outcome.assignment.assigned_count() as u64,
                slack,
            );
        }
        Ok(outcome)
    }

    /// Waits for `peer`'s decision about `request`, with the per-reply
    /// deadline. A reader-thread error (peer died) or a deadline expiry
    /// (peer silent) surfaces as the corresponding typed error.
    fn await_reply(&self, peer: usize, request: usize) -> Result<BidDecision> {
        let rx = self.rx.as_ref().expect("accept_peers ran before the sweep");
        match rx.recv_timeout(self.config.io_timeout) {
            Ok((idx, Ok(NetMsg::Reply { request: got, decision })))
                if idx == peer && got == request =>
            {
                Ok(decision)
            }
            Ok((idx, Ok(other))) => Err(P2pError::WireMalformed {
                reason: format!(
                    "peer {idx} sent {other:?} while peer {peer} owed a reply for \
                     request {request}"
                ),
            }),
            Ok((_, Err(e))) => Err(e),
            Err(RecvTimeoutError::Timeout) => {
                Err(P2pError::Timeout { elapsed: self.config.io_timeout, messages: 0 })
            }
            Err(RecvTimeoutError::Disconnected) => {
                Err(P2pError::Disconnected { context: "every connection reader exited".into() })
            }
        }
    }
}

impl Drop for Tracker {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Tracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracker")
            .field("local_addr", &self.local_addr)
            .field("peer_count", &self.peer_count)
            .field("connected", &self.links.len())
            .finish()
    }
}

fn send_to(link: &PeerLink, msg: &NetMsg) -> Result<()> {
    let mut w = link
        .writer
        .lock()
        .map_err(|_| P2pError::WorkerPanicked { message: "a writer lock was poisoned".into() })?;
    w.send(&encode_net(msg))
}

fn spawn_reader(
    index: usize,
    mut conn: FrameConn,
    tx: Sender<(usize, Result<NetMsg>)>,
) -> JoinHandle<()> {
    thread::spawn(move || loop {
        let msg = conn.recv().and_then(|bytes| crate::proto::decode_net(&bytes));
        let failed = msg.is_err();
        if tx.send((index, msg)).is_err() || failed {
            return;
        }
    })
}

fn spawn_heartbeat(
    writers: Vec<Arc<Mutex<FrameConn>>>,
    every: Duration,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    let beat = encode_net(&NetMsg::Heartbeat);
    thread::spawn(move || {
        let tick = Duration::from_millis(20).min(every);
        let mut since_beat = Duration::ZERO;
        while !stop.load(Ordering::Relaxed) {
            thread::sleep(tick);
            since_beat += tick;
            if since_beat >= every {
                since_beat = Duration::ZERO;
                for w in &writers {
                    if let Ok(mut conn) = w.lock() {
                        // Send errors are the sweep's to report; the
                        // heartbeat just stops bothering a dead socket.
                        let _ = conn.send(&beat);
                    }
                }
            }
        }
    })
}
