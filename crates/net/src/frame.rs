//! Length-prefixed framing over a TCP stream with typed error mapping.
//!
//! A [`FrameConn`] sends and receives the `u32`-LE length-prefixed frames
//! defined by [`p2p_core::codec`]. Every I/O failure is mapped to a typed
//! [`P2pError`]: a read deadline expiring becomes [`P2pError::Timeout`]
//! (silent peer, socket still open) and EOF/reset becomes
//! [`P2pError::Disconnected`] (peer gone) — the two failure classes the
//! tracker and peers distinguish for retry decisions.

use p2p_core::codec::{frame, frame_len};
use p2p_types::{P2pError, Result};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A framed, timeout-aware connection over one TCP stream.
///
/// `TCP_NODELAY` is always set: the protocol is request/reply with small
/// frames, where Nagle's algorithm would add a delayed-ACK round trip to
/// every message.
#[derive(Debug)]
pub struct FrameConn {
    stream: TcpStream,
    opened: Instant,
    messages: u64,
}

impl FrameConn {
    /// Wraps a connected stream, setting `TCP_NODELAY` and the read
    /// deadline every [`recv`](FrameConn::recv) enforces (`None` blocks
    /// forever — the tracker's reader threads use this and leave liveness
    /// to the coordinator's reply deadline).
    pub fn new(stream: TcpStream, io_timeout: Option<Duration>) -> Result<Self> {
        stream.set_nodelay(true).map_err(|e| disconnected("setting TCP_NODELAY", &e))?;
        let conn = FrameConn { stream, opened: Instant::now(), messages: 0 };
        conn.set_read_timeout(io_timeout)?;
        Ok(conn)
    }

    /// Changes the read deadline (`None` blocks forever).
    pub fn set_read_timeout(&self, io_timeout: Option<Duration>) -> Result<()> {
        self.stream
            .set_read_timeout(io_timeout)
            .map_err(|e| disconnected("setting the read deadline", &e))
    }

    /// A second handle on the same socket (shared send/receive state lives
    /// in the kernel; the message counter restarts at zero). The tracker
    /// uses this to give each connection's reader thread its own handle
    /// while writers stay on the original.
    pub fn try_clone(&self) -> Result<FrameConn> {
        let stream =
            self.stream.try_clone().map_err(|e| disconnected("cloning the socket handle", &e))?;
        Ok(FrameConn { stream, opened: self.opened, messages: 0 })
    }

    /// Frames and sends one payload, flushing it onto the wire.
    pub fn send(&mut self, payload: &[u8]) -> Result<()> {
        let framed = frame(payload)?;
        self.stream.write_all(&framed).map_err(|e| self.map_io("sending a frame", &e))?;
        self.stream.flush().map_err(|e| self.map_io("flushing a frame", &e))?;
        self.messages += 1;
        Ok(())
    }

    /// Receives one frame's payload, enforcing the read deadline and the
    /// [`MAX_FRAME_LEN`](p2p_core::codec::MAX_FRAME_LEN) cap before
    /// allocating.
    pub fn recv(&mut self) -> Result<Vec<u8>> {
        let mut header = [0u8; 4];
        self.stream.read_exact(&mut header).map_err(|e| self.map_io("awaiting a frame", &e))?;
        let len = frame_len(header)?;
        let mut payload = vec![0u8; len];
        self.stream
            .read_exact(&mut payload)
            .map_err(|e| self.map_io("reading a frame body", &e))?;
        self.messages += 1;
        Ok(payload)
    }

    /// Messages sent plus received on this handle.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// The peer's socket address, if the socket can still report it.
    pub fn peer_addr(&self) -> Option<std::net::SocketAddr> {
        self.stream.peer_addr().ok()
    }

    fn map_io(&self, context: &str, e: &std::io::Error) -> P2pError {
        match e.kind() {
            // A silent peer whose socket is still open: the deadline from
            // `set_read_timeout` fired (reported as either kind depending
            // on the platform).
            ErrorKind::WouldBlock | ErrorKind::TimedOut => {
                P2pError::Timeout { elapsed: self.opened.elapsed(), messages: self.messages }
            }
            _ => disconnected(context, e),
        }
    }
}

fn disconnected(context: &str, e: &std::io::Error) -> P2pError {
    P2pError::Disconnected { context: format!("{context}: {e}") }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    fn pair(io_timeout: Duration) -> (FrameConn, FrameConn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let join = thread::spawn(move || TcpStream::connect(addr).unwrap());
        let (accepted, _) = listener.accept().unwrap();
        let client = join.join().unwrap();
        (
            FrameConn::new(accepted, Some(io_timeout)).unwrap(),
            FrameConn::new(client, Some(io_timeout)).unwrap(),
        )
    }

    #[test]
    fn frames_roundtrip_over_loopback() {
        let (mut a, mut b) = pair(Duration::from_secs(5));
        a.send(&[1, 2, 3]).unwrap();
        a.send(&[9]).unwrap();
        assert_eq!(b.recv().unwrap(), vec![1, 2, 3]);
        assert_eq!(b.recv().unwrap(), vec![9]);
        assert_eq!(a.messages(), 2);
        assert_eq!(b.messages(), 2);
    }

    #[test]
    fn silent_peer_surfaces_as_typed_timeout() {
        let (_a, mut b) = pair(Duration::from_millis(50));
        match b.recv() {
            Err(P2pError::Timeout { elapsed, .. }) => {
                assert!(elapsed >= Duration::from_millis(50))
            }
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn closed_peer_surfaces_as_typed_disconnect() {
        let (a, mut b) = pair(Duration::from_secs(5));
        drop(a);
        assert!(matches!(b.recv(), Err(P2pError::Disconnected { .. })));
    }

    #[test]
    fn corrupt_length_prefix_is_rejected_before_allocation() {
        let (mut raw, mut b) = pair(Duration::from_secs(5));
        // Bypass `send` to write a hostile header claiming a 4 GiB body.
        raw.stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
        raw.stream.flush().unwrap();
        assert!(matches!(b.recv(), Err(P2pError::WireMalformed { .. })));
    }
}
