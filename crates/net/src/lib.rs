//! Networked auction runtime: a tracker and peer processes exchanging the
//! paper's bid/price protocol over a length-prefixed TCP wire format.
//!
//! This crate is transport only. The auction logic is exactly the
//! transport-agnostic [`BidderNode`](p2p_core::BidderNode) /
//! [`AuctioneerNode`](p2p_core::AuctioneerNode) state machines every other
//! runtime drives; the tracker replays the synchronous Gauss–Seidel sweep
//! over the wire (exact current prices in every poll, index-order
//! scheduling, FIFO notices), which makes the networked outcome —
//! assignment, duals, rounds, bids, and the Theorem 1 `n·ε` certificate —
//! bit-identical to [`p2p_core::SyncAuction`] and therefore to the sharded,
//! flat and ideal-swarm engines it is already equivalent to. By default
//! the sweep ships as *batched* polls — one [`NetMsg::PollBatch`] per peer
//! per round instead of a frame per request — with tracker-side snapshot
//! revalidation keeping the batched sweep bit-identical to the per-request
//! one (see [`tracker`]); set [`NetConfig::batch_polls`] `false` for the
//! wire-version-1-shaped per-request protocol.
//!
//! Layers:
//!
//! * [`frame`] — length-prefixed frames over TCP with typed timeout /
//!   disconnect errors;
//! * [`proto`] — the tracker ↔ peer control protocol and the instance /
//!   outcome file codecs, built on [`p2p_core::codec`];
//! * [`tracker`] — swarm membership, heartbeats, and the coordinator
//!   sweep;
//! * [`peer`] — actor-per-connection bidder servant with connect
//!   retry/backoff;
//! * [`harness`] — spawns the `tracker` and `peer` binaries as real OS
//!   processes on 127.0.0.1 and returns the decoded outcome.
//!
//! # Examples
//!
//! In-process threads over real loopback sockets (the `auction_net`
//! scheduler backend uses exactly this entry point):
//!
//! ```
//! use p2p_core::{NoProbe, WelfareInstance};
//! use p2p_net::{run_slot_local, NetConfig};
//! use p2p_types::*;
//!
//! let mut b = WelfareInstance::builder();
//! let u = b.add_provider(PeerId::new(1), 1);
//! let r = b.add_request(RequestId::new(PeerId::new(0), ChunkId::new(VideoId::new(0), 0)));
//! b.add_edge(r, u, Valuation::new(4.0), Cost::new(1.0)).unwrap();
//! let instance = b.build().unwrap();
//!
//! let outcome = run_slot_local(&instance, 2, &NetConfig::default(), None, &mut NoProbe).unwrap();
//! assert_eq!(outcome.assignment.assigned_count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod harness;
pub mod peer;
pub mod proto;
pub mod tracker;

pub use frame::FrameConn;
pub use harness::{bin_path, run_multiprocess, MultiProcessConfig};
pub use peer::{Peer, PeerConfig};
pub use proto::{decode_net, encode_net, NetMsg, WireBidder};
pub use tracker::{NetConfig, NetRunStats, Tracker};

use p2p_core::{AuctionOutcome, AuctionProbe, WelfareInstance};
use p2p_types::{P2pError, Result};

/// Runs one auction slot over real loopback TCP with the tracker on the
/// calling thread and `peer_count` peer actors on their own threads — the
/// full wire stack without OS-process management. Used by the
/// `auction_net` scheduler backend and the wire benchmarks; the
/// multi-process equivalent is [`run_multiprocess`].
pub fn run_slot_local<P: AuctionProbe>(
    instance: &WelfareInstance,
    peer_count: usize,
    config: &NetConfig,
    warm_prices: Option<&[f64]>,
    probe: &mut P,
) -> Result<AuctionOutcome> {
    run_slot_local_stats(instance, peer_count, config, warm_prices, probe).map(|(o, _)| o)
}

/// [`run_slot_local`] plus the tracker's wire-frame counters for the slot
/// — the measurement entry point `net_bench` uses to report frames per
/// slot for the batched and per-request protocols.
pub fn run_slot_local_stats<P: AuctionProbe>(
    instance: &WelfareInstance,
    peer_count: usize,
    config: &NetConfig,
    warm_prices: Option<&[f64]>,
    probe: &mut P,
) -> Result<(AuctionOutcome, NetRunStats)> {
    let mut tracker = Tracker::bind("127.0.0.1:0", peer_count, config.clone())?;
    let addr = tracker.local_addr().to_string();
    let peer_config = PeerConfig { io_timeout: config.io_timeout, ..PeerConfig::default() };
    let handles: Vec<_> = (0..peer_count)
        .map(|i| {
            let addr = addr.clone();
            let cfg = peer_config.clone();
            std::thread::spawn(move || Peer::connect(&addr, i as u64, cfg)?.run())
        })
        .collect();
    let result = match warm_prices {
        Some(prices) => tracker.run_warm(instance, prices, probe),
        None => tracker.run(instance, probe),
    };
    let stats = tracker.frame_stats();
    tracker.shutdown();
    let mut peers_ok: Result<()> = Ok(());
    for h in handles {
        match h.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => peers_ok = Err(e),
            Err(payload) => {
                peers_ok =
                    Err(P2pError::WorkerPanicked { message: panic_message(payload.as_ref()) })
            }
        }
    }
    match (result, peers_ok) {
        (Err(e), _) => Err(e),
        (Ok(_), Err(e)) => Err(e),
        (Ok(outcome), Ok(())) => Ok((outcome, stats)),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}
