//! The tracker ↔ peer control protocol, plus file codecs for instances and
//! outcomes so OS processes can exchange them.
//!
//! Control messages reuse the [`p2p_core::codec`] primitives and version
//! byte; their tags live at 16+ so they can never be confused with the
//! embedded [`AuctionMsg`] payloads (tags 1–5) a [`NetMsg::Notice`]
//! carries. Decoding follows the same strict rules: typed errors, no
//! panics, no trailing bytes.

use p2p_core::bidder::AbstainReason;
use p2p_core::codec::{decode_msg, encode_msg, WireReader, WireWriter, WIRE_VERSION};
use p2p_core::messages::AuctionMsg;
use p2p_core::{Assignment, AuctionOutcome, BidDecision, DualSolution, WelfareInstance};
use p2p_types::{ChunkId, Cost, P2pError, PeerId, RequestId, Result, Valuation, VideoId};

const TAG_HELLO: u8 = 16;
const TAG_WELCOME: u8 = 17;
const TAG_INIT: u8 = 18;
const TAG_POLL: u8 = 19;
const TAG_REPLY: u8 = 20;
const TAG_NOTICE: u8 = 21;
const TAG_HEARTBEAT: u8 = 22;
const TAG_SHUTDOWN: u8 = 23;
const TAG_POLL_BATCH: u8 = 24;
const TAG_REPLY_BATCH: u8 = 25;

const TAG_INSTANCE: u8 = 100;
const TAG_OUTCOME: u8 = 101;

/// One bidder's worth of swarm membership handed out by the tracker: the
/// request index plus its candidate edges with initial price knowledge
/// (`+∞` marks zero-capacity providers, pinning them exactly as the
/// in-process engines do).
#[derive(Debug, Clone, PartialEq)]
pub struct WireBidder {
    /// The request this bidder bids for.
    pub request: usize,
    /// Candidate edges: `(provider, net utility, initial price)`.
    pub edges: Vec<(usize, f64, f64)>,
}

/// A tracker ↔ peer control message.
#[derive(Debug, Clone, PartialEq)]
pub enum NetMsg {
    /// Peer → tracker greeting opening the handshake.
    Hello {
        /// Caller-chosen identity for logs (the peer's PID in the binary).
        peer_id: u64,
    },
    /// Tracker → peer handshake reply assigning swarm membership.
    Welcome {
        /// This peer's index in the swarm.
        peer_index: u64,
        /// Total number of peers in the swarm.
        peer_count: u64,
    },
    /// Tracker → peer: (re)build these bidders for the coming pass.
    /// Warm-start repair reruns send a fresh `Init` per pass.
    Init {
        /// The bid increment ε every bidder uses.
        epsilon: f64,
        /// The bidders this peer owns.
        bidders: Vec<WireBidder>,
    },
    /// Tracker → peer: let `request` reconsider against exact current
    /// prices (one per candidate edge, in edge order).
    Poll {
        /// The request to poll.
        request: usize,
        /// Exact current prices aligned with the bidder's edge order.
        prices: Vec<f64>,
    },
    /// Peer → tracker: the polled bidder's decision.
    Reply {
        /// The request that was polled.
        request: usize,
        /// Its bid or abstention.
        decision: BidDecision,
    },
    /// Tracker → peer: an auction protocol message for one of the peer's
    /// bidders to absorb (accept, eviction, rejection, price update).
    Notice(AuctionMsg),
    /// Tracker → peer keep-alive so an idle peer's read deadline never
    /// fires while the sweep works elsewhere.
    Heartbeat,
    /// Tracker → peer: the auction is over, exit cleanly.
    Shutdown,
    /// Tracker → peer: one frame for a whole sweep round — the notices
    /// owed from the previous round (absorbed in order, *before* any
    /// decision), then every request this peer must decide, each with its
    /// own price snapshot in edge order. The snapshots are speculative:
    /// the tracker revalidates each one against live prices at that
    /// request's sweep position and locally repairs stale entries, so the
    /// Gauss–Seidel order is preserved bid for bid (wire version 2).
    PollBatch {
        /// Protocol notices to absorb before deciding, in delivery order.
        notices: Vec<AuctionMsg>,
        /// `(request, snapshot prices)` per polled request, in sweep order.
        polls: Vec<(usize, Vec<f64>)>,
    },
    /// Peer → tracker: decisions for every entry of a [`NetMsg::PollBatch`],
    /// in the same order the batch polled them.
    ReplyBatch {
        /// `(request, decision)` per polled request.
        replies: Vec<(usize, BidDecision)>,
    },
}

fn reason_to_wire(reason: AbstainReason) -> u8 {
    match reason {
        AbstainReason::NoCandidates => 0,
        AbstainReason::Unprofitable => 1,
        AbstainReason::ZeroMargin => 2,
    }
}

fn reason_from_wire(raw: u8) -> Result<AbstainReason> {
    match raw {
        0 => Ok(AbstainReason::NoCandidates),
        1 => Ok(AbstainReason::Unprofitable),
        2 => Ok(AbstainReason::ZeroMargin),
        other => Err(P2pError::WireMalformed { reason: format!("unknown abstain reason {other}") }),
    }
}

/// Encodes one control message as a versioned payload (no length prefix).
pub fn encode_net(msg: &NetMsg) -> Vec<u8> {
    let mut w = WireWriter::with_capacity(16);
    w.put_u8(WIRE_VERSION);
    match msg {
        NetMsg::Hello { peer_id } => {
            w.put_u8(TAG_HELLO);
            w.put_u64(*peer_id);
        }
        NetMsg::Welcome { peer_index, peer_count } => {
            w.put_u8(TAG_WELCOME);
            w.put_u64(*peer_index);
            w.put_u64(*peer_count);
        }
        NetMsg::Init { epsilon, bidders } => {
            w.put_u8(TAG_INIT);
            w.put_f64(*epsilon);
            w.put_u64(bidders.len() as u64);
            for b in bidders {
                w.put_index(b.request);
                w.put_u64(b.edges.len() as u64);
                for (provider, utility, price) in &b.edges {
                    w.put_index(*provider);
                    w.put_f64(*utility);
                    w.put_f64(*price);
                }
            }
        }
        NetMsg::Poll { request, prices } => {
            w.put_u8(TAG_POLL);
            w.put_index(*request);
            w.put_u64(prices.len() as u64);
            for p in prices {
                w.put_f64(*p);
            }
        }
        NetMsg::Reply { request, decision } => {
            w.put_u8(TAG_REPLY);
            w.put_index(*request);
            put_decision(&mut w, decision);
        }
        NetMsg::Notice(inner) => {
            w.put_u8(TAG_NOTICE);
            w.put_bytes(&encode_msg(inner));
        }
        NetMsg::Heartbeat => w.put_u8(TAG_HEARTBEAT),
        NetMsg::Shutdown => w.put_u8(TAG_SHUTDOWN),
        NetMsg::PollBatch { notices, polls } => {
            w.put_u8(TAG_POLL_BATCH);
            w.put_u64(notices.len() as u64);
            for n in notices {
                let inner = encode_msg(n);
                w.put_u64(inner.len() as u64);
                w.put_bytes(&inner);
            }
            w.put_u64(polls.len() as u64);
            for (request, prices) in polls {
                w.put_index(*request);
                w.put_u64(prices.len() as u64);
                for p in prices {
                    w.put_f64(*p);
                }
            }
        }
        NetMsg::ReplyBatch { replies } => {
            w.put_u8(TAG_REPLY_BATCH);
            w.put_u64(replies.len() as u64);
            for (request, decision) in replies {
                w.put_index(*request);
                put_decision(&mut w, decision);
            }
        }
    }
    w.into_vec()
}

fn put_decision(w: &mut WireWriter, decision: &BidDecision) {
    match decision {
        BidDecision::Abstain { reason } => {
            w.put_u8(0);
            w.put_u8(reason_to_wire(*reason));
        }
        BidDecision::Bid { edge, provider, amount } => {
            w.put_u8(1);
            w.put_index(*edge);
            w.put_index(*provider);
            w.put_f64(*amount);
        }
    }
}

fn take_decision(r: &mut WireReader<'_>) -> Result<BidDecision> {
    match r.u8()? {
        0 => Ok(BidDecision::Abstain { reason: reason_from_wire(r.u8()?)? }),
        1 => Ok(BidDecision::Bid { edge: r.index()?, provider: r.index()?, amount: r.f64()? }),
        other => Err(P2pError::WireMalformed { reason: format!("unknown decision kind {other}") }),
    }
}

/// Decodes one control message from a versioned payload (strict: exactly
/// one message, no trailing bytes).
pub fn decode_net(bytes: &[u8]) -> Result<NetMsg> {
    let mut r = WireReader::new(bytes);
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(P2pError::WireVersion { found: version, supported: WIRE_VERSION });
    }
    let tag = r.u8()?;
    let msg = match tag {
        TAG_HELLO => NetMsg::Hello { peer_id: r.u64()? },
        TAG_WELCOME => NetMsg::Welcome { peer_index: r.u64()?, peer_count: r.u64()? },
        TAG_INIT => {
            let epsilon = r.f64()?;
            let count = r.index()?;
            let mut bidders = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                let request = r.index()?;
                let edge_count = r.index()?;
                let mut edges = Vec::with_capacity(edge_count.min(1 << 16));
                for _ in 0..edge_count {
                    edges.push((r.index()?, r.f64()?, r.f64()?));
                }
                bidders.push(WireBidder { request, edges });
            }
            NetMsg::Init { epsilon, bidders }
        }
        TAG_POLL => {
            let request = r.index()?;
            let count = r.index()?;
            let mut prices = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                prices.push(r.f64()?);
            }
            NetMsg::Poll { request, prices }
        }
        TAG_REPLY => {
            let request = r.index()?;
            let decision = take_decision(&mut r)?;
            NetMsg::Reply { request, decision }
        }
        TAG_NOTICE => {
            let rest = r.take(r.remaining())?;
            return Ok(NetMsg::Notice(decode_msg(rest)?));
        }
        TAG_HEARTBEAT => NetMsg::Heartbeat,
        TAG_SHUTDOWN => NetMsg::Shutdown,
        TAG_POLL_BATCH => {
            let notice_count = r.index()?;
            let mut notices = Vec::with_capacity(notice_count.min(1 << 16));
            for _ in 0..notice_count {
                let len = r.index()?;
                notices.push(decode_msg(r.take(len)?)?);
            }
            let poll_count = r.index()?;
            let mut polls = Vec::with_capacity(poll_count.min(1 << 16));
            for _ in 0..poll_count {
                let request = r.index()?;
                let price_count = r.index()?;
                let mut prices = Vec::with_capacity(price_count.min(1 << 16));
                for _ in 0..price_count {
                    prices.push(r.f64()?);
                }
                polls.push((request, prices));
            }
            NetMsg::PollBatch { notices, polls }
        }
        TAG_REPLY_BATCH => {
            let count = r.index()?;
            let mut replies = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                let request = r.index()?;
                replies.push((request, take_decision(&mut r)?));
            }
            NetMsg::ReplyBatch { replies }
        }
        other => {
            return Err(P2pError::WireMalformed { reason: format!("unknown control tag {other}") })
        }
    };
    r.finish()?;
    Ok(msg)
}

/// Serializes a [`WelfareInstance`] for handing to a tracker process.
/// Valuations and costs travel as exact `f64` bit images, so the decoded
/// instance is indistinguishable from the original.
pub fn encode_instance(instance: &WelfareInstance) -> Vec<u8> {
    let mut w = WireWriter::with_capacity(64);
    w.put_u8(WIRE_VERSION);
    w.put_u8(TAG_INSTANCE);
    w.put_u64(instance.provider_count() as u64);
    for p in instance.providers() {
        w.put_u32(p.peer.get());
        w.put_u32(p.capacity.chunks_per_slot());
    }
    w.put_u64(instance.request_count() as u64);
    for req in instance.requests() {
        w.put_u32(req.id.downstream().get());
        w.put_u32(req.id.chunk().video().get());
        w.put_u32(req.id.chunk().index_in_video());
        w.put_u64(req.edges.len() as u64);
        for e in &req.edges {
            w.put_index(e.provider);
            w.put_f64(e.valuation.get());
            w.put_f64(e.cost.get());
        }
    }
    w.into_vec()
}

/// Deserializes a [`WelfareInstance`] written by [`encode_instance`].
pub fn decode_instance(bytes: &[u8]) -> Result<WelfareInstance> {
    let mut r = WireReader::new(bytes);
    expect_header(&mut r, TAG_INSTANCE)?;
    let mut b = WelfareInstance::builder();
    let providers = r.index()?;
    for _ in 0..providers {
        let peer = PeerId::new(r.u32()?);
        let capacity = r.u32()?;
        b.add_provider(peer, capacity);
    }
    let requests = r.index()?;
    for _ in 0..requests {
        let downstream = PeerId::new(r.u32()?);
        let chunk = ChunkId::new(VideoId::new(r.u32()?), r.u32()?);
        let req = b.add_request(RequestId::new(downstream, chunk));
        let edges = r.index()?;
        for _ in 0..edges {
            let provider = r.index()?;
            let valuation = Valuation::new(r.f64()?);
            let cost = Cost::new(r.f64()?);
            b.add_edge(req, provider, valuation, cost)?;
        }
    }
    r.finish()?;
    b.build()
}

/// Serializes an [`AuctionOutcome`] for handing back from a tracker
/// process. The duals travel as their λ vector; [`decode_outcome`]
/// reconstructs the full [`DualSolution`] against the instance.
pub fn encode_outcome(outcome: &AuctionOutcome) -> Vec<u8> {
    let mut w = WireWriter::with_capacity(64);
    w.put_u8(WIRE_VERSION);
    w.put_u8(TAG_OUTCOME);
    let choices = outcome.assignment.choices();
    w.put_u64(choices.len() as u64);
    for c in choices {
        match c {
            Some(edge) => {
                w.put_u8(1);
                w.put_index(*edge);
            }
            None => w.put_u8(0),
        }
    }
    w.put_u64(outcome.duals.lambda.len() as u64);
    for l in &outcome.duals.lambda {
        w.put_f64(*l);
    }
    w.put_u64(outcome.rounds);
    w.put_u64(outcome.bids_submitted);
    w.put_u8(outcome.converged as u8);
    w.into_vec()
}

/// Deserializes an [`AuctionOutcome`] written by [`encode_outcome`].
pub fn decode_outcome(bytes: &[u8], instance: &WelfareInstance) -> Result<AuctionOutcome> {
    let mut r = WireReader::new(bytes);
    expect_header(&mut r, TAG_OUTCOME)?;
    let count = r.index()?;
    let mut choices = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        choices.push(match r.u8()? {
            0 => None,
            1 => Some(r.index()?),
            other => {
                return Err(P2pError::WireMalformed {
                    reason: format!("unknown choice marker {other}"),
                })
            }
        });
    }
    let lambdas = r.index()?;
    let mut lambda = Vec::with_capacity(lambdas.min(1 << 20));
    for _ in 0..lambdas {
        lambda.push(r.f64()?);
    }
    let rounds = r.u64()?;
    let bids_submitted = r.u64()?;
    let converged = r.u8()? != 0;
    r.finish()?;
    Ok(AuctionOutcome {
        assignment: Assignment::new(choices),
        duals: DualSolution::from_prices(instance, lambda),
        rounds,
        bids_submitted,
        converged,
        price_trace: Vec::new(),
    })
}

fn expect_header(r: &mut WireReader<'_>, tag: u8) -> Result<()> {
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(P2pError::WireVersion { found: version, supported: WIRE_VERSION });
    }
    let found = r.u8()?;
    if found != tag {
        return Err(P2pError::WireMalformed {
            reason: format!("expected payload tag {tag}, found {found}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net_samples() -> Vec<NetMsg> {
        vec![
            NetMsg::Hello { peer_id: 42 },
            NetMsg::Welcome { peer_index: 1, peer_count: 3 },
            NetMsg::Init {
                epsilon: 0.01,
                bidders: vec![
                    WireBidder { request: 0, edges: vec![(0, 4.0, 0.0), (2, 1.5, f64::INFINITY)] },
                    WireBidder { request: 3, edges: vec![] },
                ],
            },
            NetMsg::Poll { request: 7, prices: vec![0.0, 2.5, f64::INFINITY] },
            NetMsg::Reply {
                request: 7,
                decision: BidDecision::Bid { edge: 1, provider: 2, amount: 3.25 },
            },
            NetMsg::Reply {
                request: 9,
                decision: BidDecision::Abstain { reason: AbstainReason::Unprofitable },
            },
            NetMsg::Notice(AuctionMsg::Evicted { request: 4, provider: 1, price: 6.5 }),
            NetMsg::Heartbeat,
            NetMsg::Shutdown,
            NetMsg::PollBatch {
                notices: vec![
                    AuctionMsg::Accepted { request: 2, provider: 0 },
                    AuctionMsg::Evicted { request: 5, provider: 0, price: 1.75 },
                ],
                polls: vec![(0, vec![0.5, f64::INFINITY]), (5, vec![]), (6, vec![1.0 / 3.0])],
            },
            NetMsg::PollBatch { notices: vec![], polls: vec![] },
            NetMsg::ReplyBatch {
                replies: vec![
                    (0, BidDecision::Bid { edge: 0, provider: 1, amount: 0.625 }),
                    (5, BidDecision::Abstain { reason: AbstainReason::NoCandidates }),
                ],
            },
        ]
    }

    #[test]
    fn control_messages_roundtrip() {
        for msg in net_samples() {
            let bytes = encode_net(&msg);
            assert_eq!(decode_net(&bytes).unwrap(), msg);
            for cut in 2..bytes.len() {
                assert!(decode_net(&bytes[..cut]).is_err(), "prefix {cut} of {msg:?} decoded");
            }
        }
    }

    #[test]
    fn unknown_control_tag_is_malformed() {
        let mut bytes = encode_net(&NetMsg::Heartbeat);
        bytes[1] = 250;
        assert!(matches!(decode_net(&bytes), Err(P2pError::WireMalformed { .. })));
    }

    fn sample_instance() -> WelfareInstance {
        let mut b = WelfareInstance::builder();
        let u0 = b.add_provider(PeerId::new(10), 2);
        let u1 = b.add_provider(PeerId::new(11), 0);
        let chunk = ChunkId::new(VideoId::new(3), 7);
        let r0 = b.add_request(RequestId::new(PeerId::new(0), chunk));
        let r1 = b.add_request(RequestId::new(PeerId::new(1), chunk));
        b.add_edge(r0, u0, Valuation::new(5.0), Cost::new(1.25)).unwrap();
        b.add_edge(r0, u1, Valuation::new(5.0), Cost::new(0.5)).unwrap();
        b.add_edge(r1, u0, Valuation::new(0.1 + 0.2), Cost::new(0.0)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn instances_roundtrip_exactly() {
        let instance = sample_instance();
        let decoded = decode_instance(&encode_instance(&instance)).unwrap();
        assert_eq!(decoded.provider_count(), instance.provider_count());
        assert_eq!(decoded.request_count(), instance.request_count());
        assert_eq!(decoded.edge_count(), instance.edge_count());
        // Bit-exact weights: re-encoding reproduces the byte stream.
        assert_eq!(encode_instance(&decoded), encode_instance(&instance));
    }

    #[test]
    fn outcomes_roundtrip_exactly() {
        use p2p_core::{AuctionConfig, SyncAuction};
        let instance = sample_instance();
        let outcome = SyncAuction::new(AuctionConfig::paper()).run(&instance).unwrap();
        let decoded = decode_outcome(&encode_outcome(&outcome), &instance).unwrap();
        assert_eq!(decoded.assignment, outcome.assignment);
        assert_eq!(decoded.duals, outcome.duals);
        assert_eq!(decoded.rounds, outcome.rounds);
        assert_eq!(decoded.bids_submitted, outcome.bids_submitted);
        assert_eq!(decoded.converged, outcome.converged);
    }

    #[test]
    fn truncated_instance_is_typed_not_a_panic() {
        let bytes = encode_instance(&sample_instance());
        for cut in 0..bytes.len() {
            assert!(decode_instance(&bytes[..cut]).is_err());
        }
    }
}
