//! The peer: connects to the tracker with retry/backoff and serves its
//! partition of [`BidderNode`]s until told to shut down.
//!
//! The peer is a pure message servant — it holds no auction schedule of
//! its own. Every `Poll` carries exact current prices for the polled
//! bidder's candidate edges; the peer refreshes the bidder's knowledge
//! ([`BidderNode::refresh_prices`], which leaves `+∞` zero-capacity pins
//! alone), asks it to [`decide`](BidderNode::decide), and replies.
//! `Notice`s (accepts, evictions) are absorbed silently, exactly like the
//! synchronous transport's silent-absorb/poll-once-per-sweep split.
//!
//! A `PollBatch` is the same thing amortized: absorb the batch's notices
//! in order, then serve each `(request, prices)` entry exactly as an
//! individual poll would have (same shared [`decide_one`] path, same
//! fault-injection poll budget), and ship every decision back in one
//! `ReplyBatch` frame.

use crate::frame::FrameConn;
use crate::proto::{decode_net, encode_net, NetMsg};
use p2p_core::messages::AuctionMsg;
use p2p_core::protocol::{BidderNode, LearnPolicy};
use p2p_core::{BidDecision, EdgeView};
use p2p_types::{P2pError, Result};
use std::collections::HashMap;
use std::net::TcpStream;
use std::time::Duration;

/// Peer-side configuration.
#[derive(Debug, Clone)]
pub struct PeerConfig {
    /// Read deadline while waiting for tracker traffic; heartbeats arrive
    /// well inside it, so an expiry means the tracker is gone or wedged.
    pub io_timeout: Duration,
    /// Connection attempts before giving up with
    /// [`P2pError::ConnectFailed`].
    pub connect_attempts: u32,
    /// Initial retry backoff; doubles per attempt, capped at one second.
    pub connect_backoff: Duration,
    /// Fault injection: drop the connection (error out of
    /// [`Peer::run`]) after serving this many polls. Used by the failure
    /// tests to crash a peer mid-round.
    pub fail_after_polls: Option<u64>,
}

impl Default for PeerConfig {
    fn default() -> Self {
        PeerConfig {
            io_timeout: Duration::from_secs(5),
            connect_attempts: 10,
            connect_backoff: Duration::from_millis(50),
            fail_after_polls: None,
        }
    }
}

/// A connected peer serving one partition of the swarm's bidders.
#[derive(Debug)]
pub struct Peer {
    conn: FrameConn,
    index: u64,
    count: u64,
    config: PeerConfig,
}

impl Peer {
    /// Dials the tracker, retrying with exponential backoff, then
    /// completes the `Hello`/`Welcome` handshake.
    pub fn connect(addr: &str, peer_id: u64, config: PeerConfig) -> Result<Self> {
        let attempts = config.connect_attempts.max(1);
        let mut backoff = config.connect_backoff;
        let mut last_error = String::from("no attempt made");
        for attempt in 1..=attempts {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    let mut conn = FrameConn::new(stream, Some(config.io_timeout))?;
                    conn.send(&encode_net(&NetMsg::Hello { peer_id }))?;
                    return match decode_net(&conn.recv()?)? {
                        NetMsg::Welcome { peer_index, peer_count } => {
                            Ok(Peer { conn, index: peer_index, count: peer_count, config })
                        }
                        other => Err(P2pError::WireMalformed {
                            reason: format!("expected a welcome, got {other:?}"),
                        }),
                    };
                }
                Err(e) => {
                    last_error = e.to_string();
                    if attempt < attempts {
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(Duration::from_secs(1));
                    }
                }
            }
        }
        Err(P2pError::ConnectFailed { addr: addr.to_string(), attempts, last_error })
    }

    /// This peer's tracker-assigned index.
    pub fn index(&self) -> u64 {
        self.index
    }

    /// Total peers in the swarm.
    pub fn peer_count(&self) -> u64 {
        self.count
    }

    /// Serves the tracker until `Shutdown` (clean exit), a typed error, or
    /// the configured fault injection fires.
    pub fn run(&mut self) -> Result<()> {
        let mut bidders: HashMap<usize, BidderNode> = HashMap::new();
        let mut polls_served = 0u64;
        loop {
            match decode_net(&self.conn.recv()?)? {
                NetMsg::Init { epsilon, bidders: wire } => {
                    // A fresh pass (cold start or a warm-repair rerun):
                    // previous bidders are discarded wholesale.
                    bidders = wire
                        .into_iter()
                        .map(|b| {
                            let prices: HashMap<usize, f64> =
                                b.edges.iter().map(|&(p, _, price)| (p, price)).collect();
                            let views: Vec<EdgeView> = b
                                .edges
                                .iter()
                                .map(|&(provider, utility, _)| EdgeView { provider, utility })
                                .collect();
                            let node = BidderNode::new(
                                b.request,
                                views,
                                epsilon,
                                LearnPolicy::Monotone,
                                |p| prices.get(&p).copied().unwrap_or(f64::INFINITY),
                            );
                            (b.request, node)
                        })
                        .collect();
                }
                NetMsg::Poll { request, prices } => {
                    self.check_poll_budget(&mut polls_served)?;
                    let decision = decide_one(&mut bidders, request, &prices)?;
                    self.conn.send(&encode_net(&NetMsg::Reply { request, decision }))?;
                }
                NetMsg::PollBatch { notices, polls } => {
                    // Notices first: a bidder must absorb last round's
                    // accepts/evictions/cancellations before any of this
                    // round's decisions, exactly as the per-frame protocol
                    // interleaves them.
                    for msg in &notices {
                        absorb_notice(&mut bidders, msg)?;
                    }
                    let mut replies = Vec::with_capacity(polls.len());
                    for (request, prices) in &polls {
                        // Each batch entry is one poll for the fault
                        // budget, so a peer configured to die after k
                        // polls still dies after k — mid-batch if need be.
                        self.check_poll_budget(&mut polls_served)?;
                        replies.push((*request, decide_one(&mut bidders, *request, prices)?));
                    }
                    self.conn.send(&encode_net(&NetMsg::ReplyBatch { replies }))?;
                }
                NetMsg::Notice(msg) => absorb_notice(&mut bidders, &msg)?,
                NetMsg::Heartbeat => {}
                NetMsg::Shutdown => return Ok(()),
                other => {
                    return Err(P2pError::WireMalformed {
                        reason: format!("unexpected control message {other:?}"),
                    })
                }
            }
        }
    }

    /// Counts one served poll against the fault-injection budget,
    /// erroring out (dropping the connection) once the limit is reached.
    fn check_poll_budget(&self, polls_served: &mut u64) -> Result<()> {
        if let Some(limit) = self.config.fail_after_polls {
            if *polls_served >= limit {
                return Err(P2pError::Disconnected {
                    context: format!(
                        "fault injection: dropping the connection after {polls_served} polls"
                    ),
                });
            }
        }
        *polls_served += 1;
        Ok(())
    }
}

/// Refreshes one bidder from the poll's exact prices (edge-aligned) and
/// returns its decision. Shared by the per-request and batched paths so
/// they cannot drift.
fn decide_one(
    bidders: &mut HashMap<usize, BidderNode>,
    request: usize,
    prices: &[f64],
) -> Result<BidDecision> {
    let bidder = bidders.get_mut(&request).ok_or_else(|| P2pError::WireMalformed {
        reason: format!("poll for request {request} which this peer owns no bidder for"),
    })?;
    if prices.len() != bidder.views().len() {
        return Err(P2pError::WireMalformed {
            reason: format!(
                "poll for request {request} carried {} prices for {} edges",
                prices.len(),
                bidder.views().len()
            ),
        });
    }
    bidder.refresh_prices_aligned(prices);
    Ok(bidder.decide())
}

/// Routes one protocol notice to its target bidder for silent absorption.
fn absorb_notice(bidders: &mut HashMap<usize, BidderNode>, msg: &AuctionMsg) -> Result<()> {
    let target = match *msg {
        AuctionMsg::Accepted { request, .. }
        | AuctionMsg::Rejected { request, .. }
        | AuctionMsg::Evicted { request, .. } => request,
        AuctionMsg::PriceUpdate { listener, .. } => listener,
        AuctionMsg::Bid { .. } => {
            return Err(P2pError::WireMalformed { reason: "bidders never receive bids".into() })
        }
    };
    let bidder = bidders.get_mut(&target).ok_or_else(|| P2pError::WireMalformed {
        reason: format!("notice for request {target} which this peer owns no bidder for"),
    })?;
    bidder.absorb(msg);
    Ok(())
}
