//! Property tests for the streaming system: conservation and accounting
//! invariants must hold for any configuration and seed.

use p2p_sched::{AuctionScheduler, SimpleLocalityScheduler};
use p2p_streaming::{System, SystemConfig};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = SystemConfig> {
    (
        1u64..1000,  // seed
        2usize..6,   // videos
        3usize..10,  // neighbor count
        0.0f64..1.0, // departure prob
        1u32..4,     // seeds per video
    )
        .prop_map(|(seed, videos, neighbors, depart, seed_count)| {
            let mut c = SystemConfig::small_test().with_seed(seed).with_departures(depart);
            c.video_count = videos;
            c.neighbor_count = neighbors;
            c.seeds = p2p_streaming::SeedPlacement::PerVideoTotal(seed_count);
            c
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Accounting invariants hold every slot, for every config.
    #[test]
    fn slot_accounting_invariants(config in arb_config(), peers in 2usize..15) {
        let mut sys = System::new(config, Box::new(AuctionScheduler::paper())).unwrap();
        sys.add_static_peers(peers).unwrap();
        for _ in 0..6 {
            let m = sys.step_slot().unwrap();
            prop_assert!(m.inter_isp_transfers <= m.transfers);
            prop_assert!(m.missed_chunks <= m.due_chunks);
            prop_assert!(m.welfare.is_finite());
            prop_assert!((0.0..=1.0).contains(&m.miss_rate()));
            prop_assert!((0.0..=1.0).contains(&m.inter_isp_fraction()));
        }
    }

    /// The auction system never books negative welfare in any slot — it
    /// refuses loss-making transfers by construction.
    #[test]
    fn auction_welfare_is_never_negative(config in arb_config(), peers in 2usize..12) {
        let mut sys = System::new(config, Box::new(AuctionScheduler::paper())).unwrap();
        sys.add_static_peers(peers).unwrap();
        sys.run_slots(5).unwrap();
        for (_, m) in sys.recorder().slots() {
            prop_assert!(m.welfare >= -1e-9);
        }
    }

    /// Fixed seed ⇒ bit-identical metrics, regardless of configuration.
    #[test]
    fn runs_are_reproducible(config in arb_config(), peers in 2usize..12) {
        let run = |cfg: SystemConfig| {
            let mut sys = System::new(cfg, Box::new(AuctionScheduler::paper())).unwrap();
            sys.add_static_peers(peers).unwrap();
            sys.run_slots(4).unwrap();
            sys.recorder()
                .slots()
                .iter()
                .map(|(_, m)| (m.welfare.to_bits(), m.transfers, m.missed_chunks))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(config.clone()), run(config));
    }

    /// Identical workloads: the two schedulers see identical populations
    /// (scheduling must not perturb churn).
    #[test]
    fn scheduling_does_not_perturb_the_workload(config in arb_config(), peers in 2usize..12) {
        let pop = |sched: Box<dyn p2p_sched::ChunkScheduler>, cfg: SystemConfig| {
            let mut sys = System::new(cfg, sched).unwrap();
            sys.add_static_peers(peers).unwrap();
            sys.run_slots(4).unwrap();
            sys.recorder().population_series().points().to_vec()
        };
        let a = pop(Box::new(AuctionScheduler::paper()), config.clone());
        let l = pop(Box::new(SimpleLocalityScheduler::new()), config);
        prop_assert_eq!(a, l);
    }

    /// Online watchers never exceed the number ever added.
    #[test]
    fn population_is_conserved(config in arb_config(), peers in 2usize..15) {
        let mut sys = System::new(config, Box::new(AuctionScheduler::paper())).unwrap();
        sys.add_static_peers(peers).unwrap();
        for _ in 0..6 {
            sys.step_slot().unwrap();
            prop_assert!(sys.watcher_count() <= peers);
        }
    }
}
