//! The tracker server: keeps track of online peers and bootstraps joiners
//! with neighbors of close playback position.

use p2p_types::{PeerId, VideoId};
use std::collections::HashMap;

/// The tracker's view of one online peer.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    peer: PeerId,
    is_seed: bool,
}

/// The tracker server.
///
/// "There is a track server which keeps track of online peers and
/// bootstraps new joining peers with a list of neighbors with close
/// playback positions" (Sec. V). Playback positions are supplied by the
/// caller at query time (the tracker itself only stores membership).
#[derive(Debug, Clone, Default)]
pub struct Tracker {
    by_video: HashMap<VideoId, Vec<Entry>>,
}

impl Tracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Tracker::default()
    }

    /// Registers an online peer.
    pub fn register(&mut self, peer: PeerId, video: VideoId, is_seed: bool) {
        self.by_video.entry(video).or_default().push(Entry { peer, is_seed });
    }

    /// Removes a departed peer.
    pub fn unregister(&mut self, peer: PeerId, video: VideoId) {
        if let Some(v) = self.by_video.get_mut(&video) {
            v.retain(|e| e.peer != peer);
        }
    }

    /// Number of online peers (incl. seeds) on a video.
    pub fn population(&self, video: VideoId) -> usize {
        self.by_video.get(&video).map_or(0, Vec::len)
    }

    /// Chooses up to `count` neighbors for `who`: seeds of the video come
    /// first (capped at `max_seeds` per list, rotated by the asker's id so
    /// different peers know different seeds — modelling a tracker that
    /// returns a random subset), then watchers by closeness of playback
    /// position (per the paper's bootstrap rule). Deterministic: ties break
    /// by peer id.
    pub fn neighbors_for(
        &self,
        who: PeerId,
        video: VideoId,
        count: usize,
        max_seeds: Option<usize>,
        my_position: f64,
        position_of: impl Fn(PeerId) -> f64,
    ) -> Vec<PeerId> {
        let Some(entries) = self.by_video.get(&video) else {
            return Vec::new();
        };
        let mut seeds: Vec<PeerId> = Vec::new();
        let mut watchers: Vec<(f64, PeerId)> = Vec::new();
        for e in entries {
            if e.peer == who {
                continue;
            }
            if e.is_seed {
                seeds.push(e.peer);
            } else {
                let dist = (position_of(e.peer) - my_position).abs();
                watchers.push((dist, e.peer));
            }
        }
        seeds.sort_unstable();
        watchers.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));

        // Rotate the seed roster by the asker's id, then cap.
        let seed_budget = max_seeds.unwrap_or(seeds.len()).min(count);
        if !seeds.is_empty() {
            let shift = who.index() % seeds.len();
            seeds.rotate_left(shift);
        }
        let mut out: Vec<PeerId> = Vec::with_capacity(count);
        for s in seeds.into_iter().take(seed_budget) {
            out.push(s);
        }
        for (_, w) in watchers {
            if out.len() >= count {
                break;
            }
            out.push(w);
        }
        out
    }

    /// All online peers of a video (used by tests and the Fig. 2 harness).
    pub fn peers_on(&self, video: VideoId) -> Vec<PeerId> {
        self.by_video.get(&video).map_or_else(Vec::new, |v| v.iter().map(|e| e.peer).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_unregister_population() {
        let mut t = Tracker::new();
        let v = VideoId::new(0);
        t.register(PeerId::new(1), v, false);
        t.register(PeerId::new(2), v, true);
        assert_eq!(t.population(v), 2);
        t.unregister(PeerId::new(1), v);
        assert_eq!(t.population(v), 1);
        assert_eq!(t.population(VideoId::new(9)), 0);
    }

    #[test]
    fn neighbors_prefer_seeds_then_closest_watchers() {
        let mut t = Tracker::new();
        let v = VideoId::new(0);
        t.register(PeerId::new(100), v, true); // seed
        for i in 0..5 {
            t.register(PeerId::new(i), v, false);
        }
        // Watcher i sits at position 10·i; we ask from position 20 (peer 2).
        let pos = |p: PeerId| f64::from(p.get()) * 10.0;
        let n = t.neighbors_for(PeerId::new(2), v, 3, None, 20.0, pos);
        assert_eq!(n.len(), 3);
        assert_eq!(n[0], PeerId::new(100), "seed comes first");
        // Closest watchers to 20 are peers 1 and 3 (distance 10 each).
        assert!(n.contains(&PeerId::new(1)));
        assert!(n.contains(&PeerId::new(3)));
    }

    #[test]
    fn excludes_self_and_caps_count() {
        let mut t = Tracker::new();
        let v = VideoId::new(0);
        for i in 0..10 {
            t.register(PeerId::new(i), v, false);
        }
        let n = t.neighbors_for(PeerId::new(0), v, 4, None, 0.0, |_| 0.0);
        assert_eq!(n.len(), 4);
        assert!(!n.contains(&PeerId::new(0)));
    }

    #[test]
    fn empty_video_yields_no_neighbors() {
        let t = Tracker::new();
        assert!(t
            .neighbors_for(PeerId::new(0), VideoId::new(5), 10, None, 0.0, |_| 0.0)
            .is_empty());
    }

    #[test]
    fn deterministic_tie_break() {
        let mut t = Tracker::new();
        let v = VideoId::new(0);
        for i in 0..6 {
            t.register(PeerId::new(i), v, false);
        }
        let a = t.neighbors_for(PeerId::new(0), v, 3, None, 0.0, |_| 1.0);
        let b = t.neighbors_for(PeerId::new(0), v, 3, None, 0.0, |_| 1.0);
        assert_eq!(a, b);
        assert_eq!(a, vec![PeerId::new(1), PeerId::new(2), PeerId::new(3)]);
    }
}
