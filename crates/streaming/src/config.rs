//! System configuration with the paper's defaults.

use p2p_core::ShardCount;
use p2p_topology::TopologyConfig;
use p2p_types::{P2pError, SimDuration};
use p2p_workload::{DeadlineValuation, StreamingParams};
use serde::{Deserialize, Serialize};

/// How seed peers are provisioned.
///
/// The paper states "in each ISP, for each video, there are 2 seed peers"
/// (Sec. V). The default follows that text literally
/// ([`SeedPlacement::PerIspPerVideo`]). On its own the literal placement
/// would let seeds serve the entire workload intra-ISP and collapse both
/// schedulers' inter-ISP traffic to ~0; what restores the paper's traffic
/// split is that the tracker hands each peer only a *subset* of the seed
/// roster (`max_seed_neighbors`, default 2 of the 10), as a real tracker
/// returning a bounded random peer list would. See DESIGN.md and
/// EXPERIMENTS.md for the calibration argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeedPlacement {
    /// `count` seeds per video in the whole system, ISPs assigned
    /// round-robin from the video index (scarcer variant for ablations).
    PerVideoTotal(u32),
    /// `count` seeds per video in *every* ISP (the literal text; default).
    PerIspPerVideo(u32),
}

/// How the deadline valuation's `d` ("time to the playback deadline") is
/// measured under slot-quantized scheduling.
///
/// The paper's emulator bids continuously: a chunk's valuation rises as its
/// deadline approaches, and a last-moment profitable fetch (e.g. across an
/// ISP at cost ≈ 5, worthwhile only when `v > 5`, i.e. < 0.3 s before
/// playback) still arrives in time because a chunk transfer takes ~0.1 s.
/// A slot-quantized simulation freezes valuations at slot start and
/// delivers mid-slot, so the literal seconds reading makes every such fetch
/// impossible — remote-only chunks would all miss, inverting Fig. 5.
///
/// [`ValuationTimeBase::SchedulingSlack`] (the default) is the faithful
/// translation: `d` counts the *remaining scheduling opportunities* — how
/// many more slots could still deliver the chunk before its deadline,
/// measured in slot units. A chunk whose **last** feasible slot is the
/// current one has `d = 0` and takes the paper's maximum valuation 8
/// (exactly the continuous protocol's last-moment urgency); a chunk that
/// can also wait for the next slot has `d = 1` (`v ≈ 2.54`), and so on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValuationTimeBase {
    /// `d` = raw seconds to deadline (the literal reading; kept for
    /// sensitivity studies).
    Seconds,
    /// `d` = remaining scheduling slack in slots (default; see above).
    SchedulingSlack,
}

/// How [`crate::System`] constructs each slot's welfare instance.
///
/// [`SlotBuild::Cold`] re-derives every provider, request and candidate
/// edge from scratch each slot — the oracle. [`SlotBuild::Incremental`]
/// routes construction through a [`crate::SlotProblemCache`] that keeps
/// per-watcher request blocks across slots and rebuilds only what the
/// slot's changes invalidated (deliveries, window advance, neighbor
/// refresh, churn, link repricing); both paths emit bit-identical
/// instances, so schedulers cannot tell them apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SlotBuild {
    /// Full rebuild every slot (default; the correctness oracle).
    #[default]
    Cold,
    /// Dirty-tracked incremental construction via the slot-problem cache.
    Incremental,
}

impl SlotBuild {
    /// The CLI/spec name of this mode.
    pub fn name(self) -> &'static str {
        match self {
            SlotBuild::Cold => "cold",
            SlotBuild::Incremental => "incremental",
        }
    }

    /// Parses a CLI/spec mode name.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] for unknown names.
    pub fn from_name(name: &str) -> Result<Self, P2pError> {
        match name {
            "cold" => Ok(SlotBuild::Cold),
            "incremental" => Ok(SlotBuild::Incremental),
            other => Err(P2pError::invalid_config(
                "slot_build",
                format!("unknown mode `{other}` (known: cold, incremental)"),
            )),
        }
    }
}

/// Which clock the per-slot phase timings in a
/// [`RunReport`](p2p_metrics::RunReport) are measured on.
///
/// [`ClockMode::Wall`] samples `std::time::Instant` around each phase —
/// right for benchmarking real engines. [`ClockMode::Virtual`] is for
/// schedulers that simulate the swarm in virtual time (`auction_sim`):
/// the schedule phase reports the simulated convergence time taken from
/// [`ChunkScheduler::take_virtual_elapsed`](p2p_sched::ChunkScheduler::take_virtual_elapsed)
/// and the prepare/complete phases report zero, so reports are
/// byte-identical across runs and machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ClockMode {
    /// Wall-clock phase timings via `Instant` (default).
    #[default]
    Wall,
    /// Virtual phase timings from the scheduler's simulated clock.
    Virtual,
}

impl ClockMode {
    /// The CLI/spec name of this mode.
    pub fn name(self) -> &'static str {
        match self {
            ClockMode::Wall => "wall",
            ClockMode::Virtual => "virtual",
        }
    }

    /// Parses a CLI/spec mode name.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] for unknown names.
    pub fn from_name(name: &str) -> Result<Self, P2pError> {
        match name {
            "wall" => Ok(ClockMode::Wall),
            "virtual" => Ok(ClockMode::Virtual),
            other => Err(P2pError::invalid_config(
                "clock",
                format!("unknown mode `{other}` (known: wall, virtual)"),
            )),
        }
    }
}

/// Full configuration of the streaming system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of ISPs `M` (paper: 5).
    pub isp_count: u16,
    /// Number of videos in the catalog (paper: 100).
    pub video_count: usize,
    /// Chunk/bitrate/file-size parameters (paper: 8 KB / 640 kbps / 20 MB).
    pub streaming: StreamingParams,
    /// Target neighbor count per peer (paper: 30).
    pub neighbor_count: usize,
    /// Prefetch horizon (paper: 10 s ⇒ 100 chunks).
    pub prefetch: SimDuration,
    /// Time-slot length (paper: 10 s).
    pub slot_len: SimDuration,
    /// Seed provisioning (see [`SeedPlacement`]).
    pub seeds: SeedPlacement,
    /// Seed upload capacity in multiples of the streaming rate (paper: 8).
    pub seed_rate_multiple: f64,
    /// Watcher upload capacity range in rate multiples (paper: [1, 4]).
    pub upload_multiple: (f64, f64),
    /// Deadline-based valuation parameters (paper: 2 / 1.2 / [0.8, 8]).
    pub valuation: DeadlineValuation,
    /// Unit in which the valuation's time-to-deadline is measured.
    pub valuation_time_base: ValuationTimeBase,
    /// Maximum seeds the tracker places in one neighbor list (`None` = all
    /// of the video's seeds; small values model trackers that return a
    /// random peer subset rather than the full seed roster).
    pub max_seed_neighbors: Option<usize>,
    /// Poisson arrival rate for dynamic experiments, peers/s (paper: 1.0).
    pub arrival_rate: f64,
    /// Early-departure probability (paper: 0 for Fig. 3, 0.6 for Fig. 6).
    pub early_departure_prob: f64,
    /// Playback start delay after join (startup buffering; two slots by
    /// default so the first window can arrive before it is due — the paper
    /// does not specify a value).
    pub startup_delay: SimDuration,
    /// Fraction of the slot after which scheduled chunks are delivered
    /// (the paper's auctions converge ≈ 5 s into a 10 s slot ⇒ 0.5).
    pub delivery_fraction: f64,
    /// Join-time stagger window for static networks (positions diversify
    /// within the first slots, avoiding a fully synchronized swarm).
    pub static_stagger: SimDuration,
    /// Topology parameters (cost distributions, latency mapping).
    pub topology: TopologyConfig,
    /// How each slot's welfare instance is constructed (see [`SlotBuild`]).
    pub slot_build: SlotBuild,
    /// Shard count for sharded auction schedulers (`auction_sharded`):
    /// `auto` follows the machine's cores, a fixed `N` pins the partition
    /// for reproducible benchmarking (spec key `shards`, CLI `--shards`).
    /// Read by [`SystemConfig::sharded_scheduler`]; the scenario engine
    /// mirrors its own `shards` knob into this field via `base_config()`.
    /// The sequential schedulers ignore it.
    pub shards: ShardCount,
    /// Which clock the slot-phase timings are measured on (see
    /// [`ClockMode`]). The scenario runner flips this to `Virtual` for the
    /// `auction_sim` schedulers.
    pub clock: ClockMode,
    /// Master seed for all randomness.
    pub seed: u64,
}

impl SystemConfig {
    /// The paper's evaluation configuration (Sec. V).
    pub fn paper() -> Self {
        SystemConfig {
            isp_count: 5,
            video_count: 100,
            streaming: StreamingParams::paper_defaults(),
            neighbor_count: 30,
            prefetch: SimDuration::from_secs(10),
            slot_len: SimDuration::from_secs(10),
            seeds: SeedPlacement::PerIspPerVideo(2),
            seed_rate_multiple: 8.0,
            upload_multiple: (1.0, 4.0),
            valuation: DeadlineValuation::paper_defaults(),
            valuation_time_base: ValuationTimeBase::SchedulingSlack,
            max_seed_neighbors: Some(2),
            arrival_rate: 1.0,
            early_departure_prob: 0.0,
            startup_delay: SimDuration::from_secs(20),
            delivery_fraction: 0.5,
            static_stagger: SimDuration::from_secs(30),
            topology: TopologyConfig::paper_defaults(5),
            slot_build: SlotBuild::Cold,
            shards: ShardCount::Auto,
            clock: ClockMode::Wall,
            seed: 42,
        }
    }

    /// A scaled-down configuration for fast unit tests: 2 ISPs, 5 short
    /// videos, 8 neighbors, 5-second slots.
    pub fn small_test() -> Self {
        SystemConfig {
            isp_count: 2,
            video_count: 5,
            streaming: StreamingParams::small_test(),
            neighbor_count: 8,
            prefetch: SimDuration::from_secs(5),
            slot_len: SimDuration::from_secs(5),
            seeds: SeedPlacement::PerVideoTotal(2),
            seed_rate_multiple: 8.0,
            upload_multiple: (1.0, 4.0),
            valuation: DeadlineValuation::paper_defaults(),
            valuation_time_base: ValuationTimeBase::SchedulingSlack,
            max_seed_neighbors: None,
            arrival_rate: 1.0,
            early_departure_prob: 0.0,
            startup_delay: SimDuration::from_secs(10),
            delivery_fraction: 0.5,
            static_stagger: SimDuration::from_secs(10),
            topology: TopologyConfig::paper_defaults(2),
            slot_build: SlotBuild::Cold,
            shards: ShardCount::Auto,
            clock: ClockMode::Wall,
            seed: 42,
        }
    }

    /// Replaces the seed (builder-style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.topology.seed = seed ^ 0xC0517;
        self
    }

    /// Replaces the slot-problem construction mode (builder-style).
    #[must_use]
    pub fn with_slot_build(mut self, mode: SlotBuild) -> Self {
        self.slot_build = mode;
        self
    }

    /// Replaces the sharded-scheduler shard count (builder-style).
    #[must_use]
    pub fn with_shards(mut self, shards: ShardCount) -> Self {
        self.shards = shards;
        self
    }

    /// Replaces the phase-timing clock mode (builder-style).
    #[must_use]
    pub fn with_clock(mut self, clock: ClockMode) -> Self {
        self.clock = clock;
        self
    }

    /// A sharded auction scheduler (paper ε = 0 rule) configured by this
    /// configuration's `shards` knob — the scheduler to hand
    /// [`crate::System::new`] when scheduling slots with
    /// `auction_sharded`.
    pub fn sharded_scheduler(&self) -> p2p_sched::ShardedAuctionScheduler {
        p2p_sched::ShardedAuctionScheduler::paper(self.shards)
    }

    /// Enables churn with the paper's Sec. V-E departure probability
    /// (builder-style).
    #[must_use]
    pub fn with_departures(mut self, prob: f64) -> Self {
        self.early_departure_prob = prob;
        self
    }

    /// Number of chunks in the prefetch window (paper: 100).
    pub fn window_chunks(&self) -> u32 {
        (self.streaming.chunks_per_second() * self.prefetch.as_secs_f64()).round() as u32
    }

    /// Scheduling lookahead in chunks: the prefetch window plus one slot.
    ///
    /// The paper's window slides continuously, so a chunk participates in
    /// auctions for up to `prefetch` *before its due slot begins*. Under
    /// slot quantization the window must therefore extend one slot past the
    /// prefetch horizon, or chunks would only ever be auctioned in the slot
    /// they are consumed.
    pub fn lookahead_chunks(&self) -> u32 {
        self.window_chunks()
            + (self.streaming.chunks_per_second() * self.slot_len.as_secs_f64()).round() as u32
    }

    /// The valuation of a chunk whose deadline is `d_time` away and which
    /// has `slack_slots` scheduling opportunities left after the current
    /// slot, respecting the configured time base.
    pub fn chunk_valuation(&self, d_time: SimDuration, slack_slots: u32) -> p2p_types::Valuation {
        match self.valuation_time_base {
            ValuationTimeBase::Seconds => self.valuation.value(d_time),
            ValuationTimeBase::SchedulingSlack => self.valuation.value_secs(f64::from(slack_slots)),
        }
    }

    /// A watcher's upload budget in chunks per slot for a given rate
    /// multiple.
    pub fn watcher_capacity(&self, rate_multiple: f64) -> u32 {
        self.streaming.rate_multiple_per_slot(rate_multiple, self.slot_len)
    }

    /// A seed's upload budget in chunks per slot.
    pub fn seed_capacity(&self) -> u32 {
        self.streaming.rate_multiple_per_slot(self.seed_rate_multiple, self.slot_len)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] on any out-of-range parameter.
    pub fn validate(&self) -> Result<(), P2pError> {
        if self.isp_count == 0 {
            return Err(P2pError::invalid_config("isp_count", "must be positive"));
        }
        if self.video_count == 0 {
            return Err(P2pError::invalid_config("video_count", "must be positive"));
        }
        self.streaming.validate()?;
        if self.neighbor_count == 0 {
            return Err(P2pError::invalid_config("neighbor_count", "must be positive"));
        }
        if self.slot_len.is_zero() {
            return Err(P2pError::invalid_config("slot_len", "must be positive"));
        }
        if self.window_chunks() == 0 {
            return Err(P2pError::invalid_config("prefetch", "window must cover >= 1 chunk"));
        }
        if !(0.0..=1.0).contains(&self.delivery_fraction) {
            return Err(P2pError::invalid_config("delivery_fraction", "must be in [0, 1]"));
        }
        if !(0.0..=1.0).contains(&self.early_departure_prob) {
            return Err(P2pError::invalid_config("early_departure_prob", "must be in [0, 1]"));
        }
        if self.arrival_rate <= 0.0 || !self.arrival_rate.is_finite() {
            return Err(P2pError::invalid_config("arrival_rate", "must be positive"));
        }
        let (lo, hi) = self.upload_multiple;
        if !(lo.is_finite() && hi.is_finite()) || lo <= 0.0 || lo > hi {
            return Err(P2pError::invalid_config("upload_multiple", "need 0 < lo <= hi"));
        }
        if self.seed_rate_multiple <= 0.0 {
            return Err(P2pError::invalid_config("seed_rate_multiple", "must be positive"));
        }
        if self.isp_count != self.topology.isp_count {
            return Err(P2pError::invalid_config("topology.isp_count", "must match isp_count"));
        }
        self.shards.validate()?;
        match self.seeds {
            SeedPlacement::PerVideoTotal(0) | SeedPlacement::PerIspPerVideo(0) => {
                Err(P2pError::invalid_config("seeds", "seed count must be positive"))
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_validate_and_derive() {
        let c = SystemConfig::paper();
        c.validate().unwrap();
        assert_eq!(c.window_chunks(), 100);
        assert_eq!(c.seed_capacity(), 800);
        assert_eq!(c.watcher_capacity(1.0), 100);
        assert_eq!(c.watcher_capacity(4.0), 400);
    }

    #[test]
    fn small_test_validates() {
        SystemConfig::small_test().validate().unwrap();
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = SystemConfig::paper();
        c.isp_count = 0;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::paper();
        c.neighbor_count = 0;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::paper();
        c.delivery_fraction = 1.5;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::paper();
        c.upload_multiple = (4.0, 1.0);
        assert!(c.validate().is_err());

        let mut c = SystemConfig::paper();
        c.seeds = SeedPlacement::PerVideoTotal(0);
        assert!(c.validate().is_err());

        let mut c = SystemConfig::paper();
        c.isp_count = 3; // now disagrees with topology
        assert!(c.validate().is_err());
    }

    #[test]
    fn builder_methods() {
        let c = SystemConfig::paper().with_seed(7).with_departures(0.6);
        assert_eq!(c.seed, 7);
        assert_eq!(c.early_departure_prob, 0.6);
        c.validate().unwrap();
    }

    #[test]
    fn shards_knob_configures_and_validates() {
        let c = SystemConfig::small_test().with_shards(ShardCount::Fixed(8));
        assert_eq!(c.shards, ShardCount::Fixed(8));
        c.validate().unwrap();
        assert_eq!(c.sharded_scheduler().shards(), ShardCount::Fixed(8));
        let mut c = SystemConfig::paper();
        assert_eq!(c.shards, ShardCount::Auto);
        c.shards = ShardCount::Fixed(0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn slot_build_round_trips_and_configures() {
        assert_eq!(SlotBuild::from_name("cold").unwrap(), SlotBuild::Cold);
        assert_eq!(SlotBuild::from_name("incremental").unwrap(), SlotBuild::Incremental);
        assert!(SlotBuild::from_name("warm").is_err());
        assert_eq!(SlotBuild::Incremental.name(), "incremental");
        assert_eq!(SlotBuild::default(), SlotBuild::Cold);
        let c = SystemConfig::small_test().with_slot_build(SlotBuild::Incremental);
        assert_eq!(c.slot_build, SlotBuild::Incremental);
        c.validate().unwrap();
    }
}
