//! Per-peer state: playback, buffer, neighbors, capacity.

use crate::buffer::ChunkBuffer;
use p2p_types::{Bandwidth, IspId, PeerId, SimDuration, SimTime, VideoId};
use serde::{Deserialize, Serialize};

/// The state of one peer (watcher or seed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeerState {
    id: PeerId,
    isp: IspId,
    video: VideoId,
    /// Chunks consumed per second by playback.
    chunks_per_second: f64,
    /// When playback starts (join + startup delay); irrelevant for seeds.
    playback_start: SimTime,
    /// Upload budget per slot.
    upload_capacity: Bandwidth,
    /// Chunk holdings.
    pub buffer: ChunkBuffer,
    /// Tracker-assigned neighbors (peers of the same video, incl. seeds).
    pub neighbors: Vec<PeerId>,
    /// Scheduled early departure, if any.
    departs_at: Option<SimTime>,
    is_seed: bool,
}

impl PeerState {
    /// Creates a watcher peer.
    #[allow(clippy::too_many_arguments)]
    pub fn watcher(
        id: PeerId,
        isp: IspId,
        video: VideoId,
        chunk_count: u32,
        chunks_per_second: f64,
        playback_start: SimTime,
        upload_capacity: Bandwidth,
        departs_at: Option<SimTime>,
    ) -> Self {
        PeerState {
            id,
            isp,
            video,
            chunks_per_second,
            playback_start,
            upload_capacity,
            buffer: ChunkBuffer::empty(chunk_count),
            neighbors: Vec::new(),
            departs_at,
            is_seed: false,
        }
    }

    /// Creates a seed peer: full buffer, never departs, no playback.
    pub fn seed(
        id: PeerId,
        isp: IspId,
        video: VideoId,
        chunk_count: u32,
        upload_capacity: Bandwidth,
    ) -> Self {
        PeerState {
            id,
            isp,
            video,
            chunks_per_second: 0.0,
            playback_start: SimTime::ZERO,
            upload_capacity,
            buffer: ChunkBuffer::full(chunk_count),
            neighbors: Vec::new(),
            departs_at: None,
            is_seed: true,
        }
    }

    /// The peer's id.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// The peer's ISP.
    pub fn isp(&self) -> IspId {
        self.isp
    }

    /// The video this peer serves/watches.
    pub fn video(&self) -> VideoId {
        self.video
    }

    /// Whether this is a seed.
    pub fn is_seed(&self) -> bool {
        self.is_seed
    }

    /// Upload budget per slot (`B(u)`).
    pub fn upload_capacity(&self) -> Bandwidth {
        self.upload_capacity
    }

    /// When playback starts.
    pub fn playback_start(&self) -> SimTime {
        self.playback_start
    }

    /// Scheduled early departure, if any.
    pub fn departs_at(&self) -> Option<SimTime> {
        self.departs_at
    }

    /// Continuous playback position (in chunks) at time `t`: negative
    /// before playback starts, capped at the chunk count.
    pub fn position(&self, t: SimTime) -> f64 {
        if self.is_seed {
            return 0.0;
        }
        let elapsed = t.as_secs_f64() - self.playback_start.as_secs_f64();
        (elapsed * self.chunks_per_second).min(f64::from(self.buffer.chunk_count()))
    }

    /// The playback deadline of chunk `index`.
    pub fn deadline_of(&self, index: u32) -> SimTime {
        self.playback_start + SimDuration::from_secs_f64(f64::from(index) / self.chunks_per_second)
    }

    /// Whether playback has consumed the whole video by time `t`.
    pub fn finished(&self, t: SimTime) -> bool {
        !self.is_seed && self.position(t) >= f64::from(self.buffer.chunk_count())
    }

    /// Whether the peer should be gone at time `t` (finished watching or
    /// departed early).
    pub fn gone(&self, t: SimTime) -> bool {
        if self.is_seed {
            return false;
        }
        if let Some(d) = self.departs_at {
            if t >= d {
                return true;
            }
        }
        self.finished(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn watcher() -> PeerState {
        PeerState::watcher(
            PeerId::new(1),
            IspId::new(0),
            VideoId::new(0),
            100,
            10.0,
            SimTime::from_secs_f64(20.0),
            Bandwidth::new(200),
            None,
        )
    }

    #[test]
    fn position_respects_playback_start() {
        let p = watcher();
        assert!(p.position(SimTime::from_secs_f64(10.0)) < 0.0);
        assert_eq!(p.position(SimTime::from_secs_f64(20.0)), 0.0);
        assert_eq!(p.position(SimTime::from_secs_f64(25.0)), 50.0);
        // Caps at the video end.
        assert_eq!(p.position(SimTime::from_secs_f64(1000.0)), 100.0);
    }

    #[test]
    fn deadlines_are_linear_in_index() {
        let p = watcher();
        assert_eq!(p.deadline_of(0), SimTime::from_secs_f64(20.0));
        assert_eq!(p.deadline_of(50), SimTime::from_secs_f64(25.0));
    }

    #[test]
    fn finished_and_gone() {
        let p = watcher();
        assert!(!p.finished(SimTime::from_secs_f64(29.9)));
        assert!(p.finished(SimTime::from_secs_f64(30.0)));
        assert!(p.gone(SimTime::from_secs_f64(30.0)));

        let early = PeerState::watcher(
            PeerId::new(2),
            IspId::new(0),
            VideoId::new(0),
            100,
            10.0,
            SimTime::from_secs_f64(20.0),
            Bandwidth::new(100),
            Some(SimTime::from_secs_f64(22.0)),
        );
        assert!(!early.gone(SimTime::from_secs_f64(21.9)));
        assert!(early.gone(SimTime::from_secs_f64(22.0)));
    }

    #[test]
    fn seeds_never_finish() {
        let s = PeerState::seed(
            PeerId::new(9),
            IspId::new(1),
            VideoId::new(3),
            100,
            Bandwidth::new(800),
        );
        assert!(s.is_seed());
        assert!(s.buffer.is_complete());
        assert!(!s.gone(SimTime::from_secs_f64(1e6)));
        assert_eq!(s.position(SimTime::from_secs_f64(50.0)), 0.0);
        assert_eq!(s.video(), VideoId::new(3));
        assert_eq!(s.isp(), IspId::new(1));
        assert_eq!(s.upload_capacity(), Bandwidth::new(800));
    }
}
