//! The slot-driven streaming system.

use crate::cache::{throttled_capacity, CacheStats, SlotProblemCache};
use crate::config::{ClockMode, SeedPlacement, SlotBuild, SystemConfig};
use crate::peer::PeerState;
use crate::tracker::Tracker;
use p2p_core::WelfareInstance;
use p2p_metrics::{
    CacheCounters, Hll, PhaseTimings, RunReport, SlotMetrics, SlotRecorder, SlotReport,
};
use p2p_sched::{ChunkScheduler, Schedule, SlotProblem};
use p2p_topology::Topology;
use p2p_types::{
    Bandwidth, ChunkId, IspId, P2pError, PeerId, Result, SimDuration, SimTime, SlotIndex, VideoId,
};
use p2p_workload::churn::{ChurnConfig, ChurnModel};
use p2p_workload::{PeerArrival, UniformRange, VideoCatalog, ZipfMandelbrot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet, VecDeque};

/// The assembled P2P VoD system: peers + tracker + topology + scheduler,
/// advanced one time slot at a time.
///
/// # Examples
///
/// See the crate-level example.
pub struct System {
    config: SystemConfig,
    catalog: VideoCatalog,
    topology: Topology,
    tracker: Tracker,
    peers: Vec<Option<PeerState>>,
    scheduler: Box<dyn ChunkScheduler>,
    recorder: SlotRecorder,
    slot: SlotIndex,
    rng: StdRng,
    churn: Option<ChurnState>,
    pending_static: Vec<PeerArrival>,
    next_isp: u16,
    /// Per-ISP upload-capacity multipliers (scenario throttles); peers in
    /// an absent ISP run at full capacity.
    isp_throttles: HashMap<IspId, f64>,
    /// Incremental slot-problem state (used when `config.slot_build` is
    /// [`SlotBuild::Incremental`]; empty otherwise).
    cache: SlotProblemCache,
    /// Workload recording/replay state (scenario sweeps record the first
    /// run's arrival trace and replay it for every other scheduler).
    workload: WorkloadMode,
    /// Run-report accumulation (`None` unless [`System::enable_probes`]
    /// was called; the bare slot loop carries zero observability cost).
    obs: Option<ObsState>,
}

/// Bounded-memory observability accumulation: one [`SlotReport`] per
/// stepped slot plus three fixed-size HLL sketches and two counter
/// snapshots — memory is O(slots + sketches), independent of swarm size.
struct ObsState {
    report: RunReport,
    requesters: Hll,
    providers: Hll,
    edges: Hll,
    /// Snapshot of the cache's cumulative patch counter at the previous
    /// slot boundary (the per-slot delta goes into the slot report).
    patched_seen: u64,
    /// Snapshot of the cache's cumulative prune counter, likewise.
    pruned_seen: u64,
}

impl ObsState {
    fn new(scheduler: &str, slot_secs: f64) -> Self {
        ObsState {
            report: RunReport::new("", scheduler, slot_secs),
            requesters: Hll::new(Hll::DEFAULT_PRECISION),
            providers: Hll::new(Hll::DEFAULT_PRECISION),
            edges: Hll::new(Hll::DEFAULT_PRECISION),
            patched_seen: 0,
            pruned_seen: 0,
        }
    }

    /// Writes the sketch estimates into the report and returns it.
    fn finish(mut self) -> RunReport {
        self.report.uniques.precision = self.requesters.precision();
        self.report.uniques.requesters = self.requesters.estimate();
        self.report.uniques.providers = self.providers.estimate();
        self.report.uniques.edges = self.edges.estimate();
        self.report
    }
}

struct ChurnState {
    model: ChurnModel,
    /// Generated-but-not-yet-due arrivals. A queue (not a single slot):
    /// churn bursts can put many arrivals between two slot boundaries, and
    /// none may be dropped.
    pending: VecDeque<PeerArrival>,
}

/// Workload generation mode (see [`System::record_workload`]).
enum WorkloadMode {
    /// Arrivals are drawn live from the system RNG and churn model.
    Live,
    /// Live, plus every admitted watcher is appended to the trace.
    Record(Vec<(u64, PeerArrival)>),
    /// Arrivals come verbatim from a recorded trace; every
    /// workload-generating hook is a no-op.
    Replay(VecDeque<(u64, PeerArrival)>),
}

/// A watcher-arrival trace recorded by [`System::record_workload`]: each
/// admitted watcher with the slot that admitted it, in admission order.
/// Replaying the trace on a fresh same-seed system reproduces the identical
/// peer population (ids, ISPs, videos, capacities, departures) without
/// re-deriving it from the RNG — scenario sweeps run the generation once
/// per (scenario, seed) instead of once per scheduler.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkloadTrace {
    arrivals: Vec<(u64, PeerArrival)>,
}

impl WorkloadTrace {
    /// Number of recorded arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }
}

impl System {
    /// Builds the system: catalog, topology and seed peers; no watchers yet.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] for invalid configuration.
    pub fn new(config: SystemConfig, scheduler: Box<dyn ChunkScheduler>) -> Result<Self> {
        config.validate()?;
        let catalog = VideoCatalog::uniform(config.video_count, config.streaming)?;
        let topology = Topology::new(config.topology)?;
        let mut sys = System {
            rng: StdRng::seed_from_u64(config.seed),
            recorder: SlotRecorder::new(config.slot_len),
            catalog,
            topology,
            tracker: Tracker::new(),
            peers: Vec::new(),
            scheduler,
            slot: SlotIndex::new(0),
            churn: None,
            pending_static: Vec::new(),
            next_isp: 0,
            isp_throttles: HashMap::new(),
            cache: SlotProblemCache::new(),
            workload: WorkloadMode::Live,
            obs: None,
            config,
        };
        sys.spawn_seeds()?;
        Ok(sys)
    }

    fn spawn_seeds(&mut self) -> Result<()> {
        let chunk_count = self.catalog.params().chunks_per_video();
        let capacity = Bandwidth::new(self.config.seed_capacity());
        let placements: Vec<(VideoId, IspId)> = match self.config.seeds {
            SeedPlacement::PerVideoTotal(k) => (0..self.config.video_count)
                .flat_map(|v| {
                    let m = self.config.isp_count as usize;
                    (0..k as usize).map(move |j| {
                        (VideoId::new(v as u32), IspId::new(((v * k as usize + j) % m) as u16))
                    })
                })
                .collect(),
            SeedPlacement::PerIspPerVideo(k) => (0..self.config.video_count)
                .flat_map(|v| {
                    (0..self.config.isp_count).flat_map(move |isp| {
                        (0..k).map(move |_| (VideoId::new(v as u32), IspId::new(isp)))
                    })
                })
                .collect(),
        };
        for (video, isp) in placements {
            let id = self.alloc_peer_id();
            let seed = PeerState::seed(id, isp, video, chunk_count, capacity);
            self.topology.register_peer(id, isp)?;
            self.tracker.register(id, video, true);
            self.peers[id.index()] = Some(seed);
        }
        Ok(())
    }

    fn alloc_peer_id(&mut self) -> PeerId {
        self.peers.push(None);
        PeerId::new((self.peers.len() - 1) as u32)
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The video catalog.
    pub fn catalog(&self) -> &VideoCatalog {
        &self.catalog
    }

    /// The network topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The metrics recorder.
    pub fn recorder(&self) -> &SlotRecorder {
        &self.recorder
    }

    /// The upcoming slot index.
    pub fn current_slot(&self) -> SlotIndex {
        self.slot
    }

    /// The simulated time at the upcoming slot's start.
    pub fn now(&self) -> SimTime {
        self.slot.start(self.config.slot_len)
    }

    /// A peer's state, if online.
    pub fn peer(&self, id: PeerId) -> Option<&PeerState> {
        self.peers.get(id.index()).and_then(Option::as_ref)
    }

    /// Number of online watchers (excludes seeds).
    pub fn watcher_count(&self) -> usize {
        self.peers.iter().flatten().filter(|p| !p.is_seed()).count()
    }

    /// Number of online peers including seeds.
    pub fn online_count(&self) -> usize {
        self.peers.iter().flatten().count()
    }

    /// Number of online seeds.
    pub fn seed_count(&self) -> usize {
        self.peers.iter().flatten().filter(|p| p.is_seed()).count()
    }

    // ---- workload recording / replay ------------------------------------

    /// Starts recording every watcher admission (call before the first
    /// slot). The finished trace, obtained via
    /// [`System::take_workload_trace`], can be replayed on a fresh
    /// same-seed system with [`System::replay_workload`] to reproduce the
    /// identical workload without re-deriving it — how scenario sweeps
    /// share one generated workload across schedulers.
    pub fn record_workload(&mut self) {
        self.workload = WorkloadMode::Record(Vec::new());
    }

    /// Finishes recording and returns the trace (`None` unless
    /// [`System::record_workload`] was active).
    pub fn take_workload_trace(&mut self) -> Option<WorkloadTrace> {
        match std::mem::replace(&mut self.workload, WorkloadMode::Live) {
            WorkloadMode::Record(arrivals) => Some(WorkloadTrace { arrivals }),
            other => {
                self.workload = other;
                None
            }
        }
    }

    /// Switches the system to trace replay: watcher arrivals come verbatim
    /// from `trace` at their recorded slots, and every workload-*generating*
    /// entry point ([`System::add_static_peers`],
    /// [`System::enable_poisson_churn`], [`System::inject_flash_crowd`],
    /// [`System::set_churn_rate`], [`System::set_churn_popularity`])
    /// becomes a no-op — the trace already contains their effects. Events
    /// that mutate topology, seeds or throttles still apply normally.
    pub fn replay_workload(&mut self, trace: WorkloadTrace) {
        self.workload = WorkloadMode::Replay(trace.arrivals.into());
    }

    /// Whether the system is replaying a recorded workload trace.
    pub fn is_replaying_workload(&self) -> bool {
        matches!(self.workload, WorkloadMode::Replay(_))
    }

    // ---- end workload recording / replay --------------------------------

    /// Adds `n` watchers with join times staggered over
    /// `config.static_stagger`, Zipf-chosen videos, round-robin ISPs and
    /// uniform upload capacities — the paper's "static network". A no-op
    /// during workload replay (the trace already contains the arrivals).
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] if distribution parameters are
    /// invalid.
    pub fn add_static_peers(&mut self, n: usize) -> Result<()> {
        if self.is_replaying_workload() {
            return Ok(());
        }
        let zipf = ZipfMandelbrot::paper_video_popularity(self.config.video_count);
        let caps = UniformRange::new(self.config.upload_multiple.0, self.config.upload_multiple.1)?;
        let stagger = self.config.static_stagger.as_secs_f64();
        let mut arrivals = Vec::with_capacity(n);
        for _ in 0..n {
            let at = SimTime::from_secs_f64(self.rng.gen::<f64>() * stagger);
            arrivals.push(self.draw_arrival(at, None, None, &zipf, &caps));
        }
        self.enqueue_pending(arrivals);
        Ok(())
    }

    /// Draws one synthetic arrival: round-robin ISP and paper-law video
    /// unless pinned, uniform upload capacity, no early departure.
    fn draw_arrival(
        &mut self,
        at: SimTime,
        video: Option<VideoId>,
        isp: Option<IspId>,
        zipf: &ZipfMandelbrot,
        caps: &UniformRange,
    ) -> PeerArrival {
        let isp = isp.unwrap_or_else(|| {
            let i = IspId::new(self.next_isp);
            self.next_isp = (self.next_isp + 1) % self.config.isp_count;
            i
        });
        PeerArrival {
            at,
            isp,
            video: video.unwrap_or_else(|| VideoId::new(zipf.sample_index(&mut self.rng) as u32)),
            upload_rate_multiple: caps.sample(&mut self.rng),
            departs_at: None,
        }
    }

    /// Queues arrivals for slot-boundary admission.
    fn enqueue_pending(&mut self, arrivals: Vec<PeerArrival>) {
        // Pop-from-end admission order ⇒ sort descending by time.
        self.pending_static.extend(arrivals);
        self.pending_static.sort_by_key(|a| std::cmp::Reverse(a.at));
    }

    /// Enables Poisson churn (dynamic experiments): joins at
    /// `config.arrival_rate`, early departures with
    /// `config.early_departure_prob`. A no-op during workload replay.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] if churn parameters are invalid.
    pub fn enable_poisson_churn(&mut self) -> Result<()> {
        if self.is_replaying_workload() {
            return Ok(());
        }
        let cc = ChurnConfig {
            arrival_rate: self.config.arrival_rate,
            early_departure_prob: self.config.early_departure_prob,
            upload_multiple: self.config.upload_multiple,
            isp_count: self.config.isp_count,
        };
        let mut model = ChurnModel::new(cc, &self.catalog)?;
        // Enabling churn mid-run must not flood the system with back-dated
        // arrivals: the process starts counting from the current instant.
        model.advance_to(self.now());
        self.churn = Some(ChurnState { model, pending: VecDeque::new() });
        Ok(())
    }

    // ---- scenario event hooks -------------------------------------------
    //
    // Controlled mutation APIs applied at slot boundaries by the
    // `p2p-scenario` engine. Each hook only uses the system RNG in ways
    // that are independent of the installed scheduler, so the same seed
    // and event sequence reproduce the identical workload under every
    // scheduler.

    /// Injects a flash crowd: `n` watchers joining at the upcoming slot
    /// boundary. `video`/`isp` pin the crowd to one title or region;
    /// `None` draws videos from the paper's Zipf–Mandelbrot law and
    /// spreads ISPs round-robin.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] for an unknown video or ISP.
    pub fn inject_flash_crowd(
        &mut self,
        n: usize,
        video: Option<VideoId>,
        isp: Option<IspId>,
    ) -> Result<()> {
        if let Some(v) = video {
            self.catalog.video(v)?;
        }
        if let Some(i) = isp {
            if i.index() >= usize::from(self.config.isp_count) {
                return Err(P2pError::invalid_config("isp", "id out of range"));
            }
        }
        // Validate before the replay short-circuit so replayed runs reject
        // exactly what recorded runs would have rejected.
        if self.is_replaying_workload() {
            return Ok(());
        }
        let zipf = ZipfMandelbrot::paper_video_popularity(self.config.video_count);
        let caps = UniformRange::new(self.config.upload_multiple.0, self.config.upload_multiple.1)?;
        let at = self.now();
        let mut arrivals = Vec::with_capacity(n);
        for _ in 0..n {
            arrivals.push(self.draw_arrival(at, video, isp, &zipf, &caps));
        }
        self.enqueue_pending(arrivals);
        Ok(())
    }

    /// Fails up to `count` seed peers (lowest peer ids first, so the
    /// victim set is deterministic), optionally only seeds of one video.
    /// Returns how many were actually removed. Failed seeds vanish from
    /// the tracker and topology; neighbor lists shed them at the next
    /// slot boundary, exactly like a departed watcher.
    pub fn fail_seeds(&mut self, count: usize, video: Option<VideoId>) -> usize {
        let victims: Vec<PeerId> = self
            .peers
            .iter()
            .flatten()
            .filter(|p| p.is_seed() && video.is_none_or(|v| p.video() == v))
            .map(PeerState::id)
            .take(count)
            .collect();
        for id in &victims {
            if let Some(p) = self.peers[id.index()].take() {
                self.tracker.unregister(*id, p.video());
                self.topology.unregister_peer(*id);
            }
        }
        if self.incremental() {
            self.cache.remove_peers(&victims);
        }
        victims.len()
    }

    /// Brings up a fresh seed for `video` inside `isp` (late seeding /
    /// seed recovery), with the configured seed capacity and a full buffer.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] for an unknown video or ISP.
    pub fn add_seed(&mut self, video: VideoId, isp: IspId) -> Result<PeerId> {
        let chunk_count = self.catalog.video(video)?.chunk_count();
        if isp.index() >= usize::from(self.config.isp_count) {
            return Err(P2pError::invalid_config("isp", "id out of range"));
        }
        let id = self.alloc_peer_id();
        let capacity = Bandwidth::new(self.config.seed_capacity());
        let seed = PeerState::seed(id, isp, video, chunk_count, capacity);
        self.topology.register_peer(id, isp)?;
        self.tracker.register(id, video, true);
        self.peers[id.index()] = Some(seed);
        Ok(id)
    }

    /// Changes the Poisson churn arrival rate mid-run, enabling churn
    /// first (from the current instant) if it was off.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] for a non-positive rate.
    pub fn set_churn_rate(&mut self, rate: f64) -> Result<()> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(P2pError::invalid_config("arrival_rate", "must be positive"));
        }
        if self.is_replaying_workload() {
            return Ok(());
        }
        if self.churn.is_none() {
            self.enable_poisson_churn()?;
        }
        let now = self.now();
        let churn = self.churn.as_mut().expect("just enabled");
        churn.model.set_rate(rate)?;
        // Drop the pre-sampled old-rate arrivals and resample from this
        // instant: memorylessness makes the restart statistically exact,
        // and the burst takes effect at its event slot instead of after
        // one stale old-rate gap.
        churn.pending.clear();
        churn.model.restart_at(now);
        self.config.arrival_rate = rate;
        Ok(())
    }

    /// Re-weights churn video popularity to a Zipf–Mandelbrot law with the
    /// given `alpha`/`q` (popularity shifts: large `alpha` concentrates
    /// demand on the head of the catalog). Enables churn if it was off.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] for invalid law parameters.
    pub fn set_churn_popularity(&mut self, alpha: f64, q: f64) -> Result<()> {
        let law = ZipfMandelbrot::new(self.config.video_count, alpha, q)?;
        if self.is_replaying_workload() {
            return Ok(());
        }
        if self.churn.is_none() {
            self.enable_poisson_churn()?;
        }
        let now = self.now();
        let churn = self.churn.as_mut().expect("just enabled");
        churn.model.set_popularity(law)?;
        // The queued arrival was drawn under the old law; resample it.
        churn.pending.clear();
        churn.model.restart_at(now);
        Ok(())
    }

    /// Throttles the upload capacity of every peer in `isp` by a
    /// multiplicative `factor` in `[0, 1]`, applied when slot problems are
    /// built; replaces any previous throttle for that ISP (1.0 lifts it).
    ///
    /// Capacities floor to whole chunks per slot, but a nonzero factor
    /// never floors a nonzero uploader to 0 — a mild throttle is "slower",
    /// not an outage, so at least one chunk per slot survives. A factor of
    /// exactly 0 is the explicit hard-outage semantics: the ISP's peers
    /// upload nothing until the throttle is lifted.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] for an out-of-range ISP or a
    /// factor outside `[0, 1]`.
    pub fn set_isp_throttle(&mut self, isp: IspId, factor: f64) -> Result<()> {
        if isp.index() >= usize::from(self.config.isp_count) {
            return Err(P2pError::invalid_config("isp", "id out of range"));
        }
        if !factor.is_finite() || !(0.0..=1.0).contains(&factor) {
            return Err(P2pError::invalid_config("throttle", "must be a finite factor in [0, 1]"));
        }
        self.isp_throttles.insert(isp, factor);
        Ok(())
    }

    /// Removes every per-ISP throttle.
    pub fn clear_isp_throttles(&mut self) {
        self.isp_throttles.clear();
    }

    /// The active upload-capacity multiplier of an ISP (1.0 = unthrottled).
    pub fn isp_throttle(&self, isp: IspId) -> f64 {
        self.isp_throttles.get(&isp).copied().unwrap_or(1.0)
    }

    /// Reprices every inter-ISP link by `factor` (see
    /// [`Topology::set_inter_cost_scale`]); invalidates cached link costs.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] for invalid factors.
    pub fn set_inter_link_cost_scale(&mut self, factor: f64) -> Result<()> {
        self.topology.set_inter_cost_scale(factor)?;
        self.cache.invalidate_costs();
        Ok(())
    }

    /// Reprices the inter-ISP links touching `isp` by `factor` (see
    /// [`Topology::set_isp_cost_scale`]); invalidates cached link costs.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] for invalid factors or ISPs.
    pub fn set_isp_link_cost_scale(&mut self, isp: IspId, factor: f64) -> Result<()> {
        self.topology.set_isp_cost_scale(isp, factor)?;
        self.cache.invalidate_costs();
        Ok(())
    }

    /// Drops all link-cost repricing, restoring the base cost model;
    /// invalidates cached link costs.
    pub fn reset_link_cost_scales(&mut self) {
        self.topology.reset_cost_scales();
        self.cache.invalidate_costs();
    }

    // ---- end scenario event hooks ---------------------------------------

    /// Whether the incremental slot-problem cache is active.
    fn incremental(&self) -> bool {
        self.config.slot_build == SlotBuild::Incremental
    }

    fn spawn_watcher(&mut self, arrival: PeerArrival) -> Result<PeerId> {
        if let WorkloadMode::Record(trace) = &mut self.workload {
            trace.push((self.slot.get(), arrival));
        }
        let id = self.alloc_peer_id();
        let chunk_count = self.catalog.video(arrival.video)?.chunk_count();
        let watcher = PeerState::watcher(
            id,
            arrival.isp,
            arrival.video,
            chunk_count,
            self.catalog.params().chunks_per_second(),
            arrival.at + self.config.startup_delay,
            Bandwidth::new(self.config.watcher_capacity(arrival.upload_rate_multiple)),
            arrival.departs_at,
        );
        self.topology.register_peer(id, arrival.isp)?;
        self.tracker.register(id, arrival.video, false);
        self.peers[id.index()] = Some(watcher);
        Ok(id)
    }

    /// Admits all pending joins with `at <= now` (the paper admits newly
    /// joined peers at slot boundaries so running auctions are undisturbed).
    fn admit_pending(&mut self, now: SimTime) -> Result<()> {
        if matches!(self.workload, WorkloadMode::Replay(_)) {
            // Scripted admission: spawn the trace's arrivals for this slot
            // in recorded order — identical ids, ISPs and capacities as the
            // recorded run, with zero RNG/churn-model work.
            let slot = self.slot.get();
            loop {
                let WorkloadMode::Replay(trace) = &mut self.workload else { unreachable!() };
                match trace.front() {
                    Some(&(s, a)) if s <= slot => {
                        trace.pop_front();
                        self.spawn_watcher(a)?;
                    }
                    _ => break,
                }
            }
            return Ok(());
        }
        while let Some(a) = self.pending_static.last() {
            if a.at > now {
                break;
            }
            let a = self.pending_static.pop().expect("peeked");
            self.spawn_watcher(a)?;
        }
        // Poisson arrivals: top the queue up until its tail is beyond `now`
        // (so the generator is always exactly one arrival ahead), then admit
        // every arrival that is due. The queue never drops arrivals, no
        // matter how many a churn burst packs into one slot.
        if let Some(churn) = self.churn.as_mut() {
            while churn.pending.back().is_none_or(|a| a.at <= now) {
                let a = churn.model.next_arrival(&self.catalog, &mut self.rng);
                churn.pending.push_back(a);
            }
        }
        while let Some(churn) = self.churn.as_mut() {
            match churn.pending.front() {
                Some(a) if a.at <= now => {
                    let a = churn.pending.pop_front().expect("peeked");
                    self.spawn_watcher(a)?;
                }
                _ => break,
            }
        }
        Ok(())
    }

    /// Removes watchers that finished or departed by `now`.
    fn remove_gone(&mut self, now: SimTime) {
        let incremental = self.incremental();
        let gone: Vec<PeerId> =
            self.peers.iter().flatten().filter(|p| p.gone(now)).map(PeerState::id).collect();
        for id in &gone {
            if let Some(p) = self.peers[id.index()].take() {
                self.tracker.unregister(*id, p.video());
                self.topology.unregister_peer(*id);
            }
        }
        if incremental {
            self.cache.remove_peers(&gone);
        }
        // Drop departed peers from neighbor lists; shedding a neighbor
        // invalidates the peer's cached request block.
        let online: HashSet<PeerId> = self.peers.iter().flatten().map(PeerState::id).collect();
        for p in self.peers.iter_mut().flatten() {
            let before = p.neighbors.len();
            p.neighbors.retain(|n| online.contains(n));
            if incremental && p.neighbors.len() != before {
                self.cache.mark_dirty(p.id());
            }
        }
    }

    /// Refills neighbor lists up to the configured target.
    fn refresh_neighbors(&mut self, now: SimTime) {
        let positions: HashMap<PeerId, f64> =
            self.peers.iter().flatten().map(|p| (p.id(), p.position(now))).collect();
        let needy: Vec<(PeerId, VideoId, f64)> = self
            .peers
            .iter()
            .flatten()
            .filter(|p| !p.is_seed() && p.neighbors.len() < self.config.neighbor_count)
            .map(|p| (p.id(), p.video(), p.position(now)))
            .collect();
        let incremental = self.incremental();
        for (id, video, pos) in needy {
            let neighbors = self.tracker.neighbors_for(
                id,
                video,
                self.config.neighbor_count,
                self.config.max_seed_neighbors,
                pos,
                |p| positions.get(&p).copied().unwrap_or(0.0),
            );
            if let Some(p) = self.peers[id.index()].as_mut() {
                // Only an actual change invalidates the cached block —
                // permanently under-filled peers re-query every slot but
                // usually get the same list back.
                if p.neighbors != neighbors {
                    if incremental {
                        self.cache.mark_dirty(id);
                    }
                    p.neighbors = neighbors;
                }
            }
        }
    }

    /// Builds the slot's welfare-maximization problem from current buffers,
    /// windows and prices (Sec. III-B). Public so harnesses (e.g. the
    /// Fig. 2 message-level auction) can drive slots manually.
    ///
    /// With [`SlotBuild::Incremental`] the instance comes from the
    /// [`SlotProblemCache`] — bit-identical to the cold rebuild (which
    /// [`System::cold_slot_problem`] exposes as the oracle), but derived
    /// only from what changed since the previous slot.
    ///
    /// # Errors
    ///
    /// Returns an error only on internal inconsistency.
    pub fn prepare_slot(&mut self) -> Result<SlotProblem> {
        let now = self.now();
        self.admit_pending(now)?;
        self.remove_gone(now);
        self.refresh_neighbors(now);
        match self.config.slot_build {
            SlotBuild::Cold => self.build_slot_problem(now),
            SlotBuild::Incremental => self.cache.build(
                &self.peers,
                &self.topology,
                &self.config,
                &self.isp_throttles,
                now,
            ),
        }
    }

    /// The cold-rebuilt problem for the current, already-admitted slot
    /// state — the oracle the incremental path must match. Call right after
    /// [`System::prepare_slot`] (before [`System::complete_slot`] advances
    /// the slot) to compare the two construction paths.
    ///
    /// # Errors
    ///
    /// Returns an error only on internal inconsistency.
    pub fn cold_slot_problem(&self) -> Result<SlotProblem> {
        self.build_slot_problem(self.now())
    }

    /// Counters from the incremental builder's most recent slot (all zero
    /// under [`SlotBuild::Cold`]).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The incremental cache's memory footprint (all zero under
    /// [`SlotBuild::Cold`]). On long churny runs every counter stays
    /// bounded by the *online* population — departed watchers' blocks and
    /// reverse-index entries are pruned, not accumulated.
    pub fn cache_memory(&self) -> crate::cache::CacheMemory {
        self.cache.memory()
    }

    fn build_slot_problem(&self, now: SimTime) -> Result<SlotProblem> {
        let delivery_time = now
            + SimDuration::from_secs_f64(
                self.config.slot_len.as_secs_f64() * self.config.delivery_fraction,
            );
        let mut b = WelfareInstance::builder();
        let mut provider_idx: HashMap<PeerId, usize> = HashMap::new();
        for p in self.peers.iter().flatten() {
            let cap = p.upload_capacity().chunks_per_slot();
            let cap = match self.isp_throttles.get(&p.isp()) {
                Some(&f) => throttled_capacity(cap, f),
                None => cap,
            };
            let idx = b.add_provider(p.id(), cap);
            provider_idx.insert(p.id(), idx);
        }
        let mut urgency = Vec::new();
        let window = self.config.lookahead_chunks();
        for p in self.peers.iter().flatten() {
            if p.is_seed() {
                continue;
            }
            let chunk_count = p.buffer.chunk_count();
            let pos = p.position(now);
            let first = if pos < 0.0 { 0 } else { (pos.floor() as i64 + 1).max(0) as u32 };
            let last = first.saturating_add(window).min(chunk_count);
            if first >= last {
                continue;
            }
            for k in first..last {
                if p.buffer.has_index(k) {
                    continue;
                }
                let deadline = p.deadline_of(k);
                // Chunks that no slot (including this one) can deliver
                // before their deadline are skipped: fetching them would
                // only waste bandwidth on an already-lost chunk.
                if deadline < delivery_time {
                    continue;
                }
                let chunk = ChunkId::new(p.video(), k);
                // Candidates: neighbors caching the chunk.
                let mut edges = Vec::new();
                for &n in &p.neighbors {
                    if let Some(np) = self.peer(n) {
                        if np.video() == p.video() && np.buffer.has_index(k) {
                            edges.push(n);
                        }
                    }
                }
                if edges.is_empty() {
                    continue;
                }
                let d_time = deadline.since(now);
                // Remaining scheduling slack: how many future slots' mid-
                // slot deliveries would still beat the deadline.
                let slack_slots = (deadline.since(delivery_time).as_secs_f64()
                    / self.config.slot_len.as_secs_f64())
                .floor() as u32;
                let valuation = self.config.chunk_valuation(d_time, slack_slots);
                let r = b.add_request(p2p_types::RequestId::new(p.id(), chunk));
                for u in edges {
                    let cost = self.topology.cost(u, p.id())?;
                    b.add_edge(r, provider_idx[&u], valuation, cost)
                        .map_err(|e| P2pError::MalformedInstance(e.to_string()))?;
                }
                urgency.push(d_time);
            }
        }
        SlotProblem::new(b.build()?, urgency)
    }

    /// Applies a schedule to the system: chunk deliveries, welfare and
    /// traffic accounting, playback advance with miss accounting, and
    /// advancing to the next slot. Public counterpart of
    /// [`System::prepare_slot`].
    ///
    /// # Errors
    ///
    /// Returns an error if the schedule references unknown peers.
    pub fn complete_slot(
        &mut self,
        problem: &SlotProblem,
        schedule: &Schedule,
    ) -> Result<SlotMetrics> {
        let now = self.now();
        let slot_end = now + self.config.slot_len;
        let delivery_time = now
            + SimDuration::from_secs_f64(
                self.config.slot_len.as_secs_f64() * self.config.delivery_fraction,
            );

        let mut metrics = SlotMetrics::default();
        let mut delivered: HashMap<(PeerId, u32), SimTime> = HashMap::new();
        let instance = &problem.instance;
        for (r, choice) in schedule.assignment.choices().iter().enumerate() {
            let Some(e) = choice else { continue };
            let req = instance.request(r);
            let edge = &req.edges[*e];
            let downstream = req.id.downstream();
            let upstream = instance.provider(edge.provider).peer;
            let inter = self.topology.is_inter_isp(upstream, downstream)?;
            metrics.record_transfer(edge.utility(), inter);
            delivered.insert((downstream, req.id.chunk().index_in_video()), delivery_time);
        }

        // Miss accounting: chunks due during this slot are hits only if
        // buffered at slot start or delivered before their deadline.
        for p in self.peers.iter().flatten() {
            if p.is_seed() {
                continue;
            }
            let pos_now = p.position(now);
            let pos_end = p.position(slot_end);
            let first = (pos_now.floor() as i64 + 1).max(0);
            let last = pos_end.floor() as i64;
            for k in first..=last {
                if k < 0 || k >= i64::from(p.buffer.chunk_count()) {
                    continue;
                }
                let k = k as u32;
                metrics.due_chunks += 1;
                let hit = p.buffer.has_index(k)
                    || delivered.get(&(p.id(), k)).is_some_and(|&t| p.deadline_of(k) >= t);
                if !hit {
                    metrics.missed_chunks += 1;
                }
            }
        }

        // Apply deliveries; each one invalidates exactly two things in the
        // incremental cache — the receiver's own request and the candidate
        // lists of watchers neighboring the receiver.
        let incremental = self.incremental();
        for ((peer, k), _) in delivered {
            if let Some(p) = self.peers[peer.index()].as_mut() {
                p.buffer.insert_index(k);
                if incremental {
                    let video = p.video();
                    self.cache.on_delivered(peer, video, k);
                }
            }
        }

        metrics.online_peers = self.watcher_count() as u64;
        self.recorder.record(self.slot, metrics);
        self.slot = self.slot.next();
        Ok(metrics)
    }

    /// Turns on run-report collection: engine probes on the scheduler,
    /// wall-clock phase timings, HLL sketches of unique requesters /
    /// providers / transfer edges, and per-slot cache counter deltas.
    /// Memory stays bounded by O(stepped slots) plus three fixed-size
    /// sketches; the slot loop without probes is untouched. Only slots
    /// stepped through [`System::step_slot`] / [`System::run_slots`] while
    /// probes are on appear in the report.
    pub fn enable_probes(&mut self) {
        self.scheduler.set_probes(true);
        let mut obs = ObsState::new(self.scheduler.name(), self.config.slot_len.as_secs_f64());
        // Start cumulative-counter deltas from this instant, not from the
        // beginning of the run.
        obs.patched_seen = self.cache.patched_total();
        obs.pruned_seen = self.cache.pruned_total();
        self.obs = Some(obs);
    }

    /// Whether run-report collection is on.
    pub fn probes_enabled(&self) -> bool {
        self.obs.is_some()
    }

    /// Finishes collection and returns the accumulated [`RunReport`]
    /// (`None` unless [`System::enable_probes`] was called). Probes are
    /// switched back off; the report's `scenario` field is left empty for
    /// the caller to fill.
    pub fn take_run_report(&mut self) -> Option<RunReport> {
        let obs = self.obs.take()?;
        self.scheduler.set_probes(false);
        Some(obs.finish())
    }

    /// Folds one completed slot into the run report (probes on only).
    fn observe_slot(
        &mut self,
        slot: u64,
        problem: &SlotProblem,
        metrics: &SlotMetrics,
        phases: PhaseTimings,
    ) {
        let engine = self.scheduler.take_probe_report().filter(|r| !r.is_empty());
        let cache = if self.incremental() {
            let s = self.cache.stats();
            Some(CacheCounters {
                blocks_rebuilt: s.blocks_rebuilt,
                blocks_reused: s.blocks_reused,
                chunks_fresh: s.chunks_fresh,
                chunks_reused: s.chunks_reused,
                patched: 0, // deltas filled below, after `obs` is borrowed
                pruned: 0,
            })
        } else {
            None
        };
        let patched_total = self.cache.patched_total();
        let pruned_total = self.cache.pruned_total();
        let Some(obs) = self.obs.as_mut() else { return };
        let cache = cache.map(|mut c| {
            c.patched = patched_total - obs.patched_seen;
            c.pruned = pruned_total - obs.pruned_seen;
            c
        });
        obs.patched_seen = patched_total;
        obs.pruned_seen = pruned_total;
        let instance = &problem.instance;
        for p in instance.providers() {
            obs.providers.insert_u64(u64::from(p.peer.get()));
        }
        for req in instance.requests() {
            let downstream = u64::from(req.id.downstream().get());
            obs.requesters.insert_u64(downstream);
            for e in &req.edges {
                let upstream = u64::from(instance.provider(e.provider).peer.get());
                obs.edges.insert_pair(upstream, downstream);
            }
        }
        obs.report.push_slot(SlotReport {
            slot,
            phases,
            requests: instance.request_count() as u64,
            providers: instance.provider_count() as u64,
            edges: instance.edge_count() as u64,
            welfare: metrics.welfare,
            transfers: metrics.transfers,
            inter_isp: metrics.inter_isp_transfers,
            missed: metrics.missed_chunks,
            online: metrics.online_peers,
            engine,
            cache,
        });
    }

    /// Runs one full slot with the system's own scheduler.
    ///
    /// # Errors
    ///
    /// Propagates scheduler and accounting errors.
    pub fn step_slot(&mut self) -> Result<SlotMetrics> {
        if self.obs.is_none() {
            let problem = self.prepare_slot()?;
            let schedule = self.scheduler.schedule(&problem)?;
            return self.complete_slot(&problem, &schedule);
        }
        let slot = self.slot.get();
        let (problem, metrics, phases) = match self.config.clock {
            ClockMode::Wall => {
                let t0 = std::time::Instant::now();
                let problem = self.prepare_slot()?;
                let t1 = std::time::Instant::now();
                let schedule = self.scheduler.schedule(&problem)?;
                let t2 = std::time::Instant::now();
                let metrics = self.complete_slot(&problem, &schedule)?;
                let t3 = std::time::Instant::now();
                let phases = PhaseTimings {
                    prepare_s: (t1 - t0).as_secs_f64(),
                    schedule_s: (t2 - t1).as_secs_f64(),
                    complete_s: (t3 - t2).as_secs_f64(),
                };
                (problem, metrics, phases)
            }
            // Virtual time: the schedule phase is the simulated swarm's
            // convergence time and the bookkeeping phases don't exist on
            // that clock — no `Instant` is sampled anywhere, so probed
            // reports are byte-identical across runs and machines.
            ClockMode::Virtual => {
                let problem = self.prepare_slot()?;
                let schedule = self.scheduler.schedule(&problem)?;
                let metrics = self.complete_slot(&problem, &schedule)?;
                let phases = PhaseTimings {
                    prepare_s: 0.0,
                    schedule_s: self.scheduler.take_virtual_elapsed().unwrap_or(0.0),
                    complete_s: 0.0,
                };
                (problem, metrics, phases)
            }
        };
        self.observe_slot(slot, &problem, &metrics, phases);
        Ok(metrics)
    }

    /// Runs `n` consecutive slots.
    ///
    /// # Errors
    ///
    /// Propagates the first slot error.
    pub fn run_slots(&mut self, n: u64) -> Result<()> {
        for _ in 0..n {
            self.step_slot()?;
        }
        Ok(())
    }

    /// Name of the installed scheduler.
    pub fn scheduler_name(&self) -> String {
        self.scheduler.name().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_sched::{AuctionScheduler, SimpleLocalityScheduler};

    fn small_system(seed: u64) -> System {
        let config = SystemConfig::small_test().with_seed(seed);
        System::new(config, Box::new(AuctionScheduler::paper())).unwrap()
    }

    #[test]
    fn seeds_are_spawned_per_placement() {
        let sys = small_system(1);
        // PerVideoTotal(2) × 5 videos = 10 seeds.
        assert_eq!(sys.online_count(), 10);
        assert_eq!(sys.watcher_count(), 0);
    }

    #[test]
    fn per_isp_per_video_placement() {
        let mut config = SystemConfig::small_test();
        config.seeds = SeedPlacement::PerIspPerVideo(2);
        let sys = System::new(config, Box::new(AuctionScheduler::paper())).unwrap();
        // 2 seeds × 2 ISPs × 5 videos = 20.
        assert_eq!(sys.online_count(), 20);
    }

    #[test]
    fn static_peers_join_within_stagger_window() {
        // A long-enough video that no watcher can finish inside the
        // observed window, for any draw of the staggered join times —
        // otherwise the final count would depend on the RNG stream.
        let mut config = SystemConfig::small_test().with_seed(2);
        config.streaming.video_size_bytes = 8_000_000; // 100 s of playback
        let mut sys = System::new(config, Box::new(AuctionScheduler::paper())).unwrap();
        sys.add_static_peers(12).unwrap();
        assert_eq!(sys.watcher_count(), 0, "not admitted before first slot");
        sys.run_slots(3).unwrap();
        assert!(sys.watcher_count() > 0);
        // All admitted after the stagger window has fully elapsed.
        sys.run_slots(3).unwrap();
        assert_eq!(sys.watcher_count(), 12);
    }

    #[test]
    fn slots_produce_metrics_and_transfers() {
        let mut sys = small_system(3);
        sys.add_static_peers(10).unwrap();
        sys.run_slots(8).unwrap();
        assert_eq!(sys.recorder().len(), 8);
        let total_transfers: u64 = sys.recorder().slots().iter().map(|(_, m)| m.transfers).sum();
        assert!(total_transfers > 0, "peers must download chunks");
        let welfare: f64 = sys.recorder().slots().iter().map(|(_, m)| m.welfare).sum();
        assert!(welfare > 0.0, "auction welfare must be positive");
    }

    #[test]
    fn buffers_fill_monotonically() {
        let mut sys = small_system(4);
        sys.add_static_peers(6).unwrap();
        sys.run_slots(4).unwrap();
        let filled: Vec<f64> = sys
            .peers
            .iter()
            .flatten()
            .filter(|p| !p.is_seed())
            .map(|p| p.buffer.fill_ratio())
            .collect();
        assert!(filled.iter().any(|&f| f > 0.0), "someone downloaded something");
    }

    #[test]
    fn watchers_leave_after_finishing() {
        let mut sys = small_system(5);
        sys.add_static_peers(5).unwrap();
        // Small video: 125 chunks = 12.5 s; startup 10 s; stagger 10 s.
        // By t = 50 s everyone is done and gone.
        sys.run_slots(12).unwrap();
        assert_eq!(sys.watcher_count(), 0);
    }

    #[test]
    fn churn_admits_and_departs() {
        let config = SystemConfig::small_test().with_seed(6).with_departures(0.5);
        let mut sys = System::new(config, Box::new(AuctionScheduler::paper())).unwrap();
        sys.enable_poisson_churn().unwrap();
        sys.run_slots(10).unwrap();
        let pops = sys.recorder().population_series();
        assert!(pops.y_max().unwrap() > 0.0, "peers joined");
    }

    #[test]
    fn locality_scheduler_also_runs() {
        let config = SystemConfig::small_test().with_seed(7);
        let mut sys = System::new(config, Box::new(SimpleLocalityScheduler::new())).unwrap();
        sys.add_static_peers(10).unwrap();
        sys.run_slots(6).unwrap();
        assert_eq!(sys.scheduler_name(), "simple_locality");
        let transfers: u64 = sys.recorder().slots().iter().map(|(_, m)| m.transfers).sum();
        assert!(transfers > 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = |seed| {
            let mut sys = small_system(seed);
            sys.add_static_peers(8).unwrap();
            sys.run_slots(5).unwrap();
            sys.recorder()
                .slots()
                .iter()
                .map(|(_, m)| (m.welfare.to_bits(), m.transfers, m.missed_chunks))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn flash_crowd_joins_at_next_boundary() {
        let mut sys = small_system(20);
        sys.run_slots(2).unwrap();
        sys.inject_flash_crowd(25, Some(p2p_types::VideoId::new(1)), None).unwrap();
        assert_eq!(sys.watcher_count(), 0, "crowd waits for the slot boundary");
        sys.step_slot().unwrap();
        assert_eq!(sys.watcher_count(), 25);
        assert!(sys.inject_flash_crowd(1, Some(p2p_types::VideoId::new(99)), None).is_err());
        assert!(sys.inject_flash_crowd(1, None, Some(IspId::new(9))).is_err());
    }

    #[test]
    fn seeds_fail_and_recover() {
        let mut sys = small_system(21);
        let before = sys.seed_count();
        assert_eq!(sys.fail_seeds(3, None), 3);
        assert_eq!(sys.seed_count(), before - 3);
        // Per-video failure only touches that video's seeds.
        let v0 = VideoId::new(0);
        let removed = sys.fail_seeds(100, Some(v0));
        assert!(sys.peers.iter().flatten().all(|p| !(p.is_seed() && p.video() == v0)));
        let id = sys.add_seed(v0, IspId::new(1)).unwrap();
        assert!(sys.peer(id).unwrap().is_seed());
        assert_eq!(sys.seed_count(), before - 3 - removed + 1);
        assert!(sys.add_seed(VideoId::new(99), IspId::new(0)).is_err());
        // The system keeps running after the churn in the seed roster.
        sys.add_static_peers(5).unwrap();
        sys.run_slots(3).unwrap();
    }

    #[test]
    fn churn_rate_burst_floods_joins() {
        let count_with = |burst: Option<f64>| {
            let config = SystemConfig::small_test().with_seed(22);
            let mut sys = System::new(config, Box::new(AuctionScheduler::paper())).unwrap();
            sys.enable_poisson_churn().unwrap();
            sys.run_slots(2).unwrap();
            if let Some(rate) = burst {
                sys.set_churn_rate(rate).unwrap();
            }
            sys.run_slots(2).unwrap();
            sys.recorder().population_series().y_max().unwrap()
        };
        assert!(count_with(Some(20.0)) > 2.0 * count_with(None));
    }

    #[test]
    fn churn_burst_takes_effect_at_its_slot() {
        // Baseline rate so low (mean gap 500 s) that the pre-sampled
        // arrival sits far beyond the horizon; the burst must not wait for
        // that stale old-rate gap.
        let mut config = SystemConfig::small_test().with_seed(26);
        config.arrival_rate = 0.002;
        let mut sys = System::new(config, Box::new(AuctionScheduler::paper())).unwrap();
        sys.enable_poisson_churn().unwrap();
        sys.run_slots(3).unwrap();
        assert_eq!(sys.watcher_count(), 0, "nobody arrives at 0.002/s");
        sys.set_churn_rate(10.0).unwrap();
        // New-rate arrivals begin at the event instant; they land during
        // the event slot and are admitted at the next boundary.
        sys.run_slots(2).unwrap();
        assert!(sys.watcher_count() > 10, "the burst floods from its event slot");
    }

    #[test]
    fn churn_rate_auto_enables_churn() {
        let mut sys = small_system(23);
        sys.set_churn_rate(5.0).unwrap();
        sys.run_slots(3).unwrap();
        assert!(sys.recorder().population_series().y_max().unwrap() > 0.0);
        assert!(sys.set_churn_rate(0.0).is_err());
        sys.set_churn_popularity(10.0, 0.0).unwrap();
        assert!(sys.set_churn_popularity(f64::NAN, 0.0).is_err());
    }

    #[test]
    fn isp_throttle_caps_provider_capacity() {
        let mut sys = small_system(24);
        sys.add_static_peers(8).unwrap();
        sys.set_isp_throttle(IspId::new(0), 0.25).unwrap();
        assert_eq!(sys.isp_throttle(IspId::new(0)), 0.25);
        assert_eq!(sys.isp_throttle(IspId::new(1)), 1.0);
        let problem = sys.prepare_slot().unwrap();
        for prov in problem.instance.providers() {
            let peer = sys.peer(prov.peer).unwrap();
            let full = peer.upload_capacity().chunks_per_slot();
            if peer.isp() == IspId::new(0) {
                assert_eq!(prov.capacity.chunks_per_slot(), (f64::from(full) * 0.25) as u32);
            } else {
                assert_eq!(prov.capacity.chunks_per_slot(), full);
            }
        }
        sys.clear_isp_throttles();
        assert_eq!(sys.isp_throttle(IspId::new(0)), 1.0);
        assert!(sys.set_isp_throttle(IspId::new(9), 0.5).is_err());
    }

    #[test]
    fn throttle_factors_validated_into_unit_interval() {
        let mut sys = small_system(27);
        sys.add_static_peers(4).unwrap();
        assert!(sys.set_isp_throttle(IspId::new(0), 1.5).is_err(), "boosts are not throttles");
        assert!(sys.set_isp_throttle(IspId::new(0), -0.1).is_err());
        assert!(sys.set_isp_throttle(IspId::new(0), f64::NAN).is_err());
        // Factor 0 is the documented hard-outage semantics.
        sys.set_isp_throttle(IspId::new(0), 0.0).unwrap();
        let problem = sys.prepare_slot().unwrap();
        for prov in problem.instance.providers() {
            let peer = sys.peer(prov.peer).unwrap();
            if peer.isp() == IspId::new(0) {
                assert_eq!(prov.capacity.chunks_per_slot(), 0, "hard outage uploads nothing");
            } else {
                assert!(prov.capacity.chunks_per_slot() > 0);
            }
        }
    }

    #[test]
    fn mild_throttle_never_zeroes_a_nonzero_uploader() {
        // The regression: `(cap * f).floor()` used to zero small uploaders
        // under any factor < 1, turning mild throttles into fake outages.
        let mut sys = small_system(28);
        sys.add_static_peers(6).unwrap();
        sys.set_isp_throttle(IspId::new(0), 1e-6).unwrap();
        let problem = sys.prepare_slot().unwrap();
        assert!(problem.instance.provider_count() > 0);
        for prov in problem.instance.providers() {
            let peer = sys.peer(prov.peer).unwrap();
            if peer.isp() == IspId::new(0) {
                assert_eq!(
                    prov.capacity.chunks_per_slot(),
                    1,
                    "a nonzero throttle must keep nonzero uploaders alive"
                );
            }
        }
    }

    #[test]
    fn incremental_build_matches_cold_oracle_slot_by_slot() {
        let config =
            SystemConfig::small_test().with_seed(30).with_slot_build(crate::SlotBuild::Incremental);
        let mut sys = System::new(config, Box::new(AuctionScheduler::paper())).unwrap();
        sys.add_static_peers(10).unwrap();
        let mut scheduler = AuctionScheduler::paper();
        let mut reused_any = false;
        for _ in 0..8 {
            let incremental = sys.prepare_slot().unwrap();
            let cold = sys.cold_slot_problem().unwrap();
            assert_eq!(incremental, cold, "incremental emit must match the cold oracle");
            reused_any |= sys.cache_stats().blocks_reused > 0;
            let schedule = scheduler.schedule(&incremental).unwrap();
            sys.complete_slot(&incremental, &schedule).unwrap();
        }
        assert!(reused_any, "a static swarm must reuse blocks across slots");
    }

    #[test]
    fn incremental_build_tracks_throttles_and_repricing() {
        let config =
            SystemConfig::small_test().with_seed(31).with_slot_build(crate::SlotBuild::Incremental);
        let mut sys = System::new(config, Box::new(AuctionScheduler::paper())).unwrap();
        sys.add_static_peers(8).unwrap();
        sys.run_slots(2).unwrap();
        sys.set_isp_throttle(IspId::new(0), 0.5).unwrap();
        sys.set_inter_link_cost_scale(7.0).unwrap();
        let incremental = sys.prepare_slot().unwrap();
        let cold = sys.cold_slot_problem().unwrap();
        assert_eq!(incremental, cold, "mutation hooks must invalidate the cache");
    }

    /// Regression (ROADMAP follow-on): the incremental cache's maps must
    /// not grow monotonically on long churn-heavy runs. Watchers join and
    /// depart continuously; after every slot the cache holds blocks only
    /// for online watchers, reverse-index keys only for online peers that
    /// actually have cached watchers, and no empty reverse-index sets.
    #[test]
    fn cache_memory_stays_bounded_under_heavy_churn() {
        let mut config = SystemConfig::small_test()
            .with_seed(34)
            .with_departures(0.9)
            .with_slot_build(crate::SlotBuild::Incremental);
        config.arrival_rate = 3.0;
        let mut sys = System::new(config, Box::new(AuctionScheduler::paper())).unwrap();
        sys.enable_poisson_churn().unwrap();
        let mut peak_online = 0;
        let mut saw_departures = false;
        let mut last_online = 0;
        for _ in 0..30 {
            sys.step_slot().unwrap();
            let online = sys.online_count();
            saw_departures |= online < last_online;
            last_online = online;
            peak_online = peak_online.max(online);
            let mem = sys.cache_memory();
            assert!(
                mem.blocks <= sys.watcher_count(),
                "blocks ({}) must not outlive watchers ({})",
                mem.blocks,
                sys.watcher_count()
            );
            assert!(
                mem.reverse_keys <= online,
                "reverse index keys ({}) must not exceed online peers ({online})",
                mem.reverse_keys
            );
            assert!(
                mem.dirty <= online,
                "dirty marks ({}) must not exceed online peers ({online})",
                mem.dirty
            );
            assert!(
                mem.reverse_entries >= mem.reverse_keys,
                "emptied reverse-index sets must be pruned, not kept as keys"
            );
        }
        assert!(saw_departures, "the run must actually churn");
        assert!(peak_online > 0, "the run must admit watchers");
        // The emitted problems stay bit-identical to the cold oracle
        // through all that churn (the pruning must not over-evict).
        let incremental = sys.prepare_slot().unwrap();
        let cold = sys.cold_slot_problem().unwrap();
        assert_eq!(incremental, cold);
    }

    #[test]
    fn workload_replay_reproduces_the_recorded_run() {
        let fingerprint = |sys: &System| {
            sys.recorder()
                .slots()
                .iter()
                .map(|(_, m)| (m.welfare.to_bits(), m.transfers, m.missed_chunks, m.online_peers))
                .collect::<Vec<_>>()
        };
        let run = |replay: Option<WorkloadTrace>| {
            let config = SystemConfig::small_test().with_seed(32).with_departures(0.4);
            let mut sys = System::new(config, Box::new(AuctionScheduler::paper())).unwrap();
            match replay {
                Some(trace) => sys.replay_workload(trace),
                None => sys.record_workload(),
            }
            sys.add_static_peers(6).unwrap();
            sys.enable_poisson_churn().unwrap();
            sys.inject_flash_crowd(5, None, None).unwrap();
            sys.run_slots(6).unwrap();
            let trace = sys.take_workload_trace();
            (fingerprint(&sys), trace)
        };
        let (live, trace) = run(None);
        let trace = trace.expect("recording was on");
        assert!(!trace.is_empty(), "the run admits watchers");
        let (replayed, no_trace) = run(Some(trace));
        assert_eq!(live, replayed, "replay must reproduce the recorded run bit-for-bit");
        assert!(no_trace.is_none(), "replay mode does not record");
    }

    #[test]
    fn replay_mode_still_validates_event_arguments() {
        let mut sys = small_system(33);
        sys.replay_workload(WorkloadTrace::default());
        // Invalid events fail exactly as they would on the recorded run...
        assert!(sys.inject_flash_crowd(1, Some(VideoId::new(99)), None).is_err());
        assert!(sys.inject_flash_crowd(1, None, Some(IspId::new(9))).is_err());
        // ...while valid ones are no-ops (the trace already has the crowd).
        sys.inject_flash_crowd(1, None, None).unwrap();
        sys.step_slot().unwrap();
        assert_eq!(sys.watcher_count(), 0, "an empty trace admits nobody");
    }

    #[test]
    fn link_repricing_localizes_traffic() {
        let run = |outage: bool| {
            let mut config = SystemConfig::small_test().with_seed(25);
            // One seed per video: roughly half the watchers sit across an
            // ISP boundary from their only seed, so the unpriced baseline
            // must ship chunks inter-ISP.
            config.seeds = SeedPlacement::PerVideoTotal(1);
            let mut sys = System::new(config, Box::new(AuctionScheduler::paper())).unwrap();
            sys.add_static_peers(12).unwrap();
            if outage {
                sys.set_inter_link_cost_scale(50.0).unwrap();
            }
            sys.run_slots(6).unwrap();
            let slots = sys.recorder().slots().to_vec();
            let inter: u64 = slots.iter().map(|(_, m)| m.inter_isp_transfers).sum();
            let total: u64 = slots.iter().map(|(_, m)| m.transfers).sum();
            (inter, total)
        };
        let (inter_base, total_base) = run(false);
        let (inter_priced, total_priced) = run(true);
        assert!(total_base > 0 && total_priced > 0);
        // A 50× repricing makes cross-ISP chunks unprofitable: the auction
        // must cut inter-ISP traffic (to zero on this small instance).
        assert!(inter_priced < inter_base, "{inter_priced} vs {inter_base}");
    }

    /// Probes are an observer: the recorder's figures are bit-identical
    /// with probes on and off, and the report covers every stepped slot
    /// with consistent counters.
    #[test]
    fn run_report_observes_without_perturbing_the_run() {
        let fingerprint = |sys: &System| {
            sys.recorder()
                .slots()
                .iter()
                .map(|(_, m)| (m.welfare.to_bits(), m.transfers, m.missed_chunks))
                .collect::<Vec<_>>()
        };
        let run = |probes: bool| {
            let config = SystemConfig::small_test()
                .with_seed(40)
                .with_slot_build(crate::SlotBuild::Incremental);
            let mut sys = System::new(config, Box::new(AuctionScheduler::paper())).unwrap();
            sys.add_static_peers(8).unwrap();
            if probes {
                sys.enable_probes();
                assert!(sys.probes_enabled());
            }
            sys.run_slots(6).unwrap();
            let report = sys.take_run_report();
            (fingerprint(&sys), report)
        };
        let (bare, none) = run(false);
        assert!(none.is_none(), "no report without enable_probes");
        let (probed, report) = run(true);
        assert_eq!(bare, probed, "probes must not change outcomes");
        let report = report.expect("probes were on");
        assert_eq!(report.slots.len(), 6);
        assert_eq!(report.scheduler, "auction");
        for (slot, rec) in report.slots.iter().zip(bare) {
            assert_eq!(slot.welfare.to_bits(), rec.0);
            assert_eq!(slot.transfers, rec.1);
            assert_eq!(slot.missed, rec.2);
            assert!(slot.phases.total_s() >= 0.0);
            assert!(slot.cache.is_some(), "incremental build reports cache counters");
        }
        // Engine reports appear once the swarm has requests to schedule.
        let engine_bids: u64 =
            report.slots.iter().filter_map(|s| s.engine.as_ref()).map(|e| e.bids).sum();
        assert!(engine_bids > 0, "the auction must have submitted bids");
        // Sketches saw the population: estimates are positive and within
        // the precision's error bound of the true (small) cardinalities.
        assert!(report.uniques.requesters > 0.0);
        assert!(report.uniques.providers > 0.0);
        assert!(report.uniques.edges >= report.uniques.requesters * 0.9);
    }

    #[test]
    fn prepare_and_complete_can_drive_slots_manually() {
        let mut sys = small_system(8);
        sys.add_static_peers(6).unwrap();
        let problem = sys.prepare_slot().unwrap();
        let schedule = AuctionScheduler::paper().schedule(&problem).unwrap();
        let metrics = sys.complete_slot(&problem, &schedule).unwrap();
        assert_eq!(sys.recorder().len(), 1);
        assert_eq!(metrics.transfers, schedule.assignment.assigned_count() as u64);
    }
}
