//! The Fig. 2 harness: running one slot's auction at the message level.
//!
//! Fig. 2 of the paper plots the evolution of a representative peer's
//! bandwidth price `λ_u` *within* time slots: the price climbs as bids race
//! in over real network latencies and flattens once the auction converges
//! (≈ 5 s into each 10 s slot in the paper's emulation). This module runs a
//! slot's scheduling through [`p2p_core::dist::DistributedAuction`] — the
//! same bidder/auctioneer logic as the synchronous engine, but with
//! per-message latencies derived from the topology's link costs — and
//! returns the time-stamped price trace.

use crate::system::System;
use p2p_core::dist::{DistConfig, DistributedAuction, LatencyFn};
use p2p_metrics::SlotMetrics;
use p2p_sched::{Schedule, ScheduleStats};
use p2p_types::{PeerId, Result, SimTime};

/// The price trace of one provider across a slot.
#[derive(Debug, Clone, PartialEq)]
pub struct PriceTrace {
    /// The provider peer whose price was traced.
    pub peer: PeerId,
    /// `(absolute time in seconds, λ)` samples, starting at the slot start.
    pub samples: Vec<(f64, f64)>,
}

/// Outcome of one message-level slot.
#[derive(Debug, Clone)]
pub struct DistributedSlotOutcome {
    /// The slot's ordinary metrics (welfare, traffic, misses).
    pub metrics: SlotMetrics,
    /// Per-provider price traces (only providers whose price moved).
    pub traces: Vec<PriceTrace>,
    /// When the auction converged, relative to the slot start.
    pub convergence_secs: f64,
    /// Protocol messages exchanged.
    pub messages: u64,
}

/// Runs the upcoming slot with the distributed (message-level) auction and
/// per-link latencies, then applies the resulting schedule to the system.
///
/// # Errors
///
/// Propagates divergence or accounting errors.
pub fn run_distributed_slot(
    sys: &mut System,
    config: DistConfig,
) -> Result<DistributedSlotOutcome> {
    let slot_start = sys.now();
    let problem = sys.prepare_slot()?;

    // Latency oracle from the topology (clone: the closure outlives `sys`'s
    // borrow). Unknown peers (never happens for instance members) get the
    // base latency.
    let topo = sys.topology().clone();
    let fallback = topo.config().latency.one_way(p2p_types::Cost::new(1.0));
    let latency: LatencyFn =
        Box::new(move |from, to| topo.one_way_latency(from, to).unwrap_or(fallback));

    let outcome =
        DistributedAuction::new(config.recording_trace(), latency).run(&problem.instance)?;

    // Group the price trace by provider and rebase times onto the absolute
    // slot clock.
    let base = slot_start.as_secs_f64();
    let mut traces: Vec<PriceTrace> = Vec::new();
    for p in &outcome.price_trace {
        let peer = problem.instance.provider(p.provider).peer;
        let sample = (base + p.at.as_secs_f64(), p.price);
        match traces.iter_mut().find(|t| t.peer == peer) {
            Some(t) => t.samples.push(sample),
            None => traces.push(PriceTrace { peer, samples: vec![sample] }),
        }
    }

    let schedule = Schedule {
        assignment: outcome.assignment,
        stats: ScheduleStats { rounds: 0, bids: outcome.messages },
    };
    let metrics = sys.complete_slot(&problem, &schedule)?;
    Ok(DistributedSlotOutcome {
        metrics,
        traces,
        // `converged_at` is on the slot-internal clock; rebase to absolute.
        convergence_secs: base + outcome.converged_at.as_secs_f64(),
        messages: outcome.messages,
    })
}

/// Picks the "representative peer" of Fig. 2: the provider with the most
/// price activity across a set of traces.
pub fn representative_trace(outcomes: &[DistributedSlotOutcome]) -> Option<PeerId> {
    let mut counts: Vec<(PeerId, usize)> = Vec::new();
    for o in outcomes {
        for t in &o.traces {
            match counts.iter_mut().find(|(p, _)| *p == t.peer) {
                Some((_, c)) => *c += t.samples.len(),
                None => counts.push((t.peer, t.samples.len())),
            }
        }
    }
    counts.into_iter().max_by_key(|&(p, c)| (c, std::cmp::Reverse(p))).map(|(p, _)| p)
}

/// Extracts one peer's full `(time, λ)` series across several slot
/// outcomes, inserting the slot-start reset to zero that the auctioneer
/// performs at every slot boundary.
pub fn price_series_for(
    peer: PeerId,
    outcomes: &[DistributedSlotOutcome],
    slot_starts: &[SimTime],
) -> Vec<(f64, f64)> {
    let mut series = Vec::new();
    for (o, start) in outcomes.iter().zip(slot_starts) {
        series.push((start.as_secs_f64(), 0.0)); // λ resets each slot
        if let Some(t) = o.traces.iter().find(|t| t.peer == peer) {
            series.extend(t.samples.iter().copied());
        }
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use p2p_sched::AuctionScheduler;

    fn system() -> System {
        // Scarce upload capacity so that assignment sets fill and prices
        // actually move (Fig. 2 needs price dynamics, which require
        // contention).
        let mut config = SystemConfig::small_test().with_seed(11);
        config.seed_rate_multiple = 1.0;
        config.upload_multiple = (0.5, 1.0);
        let mut sys = System::new(config, Box::new(AuctionScheduler::paper())).unwrap();
        sys.add_static_peers(20).unwrap();
        sys
    }

    #[test]
    fn distributed_slot_produces_schedule_and_traces() {
        let mut sys = system();
        // Warm up two slots so buffers and windows are non-trivial.
        sys.run_slots(2).unwrap();
        let out = run_distributed_slot(&mut sys, DistConfig::paper()).unwrap();
        assert!(out.metrics.transfers > 0, "distributed auction scheduled transfers");
        assert!(out.messages > 0);
        assert!(
            out.convergence_secs > sys.now().as_secs_f64() - sys.config().slot_len.as_secs_f64()
        );
        // Prices moved somewhere.
        assert!(!out.traces.is_empty());
        for t in &out.traces {
            for w in t.samples.windows(2) {
                assert!(w[0].1 <= w[1].1, "per-provider prices are monotone in-slot");
            }
        }
    }

    #[test]
    fn representative_and_series_extraction() {
        let mut sys = system();
        sys.run_slots(2).unwrap();
        let start = sys.now();
        let out = run_distributed_slot(&mut sys, DistConfig::paper()).unwrap();
        let outcomes = vec![out];
        let rep = representative_trace(&outcomes).expect("some provider moved");
        let series = price_series_for(rep, &outcomes, &[start]);
        assert!(series.len() >= 2, "reset sample plus at least one change");
        assert_eq!(series[0], (start.as_secs_f64(), 0.0));
    }
}
