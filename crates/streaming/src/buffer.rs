//! Per-peer chunk buffer (the bitmap peers exchange with neighbors).

use p2p_types::ChunkId;
use serde::{Deserialize, Serialize};

/// A peer's chunk holdings for its video, as a compact bitset.
///
/// # Examples
///
/// ```
/// use p2p_streaming::ChunkBuffer;
/// use p2p_types::{ChunkId, VideoId};
///
/// let mut b = ChunkBuffer::empty(100);
/// let c = ChunkId::new(VideoId::new(0), 42);
/// assert!(!b.has_index(42));
/// b.insert_index(42);
/// assert!(b.has_index(42));
/// assert_eq!(b.count(), 1);
/// assert!(b.has(c));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkBuffer {
    words: Vec<u64>,
    chunk_count: u32,
    held: u32,
}

impl ChunkBuffer {
    /// An empty buffer for a video of `chunk_count` chunks.
    pub fn empty(chunk_count: u32) -> Self {
        ChunkBuffer { words: vec![0; (chunk_count as usize).div_ceil(64)], chunk_count, held: 0 }
    }

    /// A full buffer (seeds "cache the complete video").
    pub fn full(chunk_count: u32) -> Self {
        let mut b = ChunkBuffer::empty(chunk_count);
        for i in 0..chunk_count {
            b.insert_index(i);
        }
        b
    }

    /// Number of chunks in the video.
    pub fn chunk_count(&self) -> u32 {
        self.chunk_count
    }

    /// Number of chunks held.
    pub fn count(&self) -> u32 {
        self.held
    }

    /// Whether every chunk is held.
    pub fn is_complete(&self) -> bool {
        self.held == self.chunk_count
    }

    /// Whether the chunk at `index` is held (out-of-range ⇒ `false`).
    pub fn has_index(&self, index: u32) -> bool {
        if index >= self.chunk_count {
            return false;
        }
        self.words[(index / 64) as usize] & (1u64 << (index % 64)) != 0
    }

    /// Whether `chunk` is held (video identity is the caller's concern;
    /// only the index is consulted).
    pub fn has(&self, chunk: ChunkId) -> bool {
        self.has_index(chunk.index_in_video())
    }

    /// Marks the chunk at `index` as held. Returns `true` if newly added.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn insert_index(&mut self, index: u32) -> bool {
        assert!(index < self.chunk_count, "chunk index out of range");
        let word = &mut self.words[(index / 64) as usize];
        let mask = 1u64 << (index % 64);
        if *word & mask == 0 {
            *word |= mask;
            self.held += 1;
            true
        } else {
            false
        }
    }

    /// Marks `chunk` as held. Returns `true` if newly added.
    ///
    /// # Panics
    ///
    /// Panics if the chunk index is out of range.
    pub fn insert(&mut self, chunk: ChunkId) -> bool {
        self.insert_index(chunk.index_in_video())
    }

    /// Fraction of the video held, in `[0, 1]`.
    pub fn fill_ratio(&self) -> f64 {
        if self.chunk_count == 0 {
            1.0
        } else {
            f64::from(self.held) / f64::from(self.chunk_count)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_types::VideoId;

    #[test]
    fn empty_and_full() {
        let e = ChunkBuffer::empty(130);
        assert_eq!(e.count(), 0);
        assert!(!e.is_complete());
        let f = ChunkBuffer::full(130);
        assert_eq!(f.count(), 130);
        assert!(f.is_complete());
        for i in 0..130 {
            assert!(f.has_index(i));
        }
    }

    #[test]
    fn insert_is_idempotent() {
        let mut b = ChunkBuffer::empty(10);
        assert!(b.insert_index(3));
        assert!(!b.insert_index(3));
        assert_eq!(b.count(), 1);
    }

    #[test]
    fn out_of_range_has_is_false() {
        let b = ChunkBuffer::empty(10);
        assert!(!b.has_index(10));
        assert!(!b.has(ChunkId::new(VideoId::new(0), 99)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_insert_panics() {
        let mut b = ChunkBuffer::empty(10);
        b.insert_index(10);
    }

    #[test]
    fn fill_ratio() {
        let mut b = ChunkBuffer::empty(4);
        assert_eq!(b.fill_ratio(), 0.0);
        b.insert_index(0);
        b.insert_index(1);
        assert_eq!(b.fill_ratio(), 0.5);
        assert_eq!(ChunkBuffer::empty(0).fill_ratio(), 1.0);
    }

    #[test]
    fn word_boundaries() {
        let mut b = ChunkBuffer::empty(200);
        for i in [0u32, 63, 64, 127, 128, 199] {
            assert!(b.insert_index(i));
            assert!(b.has_index(i));
        }
        assert_eq!(b.count(), 6);
    }
}
