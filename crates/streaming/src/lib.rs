//! The P2P VoD streaming system emulator.
//!
//! Recreates the paper's evaluation system (Sec. V) as a slot-driven
//! simulation: peers join (Poisson, Zipf-Mandelbrot video choice), maintain
//! a moving window of interest over their video's chunks, exchange buffer
//! maps with ~30 tracker-assigned neighbors, and each 10-second time slot a
//! pluggable [`p2p_sched::ChunkScheduler`] decides every chunk transfer —
//! the primal-dual auction or a baseline. Playback consumes chunks at the
//! streaming rate; chunks absent at their playback deadline count as
//! misses. Per-ISP seed peers serve the catalog.
//!
//! The emulator replaces the authors' six-blade-server Java deployment (see
//! DESIGN.md §2 for the substitution argument); the message-level timing of
//! the in-slot auction is reproduced separately by [`fig2`] on the
//! discrete-event simulator.
//!
//! # Examples
//!
//! ```
//! use p2p_streaming::{System, SystemConfig};
//! use p2p_sched::AuctionScheduler;
//!
//! let config = SystemConfig::small_test();
//! let mut sys = System::new(config, Box::new(AuctionScheduler::paper())).unwrap();
//! sys.add_static_peers(20).unwrap();
//! sys.run_slots(5).unwrap();
//! assert_eq!(sys.recorder().len(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod cache;
pub mod config;
pub mod fig2;
pub mod peer;
pub mod system;
pub mod tracker;

pub use buffer::ChunkBuffer;
pub use cache::{CacheMemory, CacheStats, SlotProblemCache};
pub use config::{ClockMode, SeedPlacement, SlotBuild, SystemConfig};
pub use p2p_core::ShardCount;
pub use p2p_metrics::{RunReport, SlotReport};
pub use peer::PeerState;
pub use system::{System, WorkloadTrace};
pub use tracker::Tracker;
