//! Incremental slot-problem construction: the dirty-tracked request cache
//! behind [`crate::SlotBuild::Incremental`].
//!
//! The cold path re-derives every provider, request and candidate edge each
//! slot, even though locality-aware swarms change little between slots: a
//! watcher's neighbor list is stable, pairwise link costs are stable, and
//! only the sliding playback window and the slot's deliveries perturb the
//! request set. This cache keeps one *block* per watcher — the window of
//! chunk requests plus, per neighbor, the link cost — and re-derives a
//! block only when something that can actually change it happened:
//!
//! * **deliveries** patch blocks in place (the receiver drops its request,
//!   watchers neighboring the receiver gain a candidate edge);
//! * **playback advance** slides the window: chunks falling out are popped,
//!   chunks entering are scanned fresh, the overlap is reused verbatim;
//! * **neighbor refresh / churn** dirties exactly the watchers whose
//!   neighbor lists changed (departed peers also drop their blocks);
//! * **link repricing** bumps a cost epoch; blocks lazily re-derive their
//!   per-neighbor costs (structure untouched);
//! * **per-ISP throttles** need no invalidation at all — capacities are
//!   re-read every emit.
//!
//! Valuations change every slot by construction (deadlines approach), so
//! they are recomputed at emit time from the cached chunk index — exactly
//! the cold formula. The emitted [`SlotProblem`] is **bit-identical** to
//! the cold rebuild: same provider/request/edge order, same floats. The
//! cold path stays available as the oracle and the property suite asserts
//! the equivalence after arbitrary scenario event sequences.

use crate::config::SystemConfig;
use crate::peer::PeerState;
use p2p_core::{CsrBuilder, WelfareInstance};
use p2p_sched::SlotProblem;
use p2p_topology::Topology;
use p2p_types::{
    ChunkId, Cost, IspId, P2pError, PeerId, RequestId, Result, SimDuration, SimTime, VideoId,
};
use std::collections::{HashMap, HashSet, VecDeque};

/// A provider's effective upload capacity under an ISP throttle factor.
///
/// A throttle is a hard cap on whole-chunk uploads, so fractional
/// capacities floor — but flooring must not silently zero a capacity-1
/// uploader under a mild throttle (factor 0.5 is "half speed", not an
/// outage), so nonzero factors keep at least one chunk per slot. A factor
/// of exactly 0 is the documented hard-outage semantics: the ISP's peers
/// upload nothing.
pub(crate) fn throttled_capacity(cap: u32, factor: f64) -> u32 {
    if factor <= 0.0 || cap == 0 {
        0
    } else {
        ((f64::from(cap) * factor).floor() as u32).clamp(1, cap)
    }
}

/// One chunk request within a watcher's cached block.
#[derive(Debug, Clone)]
struct ChunkReq {
    /// Chunk index within the video.
    k: u32,
    /// Ranks into the block's neighbor list of the candidates caching `k`,
    /// ascending — the cold path's edge order is neighbor-list order.
    edges: Vec<u32>,
}

/// A watcher's cached window of chunk requests.
#[derive(Debug, Clone)]
struct WatcherBlock {
    video: VideoId,
    /// Neighbor-list snapshot the block was built against (any change
    /// dirties the whole block).
    neighbors: Vec<PeerId>,
    /// Per-neighbor link cost `w_{u→d}`, aligned with `neighbors`.
    neighbor_costs: Vec<Cost>,
    /// Cost epoch `neighbor_costs` was derived under.
    cost_epoch: u64,
    /// Window covered: chunks in `[first, last)`.
    first: u32,
    last: u32,
    /// Requests for the window's missing chunks, ascending by chunk index.
    /// Requests with no candidates yet are kept (deliveries may add edges);
    /// they are skipped at emit, exactly like the cold path.
    chunks: VecDeque<ChunkReq>,
}

/// Counters describing the last [`SlotProblemCache::build`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Watcher blocks rebuilt from scratch (dirty or new).
    pub blocks_rebuilt: u64,
    /// Watcher blocks reused (window slide + patches only).
    pub blocks_reused: u64,
    /// Chunk requests scanned fresh (rebuilds + window extensions).
    pub chunks_fresh: u64,
    /// Chunk requests reused from a prior slot.
    pub chunks_reused: u64,
}

/// Footprint counters for the cache's long-run memory audit: every map the
/// cache owns, sized. The pruning invariants (blocks only for live
/// watchers, no empty reverse-index sets, reverse-index keys only for live
/// neighbors) keep each bound by the *online* population, not by the
/// monotonically growing set of peers that ever existed — the churn
/// regression test pins this.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheMemory {
    /// Cached watcher blocks.
    pub blocks: usize,
    /// Keys in the provider → watchers reverse index.
    pub reverse_keys: usize,
    /// Total entries across the reverse index's sets.
    pub reverse_entries: usize,
    /// Watchers currently marked dirty.
    pub dirty: usize,
}

/// The incremental slot-problem builder (see the module docs).
#[derive(Debug, Default)]
pub struct SlotProblemCache {
    blocks: HashMap<PeerId, WatcherBlock>,
    /// Reverse adjacency: provider → watchers whose neighbor snapshot
    /// contains it (drives delivery edge-patching). Entries whose set
    /// empties are removed outright, and [`SlotProblemCache::remove_peers`]
    /// drops departed keys, so the index never outgrows the online
    /// population on long churny runs.
    watchers_of: HashMap<PeerId, HashSet<PeerId>>,
    /// Watchers whose blocks must be rebuilt at the next emit.
    dirty: HashSet<PeerId>,
    /// Bumped by link repricing; blocks refresh costs lazily on mismatch.
    cost_epoch: u64,
    stats: CacheStats,
    /// Cumulative delivery patches applied to cached blocks (request
    /// removals + candidate-edge inserts) — unlike [`CacheStats`], never
    /// reset by a build, so run reports can take per-slot deltas.
    patched_total: u64,
    /// Cumulative blocks pruned (departed or emptied watchers).
    pruned_total: u64,
    /// Emits the slot's flat CSR compilation alongside the instance (its
    /// buffers are recycled slot to slot).
    csr: CsrBuilder,
    /// Reused per-emit scratch: peer-id → provider index (peer ids grow
    /// monotonically for the process lifetime, so this is rebuilt in place
    /// instead of reallocated every slot).
    provider_scratch: Vec<usize>,
    /// Reused per-emit scratch: slack-slot → memoized valuation.
    slack_scratch: Vec<Option<p2p_types::Valuation>>,
}

impl SlotProblemCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters from the most recent build.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Cumulative delivery patches applied to cached blocks over the
    /// cache's lifetime (request removals plus candidate-edge inserts).
    pub fn patched_total(&self) -> u64 {
        self.patched_total
    }

    /// Cumulative watcher blocks pruned over the cache's lifetime.
    pub fn pruned_total(&self) -> u64 {
        self.pruned_total
    }

    /// The cache's current memory footprint (see [`CacheMemory`]).
    pub fn memory(&self) -> CacheMemory {
        CacheMemory {
            blocks: self.blocks.len(),
            reverse_keys: self.watchers_of.len(),
            reverse_entries: self.watchers_of.values().map(HashSet::len).sum(),
            dirty: self.dirty.len(),
        }
    }

    /// Marks one watcher's block for a full rebuild (neighbor list changed,
    /// or any doubt about its validity).
    pub(crate) fn mark_dirty(&mut self, peer: PeerId) {
        self.dirty.insert(peer);
    }

    /// Invalidates every cached link cost (mid-run repricing). Block
    /// structure is kept: costs are re-derived lazily at the next emit.
    pub(crate) fn invalidate_costs(&mut self) {
        self.cost_epoch += 1;
    }

    /// Drops all state for departed peers.
    pub(crate) fn remove_peers(&mut self, gone: &[PeerId]) {
        for &peer in gone {
            self.drop_block(peer);
            self.watchers_of.remove(&peer);
            self.dirty.remove(&peer);
        }
    }

    fn drop_block(&mut self, peer: PeerId) {
        if let Some(block) = self.blocks.remove(&peer) {
            self.pruned_total += 1;
            for n in &block.neighbors {
                // Remove emptied sets outright: on very long runs the
                // reverse index would otherwise accumulate a key (with a
                // grown, empty set behind it) for every provider whose
                // watchers all departed.
                let emptied = self.watchers_of.get_mut(n).is_some_and(|set| {
                    set.remove(&peer);
                    set.is_empty()
                });
                if emptied {
                    self.watchers_of.remove(n);
                }
            }
        }
    }

    /// Patches blocks for one applied delivery: `receiver` (watching
    /// `video`) now holds chunk `k`, so its own request disappears and
    /// every watcher neighboring it gains a candidate edge.
    pub(crate) fn on_delivered(&mut self, receiver: PeerId, video: VideoId, k: u32) {
        if let Some(block) = self.blocks.get_mut(&receiver) {
            if let Ok(i) = block.chunks.binary_search_by(|c| c.k.cmp(&k)) {
                block.chunks.remove(i);
                self.patched_total += 1;
            }
        }
        let Some(watchers) = self.watchers_of.get(&receiver) else {
            return;
        };
        for &w in watchers {
            if self.dirty.contains(&w) {
                continue; // rebuilt from scratch anyway
            }
            let Some(block) = self.blocks.get_mut(&w) else {
                continue;
            };
            if block.video != video || k < block.first || k >= block.last {
                continue;
            }
            let Ok(i) = block.chunks.binary_search_by(|c| c.k.cmp(&k)) else {
                continue; // the watcher already holds k
            };
            let rank = block
                .neighbors
                .iter()
                .position(|&n| n == receiver)
                .expect("reverse index entries mirror neighbor snapshots")
                as u32;
            let edges = &mut block.chunks[i].edges;
            if let Err(at) = edges.binary_search(&rank) {
                edges.insert(at, rank);
                self.patched_total += 1;
            }
        }
    }

    /// Builds the slot's problem, reusing every block the slot's changes
    /// did not invalidate. Mirrors the cold construction exactly.
    ///
    /// # Errors
    ///
    /// Returns an error only on internal inconsistency.
    pub(crate) fn build(
        &mut self,
        peers: &[Option<PeerState>],
        topology: &Topology,
        config: &SystemConfig,
        isp_throttles: &HashMap<IspId, f64>,
        now: SimTime,
    ) -> Result<SlotProblem> {
        self.stats = CacheStats::default();
        let cost_epoch = self.cost_epoch;
        let delivery_time = now
            + SimDuration::from_secs_f64(config.slot_len.as_secs_f64() * config.delivery_fraction);
        let mut b = WelfareInstance::builder();
        // The flat CSR compilation is emitted in lock-step with the nested
        // instance (same providers, requests and edges in the same order,
        // same precomputed `v − w`), so the flat scheduler gets its layout
        // for free — and the CSR builder recycles last slot's buffers.
        // (The builder and the scratch vectors are moved out for the
        // duration of the emit so the block loop below can borrow `self`;
        // they go back at the end.)
        let mut csr = std::mem::take(&mut self.csr);
        csr.begin();
        // Peer ids are dense indices into the peer table and never reused,
        // so a flat vector replaces the cold path's per-edge hash lookups.
        // The vector itself is per-cache scratch: peer ids grow for the
        // lifetime of the system, so it is rebuilt in place each slot.
        let mut provider_idx = std::mem::take(&mut self.provider_scratch);
        provider_idx.clear();
        provider_idx.resize(peers.len(), usize::MAX);
        for p in peers.iter().flatten() {
            let cap = p.upload_capacity().chunks_per_slot();
            let cap = match isp_throttles.get(&p.isp()) {
                Some(&f) => throttled_capacity(cap, f),
                None => cap,
            };
            provider_idx[p.id().index()] = b.add_provider(p.id(), cap);
            csr.add_provider(cap);
        }
        // Under the default `SchedulingSlack` time base a slot's valuation
        // depends only on the (small, integer) slack, so one `ln` per
        // distinct slack serves every request of the slot.
        let mut slack_valuations = std::mem::take(&mut self.slack_scratch);
        slack_valuations.clear();
        let memoize_slack =
            matches!(config.valuation_time_base, crate::config::ValuationTimeBase::SchedulingSlack);

        let mut urgency = Vec::new();
        let window = config.lookahead_chunks();
        for p in peers.iter().flatten() {
            if p.is_seed() {
                continue;
            }
            let chunk_count = p.buffer.chunk_count();
            let pos = p.position(now);
            let first = if pos < 0.0 { 0 } else { (pos.floor() as i64 + 1).max(0) as u32 };
            let last = first.saturating_add(window).min(chunk_count);
            if first >= last {
                // The cold path emits nothing for this watcher; drop any
                // stale block so it cannot be reused after state drifts.
                self.drop_block(p.id());
                continue;
            }
            if self.dirty.contains(&p.id()) || !self.blocks.contains_key(&p.id()) {
                self.rebuild_block(p, first, last, peers, topology)?;
                self.stats.blocks_rebuilt += 1;
            } else {
                self.slide_block(p, first, last, peers);
                self.stats.blocks_reused += 1;
            }
            let block = self.blocks.get_mut(&p.id()).expect("block exists after rebuild/slide");
            if block.cost_epoch != cost_epoch {
                for (rank, &n) in block.neighbors.iter().enumerate() {
                    block.neighbor_costs[rank] = topology.cost(n, p.id())?;
                }
                block.cost_epoch = cost_epoch;
            }

            // Emit, mirroring the cold scan over `first..last`.
            for cr in &block.chunks {
                if p.buffer.has_index(cr.k) {
                    continue;
                }
                let deadline = p.deadline_of(cr.k);
                if deadline < delivery_time {
                    continue;
                }
                if cr.edges.is_empty() {
                    continue;
                }
                let d_time = deadline.since(now);
                let slack_slots = (deadline.since(delivery_time).as_secs_f64()
                    / config.slot_len.as_secs_f64())
                .floor() as u32;
                let valuation = if memoize_slack && (slack_slots as usize) < 4096 {
                    let slot = slack_slots as usize;
                    if slot >= slack_valuations.len() {
                        slack_valuations.resize(slot + 1, None);
                    }
                    *slack_valuations[slot]
                        .get_or_insert_with(|| config.chunk_valuation(d_time, slack_slots))
                } else {
                    config.chunk_valuation(d_time, slack_slots)
                };
                let chunk = ChunkId::new(p.video(), cr.k);
                let r = b.add_request(RequestId::new(p.id(), chunk));
                csr.add_request();
                for &rank in &cr.edges {
                    let u = block.neighbors[rank as usize];
                    let cost = block.neighbor_costs[rank as usize];
                    b.add_edge(r, provider_idx[u.index()], valuation, cost)
                        .map_err(|e| P2pError::MalformedInstance(e.to_string()))?;
                    // The same `v − w` the nested edge computes on demand
                    // (finite — the nested builder just validated it).
                    csr.add_edge(provider_idx[u.index()] as u32, (valuation - cost).get())
                        .map_err(|e| P2pError::MalformedInstance(e.to_string()))?;
                }
                urgency.push(d_time);
            }
        }
        self.dirty.clear();
        let flat = csr.finish();
        self.csr = csr;
        self.provider_scratch = provider_idx;
        self.slack_scratch = slack_valuations;
        // `with_csr` debug-asserts the emitted CSR matches the instance.
        Ok(SlotProblem::new(b.build()?, urgency)?.with_csr(flat))
    }

    /// Rebuilds one watcher's block from scratch.
    fn rebuild_block(
        &mut self,
        p: &PeerState,
        first: u32,
        last: u32,
        peers: &[Option<PeerState>],
        topology: &Topology,
    ) -> Result<()> {
        self.drop_block(p.id());
        let neighbors = p.neighbors.clone();
        let mut neighbor_costs = Vec::with_capacity(neighbors.len());
        for &n in &neighbors {
            neighbor_costs.push(topology.cost(n, p.id())?);
            self.watchers_of.entry(n).or_default().insert(p.id());
        }
        let mut block = WatcherBlock {
            video: p.video(),
            neighbors,
            neighbor_costs,
            cost_epoch: self.cost_epoch,
            first,
            last,
            chunks: VecDeque::with_capacity((last - first) as usize),
        };
        self.stats.chunks_fresh += scan_chunks(&mut block, p, first, last, peers);
        self.blocks.insert(p.id(), block);
        Ok(())
    }

    /// Advances a clean block's window from its cached range to
    /// `[first, last)`: drops chunks that fell out, scans entrants fresh,
    /// reuses the overlap verbatim.
    fn slide_block(&mut self, p: &PeerState, first: u32, last: u32, peers: &[Option<PeerState>]) {
        let block = self.blocks.get_mut(&p.id()).expect("caller checked presence");
        debug_assert!(first >= block.first, "playback position is monotone");
        while block.chunks.front().is_some_and(|c| c.k < first) {
            block.chunks.pop_front();
        }
        let reused = block.chunks.len() as u64;
        let scan_from = block.last.max(first);
        let fresh = scan_chunks(block, p, scan_from, last, peers);
        block.first = first;
        block.last = last;
        self.stats.chunks_reused += reused;
        self.stats.chunks_fresh += fresh;
    }
}

/// Scans `[from, to)` against current buffers and appends the missing
/// chunks' requests to the block — the cold path's candidate derivation.
/// Returns the number of chunks scanned in.
fn scan_chunks(
    block: &mut WatcherBlock,
    p: &PeerState,
    from: u32,
    to: u32,
    peers: &[Option<PeerState>],
) -> u64 {
    let mut fresh = 0;
    for k in from..to {
        if p.buffer.has_index(k) {
            continue;
        }
        let mut edges = Vec::new();
        for (rank, &n) in block.neighbors.iter().enumerate() {
            if let Some(np) = peers.get(n.index()).and_then(Option::as_ref) {
                if np.video() == p.video() && np.buffer.has_index(k) {
                    edges.push(rank as u32);
                }
            }
        }
        block.chunks.push_back(ChunkReq { k, edges });
        fresh += 1;
    }
    fresh
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throttled_capacity_clamps_but_keeps_nonzero_uploaders_alive() {
        // The regression: capacity-1 uploaders under a mild throttle must
        // not be zeroed into fake outages.
        assert_eq!(throttled_capacity(1, 0.5), 1);
        assert_eq!(throttled_capacity(1, 0.01), 1);
        assert_eq!(throttled_capacity(50, 0.01), 1);
        // Ordinary flooring above the clamp.
        assert_eq!(throttled_capacity(50, 0.25), 12);
        assert_eq!(throttled_capacity(200, 0.5), 100);
        assert_eq!(throttled_capacity(7, 1.0), 7);
        // Hard-zero semantics: factor 0 is an outage; capacity 0 stays 0.
        assert_eq!(throttled_capacity(1, 0.0), 0);
        assert_eq!(throttled_capacity(100, 0.0), 0);
        assert_eq!(throttled_capacity(0, 0.7), 0);
    }
}
