//! Minimal `--flag value` argument parsing for the harness binaries.

use std::collections::HashMap;

/// Parsed command-line flags.
///
/// # Examples
///
/// ```
/// use p2p_bench::Args;
/// let a = Args::from_iter(["--peers", "200", "--quick"]);
/// assert_eq!(a.get_usize("peers", 500), 200);
/// assert!(a.has("quick"));
/// assert_eq!(a.get_f64("epsilon", 0.5), 0.5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: HashMap<String, Option<String>>,
}

impl<S: Into<String>> FromIterator<S> for Args {
    /// Parses an explicit iterator of arguments.
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        let mut flags = HashMap::new();
        let mut key: Option<String> = None;
        for raw in iter {
            let raw: String = raw.into();
            if let Some(name) = raw.strip_prefix("--") {
                if let Some(k) = key.take() {
                    flags.insert(k, None);
                }
                key = Some(name.to_string());
            } else if let Some(k) = key.take() {
                flags.insert(k, Some(raw));
            }
        }
        if let Some(k) = key.take() {
            flags.insert(k, None);
        }
        Args { flags }
    }
}

impl Args {
    /// Parses the process arguments (skipping the binary name).
    pub fn from_env() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Whether a flag is present (with or without a value).
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// A `usize` flag with default.
    pub fn get_usize(&self, name: &str, default: usize) -> usize {
        self.value(name).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// A `u64` flag with default.
    pub fn get_u64(&self, name: &str, default: u64) -> u64 {
        self.value(name).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// An `f64` flag with default.
    pub fn get_f64(&self, name: &str, default: f64) -> f64 {
        self.value(name).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// A string flag with default.
    pub fn get_str(&self, name: &str, default: &str) -> String {
        self.value(name).unwrap_or(default).to_string()
    }

    /// A string flag, if present with a value.
    pub fn get_opt_str(&self, name: &str) -> Option<String> {
        self.value(name).map(str::to_string)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags.get(name).and_then(|v| v.as_deref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_values_and_bare_flags() {
        let a = Args::from_iter(["--peers", "100", "--quick", "--eps", "0.25"]);
        assert_eq!(a.get_usize("peers", 1), 100);
        assert_eq!(a.get_f64("eps", 0.0), 0.25);
        assert!(a.has("quick"));
        assert!(!a.has("missing"));
    }

    #[test]
    fn defaults_apply_for_missing_or_malformed() {
        let a = Args::from_iter(["--peers", "abc"]);
        assert_eq!(a.get_usize("peers", 7), 7);
        assert_eq!(a.get_u64("slots", 25), 25);
    }

    #[test]
    fn trailing_bare_flag() {
        let a = Args::from_iter(["--quick"]);
        assert!(a.has("quick"));
    }

    #[test]
    fn string_flags() {
        let a = Args::from_iter(["--scenario", "flash_crowd", "--quick"]);
        assert_eq!(a.get_str("scenario", "none"), "flash_crowd");
        assert_eq!(a.get_str("missing", "none"), "none");
        assert_eq!(a.get_opt_str("scenario").as_deref(), Some("flash_crowd"));
        assert_eq!(a.get_opt_str("quick"), None, "bare flags carry no value");
    }
}
