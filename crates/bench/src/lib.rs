//! Shared harness code for the figure-regeneration binaries and benches.
//!
//! Every figure of the paper's evaluation has a binary in `src/bin/`
//! (`fig2` … `fig6`), plus verification and ablation binaries
//! (`optimality`, `ablation_epsilon`, `ablation_neighbors`, `ablation_isp`).
//! Each binary prints the series it regenerates, renders a quick ASCII
//! plot, and writes CSV files under `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod experiments;
pub mod instances;

pub use args::Args;
pub use experiments::{run_dynamic, run_static, ComparisonRun};
pub use instances::random_instance;

use p2p_metrics::TimeSeries;
use std::fs;
use std::path::PathBuf;

/// The output directory for CSV artifacts (`results/`, created on demand).
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Saves aligned series as `results/<stem>.csv` and returns the path.
///
/// # Panics
///
/// Panics on I/O errors — harness binaries want loud failures.
pub fn save_csv(stem: &str, x_name: &str, series: &[&TimeSeries]) -> PathBuf {
    let path = out_dir().join(format!("{stem}.csv"));
    let mut buf = Vec::new();
    p2p_metrics::write_csv(&mut buf, x_name, series).expect("series are aligned");
    fs::write(&path, buf).expect("write csv");
    path
}

/// Saves a free-form `(x, y)` series (unaligned with others).
///
/// # Panics
///
/// Panics on I/O errors.
pub fn save_xy(stem: &str, header: &str, points: &[(f64, f64)]) -> PathBuf {
    let path = out_dir().join(format!("{stem}.csv"));
    let mut s = String::from(header);
    s.push('\n');
    for (x, y) in points {
        s.push_str(&format!("{x},{y}\n"));
    }
    fs::write(&path, s).expect("write csv");
    path
}
