//! EXP-N — the networked runtime over real loopback TCP sockets.
//!
//! Runs the tracker + peer-actor runtime ([`p2p_net::run_slot_local`]: one
//! coordinator, `peers` peer actors, every bid and price crossing a real
//! socket through the versioned wire codec) on slot instances across peer
//! counts, and answers two questions with hard failures:
//!
//! * **Is it the same auction?** Every networked outcome — batched *and*
//!   per-request protocol — must be *bit-identical* (assignment, duals,
//!   rounds, bids) to the in-process flat CSR engine at one shard, or the
//!   wire protocol changed the algorithm.
//! * **What does the wire cost?** Wall time and wire frames per slot,
//!   batched against per-request against the flat engine: the per-poll
//!   TCP round-trips dominate the unbatched rows, and the `PollBatch`
//!   protocol must cut frames per slot by at least 5× on the
//!   1000-request rows — a hard gate, not a hope.
//!
//! Results land in `BENCH_net.json`. Usage:
//!   `net_bench [--quick] [--out PATH]`
//!
//! `--quick` shrinks sizes for CI smoke runs (the bit-identity gate still
//! applies to every row; the frame-reduction gate needs the full sizes).

use p2p_bench::Args;
use p2p_core::csr::{CsrInstance, FlatAuction};
use p2p_core::{verify_optimality, AuctionConfig, NoProbe, ShardCount, WelfareInstance};
use p2p_net::{run_slot_local_stats, NetConfig};
use p2p_types::Result;
use std::process::ExitCode;
use std::time::Instant;

/// The ε every engine runs with (matches `flat_bench` / `sim_bench`).
const EPSILON: f64 = 0.01;

/// The minimum frames-per-slot reduction the batched protocol must hold
/// over the per-request one on the gated (1000-request) rows.
const FRAME_REDUCTION_FLOOR: u64 = 5;

/// The request count the frame-reduction gate applies to.
const FRAME_GATE_REQUESTS: usize = 1_000;

/// A tracker-shaped slot: sparse candidate neighborhoods, one provider per
/// ~10 requesters.
fn slot_instance(seed: u64, requests: usize) -> WelfareInstance {
    let providers = (requests / 10).max(4);
    p2p_bench::instances::random_instance(seed, providers, requests, 6, 6)
}

struct Row {
    requests: usize,
    providers: usize,
    peers: usize,
    protocol: &'static str,
    net_wall_ns: u128,
    flat_wall_ns: u128,
    frames_sent: u64,
    frames_recv: u64,
    rounds: u64,
    bids: u64,
    welfare: f64,
}

fn run(args: &Args) -> Result<()> {
    let quick = args.has("quick");
    let sizes: &[usize] = if quick { &[100] } else { &[100, 400, 1_000] };
    let peer_counts: &[usize] = if quick { &[2, 4] } else { &[2, 4, 8] };
    let out_path = args.get_str("out", "BENCH_net.json");

    let mut rows: Vec<Row> = Vec::new();
    println!("networked auction over loopback TCP, ε = {EPSILON}:");
    println!(
        "{:<10} {:<6} {:<10} {:>12} {:>12} {:>8} {:>8} {:>8} {:>8}",
        "requests",
        "peers",
        "protocol",
        "net wall",
        "flat wall",
        "ratio",
        "frames",
        "rounds",
        "flat=="
    );

    for &requests in sizes {
        let instance = slot_instance(0x7E1 ^ requests as u64, requests);
        let csr = CsrInstance::compile(&instance);
        let t0 = Instant::now();
        let flat_out = FlatAuction::new(AuctionConfig::with_epsilon(EPSILON), ShardCount::Fixed(1))
            .run(&csr)?;
        let flat_wall_ns = t0.elapsed().as_nanos();

        for &peers in peer_counts {
            let mut frames_by_protocol = [0u64; 2];
            for (which, batch) in [true, false].into_iter().enumerate() {
                let protocol = if batch { "batched" } else { "per-request" };
                let config =
                    NetConfig { epsilon: EPSILON, batch_polls: batch, ..NetConfig::default() };
                let t0 = Instant::now();
                let (out, stats) =
                    run_slot_local_stats(&instance, peers, &config, None, &mut NoProbe)?;
                let net_wall_ns = t0.elapsed().as_nanos();
                frames_by_protocol[which] = stats.total();

                // The equivalence gate: both wire protocols replay the
                // same sweep the flat engine runs, so any drift is a
                // protocol bug, not noise.
                let identical = out.assignment.choices() == flat_out.assignment.choices()
                    && out.duals.lambda == flat_out.duals.lambda
                    && out.rounds == flat_out.rounds
                    && out.bids_submitted == flat_out.bids_submitted;
                if !identical {
                    return Err(p2p_types::P2pError::MalformedInstance(format!(
                        "the {protocol} networked runtime diverged from the flat engine on \
                         the {requests}-request instance at {peers} peers: (rounds {}, \
                         bids {}) vs (rounds {}, bids {})",
                        out.rounds, out.bids_submitted, flat_out.rounds, flat_out.bids_submitted
                    )));
                }
                let tol = EPSILON * (instance.request_count() as f64 + 1.0);
                let report = verify_optimality(&instance, &out.assignment, &out.duals, tol);
                if !report.is_optimal() {
                    return Err(p2p_types::P2pError::MalformedInstance(format!(
                        "the {protocol} networked runtime lost the optimality certificate \
                         on the {requests}-request instance at {peers} peers: {:?}",
                        report.violations
                    )));
                }
                rows.push(Row {
                    requests,
                    providers: instance.provider_count(),
                    peers,
                    protocol,
                    net_wall_ns,
                    flat_wall_ns,
                    frames_sent: stats.frames_sent,
                    frames_recv: stats.frames_recv,
                    rounds: out.rounds,
                    bids: out.bids_submitted,
                    welfare: out.assignment.welfare(&instance).get(),
                });
            }

            // The frame-reduction gate: on the 1000-request rows the
            // batched protocol must spend at least 5x fewer frames than
            // the per-request one, or the batching is not earning its
            // complexity.
            let [batched_frames, unbatched_frames] = frames_by_protocol;
            if requests == FRAME_GATE_REQUESTS
                && batched_frames * FRAME_REDUCTION_FLOOR > unbatched_frames
            {
                return Err(p2p_types::P2pError::MalformedInstance(format!(
                    "batching only cut frames from {unbatched_frames} to {batched_frames} \
                     on the {requests}-request instance at {peers} peers — under the \
                     {FRAME_REDUCTION_FLOOR}x floor"
                )));
            }
        }
    }

    let mut json_rows = Vec::new();
    for r in &rows {
        let ratio = r.net_wall_ns as f64 / r.flat_wall_ns.max(1) as f64;
        println!(
            "{:<10} {:<6} {:<10} {:>10}µs {:>10}µs {:>7.0}x {:>8} {:>8} {:>8}",
            r.requests,
            r.peers,
            r.protocol,
            r.net_wall_ns / 1_000,
            r.flat_wall_ns / 1_000,
            ratio,
            r.frames_sent + r.frames_recv,
            r.rounds,
            "true",
        );
        json_rows.push(format!(
            "    {{\n      \"requests\": {},\n      \"providers\": {},\n      \
             \"peers\": {},\n      \"protocol\": \"{}\",\n      \
             \"net_wall_ns\": {},\n      \"flat_wall_ns\": {},\n      \
             \"wall_ratio\": {:.1},\n      \"frames_sent\": {},\n      \
             \"frames_recv\": {},\n      \"frames_total\": {},\n      \
             \"rounds\": {},\n      \"bids\": {},\n      \
             \"welfare\": {:.3},\n      \"bit_identical_to_flat\": true,\n      \
             \"certified\": true\n    }}",
            r.requests,
            r.providers,
            r.peers,
            r.protocol,
            r.net_wall_ns,
            r.flat_wall_ns,
            ratio,
            r.frames_sent,
            r.frames_recv,
            r.frames_sent + r.frames_recv,
            r.rounds,
            r.bids,
            r.welfare,
        ));
    }

    let json = format!(
        "{{\n  \"note\": \"The networked runtime (ISSUE 9; batched polls by ISSUE 10): a \
         tracker coordinator plus peer actors exchanging the versioned length-prefixed \
         wire protocol over real loopback TCP sockets. Every row — batched PollBatch/\
         ReplyBatch protocol (wire version 2, the default) and the per-request \
         Poll/Reply protocol alike — is hard-gated bit-identical (assignment, duals, \
         rounds, bids) to the flat CSR engine at one shard and must carry the Theorem 1 \
         n*eps certificate: the wire moves the *same* auction, it does not change it. \
         wall_ratio is the TCP runtime's slot time over the flat engine's. The \
         per-request rows pay one socket round-trip per poll (the ~400-900x multiples \
         ISSUE 9 recorded); the batched rows ship one frame per peer per sweep round \
         and are hard-gated to spend at least 5x fewer frames on the 1000-request \
         rows (measured: hundreds of times fewer, pulling the 1000-request \
         sockets-vs-flat wall multiple from ~400-490x down to ~80x). Regenerate \
         with `cargo run --release -p p2p-bench --bin net_bench` (add --quick for CI \
         sizes); expect run-to-run timing noise, the bit-identity, frame and certified \
         fields are exact.\",\n  \
         \"command\": \"cargo run --release -p p2p-bench --bin net_bench{}\",\n  \
         \"epsilon\": {},\n  \"frame_reduction_floor\": {},\n  \"machine_cores\": {},\n  \
         \"runs\": [\n{}\n  ]\n}}\n",
        if quick { " -- --quick" } else { "" },
        EPSILON,
        FRAME_REDUCTION_FLOOR,
        p2p_core::available_cores(),
        json_rows.join(",\n"),
    );
    std::fs::write(&out_path, json).map_err(|e| {
        p2p_types::P2pError::invalid_config("out", format!("cannot write `{out_path}`: {e}"))
    })?;
    println!("\nwrote {out_path}");
    Ok(())
}

fn main() -> ExitCode {
    match run(&Args::from_env()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("net_bench: {e}");
            eprintln!("usage: net_bench [--quick] [--out PATH]");
            ExitCode::FAILURE
        }
    }
}
