//! EXP-N — the networked runtime over real loopback TCP sockets.
//!
//! Runs the tracker + peer-actor runtime ([`p2p_net::run_slot_local`]: one
//! coordinator, `peers` peer actors, every bid and price crossing a real
//! socket through the versioned wire codec) on slot instances across peer
//! counts, and answers two questions with hard failures:
//!
//! * **Is it the same auction?** Every networked outcome must be
//!   *bit-identical* — assignment, duals, rounds, bids — to the in-process
//!   flat CSR engine at one shard, or the wire protocol changed the
//!   algorithm.
//! * **What does the wire cost?** Wall time per slot against the flat
//!   engine's on the same instance: the per-poll TCP round-trips dominate,
//!   which is exactly the overhead the in-process engines exist to avoid.
//!
//! Results land in `BENCH_net.json`. Usage:
//!   `net_bench [--quick] [--out PATH]`
//!
//! `--quick` shrinks sizes for CI smoke runs (the bit-identity gate still
//! applies to every row).

use p2p_bench::Args;
use p2p_core::csr::{CsrInstance, FlatAuction};
use p2p_core::{verify_optimality, AuctionConfig, NoProbe, ShardCount, WelfareInstance};
use p2p_net::{run_slot_local, NetConfig};
use p2p_types::Result;
use std::process::ExitCode;
use std::time::Instant;

/// The ε every engine runs with (matches `flat_bench` / `sim_bench`).
const EPSILON: f64 = 0.01;

/// A tracker-shaped slot: sparse candidate neighborhoods, one provider per
/// ~10 requesters.
fn slot_instance(seed: u64, requests: usize) -> WelfareInstance {
    let providers = (requests / 10).max(4);
    p2p_bench::instances::random_instance(seed, providers, requests, 6, 6)
}

struct Row {
    requests: usize,
    providers: usize,
    peers: usize,
    net_wall_ns: u128,
    flat_wall_ns: u128,
    rounds: u64,
    bids: u64,
    welfare: f64,
}

fn run(args: &Args) -> Result<()> {
    let quick = args.has("quick");
    let sizes: &[usize] = if quick { &[100] } else { &[100, 400, 1_000] };
    let peer_counts: &[usize] = if quick { &[2, 4] } else { &[2, 4, 8] };
    let out_path = args.get_str("out", "BENCH_net.json");
    let config = NetConfig { epsilon: EPSILON, ..NetConfig::default() };

    let mut rows: Vec<Row> = Vec::new();
    println!("networked auction over loopback TCP, ε = {EPSILON}:");
    println!(
        "{:<10} {:<8} {:>12} {:>12} {:>8} {:>10} {:>10} {:>8}",
        "requests", "peers", "net wall", "flat wall", "ratio", "rounds", "bids", "flat=="
    );

    for &requests in sizes {
        let instance = slot_instance(0x7E1 ^ requests as u64, requests);
        let csr = CsrInstance::compile(&instance);
        let t0 = Instant::now();
        let flat_out = FlatAuction::new(AuctionConfig::with_epsilon(EPSILON), ShardCount::Fixed(1))
            .run(&csr)?;
        let flat_wall_ns = t0.elapsed().as_nanos();

        for &peers in peer_counts {
            let t0 = Instant::now();
            let out = run_slot_local(&instance, peers, &config, None, &mut NoProbe)?;
            let net_wall_ns = t0.elapsed().as_nanos();

            // The equivalence gate: the wire runtime is a replay of the
            // same sweep the flat engine runs, so any drift is a protocol
            // bug, not noise.
            let identical = out.assignment.choices() == flat_out.assignment.choices()
                && out.duals.lambda == flat_out.duals.lambda
                && out.rounds == flat_out.rounds
                && out.bids_submitted == flat_out.bids_submitted;
            if !identical {
                return Err(p2p_types::P2pError::MalformedInstance(format!(
                    "the networked runtime diverged from the flat engine on the \
                     {requests}-request instance at {peers} peers: (rounds {}, bids {}) \
                     vs (rounds {}, bids {})",
                    out.rounds, out.bids_submitted, flat_out.rounds, flat_out.bids_submitted
                )));
            }
            let tol = EPSILON * (instance.request_count() as f64 + 1.0);
            let report = verify_optimality(&instance, &out.assignment, &out.duals, tol);
            if !report.is_optimal() {
                return Err(p2p_types::P2pError::MalformedInstance(format!(
                    "the networked runtime lost the optimality certificate on the \
                     {requests}-request instance at {peers} peers: {:?}",
                    report.violations
                )));
            }
            rows.push(Row {
                requests,
                providers: instance.provider_count(),
                peers,
                net_wall_ns,
                flat_wall_ns,
                rounds: out.rounds,
                bids: out.bids_submitted,
                welfare: out.assignment.welfare(&instance).get(),
            });
        }
    }

    let mut json_rows = Vec::new();
    for r in &rows {
        let ratio = r.net_wall_ns as f64 / r.flat_wall_ns.max(1) as f64;
        println!(
            "{:<10} {:<8} {:>10}µs {:>10}µs {:>7.0}x {:>10} {:>10} {:>8}",
            r.requests,
            r.peers,
            r.net_wall_ns / 1_000,
            r.flat_wall_ns / 1_000,
            ratio,
            r.rounds,
            r.bids,
            "true",
        );
        json_rows.push(format!(
            "    {{\n      \"requests\": {},\n      \"providers\": {},\n      \
             \"peers\": {},\n      \"net_wall_ns\": {},\n      \"flat_wall_ns\": {},\n      \
             \"wall_ratio\": {:.1},\n      \"rounds\": {},\n      \"bids\": {},\n      \
             \"welfare\": {:.3},\n      \"bit_identical_to_flat\": true,\n      \
             \"certified\": true\n    }}",
            r.requests,
            r.providers,
            r.peers,
            r.net_wall_ns,
            r.flat_wall_ns,
            ratio,
            r.rounds,
            r.bids,
            r.welfare,
        ));
    }

    let json = format!(
        "{{\n  \"note\": \"The networked runtime (ISSUE 9): a tracker coordinator plus peer \
         actors exchanging the versioned length-prefixed wire protocol over real loopback \
         TCP sockets. Every row is hard-gated bit-identical (assignment, duals, rounds, \
         bids) to the flat CSR engine at one shard and must carry the Theorem 1 n*eps \
         certificate — the wire moves the *same* auction, it does not change it. wall_ratio \
         is the TCP runtime's slot time over the flat engine's: the per-poll socket \
         round-trips dominate, which is the overhead the in-process engines exist to \
         avoid. Regenerate with `cargo run --release -p p2p-bench --bin net_bench` (add \
         --quick for CI sizes); expect run-to-run timing noise, the bit-identity and \
         certified fields are exact.\",\n  \
         \"command\": \"cargo run --release -p p2p-bench --bin net_bench{}\",\n  \
         \"epsilon\": {},\n  \"machine_cores\": {},\n  \"runs\": [\n{}\n  ]\n}}\n",
        if quick { " -- --quick" } else { "" },
        EPSILON,
        p2p_core::available_cores(),
        json_rows.join(",\n"),
    );
    std::fs::write(&out_path, json).map_err(|e| {
        p2p_types::P2pError::invalid_config("out", format!("cannot write `{out_path}`: {e}"))
    })?;
    println!("\nwrote {out_path}");
    Ok(())
}

fn main() -> ExitCode {
    match run(&Args::from_env()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("net_bench: {e}");
            eprintln!("usage: net_bench [--quick] [--out PATH]");
            ExitCode::FAILURE
        }
    }
}
