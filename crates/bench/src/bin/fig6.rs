//! EXP-F6 — Fig. 6(a,b,c): social welfare, inter-ISP traffic and chunk
//! miss rate under peer dynamics (Poisson joins at 1/s, early departure
//! with probability 0.6), auction vs. simple locality.
//!
//! Expected shape: the orderings of Figs. 3–5 survive churn — the auction
//! keeps higher welfare, a lower inter-ISP share and a lower miss rate.
//!
//! Usage: `cargo run --release -p p2p-bench --bin fig6 [--slots N] [--seed S]`

use p2p_bench::{run_dynamic, save_csv, Args};
use p2p_metrics::ascii_plot;
use p2p_sched::{AuctionScheduler, SimpleLocalityScheduler};
use p2p_streaming::SystemConfig;

fn main() {
    let args = Args::from_env();
    let slots = args.get_u64("slots", 25);
    let seed = args.get_u64("seed", 42);

    let config = SystemConfig::paper().with_seed(seed).with_departures(0.6);
    eprintln!("fig6: dynamic network (joins 1/s, departures w.p. 0.6), {slots} slots");

    let auction =
        run_dynamic(&config, Box::new(AuctionScheduler::paper()), slots).expect("auction run");
    let locality = run_dynamic(&config, Box::new(SimpleLocalityScheduler::new()), slots)
        .expect("locality run");

    // (a) social welfare
    let aw = auction.recorder.welfare_series().renamed("auction");
    let lw = locality.recorder.welfare_series().renamed("simple_locality");
    println!("Fig. 6(a) — social welfare under churn");
    println!("{}", ascii_plot(&[&aw, &lw], 90, 14));
    println!(
        "mean welfare/slot: auction {:.1}, locality {:.1}\n",
        aw.mean_y().unwrap_or(0.0),
        lw.mean_y().unwrap_or(0.0)
    );

    // (b) inter-ISP traffic
    let at = auction.recorder.inter_isp_series().renamed("auction");
    let lt = locality.recorder.inter_isp_series().renamed("simple_locality");
    println!("Fig. 6(b) — inter-ISP traffic under churn");
    println!("{}", ascii_plot(&[&at, &lt], 90, 14));
    println!(
        "mean inter-ISP share: auction {:.3}, locality {:.3}\n",
        at.mean_y().unwrap_or(0.0),
        lt.mean_y().unwrap_or(0.0)
    );

    // (c) miss rate
    let am = auction.recorder.miss_rate_series().renamed("auction");
    let lm = locality.recorder.miss_rate_series().renamed("simple_locality");
    println!("Fig. 6(c) — chunk miss rate under churn");
    println!("{}", ascii_plot(&[&am, &lm], 90, 14));
    println!(
        "mean miss rate: auction {:.4}, locality {:.4}",
        am.mean_y().unwrap_or(0.0),
        lm.mean_y().unwrap_or(0.0)
    );

    let p1 = save_csv("fig6a_welfare_churn", "time_s", &[&aw, &lw]);
    let p2 = save_csv("fig6b_inter_isp_churn", "time_s", &[&at, &lt]);
    let p3 = save_csv("fig6c_miss_rate_churn", "time_s", &[&am, &lm]);
    println!("wrote {}, {}, {}", p1.display(), p2.display(), p3.display());
}
