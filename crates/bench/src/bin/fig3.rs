//! EXP-F3 — Fig. 3: social welfare per time slot in a dynamic network
//! (Poisson joins at 1 peer/s, peers stay until their video ends), auction
//! vs. the simple locality baseline.
//!
//! Expected shape: the auction's welfare grows as the population grows; the
//! baseline's stagnates or declines and can go negative (it schedules
//! transfers without consulting valuations, so `v − w < 0` transfers slip
//! in).
//!
//! Usage: `cargo run --release -p p2p-bench --bin fig3 [--slots N] [--seed S]`

use p2p_bench::{run_dynamic, save_csv, Args};
use p2p_metrics::ascii_plot;
use p2p_sched::{AuctionScheduler, SimpleLocalityScheduler};
use p2p_streaming::SystemConfig;

fn main() {
    let args = Args::from_env();
    let slots = args.get_u64("slots", 25);
    let seed = args.get_u64("seed", 42);

    let config = SystemConfig::paper().with_seed(seed);
    eprintln!("fig3: dynamic joins 1/s, no early departures, {slots} slots");

    let auction =
        run_dynamic(&config, Box::new(AuctionScheduler::paper()), slots).expect("auction run");
    let locality = run_dynamic(&config, Box::new(SimpleLocalityScheduler::new()), slots)
        .expect("locality run");

    let a = auction.recorder.welfare_series().renamed("auction");
    let l = locality.recorder.welfare_series().renamed("simple_locality");

    println!("Fig. 3 — social welfare vs time (dynamic joins)");
    println!("{}", ascii_plot(&[&a, &l], 90, 18));
    println!(
        "mean welfare/slot: auction {:.1}, locality {:.1}; final-slot population {}",
        a.mean_y().unwrap_or(0.0),
        l.mean_y().unwrap_or(0.0),
        auction.recorder.population_series().points().last().map_or(0.0, |&(_, y)| y)
    );
    let locality_min = l.y_min().unwrap_or(0.0);
    println!(
        "locality min welfare: {locality_min:.1} ({})",
        if locality_min < 0.0 {
            "goes negative, as in the paper"
        } else {
            "stays non-negative on this seed"
        }
    );

    let path = save_csv("fig3_social_welfare", "time_s", &[&a, &l]);
    println!("wrote {}", path.display());
}
