//! EXP-EXT1 — strategic bidding (the paper's stated future work): the
//! auction is not incentive compatible, and this sweep quantifies how much
//! a coalition of valuation-inflating peers gains and how much society and
//! the honest majority lose.
//!
//! Usage: `cargo run --release -p p2p-bench --bin strategic
//! [--requests N] [--trials N]`

use p2p_bench::{random_instance, save_xy, Args};
use p2p_core::strategic::{evaluate_manipulation, Misreport};

fn main() {
    let args = Args::from_env();
    let requests = args.get_usize("requests", 400);
    let trials = args.get_usize("trials", 5);
    let providers = requests / 10;

    println!(
        "strategic-bidding sweep ({providers} providers x {requests} requests, \
         {trials} trials, misreport = MaxOut)"
    );
    println!(
        "{:>12} {:>14} {:>16} {:>16} {:>14}",
        "manip_frac", "welfare_loss%", "manip_gain%", "honest_loss%", "manip_chunks+"
    );

    let mut points = Vec::new();
    for &frac in &[0.0, 0.05, 0.1, 0.2, 0.4, 0.8] {
        let mut loss = 0.0;
        let mut gain = 0.0;
        let mut honest_loss = 0.0;
        let mut chunk_gain = 0.0;
        for t in 0..trials {
            let inst = random_instance(7_000 + t as u64, providers, requests, 6, 6);
            let k = (requests as f64 * frac) as usize;
            // Deterministic manipulator set: every ceil(1/frac)-th request.
            let manipulators: Vec<usize> = match requests.checked_div(k) {
                None => Vec::new(),
                Some(step) => (0..requests).step_by(step.max(1)).take(k).collect(),
            };
            let out = evaluate_manipulation(&inst, &manipulators, Misreport::MaxOut)
                .expect("auction converges");
            loss += out.welfare_loss_fraction() * 100.0;
            let mg = if out.manipulator_truthful_utility.abs() > 1e-12 {
                (out.manipulator_utility - out.manipulator_truthful_utility)
                    / out.manipulator_truthful_utility.abs()
                    * 100.0
            } else {
                0.0
            };
            gain += mg;
            let hl = if out.honest_truthful_utility.abs() > 1e-12 {
                (out.honest_truthful_utility - out.honest_utility)
                    / out.honest_truthful_utility.abs()
                    * 100.0
            } else {
                0.0
            };
            honest_loss += hl;
            chunk_gain += out.manipulator_chunks as f64 - out.manipulator_truthful_chunks as f64;
        }
        let n = trials as f64;
        println!(
            "{frac:>12.2} {:>14.2} {:>16.2} {:>16.2} {:>14.1}",
            loss / n,
            gain / n,
            honest_loss / n,
            chunk_gain / n
        );
        points.push((frac, loss / n));
    }

    let path = save_xy("strategic_welfare_loss", "manipulator_fraction,welfare_loss_pct", &points);
    println!("\nwrote {}", path.display());
    println!(
        "expected: manipulators gain chunks at honest peers' expense and social \
         welfare falls — the mechanism is not truthful, motivating the paper's \
         future work"
    );
}
