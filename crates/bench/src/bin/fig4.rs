//! EXP-F4 — Fig. 4: percentage of inter-ISP traffic per time slot in a
//! static network of 500 peers, auction vs. simple locality.
//!
//! Expected shape: the auction keeps a consistently lower inter-ISP share
//! than the baseline — a peer only crosses an ISP boundary when its
//! valuation justifies the higher cost, while the baseline spills across
//! boundaries whenever cheap local capacity saturates.
//!
//! Usage: `cargo run --release -p p2p-bench --bin fig4 [--peers N]
//! [--slots N] [--seed S]`

use p2p_bench::{run_static, save_csv, Args};
use p2p_metrics::ascii_plot;
use p2p_sched::{AuctionScheduler, SimpleLocalityScheduler};
use p2p_streaming::SystemConfig;

fn main() {
    let args = Args::from_env();
    let peers = args.get_usize("peers", 500);
    let slots = args.get_u64("slots", 25);
    let seed = args.get_u64("seed", 42);

    let config = SystemConfig::paper().with_seed(seed);
    eprintln!("fig4: static network of {peers} peers, {slots} slots");

    let auction = run_static(&config, Box::new(AuctionScheduler::paper()), peers, slots)
        .expect("auction run");
    let locality = run_static(&config, Box::new(SimpleLocalityScheduler::new()), peers, slots)
        .expect("locality run");

    let a = auction.recorder.inter_isp_series().renamed("auction");
    let l = locality.recorder.inter_isp_series().renamed("simple_locality");

    println!("Fig. 4 — fraction of inter-ISP traffic vs time (static, {peers} peers)");
    println!("{}", ascii_plot(&[&a, &l], 90, 16));
    let (am, lm) = (a.mean_y().unwrap_or(0.0), l.mean_y().unwrap_or(0.0));
    println!("mean inter-ISP share: auction {am:.3}, locality {lm:.3}");
    println!(
        "auction {} locality ({})",
        if am < lm { "<" } else { ">=" },
        if am < lm { "matches the paper's ordering" } else { "UNEXPECTED ordering" }
    );

    let path = save_csv("fig4_inter_isp_traffic", "time_s", &[&a, &l]);
    println!("wrote {}", path.display());
}
