//! EXP-S — the scenario engine CLI: sweep schedulers over a declarative
//! scenario with mid-run topology/workload events and print side-by-side
//! metrics.
//!
//! Usage:
//!   `scenarios --list`
//!     enumerate the built-in scenarios;
//!   `scenarios --scenario flash_crowd [--quick] [--seed S] [--schedulers auction_flat,locality]
//!              [--slot-build cold|incremental] [--shards auto|N]`
//!     run a built-in scenario;
//!   `scenarios --scenario flash_crowd --backend sim [--net ideal|lan|lossy]`
//!     run on the virtual-time swarm backend: the default comparison pair
//!     becomes `auction_sim,auction_flat` (DES swarm vs in-process engine)
//!     and `--net` picks the seeded fault-injection preset;
//!   `scenarios --scenario flash_crowd --backend net`
//!     run on the networked runtime (tracker + peer actors over loopback
//!     TCP): the default pair becomes `auction_net,auction_flat`, whose
//!     summaries must be bit-identical;
//!   `scenarios --file scenarios/flash_crowd.toml`
//!     run an external spec file (see `p2p_scenario::spec` for the format,
//!     including `include = "base.toml"` composition);
//!   `scenarios --scenario isp_outage --show`
//!     print a built-in's spec text (a ready-made template for `--file`);
//!   `scenarios --scenario flash_crowd --metrics-out DIR`
//!     additionally run with engine probes on and write the observability
//!     bundle (structured `RunReport` JSON, per-slot CSV, per-event-window
//!     series CSVs, ascii plot) under `DIR`.
//!
//! Output is deterministic: the same seed and scenario produce
//! byte-identical metric summaries across runs (wall-clock phase timings
//! appear only inside the `--metrics-out` run reports).

use p2p_bench::{save_csv, Args};
use p2p_metrics::{ascii_plot, PoolCounters};
use p2p_scenario::{
    builtin, builtin_spec, builtins, event_windows, parse_scenario_file, run_scenario_probed,
    scheduler_for_runtime, Scenario, ScenarioReport, SCHEDULER_NAMES,
};
use p2p_sched::{ChunkScheduler, WorkerSpawner};
use p2p_types::{P2pError, Result};
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

fn load_scenario(args: &Args) -> Result<Scenario> {
    if let Some(path) = args.get_opt_str("file") {
        // File loading resolves `include = "base.toml"` chains relative to
        // the spec's own directory.
        return parse_scenario_file(&path);
    }
    builtin(&args.get_str("scenario", "flash_crowd"))
}

fn run(args: &Args) -> Result<()> {
    if args.has("list") {
        println!("built-in scenarios:");
        for s in builtins() {
            println!("  {:<16} {:>3} slots  {}", s.name, s.slots, s.description);
        }
        println!("\nbackends (--backend):");
        println!("  flat     in-process engines (default; alias: process)");
        println!("  sim      virtual-time DES swarm; --net picks the fault preset");
        println!("  net      tracker + peer actors over loopback TCP sockets");
        println!("\nnetwork presets for --backend sim (--net): ideal, lan, lossy");
        println!("\nschedulers (--schedulers, comma-separated):");
        for name in SCHEDULER_NAMES {
            println!("  {name}");
        }
        println!("\nrun one with `--scenario <name>`, dump its spec with `--show`,");
        println!("or load your own file with `--file <path>`.");
        return Ok(());
    }
    if args.has("show") {
        let name = args.get_str("scenario", "flash_crowd");
        match builtin_spec(&name) {
            Some(spec) => print!("{spec}"),
            None => println!("unknown scenario `{name}`; try --list"),
        }
        return Ok(());
    }

    let mut scenario = load_scenario(args)?;
    if let Some(raw) = args.get_opt_str("seed") {
        // The tool's contract is seed-reproducible output, so a bad seed
        // must fail loudly rather than silently run the default.
        let seed = raw.parse().map_err(|_| {
            p2p_types::P2pError::invalid_config("seed", format!("`{raw}` is not a u64 seed"))
        })?;
        scenario = scenario.with_seed(seed);
    }
    if args.has("quick") {
        scenario = scenario.quick(8);
    }
    if let Some(mode) = args.get_opt_str("slot-build") {
        scenario = scenario.with_slot_build(p2p_streaming::SlotBuild::from_name(&mode)?);
    }
    if let Some(shards) = args.get_opt_str("shards") {
        scenario = scenario.with_shards(p2p_streaming::ShardCount::from_name(&shards)?);
    }
    let backend = args.get_str("backend", "process");
    // `flat` is the honest name for the in-process default; `process` stays
    // accepted for compatibility with existing invocations.
    let backend = if backend == "flat" { "process".to_string() } else { backend };
    if !matches!(backend.as_str(), "process" | "sim" | "net") {
        return Err(P2pError::invalid_config(
            "backend",
            format!("unknown backend `{backend}` (known: flat, sim, net)"),
        ));
    }
    if let Some(net) = args.get_opt_str("net") {
        scenario = scenario.with_net(net);
    }
    scenario.validate()?;

    // One worker pool for the whole sweep: every flat scheduler leases its
    // slice workers here instead of spawning per run. Kept concrete so the
    // metrics bundle can read its utilization counters.
    let worker_pool = Arc::new(p2p_runtime::WorkerPool::new());
    let pool: Arc<dyn WorkerSpawner> = worker_pool.clone();
    // The comparison everyone wants first: the registry's default auction
    // execution (`auction_flat` since ISSUE 6) against the locality
    // heuristic baseline. On the sim backend the interesting pair is the
    // virtual-time swarm against the in-process engine it must match.
    let default_pair = match backend.as_str() {
        "sim" => format!("auction_sim,{}", p2p_scenario::DEFAULT_SCHEDULER),
        "net" => format!("auction_net,{}", p2p_scenario::DEFAULT_SCHEDULER),
        _ => format!("{},locality", p2p_scenario::DEFAULT_SCHEDULER),
    };
    let names = args.get_str("schedulers", &default_pair);
    let schedulers: Vec<Box<dyn ChunkScheduler>> = names
        .split(',')
        .map(|n| scheduler_for_runtime(&scenario, n.trim(), Some(pool.clone())))
        .collect::<Result<_>>()?;
    if schedulers.len() < 2 {
        return Err(p2p_types::P2pError::invalid_config(
            "schedulers",
            "a comparison needs at least two (e.g. --schedulers auction_flat,locality)",
        ));
    }

    let metrics_out = args.get_opt_str("metrics-out");
    let report = run_scenario_probed(&scenario, schedulers, metrics_out.is_some())?;
    print!("{}", report.summary_table());

    let welfare: Vec<_> = report
        .runs
        .iter()
        .map(|r| r.recorder.welfare_series().renamed(&r.summary.scheduler))
        .collect();
    let refs: Vec<_> = welfare.iter().collect();
    println!("\nsocial welfare vs time");
    println!("{}", ascii_plot(&refs, 90, 14));

    for run in &report.runs {
        let stem = format!("scenario_{}_{}", scenario.name, run.summary.scheduler);
        let series = [
            run.recorder.welfare_series(),
            run.recorder.inter_isp_series(),
            run.recorder.miss_rate_series(),
            run.recorder.population_series(),
        ];
        let refs: Vec<_> = series.iter().collect();
        let path = save_csv(&stem, "time_s", &refs);
        println!("wrote {}", path.display());
    }

    if let Some(dir) = metrics_out {
        write_metrics_bundle(Path::new(&dir), &scenario, &report, &worker_pool)?;
    }
    Ok(())
}

fn write_file(path: &Path, contents: &[u8]) -> Result<()> {
    std::fs::write(path, contents)
        .map_err(|e| P2pError::invalid_config("metrics-out", format!("{}: {e}", path.display())))?;
    println!("wrote {}", path.display());
    Ok(())
}

/// Writes the probed sweep's observability bundle under `dir`: per run one
/// structured `RunReport` JSON (with the shared pool's utilization counters
/// injected), the per-slot counter CSV, one recorder-series CSV per
/// before/during/after event window, and an ascii welfare plot.
fn write_metrics_bundle(
    dir: &Path,
    scenario: &Scenario,
    report: &ScenarioReport,
    pool: &p2p_runtime::WorkerPool,
) -> Result<()> {
    std::fs::create_dir_all(dir)
        .map_err(|e| P2pError::invalid_config("metrics-out", format!("{}: {e}", dir.display())))?;
    let windows = event_windows(scenario);
    for run in &report.runs {
        let Some(rr) = &run.report else { continue };
        let mut rr = rr.clone();
        // The pool is shared by the whole sweep, so these counters are
        // process-cumulative at the time this run's report is written.
        rr.pool = Some(PoolCounters {
            spawned: pool.spawned(),
            jobs: pool.jobs_executed(),
            parks: pool.parks(),
            idle: pool.idle() as u64,
        });
        let stem = format!("{}_{}", scenario.name, run.summary.scheduler);
        write_file(&dir.join(format!("report_{stem}.json")), rr.to_json().as_bytes())?;
        write_file(&dir.join(format!("slots_{stem}.csv")), rr.slot_csv().as_bytes())?;
        for (name, lo, hi) in &windows {
            let lo_t = *lo as f64 * rr.slot_secs;
            let hi_t = *hi as f64 * rr.slot_secs;
            let series = [
                run.recorder.welfare_series().window(lo_t, hi_t),
                run.recorder.inter_isp_series().window(lo_t, hi_t),
                run.recorder.miss_rate_series().window(lo_t, hi_t),
                run.recorder.population_series().window(lo_t, hi_t),
            ];
            let refs: Vec<_> = series.iter().collect();
            let mut buf = Vec::new();
            p2p_metrics::write_csv(&mut buf, "time_s", &refs)
                .map_err(|e| P2pError::invalid_config("metrics-out", e.to_string()))?;
            write_file(&dir.join(format!("window_{name}_{stem}.csv")), &buf)?;
        }
        let welfare = [run.recorder.welfare_series()];
        let refs: Vec<_> = welfare.iter().collect();
        write_file(&dir.join(format!("plot_{stem}.txt")), ascii_plot(&refs, 90, 14).as_bytes())?;
    }
    Ok(())
}

fn main() -> ExitCode {
    match run(&Args::from_env()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("scenarios: {e}");
            eprintln!("usage: scenarios [--list] [--show] [--scenario NAME | --file PATH]");
            eprintln!("                 [--quick] [--seed S] [--schedulers a,b,...]");
            eprintln!("                 [--slot-build cold|incremental] [--shards auto|N]");
            eprintln!("                 [--backend flat|sim|net] [--net ideal|lan|lossy]");
            eprintln!("                 [--metrics-out DIR]");
            ExitCode::FAILURE
        }
    }
}
