//! EXP-A3 — ISP cost-gap ablation: as the inter-ISP cost mean grows
//! relative to the intra-ISP mean, the auction should localize more of the
//! traffic (and the gap to the locality baseline should widen).
//!
//! Usage: `cargo run --release -p p2p-bench --bin ablation_isp
//! [--peers N] [--slots N]`

use p2p_bench::{run_static, save_xy, Args};
use p2p_sched::{AuctionScheduler, SimpleLocalityScheduler};
use p2p_streaming::SystemConfig;
use p2p_topology::CostDistributions;

fn main() {
    let args = Args::from_env();
    let peers = args.get_usize("peers", 200);
    let slots = args.get_u64("slots", 20);

    println!("ISP cost-gap ablation (static {peers} peers, {slots} slots)");
    println!(
        "{:>12} {:>16} {:>16} {:>16} {:>16}",
        "inter_mean",
        "auction_interisp",
        "locality_interisp",
        "auction_welfare",
        "locality_welfare"
    );

    let mut points = Vec::new();
    for &mean in &[2.0, 3.5, 5.0, 6.5, 8.0] {
        let dists = CostDistributions::with_inter_mean(mean).expect("valid mean");
        let mut config = SystemConfig::paper().with_seed(42);
        config.topology = config.topology.with_distributions(dists);

        let a = run_static(&config, Box::new(AuctionScheduler::paper()), peers, slots)
            .expect("auction run");
        let l = run_static(&config, Box::new(SimpleLocalityScheduler::new()), peers, slots)
            .expect("locality run");

        let at = a.recorder.inter_isp_series().mean_y().unwrap_or(0.0);
        let lt = l.recorder.inter_isp_series().mean_y().unwrap_or(0.0);
        let aw = a.recorder.welfare_series().mean_y().unwrap_or(0.0);
        let lw = l.recorder.welfare_series().mean_y().unwrap_or(0.0);
        println!("{mean:>12.1} {at:>16.3} {lt:>16.3} {aw:>16.1} {lw:>16.1}");
        points.push((mean, at));
    }

    let path = save_xy("ablation_isp_interisp", "inter_mean,auction_inter_isp", &points);
    println!("\nwrote {}", path.display());
    println!("expected: the auction's inter-ISP share falls as crossing ISPs gets costlier");
}
