//! EXP-F — the flat CSR engine vs the nested-layout engines on
//! flash-crowd-scale slot instances.
//!
//! Measures per-slot auction latency on 10³–10⁴-request welfare instances
//! for the PR 4 sharded engine ([`p2p_core::ShardedAuction`]) and the flat
//! CSR engine ([`p2p_core::csr::FlatAuction`]) at matching shard counts
//! (plus the sequential sweep and `shards = auto`), checks every outcome
//! against the Theorem 1 `n·ε` certificate and the sync oracle's welfare,
//! and — because the flat engine is the *same* auction over a different
//! memory layout — hard-fails unless each flat run is **bit-identical**
//! (welfare, rounds, bids) to its nested counterpart. Results land in
//! `BENCH_flat.json` at the repo root, comparable row-for-row with
//! `BENCH_parallel.json`.
//!
//! Usage:
//!   `flat_bench [--quick] [--simd] [--out PATH]`
//!
//! `--quick` shrinks instance sizes for CI smoke runs; the committed JSON
//! comes from a full run. The `flat_hot` rows time
//! [`FlatAuction::run_into`] — the zero-allocation steady-state slot path
//! (reused scratch + reused outcome buffers); plain `flat` rows include
//! the owned-outcome conversion so they are directly comparable with the
//! nested engines' rows.
//!
//! `--simd` switches to EXP-K (ISSUE 6): the branchless lane bid kernel
//! ([`BidKernel::Lanes`]) vs the PR 5 sequential scan
//! ([`BidKernel::Scalar`]) over the same flat engine, with the nested
//! engines as context rows. Every run is certificate-checked and the
//! binary hard-fails if the two kernels diverge in *any* outcome field —
//! so a passing run is machine-checked evidence the kernel is a pure
//! speed change. Results land in `BENCH_simd.json`.
//!
//! `--obs` switches to EXP-O (ISSUE 7): the instrumented steady-state path
//! (`run_into_probed` with a live [`CountingProbe`]) vs the bare
//! `run_into` loop and vs probes-compiled-but-disabled ([`NoProbe`]) on
//! the same engine. Outcomes must be bit-identical in every mode, and the
//! binary hard-fails if the enabled-probe overhead exceeds 5% at the
//! 10⁴-request sweep. Results land in `BENCH_obs.json`.

use p2p_bench::Args;
use p2p_core::csr::{CsrInstance, FlatAuction, FlatOutcome};
use p2p_core::{
    verify_optimality, AuctionConfig, BidKernel, CountingProbe, NoProbe, ShardCount,
    ShardedAuction, SyncAuction, WelfareInstance,
};
use p2p_types::Result;
use std::process::ExitCode;
use std::time::Instant;

/// The ε every engine runs with (matches `shard_bench`): large instances
/// carry structural near-ties, so the deployable ε > 0 configuration is
/// the meaningful comparison.
const EPSILON: f64 = 0.01;

struct EngineRun {
    label: String,
    shards: Option<usize>,
    wall_ns: u128,
    rounds: u64,
    bids: u64,
    welfare: f64,
    /// Nanoseconds of the nested engine this row is compared against
    /// (sync for shards ≤ 1, the sharded engine otherwise); `None` for the
    /// baseline rows themselves.
    baseline_ns: Option<u128>,
}

/// Best-of-four timing around `run`, with one untimed warm-up pass.
fn best_of<T>(mut run: impl FnMut() -> Result<T>) -> Result<(u128, T)> {
    run()?;
    let mut wall_ns = u128::MAX;
    let mut last = None;
    for _ in 0..4 {
        let t0 = Instant::now();
        let out = run()?;
        wall_ns = wall_ns.min(t0.elapsed().as_nanos());
        last = Some(out);
    }
    Ok((wall_ns, last.expect("timed passes ran")))
}

/// A flash-crowd-shaped slot, identical in shape to `shard_bench`'s: total
/// upload capacity ≈ 28% of demand, deep per-provider allocation sets and
/// ~24 candidate edges per request.
fn bench_instance(seed: u64, requests: usize) -> WelfareInstance {
    let providers = (requests / 16).max(4);
    p2p_bench::instances::random_instance(seed, providers, requests, 8, 24)
}

fn certify(instance: &WelfareInstance, outcome: &p2p_core::AuctionOutcome) -> Result<()> {
    let tol = EPSILON * (instance.request_count() as f64 + 1.0);
    let report = verify_optimality(instance, &outcome.assignment, &outcome.duals, tol);
    if !report.is_optimal() {
        return Err(p2p_types::P2pError::MalformedInstance(format!(
            "an engine lost the optimality certificate: {:?}",
            report.violations
        )));
    }
    Ok(())
}

fn run(args: &Args) -> Result<()> {
    let quick = args.has("quick");
    let sizes: &[usize] = if quick { &[400, 1_000] } else { &[1_000, 3_000, 10_000] };
    let shard_counts: [usize; 3] = [2, 4, 8];
    let out_path = args.get_str("out", "BENCH_flat.json");
    let cfg = AuctionConfig::with_epsilon(EPSILON);

    let mut rows = Vec::new();
    println!("cold per-slot auction latency, ε = {EPSILON} (flat = CSR layout + reused scratch):");
    println!(
        "{:<10} {:<16} {:>12} {:>8} {:>10} {:>12} {:>12} {:>10}",
        "requests", "engine", "wall", "rounds", "bids", "welfare", "vs nested", "certified"
    );
    for &requests in sizes {
        let instance = bench_instance(0xF1A7 ^ requests as u64, requests);
        let csr = CsrInstance::compile(&instance);
        let mut runs: Vec<EngineRun> = Vec::new();

        // Baselines: the sequential sweep and the PR 4 sharded engine.
        let sync_engine = SyncAuction::new(cfg);
        let (sync_ns, sync_out) = best_of(|| sync_engine.run(&instance))?;
        certify(&instance, &sync_out)?;
        let sync_welfare = sync_out.assignment.welfare(&instance).get();
        runs.push(EngineRun {
            label: "sync".into(),
            shards: None,
            wall_ns: sync_ns,
            rounds: sync_out.rounds,
            bids: sync_out.bids_submitted,
            welfare: sync_welfare,
            baseline_ns: None,
        });
        let mut nested_ns = std::collections::HashMap::new();
        let mut nested_fingerprint = std::collections::HashMap::new();
        for &n in &shard_counts {
            let engine = ShardedAuction::new(cfg, ShardCount::Fixed(n));
            let (ns, out) = best_of(|| engine.run(&instance))?;
            certify(&instance, &out)?;
            let welfare = out.assignment.welfare(&instance).get();
            nested_ns.insert(n, ns);
            nested_fingerprint.insert(n, (welfare, out.rounds, out.bids_submitted));
            runs.push(EngineRun {
                label: format!("sharded/{n}"),
                shards: Some(n),
                wall_ns: ns,
                rounds: out.rounds,
                bids: out.bids_submitted,
                welfare,
                baseline_ns: None,
            });
        }

        // The flat engine at matching shard counts (1 compares against the
        // sync sweep), with one persistent engine per row — the scratch
        // reuse the slot loop gets in production.
        for &n in &[1usize, 2, 4, 8] {
            let mut engine = FlatAuction::new(cfg, ShardCount::Fixed(n));
            let (ns, out) = best_of(|| engine.run(&csr))?;
            certify(&instance, &out)?;
            let welfare = out.assignment.welfare(&instance).get();
            let (base_ns, base_print) = if n == 1 {
                (sync_ns, (sync_welfare, sync_out.rounds, sync_out.bids_submitted))
            } else {
                (nested_ns[&n], nested_fingerprint[&n])
            };
            // Bit-equality gate: the flat engine must reproduce its nested
            // counterpart exactly — any drift is a defect, not noise.
            if (welfare, out.rounds, out.bids_submitted) != base_print {
                return Err(p2p_types::P2pError::MalformedInstance(format!(
                    "flat/{n} diverged from its nested counterpart on the \
                     {requests}-request instance: ({welfare}, {}, {}) vs {base_print:?}",
                    out.rounds, out.bids_submitted
                )));
            }
            runs.push(EngineRun {
                label: format!("flat/{n}"),
                shards: Some(n),
                wall_ns: ns,
                rounds: out.rounds,
                bids: out.bids_submitted,
                welfare,
                baseline_ns: Some(base_ns),
            });
            // The zero-allocation steady-state path: reused outcome
            // buffers, no owned-outcome conversion.
            let mut hot = FlatOutcome::default();
            let (hot_ns, _) = best_of(|| engine.run_into(&csr, &mut hot).map(|()| hot.welfare()))?;
            runs.push(EngineRun {
                label: format!("flat_hot/{n}"),
                shards: Some(n),
                wall_ns: hot_ns,
                rounds: hot.rounds(),
                bids: hot.bids_submitted(),
                welfare: hot.welfare(),
                baseline_ns: Some(base_ns),
            });
        }
        // `shards = auto` adapts to the slot size (identical to the nested
        // Auto resolution, so also bit-identical — covered by tests).
        {
            let auto = ShardCount::Auto.resolve_for(requests);
            let mut engine = FlatAuction::new(cfg, ShardCount::Auto);
            let (ns, out) = best_of(|| engine.run(&csr))?;
            certify(&instance, &out)?;
            runs.push(EngineRun {
                label: format!("flat/auto({auto})"),
                shards: Some(auto),
                wall_ns: ns,
                rounds: out.rounds,
                bids: out.bids_submitted,
                welfare: out.assignment.welfare(&instance).get(),
                baseline_ns: None,
            });
        }

        let bound = EPSILON * 2.0 * instance.request_count() as f64 + 1e-9;
        for r in &runs {
            // Every engine is within n·ε of optimal, so within 2·n·ε of
            // the sync oracle; a larger gap means a real defect.
            if (r.welfare - sync_welfare).abs() > bound {
                return Err(p2p_types::P2pError::MalformedInstance(format!(
                    "{} welfare {} strayed from sync welfare {sync_welfare} on the \
                     {requests}-request instance",
                    r.label, r.welfare
                )));
            }
            let speedup = r.baseline_ns.map(|b| b as f64 / r.wall_ns.max(1) as f64);
            println!(
                "{:<10} {:<16} {:>10}µs {:>8} {:>10} {:>12.2} {:>11} {:>10}",
                requests,
                r.label,
                r.wall_ns / 1_000,
                r.rounds,
                r.bids,
                r.welfare,
                speedup.map_or("-".to_string(), |s| format!("{s:.2}x")),
                "yes",
            );
            rows.push(format!(
                "    {{\n      \"requests\": {},\n      \"providers\": {},\n      \
                 \"engine\": \"{}\",\n      \"shards\": {},\n      \"wall_ns\": {},\n      \
                 \"rounds\": {},\n      \"bids\": {},\n      \"welfare\": {:.3},\n      \
                 \"speedup_vs_nested\": {},\n      \"certified\": true\n    }}",
                requests,
                instance.provider_count(),
                r.label,
                r.shards.map_or("null".to_string(), |s| s.to_string()),
                r.wall_ns,
                r.rounds,
                r.bids,
                r.welfare,
                speedup.map_or("null".to_string(), |s| format!("{s:.3}")),
            ));
        }
    }

    let cores = p2p_core::available_cores();
    let json = format!(
        "{{\n  \"note\": \"The flat CSR engine (structure-of-arrays instance layout, v-w \
         precomputed once, reusable AuctionScratch: zero hot-loop allocations after \
         warm-up) vs the nested-layout engines on flash-crowd-shaped slot instances \
         (ISSUE 5). flat/N rows are bit-identical in welfare/rounds/bids to their \
         nested counterparts (sync for N=1, sharded/N otherwise) — enforced by this \
         binary — so speedup_vs_nested is pure memory-layout + scratch-reuse win. \
         flat_hot rows time the zero-allocation run_into path the slot loop uses in \
         steady state. Regenerate with `cargo run --release -p p2p-bench --bin \
         flat_bench` (add --quick for CI sizes); expect run-to-run timing noise, the \
         certified/welfare fields are exact.\",\n  \"command\": \"cargo run --release \
         -p p2p-bench --bin flat_bench{}\",\n  \"epsilon\": {},\n  \
         \"machine_cores\": {},\n  \"runs\": [\n{}\n  ]\n}}\n",
        if quick { " -- --quick" } else { "" },
        EPSILON,
        cores,
        rows.join(",\n"),
    );
    std::fs::write(&out_path, json).map_err(|e| {
        p2p_types::P2pError::invalid_config("out", format!("cannot write `{out_path}`: {e}"))
    })?;
    println!("\nwrote {out_path}");
    Ok(())
}

/// EXP-K — the branchless lane bid kernel vs the PR 5 sequential scan.
///
/// Times the zero-allocation steady-state path (`run_into` with reused
/// scratch) of the *same* flat engine under both [`BidKernel`]s at each
/// shard count, hard-failing on certificate loss, on any kernel/scalar
/// outcome divergence (assignment choices, duals, rounds, bids — not just
/// welfare), and on flat/nested welfare drift. The nested engines appear
/// as context rows so the JSON tells the whole story: nested → flat
/// scalar (PR 5's layout win) → flat kernel (this PR's reduction win).
fn run_simd(args: &Args) -> Result<()> {
    let quick = args.has("quick");
    let sizes: &[usize] = if quick { &[400, 1_000] } else { &[1_000, 3_000, 10_000] };
    let shard_counts: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let out_path = args.get_str("out", "BENCH_simd.json");
    let cfg = AuctionConfig::with_epsilon(EPSILON);

    let mut rows = Vec::new();
    println!("steady-state per-slot latency by bid kernel, ε = {EPSILON}:");
    println!(
        "{:<10} {:<16} {:>12} {:>8} {:>10} {:>12} {:>12} {:>10}",
        "requests", "engine", "wall", "rounds", "bids", "welfare", "vs scalar", "certified"
    );
    for &requests in sizes {
        let instance = bench_instance(0xF1A7 ^ requests as u64, requests);
        let csr = CsrInstance::compile(&instance);

        // Context rows: the nested engines this PR inherits its oracle
        // fingerprints from.
        let sync_engine = SyncAuction::new(cfg);
        let (sync_ns, sync_out) = best_of(|| sync_engine.run(&instance))?;
        certify(&instance, &sync_out)?;
        let sync_welfare = sync_out.assignment.welfare(&instance).get();
        let mut context = vec![("sync".to_string(), None, sync_ns, sync_out)];
        for &n in shard_counts.iter().filter(|&&n| n > 1) {
            let engine = ShardedAuction::new(cfg, ShardCount::Fixed(n));
            let (ns, out) = best_of(|| engine.run(&instance))?;
            certify(&instance, &out)?;
            context.push((format!("nested/{n}"), Some(n), ns, out));
        }
        for (label, shards, ns, out) in &context {
            println!(
                "{:<10} {:<16} {:>10}µs {:>8} {:>10} {:>12.2} {:>11} {:>10}",
                requests,
                label,
                ns / 1_000,
                out.rounds,
                out.bids_submitted,
                out.assignment.welfare(&instance).get(),
                "-",
                "yes",
            );
            rows.push(simd_row(
                requests,
                instance.provider_count(),
                label,
                *shards,
                *ns,
                out.rounds,
                out.bids_submitted,
                out.assignment.welfare(&instance).get(),
                None,
            ));
        }

        for &n in shard_counts {
            // One persistent engine and one reused outcome per kernel: the
            // scratch/buffer reuse the slot loop gets in production.
            let mut results = Vec::new();
            for kernel in [BidKernel::Scalar, BidKernel::Lanes] {
                let mut engine = FlatAuction::new(cfg, ShardCount::Fixed(n)).with_kernel(kernel);
                let mut hot = FlatOutcome::default();
                let (ns, ()) = best_of(|| engine.run_into(&csr, &mut hot))?;
                let out = hot.to_outcome();
                certify(&instance, &out)?;
                if (out.assignment.welfare(&instance).get() - sync_welfare).abs()
                    > EPSILON * 2.0 * instance.request_count() as f64 + 1e-9
                {
                    return Err(p2p_types::P2pError::MalformedInstance(format!(
                        "{}/{n} welfare strayed from the sync oracle on the \
                         {requests}-request instance",
                        kernel.name()
                    )));
                }
                results.push((kernel, ns, out));
            }
            // The divergence gate: the kernels must agree on *everything*.
            let (_, scalar_ns, scalar_out) = &results[0];
            let (_, _, kernel_out) = &results[1];
            if scalar_out.assignment != kernel_out.assignment
                || scalar_out.duals != kernel_out.duals
                || scalar_out.rounds != kernel_out.rounds
                || scalar_out.bids_submitted != kernel_out.bids_submitted
            {
                return Err(p2p_types::P2pError::MalformedInstance(format!(
                    "the lane kernel diverged from the scalar scan at shards = {n} \
                     on the {requests}-request instance"
                )));
            }
            for (kernel, ns, out) in &results {
                let speedup =
                    (*kernel == BidKernel::Lanes).then(|| *scalar_ns as f64 / (*ns).max(1) as f64);
                let welfare = out.assignment.welfare(&instance).get();
                println!(
                    "{:<10} {:<16} {:>10}µs {:>8} {:>10} {:>12.2} {:>11} {:>10}",
                    requests,
                    format!("{}/{n}", kernel.name()),
                    ns / 1_000,
                    out.rounds,
                    out.bids_submitted,
                    welfare,
                    speedup.map_or("-".to_string(), |s| format!("{s:.2}x")),
                    "yes",
                );
                rows.push(simd_row(
                    requests,
                    instance.provider_count(),
                    &format!("{}/{n}", kernel.name()),
                    Some(n),
                    *ns,
                    out.rounds,
                    out.bids_submitted,
                    welfare,
                    speedup,
                ));
            }
        }
    }

    let json = format!(
        "{{\n  \"note\": \"The branchless lane bid kernel (BidKernel::Lanes: chunked \
         top-2 reduction over the CSR edge_utility rows, prices gathered per lane, \
         merged with an index tie-break) vs the PR 5 sequential scan \
         (BidKernel::Scalar) over the same flat engine, nested engines as context \
         (ISSUE 6). Rows time the zero-allocation run_into steady-state path. This \
         binary hard-fails unless both kernels produce identical assignments, duals, \
         rounds and bids and every run passes the Theorem 1 certificate — \
         speedup_vs_scalar is therefore a pure reduction-shape win. Regenerate with \
         `cargo run --release -p p2p-bench --bin flat_bench -- --simd` (add --quick \
         for CI sizes); expect run-to-run timing noise, the certified/welfare fields \
         are exact.\",\n  \"command\": \"cargo run --release -p p2p-bench --bin \
         flat_bench -- --simd{}\",\n  \"epsilon\": {},\n  \"machine_cores\": {},\n  \
         \"default_kernel\": \"{}\",\n  \"runs\": [\n{}\n  ]\n}}\n",
        if quick { " --quick" } else { "" },
        EPSILON,
        p2p_core::available_cores(),
        BidKernel::default().name(),
        rows.join(",\n"),
    );
    std::fs::write(&out_path, json).map_err(|e| {
        p2p_types::P2pError::invalid_config("out", format!("cannot write `{out_path}`: {e}"))
    })?;
    println!("\nwrote {out_path}");
    Ok(())
}

/// EXP-O — probe overhead on the steady-state slot path.
///
/// For each instance size and shard count, times three executions of the
/// identical engine + scratch: the bare `run_into` loop, `run_into_probed`
/// with [`NoProbe`] (the monomorphized probes-off configuration every
/// scheduler uses by default), and `run_into_probed` with a live
/// [`CountingProbe`]. Outcomes must be bit-identical across all three —
/// probes are observers — and at the full 10⁴-request sweep the enabled
/// probe may cost at most 5% wall clock over bare, enforced as a hard
/// failure so the observability layer can never silently tax the hot path.
fn run_obs(args: &Args) -> Result<()> {
    const MAX_OVERHEAD_PCT: f64 = 5.0;
    let quick = args.has("quick");
    let sizes: &[usize] = if quick { &[400, 1_000] } else { &[1_000, 3_000, 10_000] };
    let shard_counts: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let gate_requests = 10_000;
    let out_path = args.get_str("out", "BENCH_obs.json");
    let cfg = AuctionConfig::with_epsilon(EPSILON);

    let mut rows = Vec::new();
    println!("steady-state per-slot latency by probe mode, ε = {EPSILON}:");
    println!(
        "{:<10} {:<16} {:>12} {:>8} {:>10} {:>12} {:>10} {:>8}",
        "requests", "engine", "wall", "rounds", "bids", "welfare", "overhead", "gated"
    );
    for &requests in sizes {
        let instance = bench_instance(0xF1A7 ^ requests as u64, requests);
        let csr = CsrInstance::compile(&instance);
        for &n in shard_counts {
            let mut engine = FlatAuction::new(cfg, ShardCount::Fixed(n));
            let mut hot = FlatOutcome::default();
            engine.run_into(&csr, &mut hot)?; // warm-up: buffers grow here
            let fingerprint = (hot.welfare(), hot.rounds(), hot.bids_submitted());
            certify(&instance, &hot.to_outcome())?;

            // Interleaved best-of: the three modes alternate inside each
            // timed round so clock drift and cache state hit all of them
            // equally. Separate back-to-back blocks can drift by more
            // than the gate itself — `NoProbe` is the bare code, so any
            // "overhead" it shows is pure timing noise.
            const TIMED_ROUNDS: u64 = 8;
            let (mut bare_ns, mut noprobe_ns, mut probed_ns) = (u128::MAX, u128::MAX, u128::MAX);
            let mut probe = CountingProbe::new();
            for _ in 0..TIMED_ROUNDS {
                let t0 = Instant::now();
                engine.run_into(&csr, &mut hot)?;
                bare_ns = bare_ns.min(t0.elapsed().as_nanos());
                let bare_print = (hot.welfare(), hot.rounds(), hot.bids_submitted());
                let t0 = Instant::now();
                engine.run_into_probed(&csr, &mut hot, &mut NoProbe)?;
                noprobe_ns = noprobe_ns.min(t0.elapsed().as_nanos());
                let noprobe_print = (hot.welfare(), hot.rounds(), hot.bids_submitted());
                let t0 = Instant::now();
                engine.run_into_probed(&csr, &mut hot, &mut probe)?;
                probed_ns = probed_ns.min(t0.elapsed().as_nanos());
                let probed_print = (hot.welfare(), hot.rounds(), hot.bids_submitted());
                if bare_print != fingerprint
                    || noprobe_print != fingerprint
                    || probed_print != fingerprint
                {
                    return Err(p2p_types::P2pError::MalformedInstance(format!(
                        "probes perturbed the outcome at shards = {n} on the \
                         {requests}-request instance: warm-up {fingerprint:?}, \
                         bare {bare_print:?}, noprobe {noprobe_print:?}, \
                         probed {probed_print:?}"
                    )));
                }
            }
            let report = probe.take_report();
            // The probe's own view must agree with the engine's counters
            // (it accumulated over the probed pass of every timed round).
            if report.bids != fingerprint.2 * TIMED_ROUNDS {
                return Err(p2p_types::P2pError::MalformedInstance(format!(
                    "the counting probe saw {} bids across {TIMED_ROUNDS} passes of {}",
                    report.bids, fingerprint.2
                )));
            }

            let gated = requests == gate_requests && !quick;
            for (label, ns) in [("bare", bare_ns), ("noprobe", noprobe_ns), ("probed", probed_ns)] {
                let overhead_pct = (label != "bare")
                    .then(|| 100.0 * (ns as f64 - bare_ns as f64) / bare_ns.max(1) as f64);
                if gated && label == "probed" {
                    let pct = overhead_pct.expect("probed rows carry overhead");
                    if pct > MAX_OVERHEAD_PCT {
                        return Err(p2p_types::P2pError::MalformedInstance(format!(
                            "enabled-probe overhead {pct:.2}% exceeds {MAX_OVERHEAD_PCT}% \
                             at the {requests}-request gate (shards = {n})"
                        )));
                    }
                }
                println!(
                    "{:<10} {:<16} {:>10}µs {:>8} {:>10} {:>12.2} {:>9} {:>8}",
                    requests,
                    format!("{label}/{n}"),
                    ns / 1_000,
                    fingerprint.1,
                    fingerprint.2,
                    fingerprint.0,
                    overhead_pct.map_or("-".to_string(), |p| format!("{p:.2}%")),
                    if gated && label == "probed" { "pass" } else { "-" },
                );
                rows.push(format!(
                    "    {{\n      \"requests\": {},\n      \"providers\": {},\n      \
                     \"engine\": \"{label}/{n}\",\n      \"shards\": {n},\n      \
                     \"wall_ns\": {ns},\n      \"rounds\": {},\n      \"bids\": {},\n      \
                     \"welfare\": {:.3},\n      \"overhead_pct\": {},\n      \
                     \"gate\": {}\n    }}",
                    requests,
                    instance.provider_count(),
                    fingerprint.1,
                    fingerprint.2,
                    fingerprint.0,
                    overhead_pct.map_or("null".to_string(), |p| format!("{p:.3}")),
                    if gated && label == "probed" { "\"pass\"" } else { "null" },
                ));
            }
        }
    }

    let json = format!(
        "{{\n  \"note\": \"Probe overhead on the flat engine's zero-allocation \
         steady-state path. Timings are interleaved best-of-8 (the three modes \
         alternate within each timed round, so clock drift hits them equally). \
         bare times run_into; noprobe times \
         run_into_probed with the monomorphized NoProbe (the probes-off \
         configuration every scheduler uses by default); probed times \
         run_into_probed with a live CountingProbe accumulating per-round bid/ \
         conflict/retirement counters, price-delta histograms and the epsilon-\
         certificate slack. This binary hard-fails unless all three modes produce \
         bit-identical welfare/rounds/bids and the probed overhead stays within 5% \
         at the 10^4-request sweep — observability can never silently tax the hot \
         path. Regenerate with `cargo run --release -p p2p-bench --bin flat_bench \
         -- --obs` (add --quick for CI sizes, which skips the gate); expect \
         run-to-run timing noise, the welfare fields are exact.\",\n  \
         \"command\": \"cargo run --release -p p2p-bench --bin flat_bench -- \
         --obs{}\",\n  \"epsilon\": {},\n  \"max_overhead_pct\": {},\n  \
         \"machine_cores\": {},\n  \"runs\": [\n{}\n  ]\n}}\n",
        if quick { " --quick" } else { "" },
        EPSILON,
        MAX_OVERHEAD_PCT,
        p2p_core::available_cores(),
        rows.join(",\n"),
    );
    std::fs::write(&out_path, json).map_err(|e| {
        p2p_types::P2pError::invalid_config("out", format!("cannot write `{out_path}`: {e}"))
    })?;
    println!("\nwrote {out_path}");
    Ok(())
}

#[allow(clippy::too_many_arguments)] // flat row serializer, mirrors the JSON shape
fn simd_row(
    requests: usize,
    providers: usize,
    engine: &str,
    shards: Option<usize>,
    wall_ns: u128,
    rounds: u64,
    bids: u64,
    welfare: f64,
    speedup: Option<f64>,
) -> String {
    format!(
        "    {{\n      \"requests\": {},\n      \"providers\": {},\n      \
         \"engine\": \"{}\",\n      \"shards\": {},\n      \"wall_ns\": {},\n      \
         \"rounds\": {},\n      \"bids\": {},\n      \"welfare\": {:.3},\n      \
         \"speedup_vs_scalar\": {},\n      \"certified\": true\n    }}",
        requests,
        providers,
        engine,
        shards.map_or("null".to_string(), |s| s.to_string()),
        wall_ns,
        rounds,
        bids,
        welfare,
        speedup.map_or("null".to_string(), |s| format!("{s:.3}")),
    )
}

fn main() -> ExitCode {
    let args = Args::from_env();
    let result = if args.has("simd") {
        run_simd(&args)
    } else if args.has("obs") {
        run_obs(&args)
    } else {
        run(&args)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("flat_bench: {e}");
            eprintln!("usage: flat_bench [--quick] [--simd] [--obs] [--out PATH]");
            ExitCode::FAILURE
        }
    }
}
