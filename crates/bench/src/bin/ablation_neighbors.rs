//! EXP-A2 — neighbor-count ablation: how the neighbor budget (the paper's
//! default is 30) affects welfare, inter-ISP traffic and miss rate.
//!
//! Usage: `cargo run --release -p p2p-bench --bin ablation_neighbors
//! [--peers N] [--slots N]`

use p2p_bench::{run_static, save_xy, Args};
use p2p_sched::AuctionScheduler;
use p2p_streaming::SystemConfig;

fn main() {
    let args = Args::from_env();
    let peers = args.get_usize("peers", 200);
    let slots = args.get_u64("slots", 20);

    println!("neighbor-count ablation (auction, static {peers} peers, {slots} slots)");
    println!("{:>10} {:>14} {:>14} {:>12}", "neighbors", "mean_welfare", "inter_isp", "miss_rate");

    let mut welfare_points = Vec::new();
    for &n in &[5usize, 10, 20, 30, 40, 50] {
        let mut config = SystemConfig::paper().with_seed(42);
        config.neighbor_count = n;
        let run =
            run_static(&config, Box::new(AuctionScheduler::paper()), peers, slots).expect("run");
        let w = run.recorder.welfare_series().mean_y().unwrap_or(0.0);
        let t = run.recorder.inter_isp_series().mean_y().unwrap_or(0.0);
        let m = run.recorder.miss_rate_series().mean_y().unwrap_or(0.0);
        println!("{n:>10} {w:>14.1} {t:>14.3} {m:>12.4}");
        welfare_points.push((n as f64, w));
    }

    let path = save_xy("ablation_neighbors_welfare", "neighbors,mean_welfare", &welfare_points);
    println!("\nwrote {}", path.display());
    println!("expected: welfare rises with neighbor count and saturates near the default 30");
}
