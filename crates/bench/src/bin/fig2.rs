//! EXP-F2 — Fig. 2: evolution of a representative peer's bandwidth price
//! `λ_u` within time slots, under the message-level distributed auction
//! with link latencies.
//!
//! Paper setup: static network of 500 peers, 10-second slots, trace window
//! t ∈ [150 s, 250 s]. The expected shape: at each slot start the price
//! resets to 0, climbs as bids race in, and flattens ≈ 5 s into the slot —
//! the auction has converged well before the slot ends.
//!
//! Usage: `cargo run --release -p p2p-bench --bin fig2 [--peers N]
//! [--from SECS] [--to SECS] [--quick]`

use p2p_bench::{save_xy, Args};
use p2p_core::dist::DistConfig;
use p2p_metrics::{ascii_plot, TimeSeries};
use p2p_sched::AuctionScheduler;
use p2p_streaming::fig2::{price_series_for, representative_trace, run_distributed_slot};
use p2p_streaming::{System, SystemConfig};

fn main() {
    let args = Args::from_env();
    let quick = args.has("quick");
    // Price dynamics need contention, which needs the paper's 500-peer
    // scale; --quick shortens the traced window instead of shrinking the
    // swarm.
    let peers = args.get_usize("peers", 500);
    let from_secs = args.get_f64("from", 150.0);
    let to_secs = args.get_f64("to", if quick { 170.0 } else { 250.0 });

    let config = SystemConfig::paper().with_seed(42);
    let slot_secs = config.slot_len.as_secs_f64();
    let first_traced_slot = (from_secs / slot_secs) as u64;
    let last_traced_slot = (to_secs / slot_secs) as u64;

    eprintln!(
        "fig2: {peers} static peers, tracing slots {first_traced_slot}..{last_traced_slot} \
         (t in [{from_secs}, {to_secs}] s)"
    );

    let mut sys =
        System::new(config, Box::new(AuctionScheduler::paper())).expect("paper config is valid");
    sys.add_static_peers(peers).expect("distributions are valid");

    // Warm up with the fast synchronous engine until the trace window.
    eprintln!("fig2: warming up {first_traced_slot} slots (synchronous engine)...");
    sys.run_slots(first_traced_slot).expect("warm-up slots");

    // Trace window: run each slot at the message level.
    let mut outcomes = Vec::new();
    let mut slot_starts = Vec::new();
    for s in first_traced_slot..last_traced_slot {
        let start = sys.now();
        slot_starts.push(start);
        let out = run_distributed_slot(&mut sys, DistConfig::paper())
            .expect("distributed slot converges");
        eprintln!(
            "fig2: slot {s}: {} transfers, {} messages, converged {:.2} s into the slot",
            out.metrics.transfers,
            out.messages,
            out.convergence_secs - start.as_secs_f64(),
        );
        outcomes.push(out);
    }

    let Some(rep) = representative_trace(&outcomes) else {
        println!(
            "Fig. 2 — no provider's price moved: the swarm has no upload \
             contention at this scale. Re-run with more peers (--peers 500)."
        );
        return;
    };
    let series = price_series_for(rep, &outcomes, &slot_starts);

    let mut ts = TimeSeries::new("lambda_u");
    ts.extend(series.iter().copied());
    println!("Fig. 2 — price evolution at representative {rep}");
    println!("{}", ascii_plot(&[&ts], 90, 18));

    // Convergence summary per slot (the paper reports ≈ 5 s).
    let mut conv = Vec::new();
    for (o, s) in outcomes.iter().zip(&slot_starts) {
        conv.push(o.convergence_secs - s.as_secs_f64());
    }
    let mean_conv = conv.iter().sum::<f64>() / conv.len().max(1) as f64;
    println!("mean within-slot convergence: {mean_conv:.2} s (paper: ≈ 5 s)");
    println!(
        "slot-start resets: {} (price returns to 0 at every slot boundary)",
        slot_starts.len()
    );

    let path = save_xy("fig2_price_evolution", "time_s,lambda", &series);
    let conv_points: Vec<(f64, f64)> =
        slot_starts.iter().zip(&conv).map(|(s, c)| (s.as_secs_f64(), *c)).collect();
    let path2 = save_xy("fig2_convergence_secs", "slot_start_s,convergence_s", &conv_points);
    println!("wrote {} and {}", path.display(), path2.display());
}
