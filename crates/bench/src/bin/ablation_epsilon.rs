//! EXP-A1 — ε ablation: convergence speed vs. welfare loss.
//!
//! The paper's bid rule is the ε = 0 Bertsekas auction; ε > 0 trades up to
//! `n·ε` welfare for faster, tie-proof convergence (Sec. IV discussion in
//! DESIGN.md). This sweep quantifies the trade on random slot-shaped
//! instances.
//!
//! Usage: `cargo run --release -p p2p-bench --bin ablation_epsilon
//! [--trials N] [--requests N]`

use p2p_bench::{random_instance, save_xy, Args};
use p2p_core::{AuctionConfig, SyncAuction};

fn main() {
    let args = Args::from_env();
    let trials = args.get_usize("trials", 10);
    let requests = args.get_usize("requests", 400);
    let providers = requests / 10;

    println!("epsilon ablation ({trials} trials, {providers} providers x {requests} requests)");
    println!(
        "{:>10} {:>12} {:>12} {:>14} {:>14}",
        "epsilon", "rounds", "bids", "welfare_gap", "gap_bound(n*eps)"
    );

    let mut points = Vec::new();
    for &eps in &[0.0, 1e-3, 1e-2, 0.05, 0.1, 0.5] {
        let mut rounds = 0.0;
        let mut bids = 0.0;
        let mut gap = 0.0_f64;
        for t in 0..trials {
            let inst = random_instance(900 + t as u64, providers, requests, 6, 6);
            let exact = inst.optimal_welfare().get();
            let out =
                SyncAuction::new(AuctionConfig::with_epsilon(eps)).run(&inst).expect("converges");
            rounds += out.rounds as f64;
            bids += out.bids_submitted as f64;
            gap = gap.max(exact - out.assignment.welfare(&inst).get());
        }
        let n = trials as f64;
        println!(
            "{:>10} {:>12.1} {:>12.1} {:>14.4} {:>14.4}",
            eps,
            rounds / n,
            bids / n,
            gap,
            requests as f64 * eps
        );
        points.push((eps, rounds / n));
    }

    let path = save_xy("ablation_epsilon_rounds", "epsilon,mean_rounds", &points);
    println!("\nwrote {}", path.display());
    println!("expected: rounds fall as eps grows; welfare gap stays <= n*eps");
}
