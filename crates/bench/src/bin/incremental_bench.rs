//! EXP-I — cold vs incremental vs warm-started slot pipelines.
//!
//! Measures per-slot latency of the three slot-problem pipelines across
//! swarm sizes, verifies the incremental path's bit-equality with the cold
//! oracle on every built-in scenario, reports the slot-to-slot instance
//! overlap that makes the cache pay (via the `p2p-core` diff/patch API),
//! and records everything in `BENCH_incremental.json` at the repo root.
//!
//! Usage:
//!   `incremental [--quick] [--slots N] [--out PATH]`
//!
//! `--quick` shrinks swarm sizes and slot counts for CI smoke runs; the
//! committed JSON comes from a full run.

use p2p_bench::Args;
use p2p_core::InstancePatch;
use p2p_scenario::{builtin, run_scenario, scheduler_by_name, BUILTIN_NAMES};
use p2p_sched::{AuctionScheduler, ChunkScheduler};
use p2p_streaming::{SeedPlacement, SlotBuild, System, SystemConfig};
use p2p_types::{Result, SimDuration};
use std::process::ExitCode;
use std::time::Instant;

/// One pipeline's timings over a swarm run.
struct PipelineRun {
    mode: &'static str,
    prepare_ns: u128,
    schedule_ns: u128,
    slots: u64,
    welfare_bits: Vec<u64>,
    total_welfare: f64,
}

impl PipelineRun {
    fn per_slot_ns(&self) -> u128 {
        (self.prepare_ns + self.schedule_ns) / u128::from(self.slots.max(1))
    }

    fn prepare_per_slot_ns(&self) -> u128 {
        self.prepare_ns / u128::from(self.slots.max(1))
    }
}

/// A flash-crowd swarm mid-startup: every watcher joins early and buffers
/// against scarce seed capacity for the whole measured horizon. This is
/// the regime the incremental cache and price warm-starting target — the
/// prefetch windows are stable (playback has not started), most requests
/// outlive the slot because capacity, not interest, is the bottleneck, and
/// the same providers stay contended so carried prices remain supported.
fn swarm_config(seed: u64, slot_build: SlotBuild) -> SystemConfig {
    let mut config = SystemConfig::small_test().with_seed(seed).with_slot_build(slot_build);
    config.streaming.video_size_bytes = 8_000_000; // 100 s of playback
    config.seeds = SeedPlacement::PerVideoTotal(1);
    config.startup_delay = SimDuration::from_secs(90);
    config.static_stagger = SimDuration::from_secs(5);
    config
}

fn run_pipeline(
    mode: &'static str,
    slot_build: SlotBuild,
    warm: bool,
    peers: usize,
    slots: u64,
) -> Result<PipelineRun> {
    // The system's built-in scheduler is bypassed: the slot loop is driven
    // manually so prepare and schedule can be timed separately.
    let mut sys = System::new(swarm_config(77, slot_build), Box::new(AuctionScheduler::paper()))?;
    let mut scheduler: Box<dyn ChunkScheduler> = if warm {
        Box::new(AuctionScheduler::paper().warm_start())
    } else {
        Box::new(AuctionScheduler::paper())
    };
    sys.add_static_peers(peers)?;
    let mut run = PipelineRun {
        mode,
        prepare_ns: 0,
        schedule_ns: 0,
        slots,
        welfare_bits: Vec::with_capacity(slots as usize),
        total_welfare: 0.0,
    };
    for _ in 0..slots {
        let t0 = Instant::now();
        let problem = sys.prepare_slot()?;
        let t1 = Instant::now();
        let schedule = scheduler.schedule(&problem)?;
        let t2 = Instant::now();
        let metrics = sys.complete_slot(&problem, &schedule)?;
        run.prepare_ns += t1.duration_since(t0).as_nanos();
        run.schedule_ns += t2.duration_since(t1).as_nanos();
        run.welfare_bits.push(metrics.welfare.to_bits());
        run.total_welfare += metrics.welfare;
    }
    Ok(run)
}

/// Mean carried-request fraction between consecutive cold instances — the
/// slot-to-slot overlap the incremental cache exploits.
fn instance_overlap(peers: usize, slots: u64) -> Result<f64> {
    let mut sys =
        System::new(swarm_config(77, SlotBuild::Cold), Box::new(AuctionScheduler::paper()))?;
    let mut scheduler = AuctionScheduler::paper();
    sys.add_static_peers(peers)?;
    let mut prev = None;
    let mut carried = 0.0;
    let mut measured = 0u32;
    for _ in 0..slots {
        let problem = sys.prepare_slot()?;
        if let Some(prev) = &prev {
            let patch = InstancePatch::between(prev, &problem.instance);
            carried += patch.carried_fraction();
            measured += 1;
        }
        let schedule = scheduler.schedule(&problem)?;
        prev = Some(problem.instance.clone());
        sys.complete_slot(&problem, &schedule)?;
    }
    Ok(if measured == 0 { 0.0 } else { carried / f64::from(measured) })
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn run(args: &Args) -> Result<()> {
    let quick = args.has("quick");
    let slots = args.get_u64("slots", if quick { 8 } else { 14 }).max(1);
    let sizes: &[usize] = if quick { &[40, 120] } else { &[60, 150, 400] };
    let out_path = args.get_str("out", "BENCH_incremental.json");

    let mut swarm_json = Vec::new();
    println!("per-slot latency, contention-heavy static swarm ({slots} slots):");
    println!(
        "{:<8} {:<18} {:>14} {:>14} {:>14} {:>10}",
        "peers", "mode", "prepare/slot", "schedule/slot", "total/slot", "speedup"
    );
    for &peers in sizes {
        let cold = run_pipeline("cold", SlotBuild::Cold, false, peers, slots)?;
        let incr = run_pipeline("incremental", SlotBuild::Incremental, false, peers, slots)?;
        let warm = run_pipeline("incremental_warm", SlotBuild::Incremental, true, peers, slots)?;
        if cold.welfare_bits != incr.welfare_bits {
            return Err(p2p_types::P2pError::MalformedInstance(format!(
                "incremental diverged from cold on the {peers}-peer swarm"
            )));
        }
        let overlap = instance_overlap(peers, slots)?;
        for run in [&cold, &incr, &warm] {
            let speedup = cold.per_slot_ns() as f64 / run.per_slot_ns().max(1) as f64;
            println!(
                "{:<8} {:<18} {:>12}ns {:>12}ns {:>12}ns {:>9.2}x",
                peers,
                run.mode,
                run.prepare_per_slot_ns(),
                (run.schedule_ns / u128::from(slots)),
                run.per_slot_ns(),
                speedup,
            );
            swarm_json.push(format!(
                "    {{\n      \"peers\": {},\n      \"mode\": \"{}\",\n      \
                 \"prepare_ns_per_slot\": {},\n      \"schedule_ns_per_slot\": {},\n      \
                 \"total_ns_per_slot\": {},\n      \"speedup_vs_cold\": {:.3},\n      \
                 \"total_welfare\": {:.3},\n      \"mean_carried_request_fraction\": {:.4}\n    }}",
                peers,
                run.mode,
                run.prepare_per_slot_ns(),
                run.schedule_ns / u128::from(slots),
                run.per_slot_ns(),
                speedup,
                run.total_welfare,
                overlap,
            ));
        }
        println!("         (slot-to-slot carried-request fraction: {overlap:.3})");
    }

    // Built-in scenarios: the incremental path must reproduce the cold
    // sweep exactly, for every event timeline.
    let mut scenario_json = Vec::new();
    println!("\nbuilt-in scenarios, cold vs incremental sweeps (auction scheduler):");
    for name in BUILTIN_NAMES {
        let base = builtin(name)?;
        let base = if quick { base.quick(8) } else { base };
        let mut timings = Vec::new();
        let mut welfare = Vec::new();
        for mode in [SlotBuild::Cold, SlotBuild::Incremental] {
            let scenario = base.clone().with_slot_build(mode);
            let t0 = Instant::now();
            let report = run_scenario(
                &scenario,
                vec![
                    scheduler_by_name("auction", scenario.seed)?,
                    scheduler_by_name("auction_warm", scenario.seed)?,
                ],
            )?;
            timings.push(t0.elapsed().as_nanos());
            welfare.push(
                report.runs[0]
                    .recorder
                    .slots()
                    .iter()
                    .map(|(_, m)| m.welfare.to_bits())
                    .collect::<Vec<_>>(),
            );
        }
        if welfare[0] != welfare[1] {
            return Err(p2p_types::P2pError::MalformedInstance(format!(
                "incremental diverged from cold on scenario `{name}`"
            )));
        }
        println!(
            "  {:<16} cold {:>10}ns  incremental {:>10}ns  (identical welfare series: yes)",
            name, timings[0], timings[1]
        );
        scenario_json.push(format!(
            "    {{\n      \"scenario\": \"{}\",\n      \"cold_sweep_ns\": {},\n      \
             \"incremental_sweep_ns\": {},\n      \"identical_welfare_series\": true\n    }}",
            json_escape(name),
            timings[0],
            timings[1]
        ));
    }

    let json = format!(
        "{{\n  \"note\": \"Cold vs incremental vs warm-started slot pipelines (ISSUE 3). \
         Regenerate with `cargo run --release -p p2p-bench --bin incremental_bench` \
         (add --quick for the CI smoke sizes); expect run-to-run timing noise, the \
         equality fields are exact.\",\n  \"command\": \"cargo run --release -p p2p-bench \
         --bin incremental_bench{}\",\n  \"slots_per_swarm\": {},\n  \"swarms\": [\n{}\n  ],\n  \
         \"scenarios\": [\n{}\n  ]\n}}\n",
        if quick { " -- --quick" } else { "" },
        slots,
        swarm_json.join(",\n"),
        scenario_json.join(",\n"),
    );
    std::fs::write(&out_path, json).map_err(|e| {
        p2p_types::P2pError::invalid_config("out", format!("cannot write `{out_path}`: {e}"))
    })?;
    println!("\nwrote {out_path}");
    Ok(())
}

fn main() -> ExitCode {
    match run(&Args::from_env()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("incremental_bench: {e}");
            eprintln!("usage: incremental_bench [--quick] [--slots N] [--out PATH]");
            ExitCode::FAILURE
        }
    }
}
