//! EXP-P — cold `SyncAuction` vs the sharded parallel engine on large
//! slot-scale instances.
//!
//! Measures per-slot auction latency on 10³–10⁴-request welfare instances
//! for the sequential Gauss–Seidel engine and [`p2p_core::ShardedAuction`]
//! at shard counts 1/2/4/8, and checks every outcome against the Theorem 1
//! `n·ε` certificate plus the sequential engine's welfare (within the
//! Bertsekas bound). Results land in `BENCH_parallel.json` at the repo
//! root. (Warm-start composition is covered by the engine tests and the
//! sharded proptest, not benchmarked here.)
//!
//! Usage:
//!   `shard_bench [--quick] [--out PATH]`
//!
//! `--quick` shrinks instance sizes for CI smoke runs; the committed JSON
//! comes from a full run. Note on reading the numbers: a shard count ≥ 2
//! selects the batched engine (per-slice merges + retirement pruning) and
//! also fixes its merge batching, so each row is deterministic on every
//! machine; worker threads are `min(shards, cores)`, so on a single-core
//! machine the speedup shown is purely algorithmic (retirement + batching)
//! and multi-core hardware adds parallel headroom on top.

use p2p_bench::Args;
use p2p_core::{
    verify_optimality, AuctionConfig, AuctionOutcome, ShardCount, ShardedAuction, SyncAuction,
    WelfareInstance,
};
use p2p_types::Result;
use std::process::ExitCode;
use std::time::Instant;

/// The ε every engine runs with: large instances carry structural near-ties,
/// so the deployable ε > 0 configuration is the meaningful comparison.
const EPSILON: f64 = 0.01;

/// One engine's timing on one instance.
struct EngineRun {
    label: String,
    shards: Option<usize>,
    wall_ns: u128,
    rounds: u64,
    bids: u64,
    welfare: f64,
    certified: bool,
}

fn check(instance: &WelfareInstance, outcome: &AuctionOutcome) -> bool {
    let tol = EPSILON * (instance.request_count() as f64 + 1.0);
    verify_optimality(instance, &outcome.assignment, &outcome.duals, tol).is_optimal()
}

fn time_run(
    label: impl Into<String>,
    shards: Option<usize>,
    instance: &WelfareInstance,
    mut run: impl FnMut() -> Result<AuctionOutcome>,
) -> Result<EngineRun> {
    // One untimed warmup pass (cache/allocator state), then best of four
    // timed passes — deterministic engines, so only the timing varies.
    run()?;
    let mut wall_ns = u128::MAX;
    let mut outcome = None;
    for _ in 0..4 {
        let t0 = Instant::now();
        let o = run()?;
        wall_ns = wall_ns.min(t0.elapsed().as_nanos());
        outcome = Some(o);
    }
    let outcome = outcome.expect("two timed passes ran");
    Ok(EngineRun {
        label: label.into(),
        shards,
        wall_ns,
        rounds: outcome.rounds,
        bids: outcome.bids_submitted,
        welfare: outcome.assignment.welfare(instance).get(),
        certified: check(instance, &outcome),
    })
}

/// A flash-crowd-shaped slot: total upload capacity ≈ 28% of demand (the
/// seed-starved regime of the paper's Sec. V scenarios), deep per-provider
/// allocation sets (up to 8 units, so evictions genuinely churn), and ~24
/// candidate edges per request as in a 30-neighbor swarm. Most of the crowd
/// ends up priced out — exactly where the sharded engine's retirement
/// pruning pays and the synchronous sweep re-scans the losers every round.
fn bench_instance(seed: u64, requests: usize) -> WelfareInstance {
    let providers = (requests / 16).max(4);
    p2p_bench::instances::random_instance(seed, providers, requests, 8, 24)
}

fn run(args: &Args) -> Result<()> {
    let quick = args.has("quick");
    let sizes: &[usize] = if quick { &[400, 1_000] } else { &[1_000, 3_000, 10_000] };
    let shard_counts: [usize; 4] = [1, 2, 4, 8];
    let out_path = args.get_str("out", "BENCH_parallel.json");

    let mut rows = Vec::new();
    println!("cold per-slot auction latency, ε = {EPSILON} (sync = Gauss–Seidel sweep):");
    println!(
        "{:<10} {:<16} {:>12} {:>8} {:>10} {:>12} {:>9} {:>10}",
        "requests", "engine", "wall", "rounds", "bids", "welfare", "speedup", "certified"
    );
    for &requests in sizes {
        let instance = bench_instance(0xC0FFEE ^ requests as u64, requests);
        let sync_engine = SyncAuction::new(AuctionConfig::with_epsilon(EPSILON));
        let mut runs = vec![time_run("sync", None, &instance, || sync_engine.run(&instance))?];
        for &n in &shard_counts {
            let engine =
                ShardedAuction::new(AuctionConfig::with_epsilon(EPSILON), ShardCount::Fixed(n));
            runs.push(time_run(format!("sharded/{n}"), Some(n), &instance, || {
                engine.run(&instance)
            })?);
        }
        let sync_welfare = runs[0].welfare;
        let sync_ns = runs[0].wall_ns;
        let bound = EPSILON * 2.0 * instance.request_count() as f64 + 1e-9;
        for r in &runs {
            // Both engines are within n·ε of optimal, so they are within
            // 2·n·ε of each other; a larger gap means a real defect.
            if (r.welfare - sync_welfare).abs() > bound {
                return Err(p2p_types::P2pError::MalformedInstance(format!(
                    "{} welfare {} strayed from sync welfare {sync_welfare} on the \
                     {requests}-request instance",
                    r.label, r.welfare
                )));
            }
            if !r.certified {
                return Err(p2p_types::P2pError::MalformedInstance(format!(
                    "{} lost the optimality certificate on the {requests}-request instance",
                    r.label
                )));
            }
            let speedup = sync_ns as f64 / r.wall_ns.max(1) as f64;
            println!(
                "{:<10} {:<16} {:>10}µs {:>8} {:>10} {:>12.2} {:>8.2}x {:>10}",
                requests,
                r.label,
                r.wall_ns / 1_000,
                r.rounds,
                r.bids,
                r.welfare,
                speedup,
                "yes",
            );
            rows.push(format!(
                "    {{\n      \"requests\": {},\n      \"providers\": {},\n      \
                 \"engine\": \"{}\",\n      \"shards\": {},\n      \"wall_ns\": {},\n      \
                 \"rounds\": {},\n      \"bids\": {},\n      \"welfare\": {:.3},\n      \
                 \"speedup_vs_sync\": {:.3},\n      \"certified\": true\n    }}",
                requests,
                instance.provider_count(),
                r.label,
                r.shards.map_or("null".to_string(), |s| s.to_string()),
                r.wall_ns,
                r.rounds,
                r.bids,
                r.welfare,
                speedup,
            ));
        }
    }

    let cores = p2p_core::available_cores();
    let json = format!(
        "{{\n  \"note\": \"Cold SyncAuction (Gauss-Seidel sweep) vs the sharded parallel \
         engine (per-slice batched merges, same-round retry passes, permanent \
         retirement of priced-out requests) on flash-crowd-shaped slot instances \
         (ISSUE 4). Each shards=N row is deterministic on every machine: worker \
         threads = min(shards, cores) never change results, so on this 1-core \
         machine the speedup is purely algorithmic and multi-core hardware adds \
         parallel headroom on top. Regenerate with `cargo run --release -p \
         p2p-bench --bin shard_bench` (add --quick for CI sizes); expect \
         run-to-run timing noise, the certified/welfare fields are \
         exact.\",\n  \"command\": \"cargo run --release -p p2p-bench --bin \
         shard_bench{}\",\n  \"epsilon\": {},\n  \"machine_cores\": {},\n  \
         \"runs\": [\n{}\n  ]\n}}\n",
        if quick { " -- --quick" } else { "" },
        EPSILON,
        cores,
        rows.join(",\n"),
    );
    std::fs::write(&out_path, json).map_err(|e| {
        p2p_types::P2pError::invalid_config("out", format!("cannot write `{out_path}`: {e}"))
    })?;
    println!("\nwrote {out_path}");
    Ok(())
}

fn main() -> ExitCode {
    match run(&Args::from_env()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("shard_bench: {e}");
            eprintln!("usage: shard_bench [--quick] [--out PATH]");
            ExitCode::FAILURE
        }
    }
}
