//! EXP-T1 — Theorem 1 at scale: the auction's welfare vs. the exact
//! min-cost-flow optimum over a sweep of instance sizes, plus the
//! complementary-slackness certificate and solver timings.
//!
//! Usage: `cargo run --release -p p2p-bench --bin optimality [--trials N]`

use p2p_bench::{random_instance, save_xy, Args};
use p2p_core::{verify_optimality, AuctionConfig, SyncAuction};
use std::time::Instant;

fn main() {
    let args = Args::from_env();
    let trials = args.get_usize("trials", 5);

    println!("Theorem 1 verification: auction vs exact optimum (mean over {trials} trials)");
    println!(
        "{:>10} {:>10} {:>14} {:>14} {:>10} {:>10} {:>9} {:>9}",
        "providers", "requests", "auction", "exact", "gap", "cs_ok", "auc_ms", "flow_ms"
    );

    let mut gap_points = Vec::new();
    for &(providers, requests) in
        &[(5usize, 20usize), (10, 50), (20, 200), (50, 500), (100, 2000), (200, 5000)]
    {
        let mut sum_auction = 0.0;
        let mut sum_exact = 0.0;
        let mut worst_gap = 0.0_f64;
        let mut cs_ok = true;
        let mut auction_ms = 0.0;
        let mut flow_ms = 0.0;
        for t in 0..trials {
            let inst =
                random_instance(1000 * providers as u64 + t as u64, providers, requests, 8, 6);
            let t0 = Instant::now();
            let out = SyncAuction::new(AuctionConfig::paper()).run(&inst).expect("converges");
            auction_ms += t0.elapsed().as_secs_f64() * 1e3;

            let t1 = Instant::now();
            let exact = inst.optimal_welfare().get();
            flow_ms += t1.elapsed().as_secs_f64() * 1e3;

            let got = out.assignment.welfare(&inst).get();
            sum_auction += got;
            sum_exact += exact;
            worst_gap = worst_gap.max((exact - got).abs());
            let report = verify_optimality(&inst, &out.assignment, &out.duals, 1e-7);
            cs_ok &= report.is_optimal();
        }
        let n = trials as f64;
        println!(
            "{:>10} {:>10} {:>14.3} {:>14.3} {:>10.2e} {:>10} {:>9.1} {:>9.1}",
            providers,
            requests,
            sum_auction / n,
            sum_exact / n,
            worst_gap,
            cs_ok,
            auction_ms / n,
            flow_ms / n,
        );
        gap_points.push((requests as f64, worst_gap));
    }

    let path = save_xy("optimality_gap", "requests,worst_gap", &gap_points);
    println!("\nwrote {}", path.display());
    println!("expected: gap ~ 1e-9 (float round-off only) and cs_ok = true everywhere");
}
