//! EXP-V — the virtual-time swarm simulator at flash-crowd scale.
//!
//! Runs the DES swarm backend ([`p2p_core::SwarmAuction`]: one logical
//! actor per peer on the event queue, message behavior from a seeded
//! [`NetworkModel`]) on flash-crowd-shaped slot instances from 10³ up to
//! 10⁵ requests, and answers three questions with hard failures:
//!
//! * **Is it the same auction?** Under the ideal (zero-fault) network
//!   every swarm outcome must be *bit-identical* — assignment, duals,
//!   rounds, bids — to the in-process flat CSR engine at one shard.
//! * **Is it still correct under faults?** Lossy rows run with seeded
//!   drop/delay/reorder/duplicate faults; every outcome must pass
//!   conservation and the Theorem 1 `n·ε` optimality certificate.
//! * **Is it fast enough to be useful?** The full run hard-fails unless
//!   the 10⁵-peer ideal scenario completes within the wall-clock budget
//!   (10 s) *and* holds the pre-coalescing events/s floor, and unless the
//!   10⁶-peer flash-crowd row lands inside its own 60 s budget —
//!   "million-peer scenarios in under a minute" is a gate, not a hope.
//! * **Does coalescing move anything?** Every lossy row runs twice —
//!   event coalescing on (the default) and off — and hard-fails unless
//!   the two outcomes are byte-identical: same `trace_hash`, same fault
//!   counters, same assignment/duals/bids/virtual time.
//!
//! Results land in `BENCH_sim.json` (events/sec throughput, wall and
//! virtual time, coalesced-event and peak-queue counters per row). Usage:
//!   `sim_bench [--quick] [--out PATH]`
//!
//! `--quick` shrinks sizes for CI smoke runs (the equivalence,
//! certificate and coalescing-divergence gates still apply; only the
//! wall/throughput gates are skipped).

use p2p_bench::Args;
use p2p_core::csr::{CsrInstance, FlatAuction};
use p2p_core::{
    verify_optimality, AuctionConfig, NetworkModel, ShardCount, SwarmAuction, SwarmConfig,
    SwarmOutcome, WelfareInstance,
};
use p2p_types::Result;
use std::process::ExitCode;
use std::time::Instant;

/// The ε every engine runs with (matches `flat_bench`): large instances
/// carry structural near-ties, and the faulty rows rely on ε > 0 to bound
/// rebids from stale prices.
const EPSILON: f64 = 0.01;

/// Wall-clock budget for the 10⁵-peer ideal row (release build).
const WALL_BUDGET_S: f64 = 10.0;

/// The request count the wall-clock gate applies to.
const GATE_REQUESTS: usize = 100_000;

/// Events/s floor for the 10⁵-peer ideal row: the throughput that row
/// recorded *before* the arena-mailbox/coalescing work landed. The
/// optimization must never cost throughput at the gated size.
const BASELINE_EVENTS_PER_SEC: f64 = 3_259_818.0;

/// The flash-crowd scale the 60 s budget applies to.
const FLASH_REQUESTS: usize = 1_000_000;

/// Wall-clock budget for the 10⁶-peer flash-crowd row (release build).
const FLASH_BUDGET_S: f64 = 60.0;

/// A flash-crowd-shaped slot at swarm scale: one provider per ~20
/// requesters (10⁵ requests ⇒ 5·10³ providers) and 4–8 candidate edges
/// per request — the sparse neighborhoods a real tracker hands out, not
/// the dense edge soup of the engine benches.
fn swarm_instance(seed: u64, requests: usize) -> WelfareInstance {
    let providers = (requests / 20).max(4);
    p2p_bench::instances::random_instance(seed, providers, requests, 8, 8)
}

fn certify(instance: &WelfareInstance, out: &SwarmOutcome, mode: &str) -> Result<()> {
    out.assignment.validate(instance)?;
    let tol = EPSILON * (instance.request_count() as f64 + 1.0);
    let report = verify_optimality(instance, &out.assignment, &out.duals, tol);
    if !report.is_optimal() {
        return Err(p2p_types::P2pError::MalformedInstance(format!(
            "the {mode} swarm lost the optimality certificate on the \
             {}-request instance: {:?}",
            instance.request_count(),
            report.violations
        )));
    }
    Ok(())
}

struct Row {
    requests: usize,
    providers: usize,
    mode: &'static str,
    wall_ns: u128,
    virtual_s: f64,
    events: u64,
    messages: u64,
    rounds: u64,
    bids: u64,
    welfare: f64,
    dropped: u64,
    coalesced: u64,
    peak_queue: u64,
    bit_identical: Option<bool>,
}

impl Row {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / (self.wall_ns.max(1) as f64 / 1e9)
    }
}

fn run(args: &Args) -> Result<()> {
    let quick = args.has("quick");
    let ideal_sizes: &[usize] =
        if quick { &[1_000, 10_000] } else { &[1_000, 10_000, 100_000, FLASH_REQUESTS] };
    let lossy_sizes: &[usize] = if quick { &[1_000] } else { &[1_000, 10_000] };
    let out_path = args.get_str("out", "BENCH_sim.json");

    let mut rows: Vec<Row> = Vec::new();
    println!("virtual-time swarm auction, ε = {EPSILON} (DES: one actor per peer):");
    println!(
        "{:<10} {:<13} {:>12} {:>10} {:>12} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "requests",
        "net",
        "wall",
        "virtual",
        "events",
        "events/s",
        "coalesced",
        "peak_q",
        "rounds",
        "flat=="
    );

    for &requests in ideal_sizes {
        let instance = swarm_instance(0x51B3 ^ requests as u64, requests);
        let engine = SwarmAuction::new(SwarmConfig::with_epsilon(EPSILON), NetworkModel::ideal());
        let t0 = Instant::now();
        let out = engine.run(&instance, 0xCAFE ^ requests as u64)?;
        let wall_ns = t0.elapsed().as_nanos();
        certify(&instance, &out, "ideal")?;

        // The equivalence gate: under zero faults the swarm is a replay of
        // the same auction the flat engine runs — assignment, duals,
        // rounds and bids must all be bit-identical, or the backend is
        // simulating some *other* protocol.
        let csr = CsrInstance::compile(&instance);
        let mut flat = FlatAuction::new(AuctionConfig::with_epsilon(EPSILON), ShardCount::Fixed(1));
        let flat_out = flat.run(&csr)?;
        let identical = out.assignment == flat_out.assignment
            && out.duals == flat_out.duals
            && out.rounds == flat_out.rounds
            && out.bids_submitted == flat_out.bids_submitted;
        if !identical {
            return Err(p2p_types::P2pError::MalformedInstance(format!(
                "the ideal swarm diverged from the flat engine on the {requests}-request \
                 instance: (rounds {}, bids {}) vs (rounds {}, bids {})",
                out.rounds, out.bids_submitted, flat_out.rounds, flat_out.bids_submitted
            )));
        }
        let wall_s = wall_ns as f64 / 1e9;
        if !quick && requests == GATE_REQUESTS && wall_s > WALL_BUDGET_S {
            return Err(p2p_types::P2pError::MalformedInstance(format!(
                "the {GATE_REQUESTS}-peer ideal scenario took {wall_s:.2} s — over the \
                 {WALL_BUDGET_S} s budget"
            )));
        }
        if !quick && requests == FLASH_REQUESTS && wall_s > FLASH_BUDGET_S {
            return Err(p2p_types::P2pError::MalformedInstance(format!(
                "the {FLASH_REQUESTS}-peer flash-crowd scenario took {wall_s:.2} s — over \
                 the {FLASH_BUDGET_S} s budget"
            )));
        }
        let row = Row {
            requests,
            providers: instance.provider_count(),
            mode: "ideal",
            wall_ns,
            virtual_s: out.converged_at.as_secs_f64(),
            events: out.events,
            messages: out.messages,
            rounds: out.rounds,
            bids: out.bids_submitted,
            welfare: out.assignment.welfare(&instance).get(),
            dropped: 0,
            coalesced: out.coalesced_events,
            peak_queue: out.peak_queue,
            bit_identical: Some(true),
        };
        if !quick && requests == GATE_REQUESTS && row.events_per_sec() < BASELINE_EVENTS_PER_SEC {
            return Err(p2p_types::P2pError::MalformedInstance(format!(
                "the {GATE_REQUESTS}-peer ideal scenario ran at {:.0} events/s — under \
                 the pre-optimization floor of {BASELINE_EVENTS_PER_SEC:.0}",
                row.events_per_sec()
            )));
        }
        rows.push(row);
    }

    for &requests in lossy_sizes {
        let instance = swarm_instance(0x51B3 ^ requests as u64, requests);
        let seed = 0xCAFE ^ requests as u64;
        let coalescing =
            SwarmAuction::new(SwarmConfig::with_epsilon(EPSILON), NetworkModel::lossy());
        let t0 = Instant::now();
        let out = coalescing.run(&instance, seed)?;
        let wall_ns = t0.elapsed().as_nanos();
        certify(&instance, &out, "lossy")?;
        if out.faults.dropped == 0 {
            return Err(p2p_types::P2pError::MalformedInstance(format!(
                "the lossy model injected no drops on the {requests}-request instance — \
                 the fault path is not being exercised"
            )));
        }

        // The coalescing-divergence gate: the same row with coalescing
        // off must reproduce the exact same simulation — trace hash,
        // fault counters, outcome, virtual time — or the fast path is
        // changing delivery order somewhere.
        let mut uncoal_cfg = SwarmConfig::with_epsilon(EPSILON);
        uncoal_cfg.coalesce = false;
        let uncoalescing = SwarmAuction::new(uncoal_cfg, NetworkModel::lossy());
        let t1 = Instant::now();
        let off = uncoalescing.run(&instance, seed)?;
        let uncoal_wall_ns = t1.elapsed().as_nanos();
        let identical = out.trace_hash == off.trace_hash
            && out.faults == off.faults
            && out.messages == off.messages
            && out.assignment == off.assignment
            && out.duals.lambda == off.duals.lambda
            && out.bids_submitted == off.bids_submitted
            && out.converged_at == off.converged_at
            && out.converged == off.converged;
        if !identical || off.coalesced_events != 0 {
            return Err(p2p_types::P2pError::MalformedInstance(format!(
                "event coalescing diverged on the {requests}-request lossy instance: \
                 trace {:#x} vs {:#x}, coalesced {} vs {}",
                out.trace_hash, off.trace_hash, out.coalesced_events, off.coalesced_events
            )));
        }

        for (mode, o, ns) in [("lossy", &out, wall_ns), ("lossy-uncoal", &off, uncoal_wall_ns)] {
            rows.push(Row {
                requests,
                providers: instance.provider_count(),
                mode,
                wall_ns: ns,
                virtual_s: o.converged_at.as_secs_f64(),
                events: o.events,
                messages: o.messages,
                rounds: o.rounds,
                bids: o.bids_submitted,
                welfare: o.assignment.welfare(&instance).get(),
                dropped: o.faults.dropped,
                coalesced: o.coalesced_events,
                peak_queue: o.peak_queue,
                bit_identical: None,
            });
        }
    }

    let mut json_rows = Vec::new();
    for r in &rows {
        println!(
            "{:<10} {:<13} {:>10}µs {:>9.3}s {:>12} {:>12.0} {:>10} {:>10} {:>10} {:>10}",
            r.requests,
            r.mode,
            r.wall_ns / 1_000,
            r.virtual_s,
            r.events,
            r.events_per_sec(),
            r.coalesced,
            r.peak_queue,
            r.rounds,
            r.bit_identical.map_or("-".to_string(), |b| b.to_string()),
        );
        json_rows.push(format!(
            "    {{\n      \"requests\": {},\n      \"providers\": {},\n      \
             \"net\": \"{}\",\n      \"wall_ns\": {},\n      \"virtual_s\": {:.6},\n      \
             \"events\": {},\n      \"events_per_sec\": {:.0},\n      \
             \"coalesced_events\": {},\n      \"peak_queue\": {},\n      \
             \"messages\": {},\n      \"rounds\": {},\n      \"bids\": {},\n      \
             \"welfare\": {:.3},\n      \"dropped\": {},\n      \
             \"bit_identical_to_flat\": {},\n      \"certified\": true\n    }}",
            r.requests,
            r.providers,
            r.mode,
            r.wall_ns,
            r.virtual_s,
            r.events,
            r.events_per_sec(),
            r.coalesced,
            r.peak_queue,
            r.messages,
            r.rounds,
            r.bids,
            r.welfare,
            r.dropped,
            r.bit_identical.map_or("null".to_string(), |b| b.to_string()),
        ));
    }

    let json = format!(
        "{{\n  \"note\": \"The virtual-time swarm simulator (ISSUE 8, scaled to 10^6 \
         peers by ISSUE 10's arena mailboxes + event coalescing): every peer a \
         logical actor on the DES event queue, per-message latencies and faults drawn \
         from a seeded NetworkModel, timeouts firing through virtual-time fast-forward. \
         ideal rows are hard-gated bit-identical (assignment, duals, rounds, bids) to \
         the flat CSR engine at one shard — the swarm backend runs the *same* auction, \
         just on a simulated network. lossy rows inject seeded drop/delay/reorder/\
         duplicate faults with eventual delivery, must still pass conservation and \
         the Theorem 1 n*eps certificate, and are each re-run with coalescing off \
         (the lossy-uncoal rows) under a hard byte-identity gate: same trace_hash, \
         fault counters, assignment, duals, bids and virtual time either way. The \
         full run hard-fails if the 100000-peer ideal row exceeds {WALL_BUDGET_S} s \
         wall or drops under {BASELINE_EVENTS_PER_SEC:.0} events/s (its \
         pre-optimization throughput), or if the 1000000-peer flash-crowd row \
         exceeds {FLASH_BUDGET_S} s wall. Regenerate with `cargo run --release \
         -p p2p-bench --bin sim_bench` (add --quick for CI sizes); expect run-to-run \
         timing noise, the certified/welfare/bit-identity fields are exact.\",\n  \
         \"command\": \"cargo run --release -p p2p-bench --bin sim_bench{}\",\n  \
         \"epsilon\": {},\n  \"wall_budget_s\": {},\n  \"flash_budget_s\": {},\n  \
         \"events_per_sec_floor\": {:.0},\n  \"machine_cores\": {},\n  \
         \"runs\": [\n{}\n  ]\n}}\n",
        if quick { " -- --quick" } else { "" },
        EPSILON,
        WALL_BUDGET_S,
        FLASH_BUDGET_S,
        BASELINE_EVENTS_PER_SEC,
        p2p_core::available_cores(),
        json_rows.join(",\n"),
    );
    std::fs::write(&out_path, json).map_err(|e| {
        p2p_types::P2pError::invalid_config("out", format!("cannot write `{out_path}`: {e}"))
    })?;
    println!("\nwrote {out_path}");
    Ok(())
}

fn main() -> ExitCode {
    match run(&Args::from_env()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sim_bench: {e}");
            eprintln!("usage: sim_bench [--quick] [--out PATH]");
            ExitCode::FAILURE
        }
    }
}
