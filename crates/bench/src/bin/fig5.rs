//! EXP-F5 — Fig. 5: averaged chunk miss rate per time slot in a static
//! network of 500 peers, auction vs. simple locality.
//!
//! Expected shape: both schedulers keep the miss rate small (< ~10 %), with
//! the auction below the baseline — its deadline-driven valuations steer
//! upload bandwidth toward the chunks that are about to be played.
//!
//! Usage: `cargo run --release -p p2p-bench --bin fig5 [--peers N]
//! [--slots N] [--seed S]`

use p2p_bench::{run_static, save_csv, Args};
use p2p_metrics::ascii_plot;
use p2p_sched::{AuctionScheduler, SimpleLocalityScheduler};
use p2p_streaming::SystemConfig;

fn main() {
    let args = Args::from_env();
    let peers = args.get_usize("peers", 500);
    let slots = args.get_u64("slots", 25);
    let seed = args.get_u64("seed", 42);

    let config = SystemConfig::paper().with_seed(seed);
    eprintln!("fig5: static network of {peers} peers, {slots} slots");

    let auction = run_static(&config, Box::new(AuctionScheduler::paper()), peers, slots)
        .expect("auction run");
    let locality = run_static(&config, Box::new(SimpleLocalityScheduler::new()), peers, slots)
        .expect("locality run");

    let a = auction.recorder.miss_rate_series().renamed("auction");
    let l = locality.recorder.miss_rate_series().renamed("simple_locality");

    println!("Fig. 5 — chunk miss rate vs time (static, {peers} peers)");
    println!("{}", ascii_plot(&[&a, &l], 90, 16));
    let (am, lm) = (a.mean_y().unwrap_or(0.0), l.mean_y().unwrap_or(0.0));
    println!("mean miss rate: auction {am:.4}, locality {lm:.4}");
    println!(
        "auction {} locality ({})",
        if am <= lm { "<=" } else { ">" },
        if am <= lm { "matches the paper's ordering" } else { "UNEXPECTED ordering" }
    );

    let path = save_csv("fig5_miss_rate", "time_s", &[&a, &l]);
    println!("wrote {}", path.display());
}
