//! Random welfare-instance generation for solver benchmarks and the
//! optimality sweep.

use p2p_core::WelfareInstance;
use p2p_types::{ChunkId, Cost, PeerId, RequestId, Valuation, VideoId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a random instance shaped like a slot problem: `providers`
/// upstream peers with capacities in `[1, max_capacity]`, `requests`
/// download requests each with up to `max_edges` candidate providers,
/// valuations in the paper's `[0.8, 8]` band and costs in `[0, 10]`
/// (continuous ⇒ tie-free almost surely).
pub fn random_instance(
    seed: u64,
    providers: usize,
    requests: usize,
    max_capacity: u32,
    max_edges: usize,
) -> WelfareInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = WelfareInstance::builder();
    let ps: Vec<usize> = (0..providers)
        .map(|i| b.add_provider(PeerId::new(100_000 + i as u32), rng.gen_range(1..=max_capacity)))
        .collect();
    for d in 0..requests {
        let r = b.add_request(RequestId::new(
            PeerId::new(d as u32),
            ChunkId::new(VideoId::new(0), d as u32),
        ));
        let k = rng.gen_range(1..=max_edges.min(providers));
        let mut picked = std::collections::HashSet::new();
        for _ in 0..k {
            let u = ps[rng.gen_range(0..providers)];
            if picked.insert(u) {
                let v = Valuation::new(rng.gen_range(0.8..8.0));
                let w = Cost::new(rng.gen_range(0.0..10.0));
                b.add_edge(r, u, v, w).expect("valid indices");
            }
        }
    }
    b.build().expect("builder-validated")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_parameters() {
        let inst = random_instance(1, 10, 50, 5, 4);
        assert_eq!(inst.provider_count(), 10);
        assert_eq!(inst.request_count(), 50);
        assert!(inst.edge_count() > 0);
        for r in inst.requests() {
            assert!(!r.edges.is_empty() && r.edges.len() <= 4);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(random_instance(7, 5, 20, 3, 3), random_instance(7, 5, 20, 3, 3));
    }
}
