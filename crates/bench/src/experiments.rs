//! Reusable experiment drivers: static-network and churn comparisons.

use p2p_metrics::SlotRecorder;
use p2p_sched::ChunkScheduler;
use p2p_streaming::{System, SystemConfig};
use p2p_types::Result;

/// One scheduler's run over a workload.
pub struct ComparisonRun {
    /// Scheduler name (legend).
    pub name: String,
    /// Per-slot metrics.
    pub recorder: SlotRecorder,
}

/// Runs a static network of `peers` watchers for `slots` slots under the
/// given scheduler. The same `config.seed` reproduces the identical
/// workload across schedulers — only the scheduling decisions differ.
///
/// # Errors
///
/// Propagates system construction and scheduling errors.
pub fn run_static(
    config: &SystemConfig,
    scheduler: Box<dyn ChunkScheduler>,
    peers: usize,
    slots: u64,
) -> Result<ComparisonRun> {
    let mut sys = System::new(config.clone(), scheduler)?;
    let name = sys.scheduler_name();
    sys.add_static_peers(peers)?;
    sys.run_slots(slots)?;
    Ok(ComparisonRun { name, recorder: sys.recorder().clone() })
}

/// Runs a dynamic network (Poisson joins at `config.arrival_rate`, early
/// departures with `config.early_departure_prob`) for `slots` slots.
///
/// # Errors
///
/// Propagates system construction and scheduling errors.
pub fn run_dynamic(
    config: &SystemConfig,
    scheduler: Box<dyn ChunkScheduler>,
    slots: u64,
) -> Result<ComparisonRun> {
    let mut sys = System::new(config.clone(), scheduler)?;
    let name = sys.scheduler_name();
    sys.enable_poisson_churn()?;
    sys.run_slots(slots)?;
    Ok(ComparisonRun { name, recorder: sys.recorder().clone() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_sched::{AuctionScheduler, SimpleLocalityScheduler};

    #[test]
    fn static_and_dynamic_drivers_produce_series() {
        let config = SystemConfig::small_test();
        let s = run_static(&config, Box::new(AuctionScheduler::paper()), 8, 4).unwrap();
        assert_eq!(s.recorder.len(), 4);
        assert_eq!(s.name, "auction");

        let d = run_dynamic(&config, Box::new(SimpleLocalityScheduler::new()), 4).unwrap();
        assert_eq!(d.recorder.len(), 4);
        assert_eq!(d.name, "simple_locality");
    }

    #[test]
    fn same_seed_same_workload_different_schedulers() {
        // Both runs see identical arrivals; their population series match.
        let config = SystemConfig::small_test().with_seed(5);
        let a = run_static(&config, Box::new(AuctionScheduler::paper()), 10, 5).unwrap();
        let b = run_static(&config, Box::new(SimpleLocalityScheduler::new()), 10, 5).unwrap();
        assert_eq!(
            a.recorder.population_series().points(),
            b.recorder.population_series().points()
        );
    }
}
