//! Criterion benchmarks of full system slots under each scheduler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2p_sched::{AuctionScheduler, ChunkScheduler, GreedyScheduler, SimpleLocalityScheduler};
use p2p_streaming::{System, SystemConfig};
use std::hint::black_box;

fn warmed_system(scheduler: Box<dyn ChunkScheduler>, peers: usize) -> System {
    let config = SystemConfig::small_test().with_seed(77);
    let mut sys = System::new(config, scheduler).expect("valid config");
    sys.add_static_peers(peers).expect("valid peers");
    sys.run_slots(3).expect("warm-up");
    sys
}

fn bench_slot_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("system_slot");
    g.sample_size(10);
    for &peers in &[30usize, 100] {
        g.bench_with_input(BenchmarkId::new("auction", peers), &peers, |b, &peers| {
            b.iter_batched(
                || warmed_system(Box::new(AuctionScheduler::paper()), peers),
                |mut sys| {
                    sys.step_slot().expect("slot");
                    black_box(sys.recorder().len())
                },
                criterion::BatchSize::LargeInput,
            );
        });
        g.bench_with_input(BenchmarkId::new("locality", peers), &peers, |b, &peers| {
            b.iter_batched(
                || warmed_system(Box::new(SimpleLocalityScheduler::new()), peers),
                |mut sys| {
                    sys.step_slot().expect("slot");
                    black_box(sys.recorder().len())
                },
                criterion::BatchSize::LargeInput,
            );
        });
        g.bench_with_input(BenchmarkId::new("greedy", peers), &peers, |b, &peers| {
            b.iter_batched(
                || warmed_system(Box::new(GreedyScheduler::new()), peers),
                |mut sys| {
                    sys.step_slot().expect("slot");
                    black_box(sys.recorder().len())
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench_slot_step);
criterion_main!(benches);
