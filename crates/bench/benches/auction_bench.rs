//! Criterion benchmarks of the auction engines vs. baselines across
//! instance sizes (BENCH-µ in DESIGN.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2p_bench::random_instance;
use p2p_core::bertsekas::solve_via_expansion;
use p2p_core::{AuctionConfig, SyncAuction};
use p2p_netflow::solve_max_profit;
use std::hint::black_box;

fn bench_sync_auction(c: &mut Criterion) {
    let mut g = c.benchmark_group("sync_auction");
    g.sample_size(10);
    for &(providers, requests) in &[(10usize, 100usize), (50, 500), (100, 2000)] {
        let inst = random_instance(7, providers, requests, 8, 6);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{providers}x{requests}")),
            &inst,
            |b, inst| {
                let engine = SyncAuction::new(AuctionConfig::paper());
                b.iter(|| black_box(engine.run(black_box(inst)).expect("converges")));
            },
        );
    }
    g.finish();
}

fn bench_epsilon_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("auction_epsilon");
    g.sample_size(10);
    let inst = random_instance(11, 50, 500, 8, 6);
    for &eps in &[0.0, 0.01, 0.1] {
        g.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, &eps| {
            let engine = SyncAuction::new(AuctionConfig::with_epsilon(eps));
            b.iter(|| black_box(engine.run(black_box(&inst)).expect("converges")));
        });
    }
    g.finish();
}

fn bench_exact_solver(c: &mut Criterion) {
    let mut g = c.benchmark_group("exact_solver");
    g.sample_size(10);
    for &(providers, requests) in &[(10usize, 100usize), (50, 500)] {
        let inst = random_instance(13, providers, requests, 8, 6);
        let tp = inst.to_transportation();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{providers}x{requests}")),
            &tp,
            |b, tp| b.iter(|| black_box(solve_max_profit(black_box(tp)).expect("solves"))),
        );
    }
    g.finish();
}

fn bench_expansion_auction(c: &mut Criterion) {
    let mut g = c.benchmark_group("bertsekas_expansion");
    g.sample_size(10);
    let inst = random_instance(17, 20, 200, 4, 5);
    // ε sized to the paper's value range: the expansion duplicates objects
    // with identical values, and the classic auction's work scales as
    // value-range/ε on such ties.
    g.bench_function("20x200", |b| {
        b.iter(|| black_box(solve_via_expansion(black_box(&inst), 0.01).expect("converges")));
    });
    g.finish();
}

fn bench_epsilon_scaling(c: &mut Criterion) {
    use p2p_core::{EpsilonScaling, WelfareInstance};
    use p2p_types::{ChunkId, Cost, PeerId, RequestId, Valuation, VideoId};
    // Adversarial twin-value instance: flat small ε fights a price war.
    let mut b = WelfareInstance::builder();
    let u0 = b.add_provider(PeerId::new(1), 2);
    let u1 = b.add_provider(PeerId::new(2), 2);
    for d in 0..6u32 {
        let r =
            b.add_request(RequestId::new(PeerId::new(100 + d), ChunkId::new(VideoId::new(0), d)));
        b.add_edge(r, u0, Valuation::new(40.0), Cost::new(0.0)).unwrap();
        b.add_edge(r, u1, Valuation::new(40.0), Cost::new(0.0)).unwrap();
    }
    let inst = b.build().unwrap();
    let mut g = c.benchmark_group("epsilon_scaling_price_war");
    g.sample_size(10);
    g.bench_function("flat_eps_0.05", |bch| {
        let engine = SyncAuction::new(AuctionConfig::with_epsilon(0.05));
        bch.iter(|| black_box(engine.run(black_box(&inst)).expect("converges")));
    });
    g.bench_function("scaled_16_to_0.05", |bch| {
        let engine = SyncAuction::new(AuctionConfig::paper());
        let scaling = EpsilonScaling { initial: 16.0, decay: 4.0, final_epsilon: 0.05 };
        bch.iter(|| black_box(engine.run_scaled(black_box(&inst), scaling).expect("converges")));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sync_auction,
    bench_epsilon_variants,
    bench_exact_solver,
    bench_expansion_auction,
    bench_epsilon_scaling
);
criterion_main!(benches);
