//! Criterion benchmarks of the workload generators (sampling hot paths).

use criterion::{criterion_group, criterion_main, Criterion};
use p2p_types::SimDuration;
use p2p_workload::{DeadlineValuation, Exponential, TruncatedNormal, ZipfMandelbrot};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_distributions(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload_sampling");
    let zipf = ZipfMandelbrot::paper_video_popularity(100);
    let tn = TruncatedNormal::paper_inter_isp();
    let exp = Exponential::new(1.0).unwrap();

    g.bench_function("zipf_mandelbrot_1k", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..1000 {
                acc += zipf.sample_index(&mut rng);
            }
            black_box(acc)
        });
    });
    g.bench_function("truncated_normal_1k", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1000 {
                acc += tn.sample(&mut rng);
            }
            black_box(acc)
        });
    });
    g.bench_function("exponential_1k", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1000 {
                acc += exp.sample(&mut rng);
            }
            black_box(acc)
        });
    });
    g.finish();
}

fn bench_valuation(c: &mut Criterion) {
    let v = DeadlineValuation::paper_defaults();
    c.bench_function("deadline_valuation_1k", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for ms in 0..1000u64 {
                acc += v.value(SimDuration::from_millis(ms * 12)).get();
            }
            black_box(acc)
        });
    });
}

criterion_group!(benches, bench_distributions, bench_valuation);
criterion_main!(benches);
