//! Criterion benchmarks of the min-cost-flow substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2p_netflow::{FlowNetwork, TransportationProblem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_transportation(seed: u64, providers: usize, requests: usize) -> TransportationProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let caps: Vec<u32> = (0..providers).map(|_| rng.gen_range(1..8)).collect();
    let mut edges: Vec<Vec<(usize, f64)>> = Vec::with_capacity(requests);
    for _ in 0..requests {
        let mut req = Vec::new();
        for p in 0..providers {
            if rng.gen_bool(0.3) {
                req.push((p, rng.gen_range(-2.0..8.0)));
            }
        }
        edges.push(req);
    }
    TransportationProblem::new(caps, edges).expect("valid")
}

fn bench_max_profit(c: &mut Criterion) {
    let mut g = c.benchmark_group("netflow_max_profit");
    g.sample_size(10);
    for &(p, r) in &[(10usize, 100usize), (30, 500), (60, 1500)] {
        let tp = random_transportation(3, p, r);
        g.bench_with_input(BenchmarkId::from_parameter(format!("{p}x{r}")), &tp, |b, tp| {
            b.iter(|| black_box(p2p_netflow::solve_max_profit(black_box(tp)).expect("solves")));
        });
    }
    g.finish();
}

fn bench_mcmf_grid(c: &mut Criterion) {
    // A k×k grid network stresses the SPFA path search.
    let mut g = c.benchmark_group("netflow_grid_mcmf");
    g.sample_size(10);
    for &k in &[10usize, 20] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut net = FlowNetwork::new(k * k + 2);
                let node = |i: usize, j: usize| 2 + i * k + j;
                let (s, t) = (0, 1);
                let mut rng = StdRng::seed_from_u64(9);
                for i in 0..k {
                    net.add_edge(s, node(i, 0), 2, 0).unwrap();
                    net.add_edge(node(i, k - 1), t, 2, 0).unwrap();
                }
                for i in 0..k {
                    for j in 0..k - 1 {
                        net.add_edge(node(i, j), node(i, j + 1), 3, rng.gen_range(1..20)).unwrap();
                        if i + 1 < k {
                            net.add_edge(node(i, j), node(i + 1, j), 3, rng.gen_range(1..20))
                                .unwrap();
                        }
                    }
                }
                black_box(net.min_cost_max_flow(s, t).expect("solves"))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_max_profit, bench_mcmf_grid);
criterion_main!(benches);
