//! Property-based certification of the bounded-memory sketches: the
//! [`Hll`] estimate stays within its advertised standard-error bound on
//! adversarial (sequential / strided / clustered) ID sets, HLL merge is
//! exactly the sketch of the union, and [`Histogram`] merge is
//! commutative, associative, and bit-stable against single-pass
//! recording — the properties the per-window report aggregation relies
//! on.

use p2p_metrics::{Histogram, Hll};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// An adversarial ID set: the patterns peer/request/edge IDs actually
/// take in the emulator — dense sequential ranges, strided arithmetic
/// progressions, and clustered blocks — rather than uniformly random
/// keys, which would flatter the hash.
#[derive(Debug, Clone)]
enum IdSet {
    /// `base, base+1, ..., base+n-1`.
    Sequential { base: u64, n: usize },
    /// `base, base+k, base+2k, ...` — bits only change in a few positions.
    Strided { base: u64, stride: u64, n: usize },
    /// Dense blocks of 16 at a handful of far-apart bases.
    Clustered { bases: Vec<u64>, block: usize },
}

impl IdSet {
    fn ids(&self) -> BTreeSet<u64> {
        match self {
            IdSet::Sequential { base, n } => (0..*n as u64).map(|i| base + i).collect(),
            IdSet::Strided { base, stride, n } => {
                (0..*n as u64).map(|i| base + i * stride).collect()
            }
            IdSet::Clustered { bases, block } => {
                bases.iter().flat_map(|b| (0..*block as u64).map(move |i| b + i)).collect()
            }
        }
    }
}

fn arb_id_set() -> impl Strategy<Value = IdSet> {
    prop_oneof![
        (0u64..1 << 40, 64usize..4096).prop_map(|(base, n)| IdSet::Sequential { base, n }),
        (0u64..1 << 40, 1u64..1 << 20, 64usize..4096)
            .prop_map(|(base, stride, n)| IdSet::Strided { base, stride, n }),
        (prop::collection::vec(0u64..1 << 44, 8..128), 8usize..32)
            .prop_map(|(bases, block)| IdSet::Clustered { bases, block }),
    ]
}

/// Histogram samples shaped like the quantities the probes record:
/// finite magnitudes across many octaves, plus the degenerate values
/// (zeros, negatives, infinities, NaN) the sketch must reject or
/// underflow-bucket without corrupting merge.
fn arb_samples() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![
            8 => -30f64..30.0,
            4 => (-60f64..60.0).prop_map(f64::exp2),
            1 => Just(0.0),
            1 => Just(-0.0),
            1 => Just(f64::INFINITY),
            1 => Just(f64::NEG_INFINITY),
            1 => Just(f64::NAN),
        ],
        0..200,
    )
}

fn recorded(samples: &[f64]) -> Histogram {
    let mut h = Histogram::for_prices();
    for &v in samples {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The estimate error stays within 5 standard errors of the
    /// advertised `relative_error()` (σ ≈ 1.04/√m) on adversarial sets,
    /// at several precisions. A fixed hash makes each case
    /// deterministic, so this is a regression bound, not a flaky
    /// statistical test.
    #[test]
    fn hll_estimate_respects_the_precision_bound(
        set in arb_id_set(),
        precision in 10u8..=14,
    ) {
        let ids = set.ids();
        let n = ids.len() as f64;
        let mut hll = Hll::new(precision);
        for &id in &ids {
            hll.insert_u64(id);
        }
        let err = (hll.estimate() - n).abs();
        let tol = (5.0 * hll.relative_error() * n).max(2.0);
        prop_assert!(
            err <= tol,
            "precision {precision}: |{} - {n}| = {err} > {tol}",
            hll.estimate()
        );
    }

    /// Inserting an ID again never changes the registers, so the
    /// estimate is exactly idempotent — the property that lets the
    /// system feed every slot's edges into one run-level sketch.
    #[test]
    fn hll_insert_is_idempotent(set in arb_id_set()) {
        let ids = set.ids();
        let mut once = Hll::new(12);
        let mut thrice = Hll::new(12);
        for &id in &ids {
            once.insert_u64(id);
            for _ in 0..3 {
                thrice.insert_u64(id);
            }
        }
        prop_assert_eq!(once, thrice);
    }

    /// Merging two sketches is register-exact union: bit-identical to
    /// sketching the union directly, and commutative.
    #[test]
    fn hll_merge_is_exactly_the_union_sketch(
        a in arb_id_set(),
        b in arb_id_set(),
    ) {
        let (ids_a, ids_b) = (a.ids(), b.ids());
        let mut ha = Hll::new(12);
        let mut hb = Hll::new(12);
        let mut union = Hll::new(12);
        for &id in &ids_a {
            ha.insert_u64(id);
            union.insert_u64(id);
        }
        for &id in &ids_b {
            hb.insert_u64(id);
            union.insert_u64(id);
        }
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &union);
        prop_assert_eq!(&ba, &union);
    }

    /// Histogram merge is commutative and bit-stable: merging two
    /// sketches equals recording the concatenated stream in one pass,
    /// regardless of order.
    #[test]
    fn histogram_merge_is_commutative_and_bit_stable(
        xs in arb_samples(),
        ys in arb_samples(),
    ) {
        let (hx, hy) = (recorded(&xs), recorded(&ys));
        let mut xy = hx.clone();
        xy.merge(&hy);
        let mut yx = hy.clone();
        yx.merge(&hx);
        let mut concat = xs.clone();
        concat.extend_from_slice(&ys);
        prop_assert_eq!(&xy, &yx);
        prop_assert_eq!(&xy, &recorded(&concat));
    }

    /// Histogram merge is associative — any per-shard / per-window
    /// aggregation tree yields the same sketch.
    #[test]
    fn histogram_merge_is_associative(
        xs in arb_samples(),
        ys in arb_samples(),
        zs in arb_samples(),
    ) {
        let (hx, hy, hz) = (recorded(&xs), recorded(&ys), recorded(&zs));
        let mut left = hx.clone();
        left.merge(&hy);
        left.merge(&hz);
        let mut right = hy.clone();
        right.merge(&hz);
        let mut outer = hx.clone();
        outer.merge(&right);
        prop_assert_eq!(&left, &outer);
    }

    /// Merging an empty histogram is the identity, and the merged
    /// totals are the sums of the parts (finite and non-finite counted
    /// separately).
    #[test]
    fn histogram_merge_identity_and_conservation(
        xs in arb_samples(),
        ys in arb_samples(),
    ) {
        let (hx, hy) = (recorded(&xs), recorded(&ys));
        let mut with_empty = hx.clone();
        with_empty.merge(&Histogram::for_prices());
        prop_assert_eq!(&with_empty, &hx);
        let mut merged = hx.clone();
        merged.merge(&hy);
        prop_assert_eq!(merged.total(), hx.total() + hy.total());
        prop_assert_eq!(merged.nonfinite(), hx.nonfinite() + hy.nonfinite());
        prop_assert_eq!(
            merged.counts().iter().sum::<u64>(),
            hx.total() + hy.total()
        );
    }
}
