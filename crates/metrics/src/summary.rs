//! Descriptive statistics.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample.
///
/// # Examples
///
/// ```
/// use p2p_metrics::Summary;
/// let s = Summary::of([1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.count, 4);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// assert!((s.percentile(50.0) - 2.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of finite samples (NaN/±inf inputs are excluded — see
    /// [`Summary::nonfinite`]).
    pub count: usize,
    /// Non-finite samples rejected from the statistics.
    pub nonfinite: usize,
    /// Arithmetic mean (0 for empty samples).
    pub mean: f64,
    /// Population standard deviation (0 for empty samples).
    pub std: f64,
    /// Minimum (0 for empty samples).
    pub min: f64,
    /// Maximum (0 for empty samples).
    pub max: f64,
    sorted: Vec<f64>,
}

impl Summary {
    /// Computes statistics over `values`. Non-finite inputs are counted in
    /// [`Summary::nonfinite`] but excluded from every statistic — a single
    /// NaN must not poison a whole run's mean/std/max.
    pub fn of(values: impl IntoIterator<Item = f64>) -> Self {
        let mut nonfinite = 0usize;
        let mut sorted: Vec<f64> = values
            .into_iter()
            .filter(|v| {
                let finite = v.is_finite();
                nonfinite += usize::from(!finite);
                finite
            })
            .collect();
        sorted.sort_by(f64::total_cmp);
        let count = sorted.len();
        if count == 0 {
            return Summary {
                count: 0,
                nonfinite,
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
                sorted,
            };
        }
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let var = sorted.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / count as f64;
        Summary {
            count,
            nonfinite,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            sorted,
        }
    }

    /// Linear-interpolated percentile `p ∈ [0, 100]` (0 for empty samples,
    /// matching the other statistics).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile must be within [0, 100]");
        if self.count == 0 {
            return 0.0;
        }
        if self.count == 1 {
            return self.sorted[0];
        }
        let rank = p / 100.0 * (self.count - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample() {
        let s = Summary::of([]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn known_statistics() {
        let s = Summary::of([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std, 2.0); // classic population-σ example
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let s = Summary::of([10.0, 20.0, 30.0, 40.0]);
        assert_eq!(s.percentile(0.0), 10.0);
        assert_eq!(s.percentile(100.0), 40.0);
        assert!((s.percentile(50.0) - 25.0).abs() < 1e-12);
        assert!((s.percentile(25.0) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn singleton_percentile() {
        let s = Summary::of([5.0]);
        assert_eq!(s.percentile(99.0), 5.0);
    }

    #[test]
    fn empty_percentile_is_zero() {
        assert_eq!(Summary::of([]).percentile(50.0), 0.0);
    }

    #[test]
    fn nonfinite_samples_are_excluded() {
        let s = Summary::of([1.0, f64::NAN, 3.0, f64::INFINITY, f64::NEG_INFINITY]);
        assert_eq!(s.count, 2);
        assert_eq!(s.nonfinite, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!(s.std.is_finite());
        assert_eq!(s.percentile(100.0), 3.0);
        // All non-finite collapses to the empty summary (plus the count).
        let s = Summary::of([f64::NAN]);
        assert_eq!(s.count, 0);
        assert_eq!(s.nonfinite, 1);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    #[should_panic(expected = "within")]
    fn out_of_range_percentile_panics() {
        Summary::of([1.0]).percentile(150.0);
    }
}
