//! Terminal-friendly ASCII line plots for the examples.

use crate::series::TimeSeries;

/// Renders one or more series as a fixed-size ASCII chart.
///
/// Each series gets a glyph (`*`, `o`, `+`, `x`, …) in legend order. The
/// chart is meant for quick looks in example binaries, not publication.
///
/// # Examples
///
/// ```
/// use p2p_metrics::{TimeSeries, ascii_plot};
/// let mut s = TimeSeries::new("demo");
/// for i in 0..20 { s.push(i as f64, (i * i) as f64); }
/// let plot = ascii_plot(&[&s], 40, 10);
/// assert!(plot.contains('*'));
/// assert!(plot.contains("demo"));
/// ```
pub fn ascii_plot(series: &[&TimeSeries], width: usize, height: usize) -> String {
    const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];
    let width = width.max(8);
    let height = height.max(4);
    let mut non_empty = series.iter().filter(|s| !s.is_empty()).peekable();
    if non_empty.peek().is_none() {
        return "(no data)\n".to_string();
    }

    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for s in series.iter().filter(|s| !s.is_empty()) {
        for &(x, y) in s.points() {
            x_min = x_min.min(x);
            x_max = x_max.max(x);
            y_min = y_min.min(y);
            y_max = y_max.max(y);
        }
    }
    if (x_max - x_min).abs() < f64::EPSILON {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < f64::EPSILON {
        y_max = y_min + 1.0;
    }

    // The span can overflow to +inf for extreme data (e.g. points at
    // ±f64::MAX), making the ratio NaN — pin such points to the origin
    // column/row and clamp everything into the grid.
    let cell = |v: f64, lo: f64, hi: f64, cells: usize| -> usize {
        let t = (v - lo) / (hi - lo);
        let t = if t.is_finite() { t.clamp(0.0, 1.0) } else { 0.0 };
        ((t * (cells - 1) as f64).round() as usize).min(cells - 1)
    };

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in s.points() {
            let col = cell(x, x_min, x_max, width);
            let row = height - 1 - cell(y, y_min, y_max, height);
            grid[row][col] = glyph;
        }
    }

    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{y_max:>10.2} |")
        } else if i == height - 1 {
            format!("{y_min:>10.2} |")
        } else {
            format!("{:>10} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>10} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>12}{:<.2}{}{:>.2}\n",
        "",
        x_min,
        " ".repeat(width.saturating_sub(8)),
        x_max
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("{:>12}{} = {}\n", "", GLYPHS[si % GLYPHS.len()], s.name()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_yields_placeholder() {
        let s = TimeSeries::new("empty");
        assert_eq!(ascii_plot(&[&s], 20, 5), "(no data)\n");
        assert_eq!(ascii_plot(&[], 20, 5), "(no data)\n");
    }

    #[test]
    fn plot_contains_glyphs_and_legend() {
        let mut a = TimeSeries::new("rise");
        let mut b = TimeSeries::new("fall");
        for i in 0..10 {
            a.push(i as f64, i as f64);
            b.push(i as f64, (10 - i) as f64);
        }
        let p = ascii_plot(&[&a, &b], 30, 8);
        assert!(p.contains('*') && p.contains('o'));
        assert!(p.contains("rise") && p.contains("fall"));
        // 8 grid rows + axis + x labels + 2 legend lines
        assert_eq!(p.lines().count(), 12);
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let mut s = TimeSeries::new("flat");
        s.push(0.0, 5.0);
        s.push(1.0, 5.0);
        let p = ascii_plot(&[&s], 20, 5);
        assert!(p.contains('*'));
    }

    #[test]
    fn extreme_values_stay_in_grid() {
        // x/y spans overflow f64 here; the ratio guard must keep every
        // point inside the grid instead of producing NaN indices.
        let mut s = TimeSeries::new("extreme");
        s.push(-f64::MAX, -f64::MAX);
        s.push(f64::MAX, f64::MAX);
        let p = ascii_plot(&[&s], 20, 6);
        assert!(p.contains('*'));
        assert!(p.contains("extreme"));
        assert_eq!(p.lines().count(), 6 + 2 + 1);
    }

    #[test]
    fn tiny_dimensions_are_clamped() {
        let mut s = TimeSeries::new("x");
        s.push(0.0, 0.0);
        let p = ascii_plot(&[&s], 1, 1);
        assert!(p.contains('*'));
    }
}
