//! HyperLogLog cardinality sketches: dense registers, configurable
//! precision, mergeable — the bounded-memory unique counter of the
//! observability layer.
//!
//! A [`Hll`] with precision `p` owns `m = 2^p` one-byte registers and
//! estimates the number of *distinct* inserted keys with a typical relative
//! error of `1.04 / √m` (~1.6 % at the default precision 12, in 4 KiB),
//! independent of how many keys a run inserts — which is what lets a
//! 10⁵–10⁶-peer run track unique requesters/providers/edges per slot
//! without per-peer state.
//!
//! Inserted keys are finalized through a 64-bit avalanche mix
//! ([`mix64`], the splitmix64 finalizer), so structured ID spaces (dense
//! indices, strided patterns) hit the registers uniformly; the proptest
//! suite checks the error bound on exactly such adversarial sets. Merging
//! takes the register-wise max, so a merge of sketches equals the sketch of
//! the union — associative, commutative, idempotent.
//!
//! # Examples
//!
//! ```
//! use p2p_metrics::Hll;
//!
//! let mut h = Hll::new(12);
//! for id in 0..10_000u64 {
//!     h.insert_u64(id);
//!     h.insert_u64(id); // duplicates don't count
//! }
//! let est = h.estimate();
//! assert!((est - 10_000.0).abs() / 10_000.0 < 3.0 * h.relative_error());
//! ```

use serde::{Deserialize, Serialize};

/// The splitmix64 finalizer: a full-avalanche 64-bit mix, the hash behind
/// every [`Hll`] insertion (public so callers can pre-combine composite
/// keys the same way).
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A dense-register HyperLogLog sketch (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hll {
    /// Precision `p`: the sketch uses `2^p` registers.
    precision: u8,
    /// One byte per register: the max leading-zero rank seen.
    registers: Vec<u8>,
}

impl Hll {
    /// Smallest supported precision (16 registers).
    pub const MIN_PRECISION: u8 = 4;
    /// Largest supported precision (65536 registers, 64 KiB).
    pub const MAX_PRECISION: u8 = 16;
    /// The default precision: 4096 registers (4 KiB), ~1.6 % error.
    pub const DEFAULT_PRECISION: u8 = 12;

    /// A sketch with `2^precision` registers.
    ///
    /// # Panics
    ///
    /// Panics if `precision` is outside
    /// `[MIN_PRECISION, MAX_PRECISION]`.
    pub fn new(precision: u8) -> Self {
        assert!(
            (Self::MIN_PRECISION..=Self::MAX_PRECISION).contains(&precision),
            "precision must be in [{}, {}]",
            Self::MIN_PRECISION,
            Self::MAX_PRECISION
        );
        Hll { precision, registers: vec![0; 1 << precision] }
    }

    /// The sketch's precision `p`.
    pub fn precision(&self) -> u8 {
        self.precision
    }

    /// Number of registers (`2^p`) — also the memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.registers.len()
    }

    /// The typical relative error of [`Hll::estimate`]: `1.04 / √m`.
    pub fn relative_error(&self) -> f64 {
        1.04 / (self.registers.len() as f64).sqrt()
    }

    /// Whether nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.registers.iter().all(|&r| r == 0)
    }

    /// Inserts one key (hashed through [`mix64`]; duplicates are free).
    pub fn insert_u64(&mut self, key: u64) {
        let h = mix64(key);
        let p = self.precision as u32;
        let idx = (h >> (64 - p)) as usize;
        // Rank = leading zeros of the remaining 64-p bits, + 1; an all-zero
        // remainder saturates at 64 - p + 1.
        let rest = h << p;
        let rank = if rest == 0 { 64 - p + 1 } else { rest.leading_zeros() + 1 } as u8;
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Inserts a composite `(a, b)` key — e.g. a candidate edge's
    /// `(provider, requester)` pair. Both halves are mixed first, so the
    /// pair key collides no more often than a random 64-bit key.
    pub fn insert_pair(&mut self, a: u64, b: u64) {
        self.insert_u64(mix64(a).wrapping_mul(3).wrapping_add(mix64(b)));
    }

    /// The cardinality estimate, with the standard small-range
    /// linear-counting correction.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let mut sum = 0.0f64;
        let mut zeros = 0u64;
        for &r in &self.registers {
            sum += (2.0f64).powi(-i32::from(r));
            zeros += u64::from(r == 0);
        }
        let raw = Self::alpha(self.registers.len()) * m * m / sum;
        if raw <= 2.5 * m && zeros > 0 {
            // Small-range correction: linear counting over empty registers.
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }

    /// Merges another sketch of the same precision (register-wise max):
    /// the result estimates the union of the two key sets.
    ///
    /// # Panics
    ///
    /// Panics if the precisions differ.
    pub fn merge(&mut self, other: &Hll) {
        assert_eq!(self.precision, other.precision, "HLL precisions must match to merge");
        for (a, &b) in self.registers.iter_mut().zip(&other.registers) {
            *a = (*a).max(b);
        }
    }

    /// Resets the sketch to empty, keeping the precision.
    pub fn clear(&mut self) {
        self.registers.iter_mut().for_each(|r| *r = 0);
    }

    /// The bias-correction constant α(m).
    fn alpha(m: usize) -> f64 {
        match m {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            m => 0.7213 / (1.0 + 1.079 / m as f64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_estimates_zero() {
        let h = Hll::new(10);
        assert!(h.is_empty());
        assert_eq!(h.estimate(), 0.0);
        assert_eq!(h.memory_bytes(), 1024);
    }

    #[test]
    fn estimates_track_cardinality_across_scales() {
        let h12 = Hll::new(12);
        for n in [10u64, 100, 1_000, 50_000] {
            let mut h = h12.clone();
            for id in 0..n {
                h.insert_u64(id);
            }
            let est = h.estimate();
            let rel = (est - n as f64).abs() / n as f64;
            // 5σ of the asymptotic bound, plus slack for tiny n where the
            // bound is absolute-error dominated.
            assert!(
                rel <= 5.0 * h.relative_error() + 2.0 / n as f64,
                "n={n}: estimate {est} off by {rel}"
            );
        }
    }

    #[test]
    fn duplicates_are_idempotent() {
        let mut h = Hll::new(8);
        for _ in 0..3 {
            for id in 0..500u64 {
                h.insert_u64(id);
            }
        }
        let once = {
            let mut h2 = Hll::new(8);
            for id in 0..500u64 {
                h2.insert_u64(id);
            }
            h2
        };
        assert_eq!(h, once);
    }

    #[test]
    fn merge_estimates_the_union() {
        let mut a = Hll::new(10);
        let mut b = Hll::new(10);
        let mut whole = Hll::new(10);
        for id in 0..2_000u64 {
            whole.insert_u64(id);
            if id % 2 == 0 {
                a.insert_u64(id);
            }
            // Overlapping halves: the union is still 0..2000.
            if id % 2 == 1 || id < 500 {
                b.insert_u64(id);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn pair_keys_distinguish_order() {
        let mut ab = Hll::new(8);
        let mut ba = Hll::new(8);
        ab.insert_pair(1, 2);
        ba.insert_pair(2, 1);
        assert_ne!(ab, ba);
    }

    #[test]
    #[should_panic(expected = "precisions must match")]
    fn merge_rejects_precision_mismatch() {
        let mut a = Hll::new(8);
        a.merge(&Hll::new(9));
    }

    #[test]
    #[should_panic(expected = "precision must be")]
    fn out_of_range_precision_rejected() {
        let _ = Hll::new(3);
    }

    #[test]
    fn clear_resets() {
        let mut h = Hll::new(6);
        h.insert_u64(7);
        assert!(!h.is_empty());
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.precision(), 6);
    }
}
