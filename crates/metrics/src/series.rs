//! Named `(x, y)` time series.

use serde::{Deserialize, Serialize};

/// A named series of `(x, y)` samples, the unit of every figure.
///
/// # Examples
///
/// ```
/// use p2p_metrics::TimeSeries;
/// let mut s = TimeSeries::new("miss-rate");
/// s.push(0.0, 0.05);
/// s.push(10.0, 0.03);
/// assert_eq!(s.y_max(), Some(0.05));
/// assert!((s.mean_y().unwrap() - 0.04).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries { name: name.into(), points: Vec::new() }
    }

    /// The series name (used as a CSV column header / plot legend).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is not finite.
    pub fn push(&mut self, x: f64, y: f64) {
        assert!(x.is_finite() && y.is_finite(), "series samples must be finite");
        self.points.push((x, y));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The raw samples.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Iterator over the y values.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.points.iter().map(|&(_, y)| y)
    }

    /// Largest y value.
    pub fn y_max(&self) -> Option<f64> {
        self.values().fold(None, |acc, y| Some(acc.map_or(y, |a: f64| a.max(y))))
    }

    /// Smallest y value.
    pub fn y_min(&self) -> Option<f64> {
        self.values().fold(None, |acc, y| Some(acc.map_or(y, |a: f64| a.min(y))))
    }

    /// Mean of the y values.
    pub fn mean_y(&self) -> Option<f64> {
        if self.points.is_empty() {
            None
        } else {
            Some(self.values().sum::<f64>() / self.points.len() as f64)
        }
    }

    /// Returns the same samples under a new name (for figure legends).
    #[must_use]
    pub fn renamed(mut self, name: impl Into<String>) -> TimeSeries {
        self.name = name.into();
        self
    }

    /// Restricts the series to samples with `x ∈ [lo, hi]`.
    #[must_use]
    pub fn window(&self, lo: f64, hi: f64) -> TimeSeries {
        TimeSeries {
            name: self.name.clone(),
            points: self.points.iter().copied().filter(|&(x, _)| x >= lo && x <= hi).collect(),
        }
    }
}

impl Extend<(f64, f64)> for TimeSeries {
    fn extend<T: IntoIterator<Item = (f64, f64)>>(&mut self, iter: T) {
        for (x, y) in iter {
            self.push(x, y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_aggregate() {
        let mut s = TimeSeries::new("t");
        assert!(s.is_empty());
        assert_eq!(s.mean_y(), None);
        s.push(0.0, 1.0);
        s.push(1.0, 3.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.y_min(), Some(1.0));
        assert_eq!(s.y_max(), Some(3.0));
        assert_eq!(s.mean_y(), Some(2.0));
    }

    #[test]
    fn window_filters_by_x() {
        let mut s = TimeSeries::new("t");
        for i in 0..10 {
            s.push(i as f64, i as f64);
        }
        let w = s.window(3.0, 6.0);
        assert_eq!(w.len(), 4);
        assert_eq!(w.points()[0], (3.0, 3.0));
        assert_eq!(w.name(), "t");
    }

    #[test]
    fn renamed_keeps_points() {
        let mut s = TimeSeries::new("a");
        s.push(0.0, 1.0);
        let r = s.renamed("b");
        assert_eq!(r.name(), "b");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn extend_collects_pairs() {
        let mut s = TimeSeries::new("t");
        s.extend(vec![(0.0, 1.0), (1.0, 2.0)]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_sample_rejected() {
        let mut s = TimeSeries::new("t");
        s.push(0.0, f64::NAN);
    }
}
