//! Minimal CSV output for figure data.

use crate::series::TimeSeries;
use std::io::{self, Write};

/// Writes one or more series sharing an x axis as CSV.
///
/// The first series supplies the x column; all series must have identical
/// length and x values (the usual case: one series per scheduler over the
/// same slots). Output columns: `x, <name of s1>, <name of s2>, …`.
///
/// # Errors
///
/// Returns any I/O error from the writer, or [`io::ErrorKind::InvalidInput`]
/// if the series are empty, have mismatched lengths, or disagree on x.
///
/// # Examples
///
/// ```
/// use p2p_metrics::{TimeSeries, write_csv};
///
/// let mut a = TimeSeries::new("auction");
/// let mut b = TimeSeries::new("locality");
/// a.push(0.0, 1.0);
/// b.push(0.0, 2.0);
/// let mut out = Vec::new();
/// write_csv(&mut out, "time_s", &[&a, &b]).unwrap();
/// let text = String::from_utf8(out).unwrap();
/// assert_eq!(text, "time_s,auction,locality\n0,1,2\n");
/// ```
pub fn write_csv<W: Write>(mut w: W, x_name: &str, series: &[&TimeSeries]) -> io::Result<()> {
    if series.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "no series given"));
    }
    let n = series[0].len();
    for s in series {
        if s.len() != n {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("series `{}` has {} points, expected {n}", s.name(), s.len()),
            ));
        }
    }
    write!(w, "{x_name}")?;
    for s in series {
        write!(w, ",{}", s.name())?;
    }
    writeln!(w)?;
    for i in 0..n {
        let (x0, _) = series[0].points()[i];
        for s in series {
            let (x, _) = s.points()[i];
            if (x - x0).abs() > 1e-9 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("series `{}` disagrees on x at row {i}", s.name()),
                ));
            }
        }
        write!(w, "{x0}")?;
        for s in series {
            write!(w, ",{}", s.points()[i].1)?;
        }
        writeln!(w)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(name: &str, ys: &[f64]) -> TimeSeries {
        let mut s = TimeSeries::new(name);
        for (i, y) in ys.iter().enumerate() {
            s.push(i as f64, *y);
        }
        s
    }

    #[test]
    fn multi_column_output() {
        let a = series("a", &[1.0, 2.0]);
        let b = series("b", &[3.0, 4.0]);
        let mut out = Vec::new();
        write_csv(&mut out, "t", &[&a, &b]).unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "t,a,b\n0,1,3\n1,2,4\n");
    }

    #[test]
    fn empty_series_list_rejected() {
        let mut out = Vec::new();
        assert!(write_csv(&mut out, "t", &[]).is_err());
    }

    #[test]
    fn zero_point_series_emit_header_only() {
        // Matching-but-empty series are valid: a header-only CSV, not an
        // error and not a panic.
        let a = TimeSeries::new("a");
        let b = TimeSeries::new("b");
        let mut out = Vec::new();
        write_csv(&mut out, "t", &[&a, &b]).unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "t,a,b\n");
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let a = series("a", &[1.0]);
        let b = series("b", &[1.0, 2.0]);
        let mut out = Vec::new();
        assert!(write_csv(&mut out, "t", &[&a, &b]).is_err());
    }

    #[test]
    fn mismatched_x_rejected() {
        let a = series("a", &[1.0]);
        let mut b = TimeSeries::new("b");
        b.push(5.0, 1.0);
        let mut out = Vec::new();
        assert!(write_csv(&mut out, "t", &[&a, &b]).is_err());
    }
}
