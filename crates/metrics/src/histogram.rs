//! Fixed-bucket, log-spaced histograms with an associative, bit-stable
//! merge — the bounded-memory distribution sketch of the observability
//! layer.
//!
//! A [`Histogram`] owns `buckets` counters whose bounds are consecutive
//! powers of two starting at `2^min_exp` (bucket 0 is the underflow bucket,
//! the last bucket the overflow bucket), so memory is O(buckets) regardless
//! of how many samples a run records. Bucketing reads the IEEE-754 exponent
//! directly — no `log` call — which keeps the per-sample cost a handful of
//! integer operations, cheap enough for auction hot-path probes.
//!
//! Merging adds the `u64` counts and combines the min/max trackers; because
//! every combining operation (integer addition, `f64::min`/`f64::max` over
//! non-NaN values) is associative and commutative, merging is
//! **bit-stable**: any merge tree over the same multiset of histograms
//! produces the identical struct. The property suite pins this. (A mean
//! would need an `f64` sum, whose addition order changes the bits — so the
//! histogram deliberately stores none.)
//!
//! # Examples
//!
//! ```
//! use p2p_metrics::Histogram;
//!
//! let mut h = Histogram::for_counts();
//! for v in [1.0, 3.0, 3.0, 120.0] {
//!     h.record(v);
//! }
//! assert_eq!(h.total(), 4);
//! assert_eq!(h.min(), Some(1.0));
//! assert_eq!(h.max(), Some(120.0));
//! // The 0.5-quantile upper bound lands in 3.0's bucket: (2, 4].
//! assert_eq!(h.quantile(0.5), Some(4.0));
//! ```

use serde::{Deserialize, Serialize};

/// A fixed-bucket histogram over power-of-two bounds (see the
/// [module docs](self)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Exponent of the first finite bound: bucket 0 counts values below
    /// `2^min_exp` (including zero and negatives).
    min_exp: i32,
    /// `counts[0]` underflow, `counts[i]` covers `(2^(min_exp+i-1),
    /// 2^(min_exp+i)]`-style ranges (half-open on the top in practice),
    /// `counts[last]` overflow.
    counts: Vec<u64>,
    /// Finite samples recorded.
    total: u64,
    /// Non-finite samples rejected (counted, never bucketed).
    nonfinite: u64,
    /// Smallest finite sample (`+inf` when none — the `f64::min` identity).
    min: f64,
    /// Largest finite sample (`-inf` when none — the `f64::max` identity).
    max: f64,
}

impl Histogram {
    /// A histogram with `buckets` counters, the first finite bound at
    /// `2^min_exp`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets < 3` (underflow + at least one finite bucket +
    /// overflow) or if the exponent range leaves the `f64` exponent domain.
    pub fn new(min_exp: i32, buckets: usize) -> Self {
        assert!(buckets >= 3, "a histogram needs underflow, finite and overflow buckets");
        assert!(
            min_exp > -1022 && min_exp + buckets as i32 <= 1024,
            "bucket bounds must stay within the f64 exponent range"
        );
        Histogram {
            min_exp,
            counts: vec![0; buckets],
            total: 0,
            nonfinite: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Preset for counting quantities (bids per round, patch sizes):
    /// bounds 1, 2, 4, … 2³², 34 buckets.
    pub fn for_counts() -> Self {
        Histogram::new(0, 34)
    }

    /// Preset for price deltas and other small positive reals: bounds from
    /// `2⁻²⁰` (≈ 1e-6) up to `2¹³` (8192), 35 buckets.
    pub fn for_prices() -> Self {
        Histogram::new(-20, 35)
    }

    /// Preset for wall-clock phase latencies in seconds: bounds from
    /// `2⁻²⁰` s (≈ 1 µs) up to `2¹²` s (~68 min), 34 buckets.
    pub fn for_seconds() -> Self {
        Histogram::new(-20, 34)
    }

    /// Exponent of the first finite bound.
    pub fn min_exp(&self) -> i32 {
        self.min_exp
    }

    /// The raw bucket counts (`counts[0]` underflow, last overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Finite samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Non-finite samples rejected.
    pub fn nonfinite(&self) -> u64 {
        self.nonfinite
    }

    /// Smallest finite sample recorded, if any.
    pub fn min(&self) -> Option<f64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest finite sample recorded, if any.
    pub fn max(&self) -> Option<f64> {
        (self.total > 0).then_some(self.max)
    }

    /// Whether no finite sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The upper bound of bucket `i` (`+inf` for the overflow bucket).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bound(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bucket out of range");
        if i + 1 == self.counts.len() {
            f64::INFINITY
        } else {
            // Exact: 2^k is representable across the asserted range.
            (2.0f64).powi(self.min_exp + i as i32)
        }
    }

    /// The bucket a value lands in, via its IEEE-754 exponent (no `log`
    /// call — cheap enough for hot-path probes).
    fn bucket_of(&self, v: f64) -> usize {
        if v <= 0.0 {
            return 0;
        }
        // Biased IEEE-754 exponent: floor(log2 v) for normal values;
        // subnormals report -1023, which correctly lands in the underflow
        // bucket for any in-range `min_exp`.
        let e = ((v.to_bits() >> 52) & 0x7ff) as i32 - 1023;
        if e < self.min_exp {
            return 0;
        }
        ((e - self.min_exp + 1) as usize).min(self.counts.len() - 1)
    }

    /// Records one sample. Non-finite values are counted in
    /// [`Histogram::nonfinite`] and never bucketed (a NaN must not poison
    /// min/max or the merge's bit-stability).
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            self.nonfinite += 1;
            return;
        }
        let b = self.bucket_of(v);
        self.counts[b] += 1;
        self.total += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges another histogram of the same shape into this one. The
    /// operation is associative, commutative, and bit-stable (see the
    /// [module docs](self)).
    ///
    /// # Panics
    ///
    /// Panics if the shapes (min exponent or bucket count) differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.min_exp, other.min_exp, "histogram shapes must match to merge");
        assert_eq!(self.counts.len(), other.counts.len(), "histogram shapes must match to merge");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.nonfinite += other.nonfinite;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// An upper bound on the `q`-quantile (`q ∈ [0, 1]`): the bound of the
    /// first bucket whose cumulative count reaches `q · total`, clamped to
    /// the observed max. `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.total == 0 {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(self.bound(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Resets every counter, keeping the shape.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.nonfinite = 0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_follow_powers_of_two() {
        let mut h = Histogram::new(0, 6);
        // Bounds: underflow <1, then 1, 2, 4, 8, overflow.
        for (v, want) in [
            (0.0, 0),
            (-3.0, 0),
            (0.5, 0),
            (1.0, 1),
            (1.9, 1),
            (2.0, 2),
            (3.99, 2),
            (4.0, 3),
            (8.0, 4),
            (15.9, 4),
            (16.0, 5),
            (1e300, 5),
        ] {
            let mut one = Histogram::new(0, 6);
            one.record(v);
            assert_eq!(one.counts()[want], 1, "v={v} want bucket {want}");
            h.record(v);
        }
        assert_eq!(h.total(), 12);
        assert_eq!(h.bound(0), 1.0);
        assert_eq!(h.bound(4), 16.0);
        assert_eq!(h.bound(5), f64::INFINITY);
    }

    #[test]
    fn nonfinite_samples_are_counted_not_bucketed() {
        let mut h = Histogram::for_counts();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(2.0);
        assert_eq!(h.total(), 1);
        assert_eq!(h.nonfinite(), 2);
        assert_eq!(h.min(), Some(2.0));
        assert_eq!(h.max(), Some(2.0));
    }

    #[test]
    fn quantiles_return_bucket_upper_bounds() {
        let mut h = Histogram::for_counts();
        assert_eq!(h.quantile(0.5), None);
        for _ in 0..90 {
            h.record(3.0); // bucket (2, 4]
        }
        for _ in 0..10 {
            h.record(1000.0); // bucket (512, 1024]
        }
        assert_eq!(h.quantile(0.5), Some(4.0));
        assert_eq!(h.quantile(0.9), Some(4.0));
        assert_eq!(h.quantile(0.99), Some(1000.0)); // clamped to max
        assert_eq!(h.quantile(1.0), Some(1000.0));
        assert_eq!(h.quantile(0.0), Some(4.0));
    }

    #[test]
    fn merge_adds_counts_and_combines_extremes() {
        let mut a = Histogram::for_counts();
        let mut b = Histogram::for_counts();
        a.record(1.0);
        b.record(100.0);
        b.record(f64::NAN);
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.nonfinite(), 1);
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(100.0));
    }

    #[test]
    #[should_panic(expected = "shapes must match")]
    fn merge_rejects_shape_mismatch() {
        let mut a = Histogram::new(0, 8);
        a.merge(&Histogram::new(1, 8));
    }

    #[test]
    fn clear_keeps_shape() {
        let mut h = Histogram::for_prices();
        h.record(0.25);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.counts().len(), 35);
        assert_eq!(h.min(), None);
    }
}
