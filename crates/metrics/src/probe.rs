//! The auction probe API: zero-cost-when-off engine instrumentation.
//!
//! Engines thread a generic `&mut impl AuctionProbe` through their round
//! loops. [`AuctionProbe`]'s methods all have empty default bodies and
//! [`AuctionProbe::enabled`] defaults to `false`, so the disabled probe
//! ([`NoProbe`]) monomorphizes to nothing: the hot path compiles exactly as
//! before — no branches, no allocation, no counter traffic (the zero-alloc
//! counting-allocator suite runs against this path). [`CountingProbe`] is
//! the enabled implementation: plain counters plus two bounded-memory
//! [`Histogram`]s, snapshotted into an [`EngineReport`] per slot.
//!
//! # Examples
//!
//! ```
//! use p2p_metrics::{AuctionProbe, CountingProbe, NoProbe};
//!
//! fn engine_round(probe: &mut impl AuctionProbe) {
//!     // ...auction work...
//!     probe.round(1, 10, 2, 0, 1);
//! }
//!
//! engine_round(&mut NoProbe); // compiles to the bare loop
//! let mut probe = CountingProbe::new();
//! engine_round(&mut probe);
//! assert_eq!(probe.report().bids, 10);
//! ```

use crate::histogram::Histogram;
use serde::{Deserialize, Serialize};

/// Per-round observation hooks for the auction engines. Every method has a
/// no-op default so a disabled probe costs nothing (see the
/// [module docs](self)).
pub trait AuctionProbe {
    /// Whether the probe is live. Engines gate *extra computation* (e.g.
    /// the ε-certificate slack) on this; plain counter reporting calls the
    /// hooks unconditionally and relies on monomorphized no-op bodies.
    fn enabled(&self) -> bool {
        false
    }

    /// One engine round completed: `bids` submitted, `conflicts` (evictions
    /// plus stale-price rejections), `retries` (same-round retry passes),
    /// `retired` requests priced out permanently this round.
    fn round(&mut self, _round: u64, _bids: u64, _conflicts: u64, _retries: u64, _retired: u64) {}

    /// A provider's announced price rose by `delta`.
    fn price_change(&mut self, _provider: usize, _delta: f64) {}

    /// One engine pass converged: totals plus the Theorem 1 ε-certificate
    /// slack (dual objective − primal welfare; only computed when
    /// [`AuctionProbe::enabled`]).
    fn run_complete(&mut self, _rounds: u64, _bids: u64, _assigned: u64, _slack: f64) {}
}

/// The disabled probe: every hook is the trait's empty default, so engines
/// instantiated with `NoProbe` compile to their uninstrumented form.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoProbe;

impl AuctionProbe for NoProbe {}

/// Snapshot of everything a [`CountingProbe`] accumulated — the per-slot
/// engine section of a run report. Mergeable across slots and runs
/// (counter adds + histogram merges, all associative).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineReport {
    /// Engine passes completed (warm runs may take several).
    pub runs: u64,
    /// Rounds executed.
    pub rounds: u64,
    /// Bids submitted.
    pub bids: u64,
    /// Conflicts: evictions plus stale-price rejections.
    pub conflicts: u64,
    /// Same-round retry passes.
    pub retries: u64,
    /// Requests permanently retired as priced out.
    pub retired: u64,
    /// Requests assigned at convergence (last pass).
    pub assigned: u64,
    /// Summed ε-certificate slack (dual − primal) across passes.
    pub slack: f64,
    /// Distribution of bids per round.
    pub bids_per_round: Histogram,
    /// Distribution of announced price increases.
    pub price_deltas: Histogram,
}

impl Default for EngineReport {
    fn default() -> Self {
        EngineReport {
            runs: 0,
            rounds: 0,
            bids: 0,
            conflicts: 0,
            retries: 0,
            retired: 0,
            assigned: 0,
            slack: 0.0,
            bids_per_round: Histogram::for_counts(),
            price_deltas: Histogram::for_prices(),
        }
    }
}

impl EngineReport {
    /// Folds another report in (counters add, histograms merge, `assigned`
    /// takes the latest value, slack sums).
    pub fn merge(&mut self, other: &EngineReport) {
        self.runs += other.runs;
        self.rounds += other.rounds;
        self.bids += other.bids;
        self.conflicts += other.conflicts;
        self.retries += other.retries;
        self.retired += other.retired;
        self.assigned = other.assigned;
        self.slack += other.slack;
        self.bids_per_round.merge(&other.bids_per_round);
        self.price_deltas.merge(&other.price_deltas);
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.runs == 0 && self.rounds == 0 && self.bids == 0
    }
}

/// The enabled probe: accumulates an [`EngineReport`] in O(1) memory.
#[derive(Debug, Clone, Default)]
pub struct CountingProbe {
    report: EngineReport,
}

impl CountingProbe {
    /// A fresh probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated report (borrowed; keeps accumulating).
    pub fn report(&self) -> &EngineReport {
        &self.report
    }

    /// Takes the accumulated report, resetting the probe for the next slot.
    pub fn take_report(&mut self) -> EngineReport {
        std::mem::take(&mut self.report)
    }
}

impl AuctionProbe for CountingProbe {
    fn enabled(&self) -> bool {
        true
    }

    fn round(&mut self, _round: u64, bids: u64, conflicts: u64, retries: u64, retired: u64) {
        self.report.rounds += 1;
        self.report.bids += bids;
        self.report.conflicts += conflicts;
        self.report.retries += retries;
        self.report.retired += retired;
        self.report.bids_per_round.record(bids as f64);
    }

    fn price_change(&mut self, _provider: usize, delta: f64) {
        self.report.price_deltas.record(delta);
    }

    fn run_complete(&mut self, _rounds: u64, _bids: u64, assigned: u64, slack: f64) {
        self.report.runs += 1;
        self.report.assigned = assigned;
        if slack.is_finite() {
            self.report.slack += slack;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_probe_is_disabled_and_inert() {
        let mut p = NoProbe;
        assert!(!p.enabled());
        p.round(1, 5, 1, 0, 0);
        p.price_change(0, 1.0);
        p.run_complete(1, 5, 3, 0.1);
    }

    #[test]
    fn counting_probe_accumulates_and_takes() {
        let mut p = CountingProbe::new();
        assert!(p.enabled());
        p.round(1, 10, 2, 1, 3);
        p.round(2, 4, 0, 0, 0);
        p.price_change(0, 0.5);
        p.run_complete(2, 14, 7, 0.25);
        let r = p.report().clone();
        assert_eq!(r.rounds, 2);
        assert_eq!(r.bids, 14);
        assert_eq!(r.conflicts, 2);
        assert_eq!(r.retries, 1);
        assert_eq!(r.retired, 3);
        assert_eq!(r.assigned, 7);
        assert_eq!(r.runs, 1);
        assert!((r.slack - 0.25).abs() < 1e-12);
        assert_eq!(r.bids_per_round.total(), 2);
        assert_eq!(r.price_deltas.total(), 1);
        let taken = p.take_report();
        assert_eq!(taken, r);
        assert!(p.report().is_empty());
    }

    #[test]
    fn reports_merge() {
        let mut a = EngineReport::default();
        let mut b = EngineReport::default();
        a.rounds = 2;
        a.bids = 5;
        a.slack = 0.1;
        b.rounds = 3;
        b.bids = 7;
        b.slack = 0.2;
        b.assigned = 9;
        a.merge(&b);
        assert_eq!(a.rounds, 5);
        assert_eq!(a.bids, 12);
        assert_eq!(a.assigned, 9);
        assert!((a.slack - 0.3).abs() < 1e-12);
    }
}
