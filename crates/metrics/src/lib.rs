//! Metrics collection and reporting for experiments.
//!
//! Provides the small observability toolkit every experiment shares: time
//! series, summary statistics, per-slot system metrics matching the paper's
//! reported quantities (social welfare, % inter-ISP traffic, chunk miss
//! rate), CSV output and quick ASCII plots for the examples.
//!
//! # Examples
//!
//! ```
//! use p2p_metrics::{TimeSeries, Summary};
//!
//! let mut s = TimeSeries::new("welfare");
//! s.push(0.0, 120.0);
//! s.push(10.0, 180.0);
//! assert_eq!(s.len(), 2);
//! let stats = Summary::of(s.values());
//! assert_eq!(stats.mean, 150.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ascii;
pub mod csv;
pub mod histogram;
pub mod hll;
pub mod probe;
pub mod report;
pub mod series;
pub mod slot;
pub mod summary;

pub use ascii::ascii_plot;
pub use csv::write_csv;
pub use histogram::Histogram;
pub use hll::{mix64, Hll};
pub use probe::{AuctionProbe, CountingProbe, EngineReport, NoProbe};
pub use report::{
    CacheCounters, PhaseTimings, PoolCounters, RunReport, SlotReport, UniqueCounts, WindowReport,
};
pub use series::TimeSeries;
pub use slot::{SlotMetrics, SlotRecorder};
pub use summary::Summary;
