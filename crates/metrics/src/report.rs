//! Structured run reports: the per-slot stitching of engine probes, cache
//! counters, sketched uniques and phase timings, with event-window
//! aggregation and machine-readable JSON/CSV export.
//!
//! A [`RunReport`] is what the streaming `System` accumulates when probes
//! are enabled and what the `scenarios --metrics-out` CLI writes to disk.
//! It is bounded-memory by construction: per slot it stores a fixed set of
//! scalars plus an optional [`EngineReport`] (fixed-bucket histograms), and
//! the run-level uniques are HLL estimates, so report size is O(slots),
//! never O(peers) or O(bids).
//!
//! Serialization is hand-rolled (`to_json`, `slot_csv`): the workspace's
//! serde shim is a no-op, so these emitters are the single source of truth
//! for the on-disk schema documented in the README.

use crate::probe::EngineReport;
use crate::Histogram;

/// Wall-clock seconds spent in each phase of one slot.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimings {
    /// Admissions, churn, refresh and slot-problem construction.
    pub prepare_s: f64,
    /// The scheduler (auction) run.
    pub schedule_s: f64,
    /// Delivery application, metric recording, slot advance.
    pub complete_s: f64,
}

impl PhaseTimings {
    /// Total seconds across the three phases.
    pub fn total_s(&self) -> f64 {
        self.prepare_s + self.schedule_s + self.complete_s
    }
}

/// Slot-problem cache counters for one slot (plain numbers so the metrics
/// crate stays a leaf — the streaming crate converts its own stats type).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Watcher blocks rebuilt from scratch.
    pub blocks_rebuilt: u64,
    /// Watcher blocks reused.
    pub blocks_reused: u64,
    /// Chunk requests scanned fresh.
    pub chunks_fresh: u64,
    /// Chunk requests reused from a prior slot.
    pub chunks_reused: u64,
    /// Delivery patches applied to cached blocks this slot.
    pub patched: u64,
    /// Blocks pruned (departed or emptied watchers) this slot.
    pub pruned: u64,
}

impl CacheCounters {
    /// Folds another slot's counters in (all fields add).
    pub fn merge(&mut self, o: &CacheCounters) {
        self.blocks_rebuilt += o.blocks_rebuilt;
        self.blocks_reused += o.blocks_reused;
        self.chunks_fresh += o.chunks_fresh;
        self.chunks_reused += o.chunks_reused;
        self.patched += o.patched;
        self.pruned += o.pruned;
    }
}

/// Worker-pool counters for the whole run (the pool is shared across a
/// sweep, so these are process-level, not per-run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// OS threads ever spawned.
    pub spawned: u64,
    /// Jobs executed.
    pub jobs: u64,
    /// Worker park events (a job finished and its thread went idle).
    pub parks: u64,
    /// Workers currently parked idle.
    pub idle: u64,
}

/// One slot's observations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SlotReport {
    /// Slot index.
    pub slot: u64,
    /// Wall-clock phase timings.
    pub phases: PhaseTimings,
    /// Requests in the slot problem.
    pub requests: u64,
    /// Providers in the slot problem.
    pub providers: u64,
    /// Candidate edges in the slot problem.
    pub edges: u64,
    /// The slot's social welfare.
    pub welfare: f64,
    /// Chunks delivered.
    pub transfers: u64,
    /// Deliveries crossing an ISP boundary.
    pub inter_isp: u64,
    /// Chunks missed at their deadline.
    pub missed: u64,
    /// Online peers at slot end.
    pub online: u64,
    /// Engine probe snapshot, when the scheduler exposes one.
    pub engine: Option<EngineReport>,
    /// Slot-problem cache counters, when the incremental builder ran.
    pub cache: Option<CacheCounters>,
}

/// Aggregation of a contiguous slot range — the before/during/after event
/// windows of a scenario run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowReport {
    /// Window name (`before`, `during`, `after`, or `all`).
    pub name: String,
    /// First slot (inclusive).
    pub first_slot: u64,
    /// Last slot (inclusive).
    pub last_slot: u64,
    /// Slots aggregated.
    pub slots: u64,
    /// Mean per-slot welfare.
    pub welfare_mean: f64,
    /// Mean per-slot missed chunks.
    pub missed_mean: f64,
    /// Total wall-clock seconds across all phases.
    pub wall_s: f64,
    /// Merged engine reports of the window's slots.
    pub engine: Option<EngineReport>,
}

/// HLL-sketched unique counts over a whole run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UniqueCounts {
    /// Sketch precision used.
    pub precision: u8,
    /// Estimated distinct requesting peers.
    pub requesters: f64,
    /// Estimated distinct providing peers.
    pub providers: f64,
    /// Estimated distinct candidate edges (provider, requester) pairs.
    pub edges: f64,
}

/// The structured report of one run (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Scenario name (empty outside the scenario runner).
    pub scenario: String,
    /// Scheduler name.
    pub scheduler: String,
    /// Slot length in seconds.
    pub slot_secs: f64,
    /// Per-slot observations, ascending by slot.
    pub slots: Vec<SlotReport>,
    /// Run-level sketched uniques.
    pub uniques: UniqueCounts,
    /// Worker-pool counters, when a shared pool served the run.
    pub pool: Option<PoolCounters>,
    /// Event-window aggregations (filled by
    /// [`RunReport::aggregate_windows`]).
    pub windows: Vec<WindowReport>,
    /// Distribution of per-slot schedule-phase latencies.
    pub schedule_latency: Histogram,
}

impl Default for RunReport {
    fn default() -> Self {
        RunReport::new("", "", 0.0)
    }
}

impl RunReport {
    /// A report shell for one run.
    pub fn new(scenario: impl Into<String>, scheduler: impl Into<String>, slot_secs: f64) -> Self {
        RunReport {
            scenario: scenario.into(),
            scheduler: scheduler.into(),
            slot_secs,
            slots: Vec::new(),
            uniques: UniqueCounts::default(),
            pool: None,
            windows: Vec::new(),
            schedule_latency: Histogram::for_seconds(),
        }
    }

    /// Appends one slot's observations (also feeds the run-level schedule
    /// latency histogram).
    pub fn push_slot(&mut self, slot: SlotReport) {
        self.schedule_latency.record(slot.phases.schedule_s);
        self.slots.push(slot);
    }

    /// Builds the window aggregations from named inclusive slot ranges,
    /// skipping empty ranges (`lo > hi`).
    pub fn aggregate_windows(&mut self, windows: &[(&str, u64, u64)]) {
        self.windows.clear();
        for &(name, lo, hi) in windows {
            if lo > hi {
                continue;
            }
            let mut w = WindowReport {
                name: name.to_string(),
                first_slot: lo,
                last_slot: hi,
                ..WindowReport::default()
            };
            let mut welfare = 0.0;
            let mut missed = 0.0;
            for s in self.slots.iter().filter(|s| s.slot >= lo && s.slot <= hi) {
                w.slots += 1;
                welfare += s.welfare;
                missed += s.missed as f64;
                w.wall_s += s.phases.total_s();
                if let Some(e) = &s.engine {
                    w.engine.get_or_insert_with(EngineReport::default).merge(e);
                }
            }
            if w.slots > 0 {
                w.welfare_mean = welfare / w.slots as f64;
                w.missed_mean = missed / w.slots as f64;
            }
            self.windows.push(w);
        }
    }

    /// The report as a JSON document (the schema in the README's
    /// Observability section).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096 + self.slots.len() * 512);
        out.push_str("{\n");
        out.push_str(&format!("  \"scenario\": {},\n", json_str(&self.scenario)));
        out.push_str(&format!("  \"scheduler\": {},\n", json_str(&self.scheduler)));
        out.push_str(&format!("  \"slot_secs\": {},\n", json_f64(self.slot_secs)));
        out.push_str(&format!(
            "  \"uniques\": {{\"precision\": {}, \"requesters\": {}, \"providers\": {}, \"edges\": {}}},\n",
            self.uniques.precision,
            json_f64(self.uniques.requesters),
            json_f64(self.uniques.providers),
            json_f64(self.uniques.edges)
        ));
        match &self.pool {
            Some(p) => out.push_str(&format!(
                "  \"pool\": {{\"spawned\": {}, \"jobs\": {}, \"parks\": {}, \"idle\": {}}},\n",
                p.spawned, p.jobs, p.parks, p.idle
            )),
            None => out.push_str("  \"pool\": null,\n"),
        }
        out.push_str(&format!(
            "  \"schedule_latency\": {},\n",
            histogram_json(&self.schedule_latency)
        ));
        out.push_str("  \"windows\": [\n");
        for (i, w) in self.windows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"first_slot\": {}, \"last_slot\": {}, \"slots\": {}, \
                 \"welfare_mean\": {}, \"missed_mean\": {}, \"wall_s\": {}, \"engine\": {}}}{}\n",
                json_str(&w.name),
                w.first_slot,
                w.last_slot,
                w.slots,
                json_f64(w.welfare_mean),
                json_f64(w.missed_mean),
                json_f64(w.wall_s),
                engine_json(w.engine.as_ref()),
                comma(i, self.windows.len())
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"slots\": [\n");
        for (i, s) in self.slots.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"slot\": {}, \"prepare_s\": {}, \"schedule_s\": {}, \"complete_s\": {}, \
                 \"requests\": {}, \"providers\": {}, \"edges\": {}, \"welfare\": {}, \
                 \"transfers\": {}, \"inter_isp\": {}, \"missed\": {}, \"online\": {}, \
                 \"engine\": {}, \"cache\": {}}}{}\n",
                s.slot,
                json_f64(s.phases.prepare_s),
                json_f64(s.phases.schedule_s),
                json_f64(s.phases.complete_s),
                s.requests,
                s.providers,
                s.edges,
                json_f64(s.welfare),
                s.transfers,
                s.inter_isp,
                s.missed,
                s.online,
                engine_json(s.engine.as_ref()),
                cache_json(s.cache.as_ref()),
                comma(i, self.slots.len())
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The per-slot counters as a CSV table (one row per slot).
    pub fn slot_csv(&self) -> String {
        let mut out = String::from(
            "slot,prepare_s,schedule_s,complete_s,requests,providers,edges,welfare,transfers,\
             inter_isp,missed,online,rounds,bids,conflicts,retries,retired,slack,\
             cache_rebuilt,cache_reused,cache_patched,cache_pruned\n",
        );
        for s in &self.slots {
            let e = s.engine.clone().unwrap_or_default();
            let c = s.cache.unwrap_or_default();
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                s.slot,
                json_f64(s.phases.prepare_s),
                json_f64(s.phases.schedule_s),
                json_f64(s.phases.complete_s),
                s.requests,
                s.providers,
                s.edges,
                json_f64(s.welfare),
                s.transfers,
                s.inter_isp,
                s.missed,
                s.online,
                e.rounds,
                e.bids,
                e.conflicts,
                e.retries,
                e.retired,
                json_f64(e.slack),
                c.blocks_rebuilt,
                c.blocks_reused,
                c.patched,
                c.pruned,
            ));
        }
        out
    }
}

/// `,` for every row but the last.
fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 == len {
        ""
    } else {
        ","
    }
}

/// A JSON string literal (quotes and escapes the content).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A JSON number (non-finite values become `null` — JSON has no inf/NaN).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// A histogram as a JSON object with bucket counts and quantile bounds.
fn histogram_json(h: &Histogram) -> String {
    let quantile = |q| h.quantile(q).map_or("null".to_string(), json_f64);
    format!(
        "{{\"min_exp\": {}, \"total\": {}, \"nonfinite\": {}, \"min\": {}, \"max\": {}, \
         \"p50\": {}, \"p99\": {}, \"counts\": [{}]}}",
        h.min_exp(),
        h.total(),
        h.nonfinite(),
        h.min().map_or("null".to_string(), json_f64),
        h.max().map_or("null".to_string(), json_f64),
        quantile(0.5),
        quantile(0.99),
        h.counts().iter().map(u64::to_string).collect::<Vec<_>>().join(",")
    )
}

/// An optional engine report as a JSON object (or `null`).
fn engine_json(e: Option<&EngineReport>) -> String {
    let Some(e) = e else {
        return "null".to_string();
    };
    format!(
        "{{\"runs\": {}, \"rounds\": {}, \"bids\": {}, \"conflicts\": {}, \"retries\": {}, \
         \"retired\": {}, \"assigned\": {}, \"slack\": {}, \"bids_per_round\": {}, \
         \"price_deltas\": {}}}",
        e.runs,
        e.rounds,
        e.bids,
        e.conflicts,
        e.retries,
        e.retired,
        e.assigned,
        json_f64(e.slack),
        histogram_json(&e.bids_per_round),
        histogram_json(&e.price_deltas)
    )
}

/// Optional cache counters as a JSON object (or `null`).
fn cache_json(c: Option<&CacheCounters>) -> String {
    let Some(c) = c else {
        return "null".to_string();
    };
    format!(
        "{{\"blocks_rebuilt\": {}, \"blocks_reused\": {}, \"chunks_fresh\": {}, \
         \"chunks_reused\": {}, \"patched\": {}, \"pruned\": {}}}",
        c.blocks_rebuilt, c.blocks_reused, c.chunks_fresh, c.chunks_reused, c.patched, c.pruned
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        let mut r = RunReport::new("flash_crowd", "auction_flat", 5.0);
        for slot in 0..4u64 {
            let mut engine = EngineReport {
                runs: 1,
                rounds: 3 + slot,
                bids: 10 * (slot + 1),
                slack: 0.01,
                ..Default::default()
            };
            engine.bids_per_round.record(10.0);
            engine.price_deltas.record(0.5);
            r.push_slot(SlotReport {
                slot,
                phases: PhaseTimings { prepare_s: 0.001, schedule_s: 0.002, complete_s: 0.0005 },
                requests: 100,
                providers: 20,
                edges: 800,
                welfare: 50.0 + slot as f64,
                transfers: 40,
                inter_isp: 8,
                missed: slot,
                online: 120,
                engine: Some(engine),
                cache: Some(CacheCounters {
                    blocks_rebuilt: 2,
                    blocks_reused: 90,
                    chunks_fresh: 10,
                    chunks_reused: 500,
                    patched: 30,
                    pruned: 1,
                }),
            });
        }
        r.uniques =
            UniqueCounts { precision: 12, requesters: 118.0, providers: 20.0, edges: 790.0 };
        r.pool = Some(PoolCounters { spawned: 4, jobs: 64, parks: 64, idle: 4 });
        r.aggregate_windows(&[("before", 0, 1), ("during", 2, 2), ("after", 3, 3)]);
        r
    }

    #[test]
    fn windows_aggregate_contiguous_ranges() {
        let r = sample_report();
        assert_eq!(r.windows.len(), 3);
        let before = &r.windows[0];
        assert_eq!(before.slots, 2);
        assert!((before.welfare_mean - 50.5).abs() < 1e-12);
        let engine = before.engine.as_ref().unwrap();
        assert_eq!(engine.rounds, 3 + 4);
        assert_eq!(engine.bids, 30);
        // Empty ranges are skipped.
        let mut r2 = sample_report();
        r2.aggregate_windows(&[("before", 1, 0), ("all", 0, 3)]);
        assert_eq!(r2.windows.len(), 1);
        assert_eq!(r2.windows[0].slots, 4);
    }

    #[test]
    fn json_has_required_keys_and_no_bare_nonfinite() {
        let mut r = sample_report();
        r.slots[0].welfare = f64::NAN;
        let json = r.to_json();
        for key in [
            "\"scenario\"",
            "\"scheduler\"",
            "\"slot_secs\"",
            "\"uniques\"",
            "\"pool\"",
            "\"windows\"",
            "\"slots\"",
            "\"schedule_s\"",
            "\"rounds\"",
            "\"slack\"",
            "\"bids_per_round\"",
            "\"cache\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        assert!(!json.contains("NaN"));
        assert!(!json.contains("inf"));
        // Balanced braces/brackets — a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn csv_emits_one_row_per_slot() {
        let r = sample_report();
        let csv = r.slot_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 4);
        assert!(lines[0].starts_with("slot,prepare_s"));
        let cols = lines[0].split(',').count();
        for row in &lines[1..] {
            assert_eq!(row.split(',').count(), cols);
        }
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }
}
