//! Per-time-slot system metrics — the paper's reported quantities.

use crate::series::TimeSeries;
use p2p_types::{SlotIndex, Utility};
use serde::{Deserialize, Serialize};

/// What the system measured during one time slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SlotMetrics {
    /// Social welfare `Σ a (v − w)` of the slot's schedule (Fig. 3/6a).
    pub welfare: f64,
    /// Chunks scheduled for transfer.
    pub transfers: u64,
    /// Transfers crossing an ISP boundary (numerator of Fig. 4/6b).
    pub inter_isp_transfers: u64,
    /// Chunks whose playback deadline passed unserved during the slot
    /// (numerator of Fig. 5/6c).
    pub missed_chunks: u64,
    /// Chunks that came due for playback during the slot (denominator of
    /// Fig. 5/6c).
    pub due_chunks: u64,
    /// Online (non-seed) peers at the slot boundary.
    pub online_peers: u64,
}

impl SlotMetrics {
    /// Adds one scheduled transfer.
    pub fn record_transfer(&mut self, utility: Utility, inter_isp: bool) {
        self.welfare += utility.get();
        self.transfers += 1;
        if inter_isp {
            self.inter_isp_transfers += 1;
        }
    }

    /// Fraction of traffic that crossed ISP boundaries (0 when idle).
    pub fn inter_isp_fraction(&self) -> f64 {
        if self.transfers == 0 {
            0.0
        } else {
            self.inter_isp_transfers as f64 / self.transfers as f64
        }
    }

    /// Fraction of due chunks that missed their deadline (0 when nothing
    /// was due).
    pub fn miss_rate(&self) -> f64 {
        if self.due_chunks == 0 {
            0.0
        } else {
            self.missed_chunks as f64 / self.due_chunks as f64
        }
    }
}

/// Collects [`SlotMetrics`] over a run and exposes them as the paper's
/// figure series.
///
/// # Examples
///
/// ```
/// use p2p_metrics::{SlotMetrics, SlotRecorder};
/// use p2p_types::{SlotIndex, SimDuration, Utility};
///
/// let mut rec = SlotRecorder::new(SimDuration::from_secs(10));
/// let mut m = SlotMetrics::default();
/// m.record_transfer(Utility::new(3.0), true);
/// m.record_transfer(Utility::new(2.0), false);
/// rec.record(SlotIndex::new(0), m);
/// assert_eq!(rec.welfare_series().points()[0], (0.0, 5.0));
/// assert_eq!(rec.inter_isp_series().points()[0], (0.0, 0.5));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotRecorder {
    slot_secs: f64,
    slots: Vec<(SlotIndex, SlotMetrics)>,
}

impl SlotRecorder {
    /// Creates a recorder for slots of the given length.
    pub fn new(slot_len: p2p_types::SimDuration) -> Self {
        SlotRecorder { slot_secs: slot_len.as_secs_f64(), slots: Vec::new() }
    }

    /// Records one slot's metrics.
    pub fn record(&mut self, slot: SlotIndex, metrics: SlotMetrics) {
        self.slots.push((slot, metrics));
    }

    /// All recorded slots.
    pub fn slots(&self) -> &[(SlotIndex, SlotMetrics)] {
        &self.slots
    }

    /// Number of recorded slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    fn series_of(&self, name: &str, f: impl Fn(&SlotMetrics) -> f64) -> TimeSeries {
        let mut s = TimeSeries::new(name);
        for (slot, m) in &self.slots {
            s.push(slot.get() as f64 * self.slot_secs, f(m));
        }
        s
    }

    /// Social welfare per slot vs time (Fig. 3 / 6a).
    pub fn welfare_series(&self) -> TimeSeries {
        self.series_of("social_welfare", |m| m.welfare)
    }

    /// Inter-ISP traffic fraction vs time (Fig. 4 / 6b).
    pub fn inter_isp_series(&self) -> TimeSeries {
        self.series_of("inter_isp_fraction", SlotMetrics::inter_isp_fraction)
    }

    /// Chunk miss rate vs time (Fig. 5 / 6c).
    pub fn miss_rate_series(&self) -> TimeSeries {
        self.series_of("miss_rate", SlotMetrics::miss_rate)
    }

    /// Online peers vs time.
    pub fn population_series(&self) -> TimeSeries {
        self.series_of("online_peers", |m| m.online_peers as f64)
    }

    /// Transfers per slot vs time.
    pub fn transfers_series(&self) -> TimeSeries {
        self.series_of("transfers", |m| m.transfers as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_types::SimDuration;

    #[test]
    fn ratios_handle_empty_slots() {
        let m = SlotMetrics::default();
        assert_eq!(m.inter_isp_fraction(), 0.0);
        assert_eq!(m.miss_rate(), 0.0);
    }

    #[test]
    fn record_transfer_accumulates() {
        let mut m = SlotMetrics::default();
        m.record_transfer(Utility::new(1.5), false);
        m.record_transfer(Utility::new(-0.5), true);
        assert_eq!(m.welfare, 1.0);
        assert_eq!(m.transfers, 2);
        assert_eq!(m.inter_isp_transfers, 1);
        assert_eq!(m.inter_isp_fraction(), 0.5);
    }

    #[test]
    fn miss_rate_is_misses_over_due() {
        let m = SlotMetrics { missed_chunks: 5, due_chunks: 100, ..Default::default() };
        assert_eq!(m.miss_rate(), 0.05);
    }

    #[test]
    fn recorder_builds_time_axes_in_seconds() {
        let mut rec = SlotRecorder::new(SimDuration::from_secs(10));
        rec.record(SlotIndex::new(0), SlotMetrics::default());
        rec.record(SlotIndex::new(3), SlotMetrics { welfare: 7.0, ..Default::default() });
        assert_eq!(rec.len(), 2);
        let w = rec.welfare_series();
        assert_eq!(w.points(), &[(0.0, 0.0), (30.0, 7.0)]);
        assert!(!rec.is_empty());
        assert_eq!(rec.population_series().len(), 2);
        assert_eq!(rec.transfers_series().len(), 2);
        assert_eq!(rec.miss_rate_series().len(), 2);
    }
}
