//! Min-cost flow on a directed graph via successive shortest augmenting
//! paths with Johnson potentials.

use std::error::Error as StdError;
use std::fmt;

/// Errors from flow computations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetflowError {
    /// A node index was out of range.
    NodeOutOfRange {
        /// The offending index.
        node: usize,
        /// Current node count.
        nodes: usize,
    },
    /// Negative capacity supplied.
    NegativeCapacity,
    /// The residual graph contains a negative cycle reachable from the
    /// source (cannot happen for bipartite transportation instances; guarded
    /// for robustness).
    NegativeCycle,
}

impl fmt::Display for NetflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetflowError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} out of range (graph has {nodes} nodes)")
            }
            NetflowError::NegativeCapacity => write!(f, "edge capacity must be non-negative"),
            NetflowError::NegativeCycle => write!(f, "negative cycle in residual graph"),
        }
    }
}

impl StdError for NetflowError {}

/// Opaque handle to an edge, used to query flow after solving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeId(usize);

#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    cap: i64,
    cost: i64,
}

/// Outcome of a min-cost flow computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlowOutcome {
    /// Total units of flow pushed from source to sink.
    pub flow: i64,
    /// Total cost of the pushed flow (sum over arcs of `flow × cost`).
    pub cost: i64,
}

/// A directed flow network with integer capacities and costs.
///
/// Edges are stored with their residual twins at paired indices (`2k`,
/// `2k+1`), the classic adjacency-list MCMF layout.
///
/// # Examples
///
/// ```
/// use p2p_netflow::FlowNetwork;
///
/// let mut g = FlowNetwork::new(4);
/// let s = 0; let t = 3;
/// g.add_edge(s, 1, 2, 1).unwrap();
/// g.add_edge(1, 2, 2, 1).unwrap();
/// g.add_edge(2, t, 2, 1).unwrap();
/// let out = g.min_cost_max_flow(s, t).unwrap();
/// assert_eq!(out.flow, 2);
/// assert_eq!(out.cost, 6);
/// ```
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    edges: Vec<Edge>,
    adj: Vec<Vec<usize>>,
}

impl FlowNetwork {
    /// Creates a network with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        FlowNetwork { edges: Vec::new(), adj: vec![Vec::new(); n] }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of forward edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len() / 2
    }

    /// Adds a node, returning its index.
    pub fn add_node(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Adds a directed edge with capacity `cap` and per-unit cost `cost`.
    ///
    /// # Errors
    ///
    /// Returns [`NetflowError::NodeOutOfRange`] or
    /// [`NetflowError::NegativeCapacity`].
    pub fn add_edge(
        &mut self,
        from: usize,
        to: usize,
        cap: i64,
        cost: i64,
    ) -> Result<EdgeId, NetflowError> {
        let nodes = self.adj.len();
        for node in [from, to] {
            if node >= nodes {
                return Err(NetflowError::NodeOutOfRange { node, nodes });
            }
        }
        if cap < 0 {
            return Err(NetflowError::NegativeCapacity);
        }
        let id = self.edges.len();
        self.edges.push(Edge { to, cap, cost });
        self.edges.push(Edge { to: from, cap: 0, cost: -cost });
        self.adj[from].push(id);
        self.adj[to].push(id + 1);
        Ok(EdgeId(id))
    }

    /// Flow currently on a forward edge (its consumed capacity).
    pub fn flow_on(&self, edge: EdgeId) -> i64 {
        // Residual twin's capacity equals the pushed flow.
        self.edges[edge.0 + 1].cap
    }

    /// SPFA (queue-based Bellman–Ford) over the residual graph. Handles the
    /// negative arc costs that arise from negated profits; detects negative
    /// cycles by counting per-node relaxations.
    fn shortest_path(&self, source: usize) -> Result<(Vec<i64>, Vec<Option<usize>>), NetflowError> {
        const INF: i64 = i64::MAX / 4;
        let n = self.adj.len();
        let mut dist = vec![INF; n];
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut in_queue = vec![false; n];
        let mut relaxations = vec![0u32; n];
        let mut queue = std::collections::VecDeque::new();
        dist[source] = 0;
        queue.push_back(source);
        in_queue[source] = true;
        while let Some(u) = queue.pop_front() {
            in_queue[u] = false;
            for &eid in &self.adj[u] {
                let e = &self.edges[eid];
                if e.cap > 0 && dist[u] + e.cost < dist[e.to] {
                    dist[e.to] = dist[u] + e.cost;
                    parent[e.to] = Some(eid);
                    if !in_queue[e.to] {
                        relaxations[e.to] += 1;
                        if relaxations[e.to] > n as u32 + 1 {
                            return Err(NetflowError::NegativeCycle);
                        }
                        queue.push_back(e.to);
                        in_queue[e.to] = true;
                    }
                }
            }
        }
        Ok((dist, parent))
    }

    /// Core successive-shortest-path loop. `stop_when_unprofitable` makes it
    /// a *max-profit* solver: augmentation stops once the cheapest path has
    /// non-negative true cost (pushing further would only lose profit).
    fn run_ssp(
        &mut self,
        source: usize,
        sink: usize,
        max_flow: i64,
        stop_when_unprofitable: bool,
    ) -> Result<FlowOutcome, NetflowError> {
        const INF: i64 = i64::MAX / 4;
        let nodes = self.adj.len();
        for node in [source, sink] {
            if node >= nodes {
                return Err(NetflowError::NodeOutOfRange { node, nodes });
            }
        }
        let mut outcome = FlowOutcome::default();
        while outcome.flow < max_flow {
            let (dist, parent) = self.shortest_path(source)?;
            if dist[sink] >= INF {
                break; // sink unreachable
            }
            let path_cost = dist[sink];
            if stop_when_unprofitable && path_cost >= 0 {
                break;
            }
            // Find bottleneck.
            let mut bottleneck = max_flow - outcome.flow;
            let mut v = sink;
            while let Some(eid) = parent[v] {
                bottleneck = bottleneck.min(self.edges[eid].cap);
                v = self.edges[eid ^ 1].to;
            }
            debug_assert!(bottleneck > 0);
            // Apply.
            let mut v = sink;
            while let Some(eid) = parent[v] {
                self.edges[eid].cap -= bottleneck;
                self.edges[eid ^ 1].cap += bottleneck;
                v = self.edges[eid ^ 1].to;
            }
            outcome.flow += bottleneck;
            outcome.cost += bottleneck * path_cost;
        }
        Ok(outcome)
    }

    /// Pushes as much flow as possible from `source` to `sink` at minimum
    /// total cost.
    ///
    /// # Errors
    ///
    /// Returns [`NetflowError`] for invalid nodes or a negative residual
    /// cycle.
    pub fn min_cost_max_flow(
        &mut self,
        source: usize,
        sink: usize,
    ) -> Result<FlowOutcome, NetflowError> {
        self.run_ssp(source, sink, i64::MAX / 4, false)
    }

    /// Pushes flow only while each additional augmenting path has strictly
    /// negative cost — i.e. finds the flow of *maximum profit* when edge
    /// costs encode negated profits.
    ///
    /// # Errors
    ///
    /// Returns [`NetflowError`] for invalid nodes or a negative residual
    /// cycle.
    pub fn max_profit_flow(
        &mut self,
        source: usize,
        sink: usize,
    ) -> Result<FlowOutcome, NetflowError> {
        self.run_ssp(source, sink, i64::MAX / 4, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_path() {
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 1, 5, 2).unwrap();
        g.add_edge(1, 2, 3, 4).unwrap();
        let out = g.min_cost_max_flow(0, 2).unwrap();
        assert_eq!(out.flow, 3);
        assert_eq!(out.cost, 3 * 2 + 3 * 4);
    }

    #[test]
    fn chooses_cheaper_route_first() {
        // Two parallel routes: cost 1 (cap 1) and cost 10 (cap 1).
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, 1, 1).unwrap();
        g.add_edge(0, 2, 1, 10).unwrap();
        g.add_edge(1, 3, 1, 0).unwrap();
        g.add_edge(2, 3, 1, 0).unwrap();
        let out = g.min_cost_max_flow(0, 3).unwrap();
        assert_eq!(out.flow, 2);
        assert_eq!(out.cost, 11);
    }

    #[test]
    fn rerouting_through_residual_arcs() {
        // Classic example where the second augmentation must cancel flow on
        // the first path to be optimal.
        let mut g = FlowNetwork::new(4);
        let e_direct = g.add_edge(0, 1, 1, 1).unwrap();
        g.add_edge(0, 2, 1, 5).unwrap();
        g.add_edge(1, 2, 1, -4).unwrap();
        g.add_edge(1, 3, 1, 6).unwrap();
        g.add_edge(2, 3, 1, 1).unwrap();
        let out = g.min_cost_max_flow(0, 3).unwrap();
        assert_eq!(out.flow, 2);
        // Path costs: 0→1→2→3 = −2, 0→2→3 = 6, 0→1→3 = 7, but 2→3 has
        // capacity 1, so max flow 2 decomposes as {0→1→3, 0→2→3} = 13.
        // SSP reaches it by augmenting −2 first, then rerouting via the
        // residual arc 2→1 at cost 15: −2 + 15 = 13.
        assert_eq!(out.cost, 13);
        assert_eq!(g.flow_on(e_direct), 1);
    }

    #[test]
    fn max_profit_stops_at_zero_cost() {
        // One profitable path (−3) and one costly path (+2): profit solver
        // pushes only the first.
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 1, 1, -3).unwrap();
        g.add_edge(0, 1, 1, 2).unwrap();
        g.add_edge(1, 2, 2, 0).unwrap();
        let out = g.max_profit_flow(0, 2).unwrap();
        assert_eq!(out.flow, 1);
        assert_eq!(out.cost, -3);
    }

    #[test]
    fn negative_costs_handled_via_bellman_ford_potentials() {
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, 1, -10).unwrap();
        g.add_edge(1, 3, 1, -1).unwrap();
        g.add_edge(0, 2, 1, -2).unwrap();
        g.add_edge(2, 3, 1, -2).unwrap();
        let out = g.min_cost_max_flow(0, 3).unwrap();
        assert_eq!(out.flow, 2);
        assert_eq!(out.cost, -15);
    }

    #[test]
    fn disconnected_sink_gives_zero_flow() {
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 1, 1, 1).unwrap();
        let out = g.min_cost_max_flow(0, 2).unwrap();
        assert_eq!(out, FlowOutcome { flow: 0, cost: 0 });
    }

    #[test]
    fn validation_errors() {
        let mut g = FlowNetwork::new(2);
        assert_eq!(
            g.add_edge(0, 5, 1, 0).unwrap_err(),
            NetflowError::NodeOutOfRange { node: 5, nodes: 2 }
        );
        assert_eq!(g.add_edge(0, 1, -1, 0).unwrap_err(), NetflowError::NegativeCapacity);
        assert!(g.min_cost_max_flow(0, 9).is_err());
    }

    #[test]
    fn add_node_grows_graph() {
        let mut g = FlowNetwork::new(0);
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b, 1, 1).unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn flow_on_unsaturated_edge_is_partial() {
        let mut g = FlowNetwork::new(2);
        let e = g.add_edge(0, 1, 10, 1).unwrap();
        let out = g.min_cost_max_flow(0, 1).unwrap();
        assert_eq!(out.flow, 10);
        assert_eq!(g.flow_on(e), 10);
    }
}
