//! Min-cost-flow substrate and exact transportation-problem solver.
//!
//! The paper's Theorem 1 claims the distributed auction reaches the optimum
//! of the social-welfare ILP (1). To *verify* that claim (rather than assume
//! it), this crate provides an independent exact solver: the welfare problem
//! is a transportation problem, which reduces to min-cost flow; we solve it
//! with successive shortest augmenting paths using Johnson potentials.
//!
//! Costs are scaled to integers (fixed-point at 10⁻⁹) so optimality is exact
//! for the scaled instance and immune to float-comparison pitfalls.
//!
//! # Examples
//!
//! ```
//! use p2p_netflow::{TransportationProblem, solve_max_profit};
//!
//! // Two requests, one provider with capacity 1: only the better edge wins.
//! let problem = TransportationProblem::new(
//!     vec![1],                                  // provider capacities
//!     vec![vec![(0, 5.0)], vec![(0, 3.0)]],     // per-request (provider, profit)
//! ).unwrap();
//! let sol = solve_max_profit(&problem).unwrap();
//! assert_eq!(sol.assignment, vec![Some(0), None]);
//! assert!((sol.total_profit - 5.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod transportation;

pub use graph::{EdgeId, FlowNetwork, FlowOutcome, NetflowError};
pub use transportation::{solve_max_profit, TransportationProblem, TransportationSolution};
