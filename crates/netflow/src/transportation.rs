//! Exact max-profit transportation solver.
//!
//! The paper's welfare ILP (1) is a transportation problem: *sources* are
//! requests `(I_d, c)` with supply 1, *sinks* are providers with capacity
//! `B(u)`, and edge profit is `v^{(c)}(d) − w_{u→d}`. This module reduces it
//! to min-cost flow on the scaled-integer network and recovers the optimal
//! binary assignment — the ground truth against which the distributed
//! auction is verified (Theorem 1).

use crate::graph::{EdgeId, FlowNetwork, NetflowError};

/// Fixed-point scale applied to `f64` profits before integer flow solving.
const PROFIT_SCALE: f64 = 1e9;

/// A transportation-problem instance in profit form.
///
/// # Examples
///
/// ```
/// use p2p_netflow::TransportationProblem;
/// let p = TransportationProblem::new(vec![2], vec![vec![(0, 1.0)]]).unwrap();
/// assert_eq!(p.provider_count(), 1);
/// assert_eq!(p.request_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TransportationProblem {
    provider_caps: Vec<u32>,
    /// Per request: candidate `(provider index, profit)` edges.
    edges: Vec<Vec<(usize, f64)>>,
}

impl TransportationProblem {
    /// Creates an instance from provider capacities and per-request edges.
    ///
    /// # Errors
    ///
    /// Returns [`NetflowError::NodeOutOfRange`] if an edge references a
    /// provider index `>= provider_caps.len()`.
    pub fn new(
        provider_caps: Vec<u32>,
        edges: Vec<Vec<(usize, f64)>>,
    ) -> Result<Self, NetflowError> {
        let n = provider_caps.len();
        for req in &edges {
            for &(p, _) in req {
                if p >= n {
                    return Err(NetflowError::NodeOutOfRange { node: p, nodes: n });
                }
            }
        }
        Ok(TransportationProblem { provider_caps, edges })
    }

    /// Number of providers (sinks).
    pub fn provider_count(&self) -> usize {
        self.provider_caps.len()
    }

    /// Number of requests (sources).
    pub fn request_count(&self) -> usize {
        self.edges.len()
    }

    /// Capacity of one provider.
    ///
    /// # Panics
    ///
    /// Panics if `provider` is out of range.
    pub fn capacity(&self, provider: usize) -> u32 {
        self.provider_caps[provider]
    }

    /// The candidate edges of one request.
    ///
    /// # Panics
    ///
    /// Panics if `request` is out of range.
    pub fn request_edges(&self, request: usize) -> &[(usize, f64)] {
        &self.edges[request]
    }
}

/// The optimal solution of a transportation instance.
#[derive(Debug, Clone, PartialEq)]
pub struct TransportationSolution {
    /// Per request: the chosen provider, or `None` if leaving the request
    /// unserved is optimal (all its edges have negative profit or capacity
    /// is better spent elsewhere).
    pub assignment: Vec<Option<usize>>,
    /// Total profit of the assignment (the optimal social welfare).
    pub total_profit: f64,
}

/// Solves the transportation problem for maximum total profit.
///
/// Builds `source → request (cap 1) → provider (cap 1 per edge, cost
/// −profit) → sink (cap B)` and pushes flow only along profitable paths.
///
/// # Errors
///
/// Returns [`NetflowError`] if the instance is malformed (cannot happen for
/// instances built through [`TransportationProblem::new`]).
///
/// # Examples
///
/// ```
/// use p2p_netflow::{TransportationProblem, solve_max_profit};
///
/// // Capacity 1: assigning request 0 (profit 2) and dropping request 1
/// // (profit 1) is optimal.
/// let p = TransportationProblem::new(
///     vec![1],
///     vec![vec![(0, 2.0)], vec![(0, 1.0)]],
/// ).unwrap();
/// let sol = solve_max_profit(&p).unwrap();
/// assert_eq!(sol.assignment, vec![Some(0), None]);
/// ```
pub fn solve_max_profit(
    problem: &TransportationProblem,
) -> Result<TransportationSolution, NetflowError> {
    let r = problem.request_count();
    let p = problem.provider_count();
    // Node layout: 0 = source, 1..=r = requests, r+1..=r+p = providers,
    // r+p+1 = sink.
    let source = 0;
    let sink = r + p + 1;
    let mut g = FlowNetwork::new(r + p + 2);
    let req_node = |i: usize| 1 + i;
    let prov_node = |j: usize| 1 + r + j;

    for i in 0..r {
        g.add_edge(source, req_node(i), 1, 0)?;
    }
    let mut edge_ids: Vec<Vec<(usize, EdgeId)>> = Vec::with_capacity(r);
    for i in 0..r {
        let mut ids = Vec::with_capacity(problem.request_edges(i).len());
        for &(j, profit) in problem.request_edges(i) {
            let cost = -(profit * PROFIT_SCALE).round() as i64;
            let id = g.add_edge(req_node(i), prov_node(j), 1, cost)?;
            ids.push((j, id));
        }
        edge_ids.push(ids);
    }
    for j in 0..p {
        g.add_edge(prov_node(j), sink, i64::from(problem.capacity(j)), 0)?;
    }

    let outcome = g.max_profit_flow(source, sink)?;

    let mut assignment = vec![None; r];
    for (i, ids) in edge_ids.iter().enumerate() {
        for &(j, id) in ids {
            if g.flow_on(id) > 0 {
                assignment[i] = Some(j);
                break;
            }
        }
    }
    Ok(TransportationSolution { assignment, total_profit: -(outcome.cost as f64) / PROFIT_SCALE })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefers_high_profit_edges() {
        let p = TransportationProblem::new(
            vec![1, 1],
            vec![vec![(0, 5.0), (1, 3.0)], vec![(0, 4.0), (1, 1.0)]],
        )
        .unwrap();
        let sol = solve_max_profit(&p).unwrap();
        // Optimal: req0→prov1 (3) + req1→prov0 (4) = 7, beating
        // req0→prov0 (5) + req1→prov1 (1) = 6.
        assert_eq!(sol.assignment, vec![Some(1), Some(0)]);
        assert!((sol.total_profit - 7.0).abs() < 1e-9);
    }

    #[test]
    fn negative_profit_edges_left_unassigned() {
        let p = TransportationProblem::new(vec![4], vec![vec![(0, -1.0)], vec![(0, 2.0)]]).unwrap();
        let sol = solve_max_profit(&p).unwrap();
        assert_eq!(sol.assignment, vec![None, Some(0)]);
        assert!((sol.total_profit - 2.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_limits_assignments() {
        let p = TransportationProblem::new(
            vec![2],
            vec![vec![(0, 3.0)], vec![(0, 2.0)], vec![(0, 1.0)]],
        )
        .unwrap();
        let sol = solve_max_profit(&p).unwrap();
        let assigned = sol.assignment.iter().filter(|a| a.is_some()).count();
        assert_eq!(assigned, 2);
        assert!((sol.total_profit - 5.0).abs() < 1e-9);
        // The lowest-profit request is the one dropped.
        assert_eq!(sol.assignment[2], None);
    }

    #[test]
    fn empty_instances() {
        let p = TransportationProblem::new(vec![], vec![]).unwrap();
        let sol = solve_max_profit(&p).unwrap();
        assert!(sol.assignment.is_empty());
        assert_eq!(sol.total_profit, 0.0);

        let p = TransportationProblem::new(vec![1], vec![vec![], vec![]]).unwrap();
        let sol = solve_max_profit(&p).unwrap();
        assert_eq!(sol.assignment, vec![None, None]);
    }

    #[test]
    fn malformed_edge_rejected() {
        assert!(TransportationProblem::new(vec![1], vec![vec![(3, 1.0)]]).is_err());
    }

    #[test]
    fn tie_breaking_still_reaches_optimal_value() {
        // Two identical requests, capacity one: either assignment is
        // optimal; the value must be exactly one edge's profit.
        let p = TransportationProblem::new(vec![1], vec![vec![(0, 2.5)], vec![(0, 2.5)]]).unwrap();
        let sol = solve_max_profit(&p).unwrap();
        assert!((sol.total_profit - 2.5).abs() < 1e-9);
        let assigned = sol.assignment.iter().filter(|a| a.is_some()).count();
        assert_eq!(assigned, 1);
    }

    #[test]
    fn zero_capacity_provider_unusable() {
        let p = TransportationProblem::new(vec![0], vec![vec![(0, 10.0)]]).unwrap();
        let sol = solve_max_profit(&p).unwrap();
        assert_eq!(sol.assignment, vec![None]);
        assert_eq!(sol.total_profit, 0.0);
    }

    #[test]
    fn brute_force_agreement_on_small_instances() {
        // Exhaustive check on a 3-request, 2-provider instance.
        let caps = vec![1u32, 2];
        let edges =
            vec![vec![(0usize, 4.0), (1usize, 3.5)], vec![(0, 2.0), (1, 2.2)], vec![(0, 1.0)]];
        let p = TransportationProblem::new(caps.clone(), edges.clone()).unwrap();
        let sol = solve_max_profit(&p).unwrap();

        // Brute force over all assignments (including None).
        let mut best = 0.0f64;
        let options: Vec<Vec<Option<(usize, f64)>>> = edges
            .iter()
            .map(|es| {
                let mut v: Vec<Option<(usize, f64)>> =
                    es.iter().map(|&(j, pr)| Some((j, pr))).collect();
                v.push(None);
                v
            })
            .collect();
        for a in &options[0] {
            for b in &options[1] {
                for c in &options[2] {
                    let mut used = vec![0u32; caps.len()];
                    let mut profit = 0.0;
                    let mut ok = true;
                    for choice in [a, b, c].into_iter().flatten() {
                        let (j, pr) = *choice;
                        used[j] += 1;
                        if used[j] > caps[j] {
                            ok = false;
                        }
                        profit += pr;
                    }
                    if ok {
                        best = best.max(profit);
                    }
                }
            }
        }
        assert!((sol.total_profit - best).abs() < 1e-9, "{} vs {}", sol.total_profit, best);
    }
}
