//! Property tests: the transportation solver against brute-force
//! enumeration on small instances, and structural invariants at any size.

use p2p_netflow::{solve_max_profit, TransportationProblem};
use proptest::prelude::*;

/// Small random transportation instance (brute-forceable).
fn arb_small() -> impl Strategy<Value = TransportationProblem> {
    let caps = prop::collection::vec(0u32..3, 1..4);
    caps.prop_flat_map(|caps| {
        let p = caps.len();
        let edge = (0..p, -5.0f64..8.0);
        let request = prop::collection::vec(edge, 0..=p);
        let requests = prop::collection::vec(request, 0..6);
        (Just(caps), requests).prop_map(|(caps, reqs)| {
            let edges = reqs
                .into_iter()
                .map(|r| {
                    let mut seen = std::collections::HashSet::new();
                    r.into_iter().filter(|&(u, _)| seen.insert(u)).collect::<Vec<_>>()
                })
                .collect();
            TransportationProblem::new(caps, edges).expect("indices in range")
        })
    })
}

/// Exhaustive assignment enumeration (requests ≤ 6, providers ≤ 3).
fn brute_force(p: &TransportationProblem) -> f64 {
    fn rec(p: &TransportationProblem, r: usize, used: &mut [u32], acc: f64, best: &mut f64) {
        if r == p.request_count() {
            *best = best.max(acc);
            return;
        }
        // Option: leave unassigned.
        rec(p, r + 1, used, acc, best);
        let edges: Vec<(usize, f64)> = p.request_edges(r).to_vec();
        for (u, profit) in edges {
            if used[u] < p.capacity(u) {
                used[u] += 1;
                rec(p, r + 1, used, acc + profit, best);
                used[u] -= 1;
            }
        }
    }
    let mut best = 0.0;
    let mut used = vec![0u32; p.provider_count()];
    rec(p, 0, &mut used, 0.0, &mut best);
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn solver_matches_brute_force(p in arb_small()) {
        let sol = solve_max_profit(&p).unwrap();
        let exact = brute_force(&p);
        prop_assert!((sol.total_profit - exact).abs() < 1e-6,
            "solver {} vs brute force {exact}", sol.total_profit);
    }

    #[test]
    fn solution_is_always_feasible(p in arb_small()) {
        let sol = solve_max_profit(&p).unwrap();
        let mut used = vec![0u32; p.provider_count()];
        for (r, a) in sol.assignment.iter().enumerate() {
            if let Some(u) = a {
                used[*u] += 1;
                prop_assert!(p.request_edges(r).iter().any(|&(e, _)| e == *u),
                    "assignment uses a non-existent edge");
            }
        }
        for (u, &load) in used.iter().enumerate() {
            prop_assert!(load <= p.capacity(u));
        }
    }

    #[test]
    fn profit_is_never_negative(p in arb_small()) {
        // Leaving everything unassigned is feasible, so the optimum is >= 0.
        let sol = solve_max_profit(&p).unwrap();
        prop_assert!(sol.total_profit >= -1e-9);
    }

    #[test]
    fn assignment_profit_sums_to_reported_total(p in arb_small()) {
        let sol = solve_max_profit(&p).unwrap();
        let recomputed: f64 = sol
            .assignment
            .iter()
            .enumerate()
            .filter_map(|(r, a)| {
                a.map(|u| {
                    p.request_edges(r)
                        .iter()
                        .find(|&&(e, _)| e == u)
                        .map(|&(_, profit)| profit)
                        .unwrap()
                })
            })
            .sum();
        prop_assert!((recomputed - sol.total_profit).abs() < 1e-6);
    }
}
