//! The latency-enforcing message router.
//!
//! A single router task receives outgoing messages from all peer tasks,
//! holds each one for its link latency, and then delivers it to the
//! destination mailbox — the wall-clock analogue of the discrete-event
//! engine's delayed delivery, and the stand-in for the paper's real
//! network between blade servers. The router runs as a job on the caller's
//! [`crate::WorkerPool`], so repeated runs reuse its thread like any other
//! worker.

use crate::pool::Quiescence;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Identifies a mailbox (provider or bidder task).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

struct InFlight<M> {
    deliver_at: Instant,
    seq: u64,
    to: NodeId,
    msg: M,
}

impl<M> PartialEq for InFlight<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<M> Eq for InFlight<M> {}
impl<M> PartialOrd for InFlight<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for InFlight<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.deliver_at.cmp(&other.deliver_at).then_with(|| self.seq.cmp(&other.seq))
    }
}

/// An addressed message in transit: `(from, to, payload)`.
type Envelope<M> = (NodeId, NodeId, M);

/// A sending handle bound to one source node.
pub struct Handle<M> {
    from: NodeId,
    tx: Sender<Envelope<M>>,
    pending: Arc<Quiescence>,
}

impl<M> Handle<M> {
    /// Sends `msg` to `to`; it will arrive after the link latency.
    pub fn send(&self, to: NodeId, msg: M) {
        self.pending.add(1);
        // A send can only fail after shutdown, when the count no longer
        // matters.
        if self.tx.send((self.from, to, msg)).is_err() {
            self.pending.done();
        }
    }
}

/// The router: owns the in-flight heap and the delivery task.
pub struct Router<M: Send + 'static> {
    tx: Sender<Envelope<M>>,
    pending: Arc<Quiescence>,
    delivered: Arc<AtomicU64>,
}

impl<M: Send + 'static> Router<M> {
    /// Starts the router delivering into `mailboxes` with per-pair
    /// `latency`, running its loop via `spawn` (typically
    /// [`crate::WorkerPool::execute`]; tests may use a plain thread).
    pub fn start(
        mailboxes: Vec<Sender<M>>,
        pending: Arc<Quiescence>,
        latency: impl Fn(NodeId, NodeId) -> Duration + Send + 'static,
        spawn: impl FnOnce(Box<dyn FnOnce() + Send + 'static>),
    ) -> Self {
        let (tx, rx): (Sender<Envelope<M>>, Receiver<Envelope<M>>) = unbounded();
        let delivered = Arc::new(AtomicU64::new(0));
        let delivered2 = delivered.clone();
        let pending2 = pending.clone();
        spawn(Box::new(move || {
            let mut heap: BinaryHeap<Reverse<InFlight<M>>> = BinaryHeap::new();
            let mut seq = 0u64;
            loop {
                // Wait for either the next due delivery or a new message.
                let timeout = heap
                    .peek()
                    .map(|Reverse(f)| f.deliver_at.saturating_duration_since(Instant::now()))
                    .unwrap_or(Duration::from_millis(50));
                match rx.recv_timeout(timeout) {
                    Ok((from, to, msg)) => {
                        let deliver_at = Instant::now() + latency(from, to);
                        heap.push(Reverse(InFlight { deliver_at, seq, to, msg }));
                        seq += 1;
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break,
                }
                let now = Instant::now();
                while heap.peek().is_some_and(|Reverse(f)| f.deliver_at <= now) {
                    let Reverse(f) = heap.pop().expect("peeked");
                    delivered2.fetch_add(1, Ordering::SeqCst);
                    if mailboxes[f.to.0].send(f.msg).is_err() {
                        // Destination already stopped: drop and release the
                        // pending count so quiescence can still be reached.
                        pending2.done();
                    }
                }
            }
        }));
        Router { tx, pending, delivered }
    }

    /// A sending handle for messages originating at `from`.
    pub fn handle(&self, from: NodeId) -> Handle<M> {
        Handle { from, tx: self.tx.clone(), pending: self.pending.clone() }
    }

    /// Injects a message from "outside the network" (zero source latency —
    /// the latency function still applies with `from == to`'s semantics).
    pub fn inject(&self, to: NodeId, msg: M) {
        self.pending.add(1);
        if self.tx.send((to, to, msg)).is_err() {
            self.pending.done();
        }
    }

    /// Total messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::SeqCst)
    }

    /// Broadcasts the stop value to every mailbox. The delivery loop itself
    /// ends when the last sending handle (including this router) is
    /// dropped and its channel disconnects.
    pub fn shutdown<S>(&self, mailboxes: &[Sender<S>])
    where
        S: StopMessage,
    {
        for m in mailboxes {
            let _ = m.send(S::stop());
        }
    }
}

/// Messages that have a terminal "stop" value.
pub trait StopMessage {
    /// The stop value.
    fn stop() -> Self;
}

impl StopMessage for crate::RtMsg {
    fn stop() -> Self {
        crate::RtMsg::Stop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    impl StopMessage for &'static str {
        fn stop() -> Self {
            "stop"
        }
    }

    fn thread_spawn(job: Box<dyn FnOnce() + Send + 'static>) {
        std::thread::spawn(job);
    }

    #[test]
    fn delivers_in_latency_order() {
        let (tx_a, rx_a) = unbounded();
        let pending = Arc::new(Quiescence::new());
        // One mailbox; two messages with different latencies: the slower
        // one sent first must arrive second.
        let router = Router::start(
            vec![tx_a],
            pending.clone(),
            |from, _| {
                if from == NodeId(7) {
                    Duration::from_millis(60)
                } else {
                    Duration::from_millis(5)
                }
            },
            thread_spawn,
        );
        router.handle(NodeId(7)).send(NodeId(0), "slow");
        std::thread::sleep(Duration::from_millis(1));
        router.handle(NodeId(1)).send(NodeId(0), "fast");
        let first = rx_a.recv_timeout(Duration::from_secs(2)).unwrap();
        let second = rx_a.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(first, "fast");
        assert_eq!(second, "slow");
        assert_eq!(router.delivered(), 2);
    }

    #[test]
    fn inject_reaches_destination() {
        let (tx, rx) = unbounded();
        let pending = Arc::new(Quiescence::new());
        let router =
            Router::start(vec![tx], pending.clone(), |_, _| Duration::from_millis(1), thread_spawn);
        router.inject(NodeId(0), "hello");
        assert_eq!(rx.recv_timeout(Duration::from_secs(2)).unwrap(), "hello");
        assert_eq!(pending.pending(), 1, "handler has not acked yet");
    }

    #[test]
    fn dropped_mailbox_releases_pending() {
        let (tx, rx) = unbounded::<&'static str>();
        drop(rx);
        let pending = Arc::new(Quiescence::new());
        let router =
            Router::start(vec![tx], pending.clone(), |_, _| Duration::from_millis(1), thread_spawn);
        router.inject(NodeId(0), "lost");
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(pending.pending(), 0, "undeliverable message acked by router");
    }
}
