//! Multi-threaded actor runtime: a faithful miniature of the paper's
//! emulator.
//!
//! The paper evaluates on "an efficient multi-threaded P2P VoD system …
//! each peer in the system is emulated by one process; real network traffic
//! is sent between peers". This crate reproduces that execution style on
//! one machine: every auctioneer (provider) and every bidder (downstream
//! peer) runs as an actor with a crossbeam mailbox, and a central
//! [`router`] task delivers messages after a wall-clock latency derived
//! from the link cost — so bids, rejections, evictions and price updates
//! genuinely race, exactly as in a deployment.
//!
//! Actors execute on a persistent [`WorkerPool`]: threads are spawned the
//! first time a swarm of a given size runs and are *parked and reused* by
//! every later run (per-run spawn/join of the whole swarm is gone), and
//! quiescence is detected by condvar signaling ([`pool::Quiescence`])
//! instead of a sleep-polling loop. A panicking peer no longer hangs the
//! run until the wall timeout: the panic is caught, poisons the run, and is
//! propagated as [`P2pError::WorkerPanicked`] with the panic message.
//!
//! The bidder and auctioneer logic lives in the transport-agnostic state
//! machines of [`p2p_core::protocol`] (`BidderNode` / `AuctioneerNode`) —
//! the very same step functions the synchronous, discrete-event and swarm
//! engines drive — and this crate is a thin thread/mailbox shell over
//! them, which is the point: Theorem 1's optimality is preserved under
//! real concurrency, and the integration tests assert it.
//!
//! One caveat inherited from the paper's ε = 0 wait rule: a bid can raise a
//! price to *exactly* another request's indifference point (a dynamically
//! created tie), and under racy message orders that request then waits
//! forever — the threaded tests therefore assert the Bertsekas `n·ε` bound
//! for ε > 0, the configuration a real deployment would use.
//!
//! After price convergence the winning chunks are "transmitted" as
//! [`bytes::Bytes`] payloads through the same router, so a run also reports
//! delivered traffic.
//!
//! # Examples
//!
//! ```
//! use p2p_runtime::{ThreadedAuction, ThreadedConfig};
//! use p2p_core::WelfareInstance;
//! use p2p_types::*;
//! use std::time::Duration;
//!
//! let mut b = WelfareInstance::builder();
//! let u = b.add_provider(PeerId::new(9), 1);
//! let r = b.add_request(RequestId::new(PeerId::new(0), ChunkId::new(VideoId::new(0), 0)));
//! b.add_edge(r, u, Valuation::new(4.0), Cost::new(1.0)).unwrap();
//! let inst = b.build().unwrap();
//!
//! let auction = ThreadedAuction::new(ThreadedConfig::fast_test());
//! let out = auction.run(&inst, |_, _| Duration::from_micros(200)).unwrap();
//! assert_eq!(out.assignment.assigned_count(), 1);
//! assert!(out.bytes_delivered > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;
pub mod router;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use p2p_core::bidder::EdgeView;
use p2p_core::messages::AuctionMsg;
use p2p_core::protocol::{AuctioneerNode, BidderNode, LearnPolicy};
use p2p_core::solution::{Assignment, DualSolution};
use p2p_core::WelfareInstance;
use p2p_types::{P2pError, PeerId, Result};
pub use pool::WorkerPool;
use pool::{panic_message, JobHandle, Quiescence, Quiet};
use router::{NodeId, Router};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of the threaded execution.
#[derive(Debug, Clone, Copy)]
pub struct ThreadedConfig {
    /// Bid increment ε (0 = paper rule).
    pub epsilon: f64,
    /// Simulated chunk payload size in bytes.
    pub chunk_bytes: usize,
    /// Abort if quiescence is not reached within this wall-clock budget.
    pub wall_timeout: Duration,
    /// Fault injection for chaos/regression tests: the given provider's
    /// actor panics on the first bid it receives. The run must then fail
    /// fast with [`P2pError::WorkerPanicked`] rather than hang until
    /// `wall_timeout`.
    pub inject_bid_panic: Option<usize>,
}

impl ThreadedConfig {
    /// Settings for unit tests: tiny payloads, 30 s timeout.
    pub fn fast_test() -> Self {
        ThreadedConfig {
            epsilon: 0.0,
            chunk_bytes: 64,
            wall_timeout: Duration::from_secs(30),
            inject_bid_panic: None,
        }
    }

    /// Paper-like settings: 8 KB chunks.
    pub fn paper() -> Self {
        ThreadedConfig {
            epsilon: 0.0,
            chunk_bytes: 8_000,
            wall_timeout: Duration::from_secs(120),
            inject_bid_panic: None,
        }
    }
}

/// Result of a threaded auction run.
#[derive(Debug, Clone)]
pub struct ThreadedOutcome {
    /// The converged primal solution.
    pub assignment: Assignment,
    /// The converged dual prices.
    pub duals: DualSolution,
    /// Protocol messages routed (bids, outcomes, price updates).
    pub messages: u64,
    /// Bytes of chunk payload delivered after convergence.
    pub bytes_delivered: u64,
    /// Wall-clock time to convergence (excludes payload phase).
    pub convergence: Duration,
}

/// Runtime-internal message: protocol traffic plus control and payload.
#[derive(Debug, Clone)]
enum RtMsg {
    /// Wake a bidder to start bidding for a request (local index).
    Start(usize),
    /// Auction protocol message.
    Proto(AuctionMsg),
    /// Instruct a provider to ship payloads to its winners.
    TransmitAll,
    /// A chunk payload arriving at a bidder.
    Payload {
        #[allow(dead_code)]
        request: usize,
        body: Bytes,
    },
    /// Terminate the actor and report state.
    Stop,
}

/// The threaded auction engine. Owns a persistent [`WorkerPool`], so
/// repeated [`run`](ThreadedAuction::run)s of similar swarms reuse the
/// same OS threads.
pub struct ThreadedAuction {
    config: ThreadedConfig,
    pool: WorkerPool,
}

impl ThreadedAuction {
    /// Creates the engine with a fresh worker pool.
    pub fn new(config: ThreadedConfig) -> Self {
        ThreadedAuction { config, pool: WorkerPool::new() }
    }

    /// Creates the engine sharing an existing pool (e.g. one pool across
    /// every per-slot auction of a long simulation).
    pub fn with_pool(config: ThreadedConfig, pool: WorkerPool) -> Self {
        ThreadedAuction { config, pool }
    }

    /// The engine's worker pool (its `spawned()` count stays flat across
    /// repeated runs — the reuse guarantee the tests assert).
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Runs the auction with one pooled actor per provider and per
    /// downstream peer, delivering messages with `latency(from, to)`
    /// wall-clock delay.
    ///
    /// # Errors
    ///
    /// * [`P2pError::Timeout`] — the wall-clock budget expired before
    ///   quiescence (reports elapsed time and messages delivered);
    /// * [`P2pError::WorkerPanicked`] — a peer actor panicked; the panic
    ///   message is propagated instead of hanging the run.
    pub fn run(
        &self,
        instance: &WelfareInstance,
        latency: impl Fn(PeerId, PeerId) -> Duration + Send + Sync + 'static,
    ) -> Result<ThreadedOutcome> {
        let provider_count = instance.provider_count();
        let request_count = instance.request_count();

        // Bidder nodes: one per distinct downstream peer.
        let mut bidder_peers: Vec<PeerId> = Vec::new();
        let mut bidder_of_request: Vec<usize> = Vec::with_capacity(request_count);
        for r in instance.requests() {
            let d = r.id.downstream();
            let idx = match bidder_peers.iter().position(|&p| p == d) {
                Some(i) => i,
                None => {
                    bidder_peers.push(d);
                    bidder_peers.len() - 1
                }
            };
            bidder_of_request.push(idx);
        }
        let bidder_count = bidder_peers.len();
        let provider_peers: Vec<PeerId> = instance.providers().iter().map(|p| p.peer).collect();

        // Mailboxes.
        let mut senders: Vec<Sender<RtMsg>> = Vec::new();
        let mut receivers: Vec<Receiver<RtMsg>> = Vec::new();
        for _ in 0..provider_count + bidder_count {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let provider_node = |u: usize| NodeId(u);
        let bidder_node = move |b: usize| NodeId(provider_count + b);

        // Pending-work counter for quiescence detection: incremented per
        // enqueued message, decremented after a message is fully handled
        // (any sends it triggered have already been counted). Condvar-backed,
        // so the coordinator below sleeps instead of polling.
        let pending = Arc::new(Quiescence::new());
        let peer_of_node = {
            let provider_peers = provider_peers.clone();
            let bidder_peers = bidder_peers.clone();
            move |n: NodeId| {
                if n.0 < provider_count {
                    provider_peers[n.0]
                } else {
                    bidder_peers[n.0 - provider_count]
                }
            }
        };
        let mut handles: Vec<JobHandle> = Vec::new();
        let router = Router::start(
            senders.clone(),
            pending.clone(),
            move |from, to| latency(peer_of_node(from), peer_of_node(to)),
            |job| {
                // The router gets the same poison-on-panic treatment as the
                // actors: a dead router would otherwise strand every
                // in-flight message and hang the run until the wall timeout.
                let pending = pending.clone();
                handles.push(self.pool.execute(move || {
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
                        pending.poison(panic_message(payload));
                    }
                }));
            },
        );

        // Per-provider listener lists (bidder requests with an edge to it).
        let mut listeners: Vec<Vec<usize>> = vec![Vec::new(); provider_count];
        for (r, req) in instance.requests().iter().enumerate() {
            for e in &req.edges {
                listeners[e.provider].push(r);
            }
        }

        // Spawns an actor body on the pool, poisoning the run if it panics
        // so the coordinator wakes immediately instead of timing out.
        let spawn_actor = {
            let pending = pending.clone();
            move |handles: &mut Vec<JobHandle>, body: Box<dyn FnOnce() + Send + 'static>| {
                let pending = pending.clone();
                handles.push(self.pool.execute(move || {
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(body)) {
                        pending.poison(panic_message(payload));
                    }
                }));
            }
        };

        // --- Auctioneer actors ---
        let (prov_result_tx, prov_result_rx) = unbounded();
        for u in 0..provider_count {
            let rx = receivers[u].clone();
            let out = router.handle(provider_node(u));
            let result_tx = prov_result_tx.clone();
            let my_listeners = listeners[u].clone();
            let owner = bidder_of_request.clone();
            let capacity = instance.provider(u).capacity.chunks_per_slot();
            let pending = pending.clone();
            let chunk_bytes = self.config.chunk_bytes;
            let inject_panic = self.config.inject_bid_panic == Some(u);
            spawn_actor(
                &mut handles,
                Box::new(move || {
                    let mut state = AuctioneerNode::new(u, capacity);
                    let payload = Bytes::from(vec![0u8; chunk_bytes]);
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            RtMsg::Proto(AuctionMsg::Bid { request, amount, .. }) => {
                                if inject_panic {
                                    panic!("injected fault: provider {u} died handling a bid");
                                }
                                let reply = state.on_bid(request, amount);
                                out.send(bidder_node(owner[request]), RtMsg::Proto(reply.reply));
                                if let Some(notice) = reply.evicted {
                                    if let AuctionMsg::Evicted { request: loser, .. } = notice {
                                        out.send(bidder_node(owner[loser]), RtMsg::Proto(notice));
                                    }
                                }
                                if let Some(price) = reply.price_changed {
                                    for &listener in &my_listeners {
                                        out.send(
                                            bidder_node(owner[listener]),
                                            RtMsg::Proto(AuctionMsg::PriceUpdate {
                                                listener,
                                                provider: u,
                                                price,
                                            }),
                                        );
                                    }
                                }
                                pending.done();
                            }
                            RtMsg::TransmitAll => {
                                let winners: Vec<(usize, f64)> = state.assigned().collect();
                                for (request, _) in winners {
                                    out.send(
                                        bidder_node(owner[request]),
                                        RtMsg::Payload { request, body: payload.clone() },
                                    );
                                }
                                pending.done();
                            }
                            RtMsg::Stop => break,
                            _ => {
                                pending.done();
                            }
                        }
                    }
                    let winners: Vec<usize> = state.assigned().map(|(r, _)| r).collect();
                    let _ = result_tx.send((u, state.price(), winners));
                }),
            );
        }

        // --- Bidder actors ---
        let (bid_result_tx, bid_result_rx) = unbounded();
        for bn in 0..bidder_count {
            let rx = receivers[provider_count + bn].clone();
            let out = router.handle(bidder_node(bn));
            let result_tx = bid_result_tx.clone();
            let pending = pending.clone();
            let epsilon = self.config.epsilon;
            // This bidder's protocol state machines, one per owned request.
            // Monotone learning matches the old actor's behavior: under racy
            // delivery a stale lower price must never overwrite a fresher
            // higher one.
            let mut nodes: Vec<BidderNode> = Vec::new();
            let mut local_of_request = std::collections::HashMap::new();
            for (r, req) in instance.requests().iter().enumerate() {
                if bidder_of_request[r] == bn {
                    let views: Vec<EdgeView> = req
                        .edges
                        .iter()
                        .map(|e| EdgeView { provider: e.provider, utility: e.utility().get() })
                        .collect();
                    local_of_request.insert(r, nodes.len());
                    nodes.push(BidderNode::new(r, views, epsilon, LearnPolicy::Monotone, |p| {
                        if instance.provider(p).capacity.is_zero() {
                            f64::INFINITY
                        } else {
                            0.0
                        }
                    }));
                }
            }
            spawn_actor(
                &mut handles,
                Box::new(move || {
                    let mut nodes = nodes;
                    let mut bytes_received = 0u64;

                    let send_bid = |out: &router::Handle<RtMsg>, bid: AuctionMsg| {
                        if let AuctionMsg::Bid { provider, .. } = bid {
                            out.send(NodeId(provider), RtMsg::Proto(bid));
                        }
                    };

                    while let Ok(msg) = rx.recv() {
                        match msg {
                            RtMsg::Start(local) => {
                                if let Some(bid) = nodes[local].poll() {
                                    send_bid(&out, bid);
                                }
                                pending.done();
                            }
                            RtMsg::Proto(proto) => {
                                let local = match proto {
                                    AuctionMsg::Accepted { request, .. }
                                    | AuctionMsg::Rejected { request, .. }
                                    | AuctionMsg::Evicted { request, .. } => {
                                        Some(local_of_request[&request])
                                    }
                                    AuctionMsg::PriceUpdate { listener, .. } => {
                                        Some(local_of_request[&listener])
                                    }
                                    AuctionMsg::Bid { .. } => {
                                        debug_assert!(false, "bidders never receive bids");
                                        None
                                    }
                                };
                                if let Some(local) = local {
                                    if let Some(bid) = nodes[local].on_message(&proto) {
                                        send_bid(&out, bid);
                                    }
                                }
                                pending.done();
                            }
                            RtMsg::Payload { body, .. } => {
                                bytes_received += body.len() as u64;
                                pending.done();
                            }
                            RtMsg::TransmitAll => {
                                pending.done();
                            }
                            RtMsg::Stop => break,
                        }
                    }
                    let _ = result_tx.send(bytes_received);
                }),
            );
        }
        drop(prov_result_tx);
        drop(bid_result_tx);

        // --- Kick off: one Start per request, routed like any message ---
        let start = Instant::now();
        for (r, &bn) in bidder_of_request.iter().enumerate() {
            let local = {
                // local index: position among this bidder's requests
                let mut idx = 0;
                for (rr, &b2) in bidder_of_request.iter().enumerate() {
                    if rr == r {
                        break;
                    }
                    if b2 == bn {
                        idx += 1;
                    }
                }
                idx
            };
            router.inject(bidder_node(bn), RtMsg::Start(local));
        }

        // Tears a failed run down and surfaces `err`.
        let abort = |err: P2pError,
                     router: Router<RtMsg>,
                     handles: Vec<JobHandle>|
         -> Result<ThreadedOutcome> {
            router.shutdown(&senders);
            drop(router);
            for h in handles {
                let _ = h.join();
            }
            Err(err)
        };

        // --- Wait for auction quiescence (condvar, not sleep-polling) ---
        let deadline = start + self.config.wall_timeout;
        match pending.wait_idle(deadline) {
            Quiet::Idle => {}
            Quiet::Failed(message) => {
                return abort(P2pError::WorkerPanicked { message }, router, handles);
            }
            Quiet::DeadlineExpired => {
                let err =
                    P2pError::Timeout { elapsed: start.elapsed(), messages: router.delivered() };
                return abort(err, router, handles);
            }
        }
        let convergence = start.elapsed();

        // --- Payload phase ---
        for u in 0..provider_count {
            router.inject(provider_node(u), RtMsg::TransmitAll);
        }
        match pending.wait_idle(deadline) {
            // Best-effort payload delivery: a deadline here reports the
            // traffic shipped so far rather than failing the whole run.
            Quiet::Idle | Quiet::DeadlineExpired => {}
            Quiet::Failed(message) => {
                return abort(P2pError::WorkerPanicked { message }, router, handles);
            }
        }

        // --- Collect results ---
        let messages = router.delivered();
        router.shutdown(&senders);
        // Dropping the router releases its channel; the delivery task ends
        // once the last actor handle is gone, and every pooled job reports
        // completion below (propagating any late panic).
        drop(router);
        let mut first_panic: Option<P2pError> = None;
        for h in handles {
            if let Err(e) = h.join() {
                first_panic.get_or_insert(e);
            }
        }
        if let Some(e) = first_panic {
            return Err(e);
        }

        let mut assigned: Vec<Option<usize>> = vec![None; request_count];
        let mut lambda = vec![0.0; provider_count];
        while let Ok((u, price, winners)) = prov_result_rx.recv() {
            lambda[u] = price;
            for r in winners {
                let edge = instance
                    .request(r)
                    .edges
                    .iter()
                    .position(|e| e.provider == u)
                    .expect("winner derives from an edge");
                assigned[r] = Some(edge);
            }
        }
        let mut bytes_delivered = 0;
        while let Ok(b) = bid_result_rx.recv() {
            bytes_delivered += b;
        }

        // Zero-capacity fix-up as in the other engines.
        for (u, spec) in instance.providers().iter().enumerate() {
            if spec.capacity.is_zero() {
                lambda[u] = instance
                    .requests()
                    .iter()
                    .flat_map(|r| r.edges.iter())
                    .filter(|e| e.provider == u)
                    .map(|e| e.utility().get())
                    .fold(0.0_f64, f64::max);
            }
        }

        Ok(ThreadedOutcome {
            assignment: Assignment::new(assigned),
            duals: DualSolution::from_prices(instance, lambda),
            messages,
            bytes_delivered,
            convergence,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_core::{AuctionConfig, SyncAuction};
    use p2p_types::{ChunkId, Cost, RequestId, Valuation, VideoId};

    fn rid(d: u32, c: u32) -> RequestId {
        RequestId::new(PeerId::new(d), ChunkId::new(VideoId::new(0), c))
    }

    fn instance() -> WelfareInstance {
        let mut b = WelfareInstance::builder();
        let u0 = b.add_provider(PeerId::new(100), 1);
        let u1 = b.add_provider(PeerId::new(101), 2);
        for d in 0..4u32 {
            let r = b.add_request(rid(d, 0));
            b.add_edge(
                r,
                u0,
                Valuation::new(6.0 - f64::from(d)),
                Cost::new(0.5 + 0.1 * f64::from(d)),
            )
            .unwrap();
            b.add_edge(
                r,
                u1,
                Valuation::new(6.0 - f64::from(d)),
                Cost::new(2.0 + 0.2 * f64::from(d)),
            )
            .unwrap();
        }
        b.build().unwrap()
    }

    /// Under true concurrency the ε = 0 wait rule can deadlock on
    /// *dynamically created* ties (a bid can set a price that exactly
    /// equals another request's margin), so optimality is asserted for the
    /// robust ε > 0 configuration with Bertsekas' `n·ε` bound — the same
    /// guarantee a real deployment would rely on.
    #[test]
    fn threaded_matches_exact_optimum_within_epsilon_bound() {
        let inst = instance();
        let eps = 0.01;
        let cfg = ThreadedConfig { epsilon: eps, ..ThreadedConfig::fast_test() };
        let out = ThreadedAuction::new(cfg).run(&inst, |_, _| Duration::from_micros(300)).unwrap();
        let exact = inst.optimal_welfare().get();
        let bound = inst.request_count() as f64 * eps + 1e-9;
        assert!(
            out.assignment.welfare(&inst).get() >= exact - bound,
            "threaded {} vs exact {exact}",
            out.assignment.welfare(&inst).get()
        );
        assert!(out.assignment.validate(&inst).is_ok());
        assert!(out.messages > 0);
    }

    /// The paper-faithful ε = 0 execution must always quiesce to a feasible
    /// schedule with monotone prices, even when racing creates ties.
    #[test]
    fn threaded_epsilon_zero_is_feasible_and_quiesces() {
        let inst = instance();
        let out = ThreadedAuction::new(ThreadedConfig::fast_test())
            .run(&inst, |_, _| Duration::from_micros(100))
            .unwrap();
        assert!(out.assignment.validate(&inst).is_ok());
        assert!(out.assignment.welfare(&inst).get() >= 0.0);
        for l in &out.duals.lambda {
            assert!(*l >= 0.0);
        }
    }

    #[test]
    fn threaded_agrees_with_sync_engine_within_bound() {
        let inst = instance();
        let eps = 0.01;
        let sync = SyncAuction::new(AuctionConfig::with_epsilon(eps)).run(&inst).unwrap();
        let cfg = ThreadedConfig { epsilon: eps, ..ThreadedConfig::fast_test() };
        let threaded =
            ThreadedAuction::new(cfg).run(&inst, |_, _| Duration::from_micros(100)).unwrap();
        let bound = inst.request_count() as f64 * eps + 1e-9;
        let exact = inst.optimal_welfare().get();
        assert!(threaded.assignment.welfare(&inst).get() >= exact - bound);
        assert!(sync.assignment.welfare(&inst).get() >= exact - bound);
    }

    #[test]
    fn payloads_are_delivered_to_every_winner() {
        let inst = instance();
        let cfg = ThreadedConfig { chunk_bytes: 128, ..ThreadedConfig::fast_test() };
        let out = ThreadedAuction::new(cfg).run(&inst, |_, _| Duration::from_micros(200)).unwrap();
        assert_eq!(out.bytes_delivered, out.assignment.assigned_count() as u64 * 128);
    }

    #[test]
    fn heterogeneous_latencies_still_converge() {
        let inst = instance();
        let eps = 0.01;
        let cfg = ThreadedConfig { epsilon: eps, ..ThreadedConfig::fast_test() };
        let out = ThreadedAuction::new(cfg)
            .run(&inst, |from, to| {
                Duration::from_micros(100 + u64::from((from.get() * 13 + to.get() * 7) % 900))
            })
            .unwrap();
        let exact = inst.optimal_welfare().get();
        let bound = inst.request_count() as f64 * eps + 1e-9;
        assert!(out.assignment.welfare(&inst).get() >= exact - bound);
    }

    #[test]
    fn empty_instance_finishes_immediately() {
        let inst = WelfareInstance::builder().build().unwrap();
        let out = ThreadedAuction::new(ThreadedConfig::fast_test())
            .run(&inst, |_, _| Duration::from_micros(100))
            .unwrap();
        assert_eq!(out.assignment.assigned_count(), 0);
        assert_eq!(out.bytes_delivered, 0);
    }

    /// The worker-pool guarantee of this PR: the second run of the same
    /// swarm spawns zero new threads — every actor thread of the first run
    /// parked and was reused.
    #[test]
    fn pool_is_reused_across_runs_without_respawning() {
        let inst = instance();
        let auction = ThreadedAuction::new(ThreadedConfig::fast_test());
        let first = auction.run(&inst, |_, _| Duration::from_micros(100)).unwrap();
        let spawned_after_first = auction.pool().spawned();
        assert!(spawned_after_first > 0);
        let second = auction.run(&inst, |_, _| Duration::from_micros(100)).unwrap();
        assert_eq!(
            auction.pool().spawned(),
            spawned_after_first,
            "the second run must reuse every parked worker"
        );
        assert!(first.assignment.validate(&inst).is_ok());
        assert!(second.assignment.validate(&inst).is_ok());
    }

    /// Regression: a panicking peer used to be silently discarded
    /// (`let _ = h.join()`), turning the run into a hang until
    /// `wall_timeout`. It must now fail fast with the panic message.
    #[test]
    fn actor_panic_propagates_fast_instead_of_hanging() {
        let inst = instance();
        let cfg = ThreadedConfig {
            inject_bid_panic: Some(0),
            wall_timeout: Duration::from_secs(60),
            ..ThreadedConfig::fast_test()
        };
        let started = Instant::now();
        let err =
            ThreadedAuction::new(cfg).run(&inst, |_, _| Duration::from_micros(100)).unwrap_err();
        assert!(
            matches!(&err, P2pError::WorkerPanicked { message } if message.contains("injected fault")),
            "got {err:?}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "panic must not degrade into a wall-timeout hang"
        );
        // The engine (and its pool) stays usable after a poisoned run.
        let ok = ThreadedAuction::new(ThreadedConfig::fast_test())
            .run(&inst, |_, _| Duration::from_micros(100))
            .unwrap();
        assert!(ok.assignment.validate(&inst).is_ok());
    }

    /// Regression: the wall-timeout path used to masquerade as
    /// `AuctionDiverged { iterations: 0 }`; it now reports the actual
    /// elapsed time and message progress.
    #[test]
    fn wall_timeout_reports_elapsed_and_progress() {
        let inst = instance();
        let cfg = ThreadedConfig { wall_timeout: Duration::ZERO, ..ThreadedConfig::fast_test() };
        let err =
            ThreadedAuction::new(cfg).run(&inst, |_, _| Duration::from_millis(50)).unwrap_err();
        match err {
            P2pError::Timeout { elapsed, messages } => {
                assert!(elapsed > Duration::ZERO, "elapsed must report the actual wall time");
                // With a zero budget and 50 ms link latencies nothing can
                // have been delivered yet; the field must report that truth.
                assert_eq!(messages, 0);
                let rendered = P2pError::Timeout { elapsed, messages }.to_string();
                assert!(rendered.contains("messages delivered"), "{rendered}");
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
    }
}
