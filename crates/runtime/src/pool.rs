//! The persistent worker pool and the quiescence signal.
//!
//! The first version of [`crate::ThreadedAuction`] spawned one OS thread per
//! peer and joined them all at the end of every run, then busy-waited on an
//! atomic counter in 200 µs sleep slices to detect quiescence. Both patterns
//! are replaced here:
//!
//! * [`WorkerPool`] keeps finished workers parked on their job channel
//!   instead of exiting, so a second run of the same swarm reuses every
//!   thread of the first (`spawned()` exposes the lifetime spawn count, and
//!   the integration tests assert it stays flat across runs). Panics inside
//!   a job are caught and reported through the [`JobHandle`] instead of
//!   being discarded at join time.
//! * [`Quiescence`] is a condvar-backed pending-work counter: the runtime
//!   sleeps on it and is woken exactly when the count strikes zero, a worker
//!   [`poison`](Quiescence::poison)s the run, or the deadline passes — no
//!   polling loop, no latency/CPU trade-off.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, PoisonError};
use std::time::Instant;

/// Renders a panic payload to text (the common `&str`/`String` payloads
/// verbatim, anything else generically).
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "worker panicked with a non-string payload".to_string())
}

/// What a worker sends when a job finishes: `None` on success, the panic
/// message otherwise.
type JobReport = Option<String>;

enum Job {
    Run(Box<dyn FnOnce() + Send + 'static>, Sender<JobReport>),
    Shutdown,
}

struct PoolInner {
    /// Parked workers, each represented by the sender of its job channel.
    idle: Mutex<Vec<Sender<Job>>>,
    /// Threads ever spawned (monotone; flat across runs once warm).
    spawned: AtomicU64,
    /// Jobs executed (monotone) — utilization telemetry for run reports.
    jobs: AtomicU64,
    /// Park events: a worker finished a job and went back idle (monotone).
    parks: AtomicU64,
    /// Live [`WorkerPool`] handles. Tracked explicitly (not via
    /// `Arc::strong_count`, which is racy when two clones drop
    /// concurrently): the drop that brings this to zero is uniquely
    /// responsible for shutting the parked workers down.
    handles: AtomicU64,
    /// Set (under the `idle` lock) when the last pool handle drops, so a
    /// worker finishing a job right then exits instead of parking forever.
    closing: AtomicBool,
}

/// A persistent, on-demand worker pool.
///
/// Threads are spawned lazily when a job arrives and no worker is parked,
/// and they never exit between jobs — they park on their channel and are
/// reused by later [`execute`](WorkerPool::execute) calls (from any clone of
/// the pool). Dropping the last clone shuts the parked workers down.
///
/// # Examples
///
/// ```
/// use p2p_runtime::WorkerPool;
///
/// let pool = WorkerPool::new();
/// let h1 = pool.execute(|| { /* work */ });
/// h1.join().unwrap();
/// // The worker parked instead of exiting: the next job reuses it.
/// let h2 = pool.execute(|| {});
/// h2.join().unwrap();
/// assert_eq!(pool.spawned(), 1);
/// ```
pub struct WorkerPool {
    inner: Arc<PoolInner>,
}

impl Clone for WorkerPool {
    fn clone(&self) -> Self {
        self.inner.handles.fetch_add(1, Ordering::SeqCst);
        WorkerPool { inner: self.inner.clone() }
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerPool {
    /// Creates an empty pool (no threads until the first job).
    pub fn new() -> Self {
        WorkerPool {
            inner: Arc::new(PoolInner {
                idle: Mutex::new(Vec::new()),
                spawned: AtomicU64::new(0),
                jobs: AtomicU64::new(0),
                parks: AtomicU64::new(0),
                handles: AtomicU64::new(1),
                closing: AtomicBool::new(false),
            }),
        }
    }

    /// Runs `job` on a parked worker, spawning a new thread only when none
    /// is idle. The returned handle reports completion and propagates a
    /// panic message if the job panicked.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) -> JobHandle {
        let (done_tx, done_rx) = unbounded();
        let mut packed = Job::Run(Box::new(job), done_tx);
        loop {
            let slot = self.inner.idle.lock().pop();
            match slot {
                Some(tx) => match tx.send(packed) {
                    Ok(()) => break,
                    // The worker exited (pool raced with shutdown); try the
                    // next idle worker or spawn.
                    Err(e) => packed = e.0,
                },
                None => {
                    self.spawn_worker(packed);
                    break;
                }
            }
        }
        JobHandle { rx: done_rx }
    }

    /// Total worker threads ever spawned by this pool.
    pub fn spawned(&self) -> u64 {
        self.inner.spawned.load(Ordering::SeqCst)
    }

    /// Total jobs executed by this pool (monotone across runs).
    pub fn jobs_executed(&self) -> u64 {
        self.inner.jobs.load(Ordering::SeqCst)
    }

    /// Total park events — a worker finished a job and re-registered idle.
    /// `jobs_executed − parks` is the number of jobs that ended without a
    /// re-park (pool shutting down), so the two together describe
    /// utilization over a run.
    pub fn parks(&self) -> u64 {
        self.inner.parks.load(Ordering::SeqCst)
    }

    /// Workers currently parked and ready for reuse.
    pub fn idle(&self) -> usize {
        self.inner.idle.lock().len()
    }

    fn spawn_worker(&self, first: Job) {
        let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();
        tx.send(first).expect("fresh channel accepts its first job");
        let weak = Arc::downgrade(&self.inner);
        self.inner.spawned.fetch_add(1, Ordering::SeqCst);
        std::thread::spawn(move || {
            while let Ok(job) = rx.recv() {
                let Job::Run(work, done) = job else { break };
                let report = catch_unwind(AssertUnwindSafe(work)).err().map(panic_message);
                // Park (re-register) BEFORE reporting completion, so a
                // caller that joined every handle of a run observes every
                // worker reusable — the reuse guarantee the tests assert.
                let parked = match weak.upgrade() {
                    None => false,
                    Some(inner) => {
                        inner.jobs.fetch_add(1, Ordering::SeqCst);
                        let mut idle = inner.idle.lock();
                        if inner.closing.load(Ordering::SeqCst) {
                            false
                        } else {
                            idle.push(tx.clone());
                            inner.parks.fetch_add(1, Ordering::SeqCst);
                            true
                        }
                    }
                };
                let _ = done.send(report);
                if !parked {
                    break;
                }
            }
        });
    }
}

/// The flat CSR auction engine ([`p2p_core::csr::FlatAuction`]) leases its
/// slice workers through this trait: one shared pool can serve every
/// engine of a process — scenario sweeps, `System` slot loops, benches —
/// and repeated runs spawn zero new threads (a leased worker parks back in
/// the pool when its engine drops).
///
/// # Examples
///
/// ```
/// use p2p_core::csr::{CsrInstance, FlatAuction, WorkerSpawner};
/// use p2p_core::{AuctionConfig, ShardCount, WelfareInstance};
/// use p2p_runtime::WorkerPool;
/// use std::sync::Arc;
///
/// let pool = WorkerPool::new();
/// let spawner: Arc<dyn WorkerSpawner> = Arc::new(pool.clone());
/// let csr = CsrInstance::compile(&WelfareInstance::builder().build().unwrap());
/// let mut engine = FlatAuction::new(AuctionConfig::paper(), ShardCount::Fixed(2))
///     .with_spawner(spawner);
/// assert!(engine.run(&csr).is_ok());
/// ```
impl p2p_core::csr::WorkerSpawner for WorkerPool {
    fn spawn_worker(&self, job: Box<dyn FnOnce() + Send + 'static>) -> p2p_core::csr::WorkerJoin {
        let handle = self.execute(job);
        // The pool parks a worker *before* reporting completion, so once
        // this join returns the thread is guaranteed reusable — the engine
        // calls it when its lease ends.
        Box::new(move || {
            let _ = handle.join();
        })
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Exactly one drop observes the count strike zero, even when the
        // last two clones drop concurrently.
        if self.inner.handles.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last handle: wake every parked worker with a shutdown order.
            // `closing` is set under the same lock workers park under, so no
            // worker can slip into the idle list afterwards.
            let mut idle = self.inner.idle.lock();
            self.inner.closing.store(true, Ordering::SeqCst);
            for tx in idle.drain(..) {
                let _ = tx.send(Job::Shutdown);
            }
        }
    }
}

/// Completion handle for one [`WorkerPool::execute`] job.
pub struct JobHandle {
    rx: Receiver<JobReport>,
}

impl JobHandle {
    /// Waits for the job to finish.
    ///
    /// # Errors
    ///
    /// Returns [`p2p_types::P2pError::WorkerPanicked`] if the job panicked.
    pub fn join(self) -> Result<(), p2p_types::P2pError> {
        match self.rx.recv() {
            Ok(None) => Ok(()),
            Ok(Some(message)) => Err(p2p_types::P2pError::WorkerPanicked { message }),
            Err(_) => Err(p2p_types::P2pError::WorkerPanicked {
                message: "worker disappeared without reporting".to_string(),
            }),
        }
    }
}

/// Outcome of [`Quiescence::wait_idle`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Quiet {
    /// The pending count struck zero.
    Idle,
    /// A worker poisoned the run (e.g. a caught panic); the message is the
    /// poison reason.
    Failed(String),
    /// The deadline passed first.
    DeadlineExpired,
}

#[derive(Debug, Default)]
struct QuiesceState {
    pending: i64,
    failure: Option<String>,
}

/// A condvar-backed pending-work counter: producers
/// [`add`](Quiescence::add), consumers [`done`](Quiescence::done), and the
/// coordinator sleeps in [`wait_idle`](Quiescence::wait_idle) until the
/// count strikes zero, the run is poisoned, or the deadline passes —
/// replacing the former 200 µs sleep busy-wait.
#[derive(Debug, Default)]
pub struct Quiescence {
    state: StdMutex<QuiesceState>,
    cv: Condvar,
}

impl Quiescence {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QuiesceState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers `n` pending units of work.
    pub fn add(&self, n: i64) {
        self.lock().pending += n;
    }

    /// Retires one unit of work, waking waiters when the count strikes
    /// zero.
    pub fn done(&self) {
        let mut st = self.lock();
        st.pending -= 1;
        if st.pending <= 0 {
            self.cv.notify_all();
        }
    }

    /// Marks the run as failed (first failure wins) and wakes waiters.
    pub fn poison(&self, message: impl Into<String>) {
        let mut st = self.lock();
        st.failure.get_or_insert_with(|| message.into());
        self.cv.notify_all();
    }

    /// The current pending count.
    pub fn pending(&self) -> i64 {
        self.lock().pending
    }

    /// Sleeps until the counter is idle, the run is poisoned, or `deadline`
    /// passes — whichever comes first.
    pub fn wait_idle(&self, deadline: Instant) -> Quiet {
        let mut st = self.lock();
        loop {
            if let Some(msg) = st.failure.clone() {
                return Quiet::Failed(msg);
            }
            if st.pending == 0 {
                return Quiet::Idle;
            }
            let now = Instant::now();
            if now >= deadline {
                return Quiet::DeadlineExpired;
            }
            let (guard, _) =
                self.cv.wait_timeout(st, deadline - now).unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn workers_are_reused_not_respawned() {
        let pool = WorkerPool::new();
        for _ in 0..5 {
            pool.execute(|| {}).join().unwrap();
        }
        assert_eq!(pool.spawned(), 1, "sequential jobs share one parked worker");
        assert_eq!(pool.idle(), 1);
        assert_eq!(pool.jobs_executed(), 5);
        assert_eq!(pool.parks(), 5, "every job ended with a re-park");
    }

    #[test]
    fn concurrent_jobs_spawn_to_demand_then_plateau() {
        let pool = WorkerPool::new();
        let run_batch = || {
            let (release_tx, release_rx) = unbounded::<()>();
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let rx = release_rx.clone();
                    pool.execute(move || {
                        let _ = rx.recv();
                    })
                })
                .collect();
            for _ in 0..3 {
                release_tx.send(()).unwrap();
            }
            for h in handles {
                h.join().unwrap();
            }
        };
        run_batch();
        assert_eq!(pool.spawned(), 3, "three concurrent jobs need three workers");
        run_batch();
        assert_eq!(pool.spawned(), 3, "the second batch reuses every parked worker");
        assert_eq!(pool.idle(), 3);
    }

    #[test]
    fn panics_are_caught_and_reported() {
        let pool = WorkerPool::new();
        let err = pool.execute(|| panic!("boom {}", 7)).join().unwrap_err();
        assert!(matches!(
            &err,
            p2p_types::P2pError::WorkerPanicked { message } if message.contains("boom 7")
        ));
        // The worker survives its job's panic and is reused.
        pool.execute(|| {}).join().unwrap();
        assert_eq!(pool.spawned(), 1);
    }

    #[test]
    fn flat_engines_lease_and_return_pool_workers() {
        use p2p_core::csr::{CsrInstance, FlatAuction, WorkerSpawner};
        use p2p_core::{AuctionConfig, ShardCount, WelfareInstance};
        use p2p_types::{ChunkId, Cost, PeerId, RequestId, Valuation, VideoId};

        let mut b = WelfareInstance::builder();
        let us: Vec<_> = (0..4).map(|i| b.add_provider(PeerId::new(100 + i), 2)).collect();
        for d in 0..64u32 {
            let r = b.add_request(RequestId::new(PeerId::new(d), ChunkId::new(VideoId::new(0), d)));
            for (i, &u) in us.iter().enumerate() {
                let v = 2.0 + f64::from(d % 7) * 0.73 + i as f64 * 0.11;
                let w = 0.2 + f64::from(d % 5) * 0.29 + i as f64 * 0.07;
                b.add_edge(r, u, Valuation::new(v), Cost::new(w)).unwrap();
            }
        }
        let inst = b.build().unwrap();
        let csr = CsrInstance::compile(&inst);

        let pool = WorkerPool::new();
        let spawner: Arc<dyn WorkerSpawner> = Arc::new(pool.clone());
        let workers = 3;
        let run_engine = || {
            let mut engine =
                FlatAuction::new(AuctionConfig::with_epsilon(0.01), ShardCount::Fixed(4))
                    .with_workers(workers)
                    .with_spawner(spawner.clone());
            let a = engine.run(&csr).unwrap();
            // Repeated slot auctions on one engine reuse the leased workers.
            let b = engine.run(&csr).unwrap();
            assert_eq!(a.assignment, b.assignment);
            a
        };
        let first = run_engine();
        assert_eq!(pool.spawned() as usize, workers, "one lease spawns min(shards, workers)");
        // The first engine dropped: its workers parked back in the pool, so
        // a second engine (a second "run" of the system) spawns nothing.
        let second = run_engine();
        assert_eq!(pool.spawned() as usize, workers, "repeated runs spawn zero new threads");
        assert_eq!(first.assignment, second.assignment);
        assert_eq!(first.duals, second.duals);
    }

    #[test]
    fn quiescence_signals_zero_without_busy_waiting() {
        let q = Arc::new(Quiescence::new());
        q.add(3);
        let q2 = q.clone();
        let t = std::thread::spawn(move || {
            for _ in 0..3 {
                std::thread::sleep(Duration::from_millis(5));
                q2.done();
            }
        });
        let outcome = q.wait_idle(Instant::now() + Duration::from_secs(5));
        assert_eq!(outcome, Quiet::Idle);
        t.join().unwrap();
    }

    #[test]
    fn quiescence_deadline_expires() {
        let q = Quiescence::new();
        q.add(1);
        let outcome = q.wait_idle(Instant::now() + Duration::from_millis(20));
        assert_eq!(outcome, Quiet::DeadlineExpired);
        assert_eq!(q.pending(), 1);
    }

    #[test]
    fn quiescence_poison_wakes_waiters() {
        let q = Arc::new(Quiescence::new());
        q.add(1);
        let q2 = q.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            q2.poison("injected failure");
        });
        let outcome = q.wait_idle(Instant::now() + Duration::from_secs(5));
        assert_eq!(outcome, Quiet::Failed("injected failure".to_string()));
        t.join().unwrap();
    }
}
