//! The video catalog and derived streaming constants.
//!
//! The paper's evaluation uses "short video files just like most videos on
//! YouTube": ~20 MB per file, 640 kbps playback bitrate, 8 KB chunks (the
//! sub-piece size of PPStream), and 100 videos. Everything else — chunks per
//! second, chunks per video, video duration — is *derived* from those
//! primitive parameters rather than hard-coded.

use p2p_types::{ChunkId, P2pError, SimDuration, VideoId};
use serde::{Deserialize, Serialize};

/// Primitive streaming parameters from which all rates are derived.
///
/// # Examples
///
/// ```
/// use p2p_workload::StreamingParams;
/// let p = StreamingParams::paper_defaults();
/// assert_eq!(p.chunks_per_second(), 10.0);        // 640 kbps / 8 KB
/// assert_eq!(p.chunks_per_video(), 2500);         // 20 MB / 8 KB
/// assert_eq!(p.video_duration().as_secs_f64(), 250.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamingParams {
    /// Size of one chunk in bytes (paper: 8 KB).
    pub chunk_size_bytes: u64,
    /// Playback bitrate in bits per second (paper: 640 kbps).
    pub bitrate_bps: u64,
    /// Size of one video file in bytes (paper: ~20 MB).
    pub video_size_bytes: u64,
}

impl StreamingParams {
    /// The paper's parameters: 8 KB chunks, 640 kbps, 20 MB videos.
    ///
    /// Decimal units (8 KB = 8000 B, 20 MB = 2×10⁷ B) are used so the
    /// paper's derived constants come out exactly: 640 kbps / 8 KB =
    /// 10 chunks/s, hence the 10-second prefetch window is exactly the
    /// "next 100 chunks" of Sec. V, and a video is 2500 chunks ≈ 250 s.
    pub fn paper_defaults() -> Self {
        StreamingParams {
            chunk_size_bytes: 8_000,
            bitrate_bps: 640_000,
            video_size_bytes: 20_000_000,
        }
    }

    /// A scaled-down preset for fast unit tests: 8 KB chunks, 640 kbps,
    /// 1 MB videos (125 chunks = 12.5 s of playback).
    pub fn small_test() -> Self {
        StreamingParams {
            chunk_size_bytes: 8_000,
            bitrate_bps: 640_000,
            video_size_bytes: 1_000_000,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] if any parameter is zero or the
    /// video is smaller than one chunk.
    pub fn validate(&self) -> Result<(), P2pError> {
        if self.chunk_size_bytes == 0 {
            return Err(P2pError::invalid_config("chunk_size_bytes", "must be positive"));
        }
        if self.bitrate_bps == 0 {
            return Err(P2pError::invalid_config("bitrate_bps", "must be positive"));
        }
        if self.video_size_bytes < self.chunk_size_bytes {
            return Err(P2pError::invalid_config("video_size_bytes", "must be at least one chunk"));
        }
        Ok(())
    }

    /// Playback consumption rate in chunks per second
    /// (= bitrate / chunk size).
    pub fn chunks_per_second(&self) -> f64 {
        (self.bitrate_bps as f64 / 8.0) / self.chunk_size_bytes as f64
    }

    /// Number of chunks in one video (= video size / chunk size, rounded up).
    pub fn chunks_per_video(&self) -> u32 {
        self.video_size_bytes.div_ceil(self.chunk_size_bytes) as u32
    }

    /// Wall-clock duration of one video at the playback bitrate.
    pub fn video_duration(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.chunks_per_video() as f64 / self.chunks_per_second())
    }

    /// The number of chunks consumed by playback over `dur`.
    pub fn chunks_in(&self, dur: SimDuration) -> f64 {
        dur.as_secs_f64() * self.chunks_per_second()
    }

    /// Converts a streaming-rate multiplier into an upload budget in chunks
    /// per slot of length `slot_len` (e.g. the paper's seeds upload at 8×
    /// the streaming rate ⇒ `8 × 10 chunks/s × 10 s = 800 chunks/slot`).
    pub fn rate_multiple_per_slot(&self, multiplier: f64, slot_len: SimDuration) -> u32 {
        (multiplier * self.chunks_per_second() * slot_len.as_secs_f64()).round() as u32
    }
}

/// Description of one video in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VideoSpec {
    id: VideoId,
    chunk_count: u32,
}

impl VideoSpec {
    /// The video's identifier.
    pub fn id(&self) -> VideoId {
        self.id
    }

    /// Number of chunks in the video.
    pub fn chunk_count(&self) -> u32 {
        self.chunk_count
    }

    /// Iterator over every chunk id of the video, in playback order.
    pub fn chunks(&self) -> impl Iterator<Item = ChunkId> + '_ {
        let id = self.id;
        (0..self.chunk_count).map(move |i| ChunkId::new(id, i))
    }
}

/// The content catalog: a set of equally-sized videos.
///
/// # Examples
///
/// ```
/// use p2p_workload::{StreamingParams, VideoCatalog};
/// use p2p_types::VideoId;
///
/// let cat = VideoCatalog::uniform(100, StreamingParams::paper_defaults()).unwrap();
/// assert_eq!(cat.len(), 100);
/// assert_eq!(cat.video(VideoId::new(5)).unwrap().chunk_count(), 2500);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoCatalog {
    params: StreamingParams,
    videos: Vec<VideoSpec>,
}

impl VideoCatalog {
    /// Builds a catalog of `n` videos all sharing the same parameters (the
    /// paper's setup: 100 videos of ~20 MB).
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] if `n == 0` or the parameters are
    /// invalid.
    pub fn uniform(n: usize, params: StreamingParams) -> Result<Self, P2pError> {
        if n == 0 {
            return Err(P2pError::invalid_config("video_count", "must be positive"));
        }
        params.validate()?;
        let chunk_count = params.chunks_per_video();
        let videos =
            (0..n).map(|i| VideoSpec { id: VideoId::new(i as u32), chunk_count }).collect();
        Ok(VideoCatalog { params, videos })
    }

    /// The shared streaming parameters.
    pub fn params(&self) -> &StreamingParams {
        &self.params
    }

    /// Number of videos.
    pub fn len(&self) -> usize {
        self.videos.len()
    }

    /// Returns `true` if the catalog has no videos (constructed catalogs
    /// never do; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.videos.is_empty()
    }

    /// Looks up a video.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::UnknownVideo`] for ids outside the catalog.
    pub fn video(&self, id: VideoId) -> Result<&VideoSpec, P2pError> {
        self.videos.get(id.index()).ok_or(P2pError::UnknownVideo(id))
    }

    /// Iterator over all videos.
    pub fn iter(&self) -> impl Iterator<Item = &VideoSpec> {
        self.videos.iter()
    }

    /// Validates that a chunk id is within the catalog.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::UnknownVideo`] or [`P2pError::UnknownChunk`].
    pub fn validate_chunk(&self, chunk: ChunkId) -> Result<(), P2pError> {
        let v = self.video(chunk.video())?;
        if chunk.index_in_video() >= v.chunk_count() {
            return Err(P2pError::UnknownChunk(chunk));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_derived_constants() {
        let p = StreamingParams::paper_defaults();
        assert_eq!(p.chunks_per_second(), 10.0);
        assert_eq!(p.chunks_per_video(), 2500);
        assert_eq!(p.video_duration().as_secs_f64(), 250.0);
        // seeds: 8× streaming rate over a 10-second slot = 800 chunks
        assert_eq!(p.rate_multiple_per_slot(8.0, SimDuration::from_secs(10)), 800);
        // regular peers: 1×–4× ⇒ 100–400 chunks per slot
        assert_eq!(p.rate_multiple_per_slot(1.0, SimDuration::from_secs(10)), 100);
        assert_eq!(p.rate_multiple_per_slot(4.0, SimDuration::from_secs(10)), 400);
    }

    #[test]
    fn chunks_in_duration() {
        let p = StreamingParams::paper_defaults();
        assert_eq!(p.chunks_in(SimDuration::from_secs(10)), 100.0);
    }

    #[test]
    fn catalog_lookup_and_bounds() {
        let cat = VideoCatalog::uniform(3, StreamingParams::small_test()).unwrap();
        assert_eq!(cat.len(), 3);
        assert!(cat.video(VideoId::new(2)).is_ok());
        assert_eq!(
            cat.video(VideoId::new(3)).unwrap_err(),
            P2pError::UnknownVideo(VideoId::new(3))
        );
        let v = cat.video(VideoId::new(0)).unwrap();
        assert_eq!(v.chunks().count() as u32, v.chunk_count());
        assert!(cat.validate_chunk(ChunkId::new(VideoId::new(0), 0)).is_ok());
        assert!(cat.validate_chunk(ChunkId::new(VideoId::new(0), v.chunk_count())).is_err());
        assert!(cat.validate_chunk(ChunkId::new(VideoId::new(9), 0)).is_err());
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(VideoCatalog::uniform(0, StreamingParams::paper_defaults()).is_err());
        let bad = StreamingParams { chunk_size_bytes: 0, ..StreamingParams::paper_defaults() };
        assert!(bad.validate().is_err());
        let bad = StreamingParams { bitrate_bps: 0, ..StreamingParams::paper_defaults() };
        assert!(bad.validate().is_err());
        let bad = StreamingParams { video_size_bytes: 1, ..StreamingParams::paper_defaults() };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn small_test_preset_is_valid() {
        let p = StreamingParams::small_test();
        p.validate().unwrap();
        assert_eq!(p.chunks_per_video(), 125);
    }
}
