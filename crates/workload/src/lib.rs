//! Statistical workload generators for the ISP-aware P2P evaluation.
//!
//! Implements, from first principles (no `rand_distr` dependency), every
//! stochastic ingredient of the paper's Sec. V evaluation setup:
//!
//! * [`dist::ZipfMandelbrot`] — video popularity `p(i) ∝ 1/(i+q)^α` with
//!   `α = 0.78`, `q = 4` over 100 videos;
//! * [`dist::TruncatedNormal`] — inter-ISP link costs `N(5,1)` truncated to
//!   `[1,10]` and intra-ISP costs `N(1,1)` truncated to `[0,2]`;
//! * [`dist::Exponential`] / [`arrival::PoissonProcess`] — peer joins at
//!   1 peer/second;
//! * [`catalog::VideoCatalog`] — 100 videos of ~20 MB at 640 kbps in 8 KB
//!   chunks (⇒ 10 chunks/second, 2560 chunks, 256 s per video);
//! * [`valuation::DeadlineValuation`] — the deadline-based chunk valuation
//!   `α_d / ln(β_d + d)` clamped to `[0.8, 8]`;
//! * [`churn::ChurnModel`] — the arrival/departure process of Sec. V-E
//!   (departure probability 0.6 at a uniform instant of the viewing period).
//!
//! # Examples
//!
//! ```
//! use p2p_workload::dist::ZipfMandelbrot;
//! use rand::SeedableRng;
//!
//! let zipf = ZipfMandelbrot::new(100, 0.78, 4.0).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let video_index = zipf.sample_index(&mut rng);
//! assert!(video_index < 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod catalog;
pub mod churn;
pub mod dist;
pub mod valuation;

pub use arrival::PoissonProcess;
pub use catalog::{StreamingParams, VideoCatalog, VideoSpec};
pub use churn::{ChurnModel, PeerArrival};
pub use dist::{Exponential, TruncatedNormal, UniformRange, ZipfMandelbrot};
pub use valuation::DeadlineValuation;
