//! Probability distributions implemented from first principles.
//!
//! Only [`rand`]'s uniform primitives are used; normal variates come from the
//! Box–Muller transform, truncation from rejection sampling, exponentials
//! from inverse-transform sampling, and Zipf–Mandelbrot from a precomputed
//! CDF with binary search.

use p2p_types::P2pError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Standard-normal variate via the Box–Muller transform.
///
/// Consumes two uniforms and returns one of the two produced normals (the
/// other is discarded for simplicity; throughput is not a concern here).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        // u1 ∈ (0,1] so ln(u1) is finite.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let z = r * (std::f64::consts::TAU * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

/// A normal distribution `N(mean, std²)` truncated to `[lo, hi]`, sampled by
/// rejection.
///
/// The paper draws inter-ISP link delay costs from `N(5, 1)` truncated to
/// `[1, 10]` and intra-ISP costs from `N(1, 1)` truncated to `[0, 2]`
/// (Sec. V, citing passive RTT estimation).
///
/// # Examples
///
/// ```
/// use p2p_workload::TruncatedNormal;
/// use rand::SeedableRng;
///
/// let inter = TruncatedNormal::new(5.0, 1.0, 1.0, 10.0).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let w = inter.sample(&mut rng);
/// assert!((1.0..=10.0).contains(&w));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TruncatedNormal {
    mean: f64,
    std: f64,
    lo: f64,
    hi: f64,
}

impl TruncatedNormal {
    /// Creates a truncated normal.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] if `std` is not positive, any
    /// parameter is non-finite, or `lo >= hi`.
    pub fn new(mean: f64, std: f64, lo: f64, hi: f64) -> Result<Self, P2pError> {
        if !(mean.is_finite() && std.is_finite() && lo.is_finite() && hi.is_finite()) {
            return Err(P2pError::invalid_config("truncated_normal", "parameters must be finite"));
        }
        if std <= 0.0 {
            return Err(P2pError::invalid_config("truncated_normal", "std must be positive"));
        }
        if lo >= hi {
            return Err(P2pError::invalid_config("truncated_normal", "lo must be < hi"));
        }
        Ok(TruncatedNormal { mean, std, lo, hi })
    }

    /// The paper's inter-ISP link-cost distribution: `N(5,1)` on `[1,10]`.
    pub fn paper_inter_isp() -> Self {
        TruncatedNormal { mean: 5.0, std: 1.0, lo: 1.0, hi: 10.0 }
    }

    /// The paper's intra-ISP link-cost distribution: `N(1,1)` on `[0,2]`.
    pub fn paper_intra_isp() -> Self {
        TruncatedNormal { mean: 1.0, std: 1.0, lo: 0.0, hi: 2.0 }
    }

    /// Mean of the underlying (untruncated) normal.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation of the underlying normal.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Lower truncation bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper truncation bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Draws one sample, guaranteed to lie in `[lo, hi]`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Rejection sampling; for the paper's parameterisations acceptance is
        // ≥ 68 %, so the expected loop count is < 1.5. A hard cap guards
        // against pathological configurations: fall back to a uniform draw.
        for _ in 0..1024 {
            let z = self.mean + self.std * standard_normal(rng);
            if z >= self.lo && z <= self.hi {
                return z;
            }
        }
        rng.gen_range(self.lo..=self.hi)
    }
}

/// An exponential distribution with the given rate, via inverse transform.
///
/// Used for Poisson inter-arrival times (the paper's joins arrive "as a
/// Poisson process with rate 1 peer per second").
///
/// # Examples
///
/// ```
/// use p2p_workload::Exponential;
/// use rand::SeedableRng;
///
/// let exp = Exponential::new(1.0).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// assert!(exp.sample(&mut rng) >= 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with events per unit time `rate`.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] if `rate` is not positive and
    /// finite.
    pub fn new(rate: f64) -> Result<Self, P2pError> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(P2pError::invalid_config("exponential", "rate must be positive"));
        }
        Ok(Exponential { rate })
    }

    /// The rate parameter.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Draws one inter-arrival time.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
        -u.ln() / self.rate
    }
}

/// The Zipf–Mandelbrot popularity law `p(i) ∝ 1/(i+q)^α` over ranks
/// `1..=n`, sampled by binary search on the precomputed CDF.
///
/// The paper selects videos with `α = 0.78`, `q = 4` over 100 videos
/// (following Dai et al., INFOCOM'11).
///
/// # Examples
///
/// ```
/// use p2p_workload::ZipfMandelbrot;
/// use rand::SeedableRng;
///
/// let z = ZipfMandelbrot::paper_video_popularity(100);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// assert!(z.sample_index(&mut rng) < 100);
/// // rank 1 is the most popular
/// assert!(z.pmf(0) > z.pmf(99));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZipfMandelbrot {
    alpha: f64,
    q: f64,
    cdf: Vec<f64>,
}

impl ZipfMandelbrot {
    /// Creates a Zipf–Mandelbrot law over `n` items with exponent `alpha`
    /// and flattening constant `q`.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] if `n == 0`, or parameters are
    /// non-finite, or `q <= -1` (which would make rank 1 undefined).
    pub fn new(n: usize, alpha: f64, q: f64) -> Result<Self, P2pError> {
        if n == 0 {
            return Err(P2pError::invalid_config("zipf", "n must be positive"));
        }
        if !alpha.is_finite() || !q.is_finite() || q <= -1.0 {
            return Err(P2pError::invalid_config("zipf", "alpha/q must be finite, q > -1"));
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64 + q).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Ok(ZipfMandelbrot { alpha, q, cdf })
    }

    /// The paper's video-popularity law: `α = 0.78`, `q = 4`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn paper_video_popularity(n: usize) -> Self {
        ZipfMandelbrot::new(n, 0.78, 4.0).expect("paper parameters are valid")
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if the law has no items (never true for constructed
    /// values; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability mass of the 0-based rank `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }

    /// Draws a 0-based rank (0 = most popular).
    pub fn sample_index<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Uniform distribution over a closed `f64` range, as used for peer upload
/// capacities ("uniform distribution within the range of [1, 4] times of the
/// streaming bitrate").
///
/// # Examples
///
/// ```
/// use p2p_workload::UniformRange;
/// use rand::SeedableRng;
///
/// let u = UniformRange::new(1.0, 4.0).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let x = u.sample(&mut rng);
/// assert!((1.0..=4.0).contains(&x));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UniformRange {
    lo: f64,
    hi: f64,
}

impl UniformRange {
    /// Creates a uniform law on `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] if bounds are non-finite or
    /// `lo > hi`.
    pub fn new(lo: f64, hi: f64) -> Result<Self, P2pError> {
        if !lo.is_finite() || !hi.is_finite() || lo > hi {
            return Err(P2pError::invalid_config("uniform", "need finite lo <= hi"));
        }
        Ok(UniformRange { lo, hi })
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lo == self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..=self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let tn = TruncatedNormal::paper_intra_isp();
        let mut r = rng(42);
        for _ in 0..10_000 {
            let x = tn.sample(&mut r);
            assert!((0.0..=2.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn truncated_normal_sample_mean_close_to_theory() {
        // For N(5,1) on [1,10] the truncation barely bites: mean ≈ 5.
        let tn = TruncatedNormal::paper_inter_isp();
        let mut r = rng(7);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| tn.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn truncated_normal_intra_mean_is_shifted_up() {
        // N(1,1) on [0,2]: symmetric truncation around the mean keeps mean ≈ 1.
        let tn = TruncatedNormal::paper_intra_isp();
        let mut r = rng(8);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| tn.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn truncated_normal_validation() {
        assert!(TruncatedNormal::new(0.0, 0.0, 0.0, 1.0).is_err());
        assert!(TruncatedNormal::new(0.0, 1.0, 2.0, 1.0).is_err());
        assert!(TruncatedNormal::new(f64::NAN, 1.0, 0.0, 1.0).is_err());
        assert!(TruncatedNormal::new(0.0, 1.0, 0.0, 1.0).is_ok());
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let e = Exponential::new(2.0).unwrap();
        let mut r = rng(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| e.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn exponential_validation() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::INFINITY).is_err());
    }

    #[test]
    fn zipf_pmf_sums_to_one_and_is_decreasing() {
        let z = ZipfMandelbrot::paper_video_popularity(100);
        let total: f64 = (0..100).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        for i in 1..100 {
            assert!(z.pmf(i) <= z.pmf(i - 1));
        }
    }

    #[test]
    fn zipf_empirical_matches_pmf() {
        let z = ZipfMandelbrot::paper_video_popularity(100);
        let mut r = rng(13);
        let n = 200_000;
        let mut counts = vec![0usize; 100];
        for _ in 0..n {
            counts[z.sample_index(&mut r)] += 1;
        }
        for i in [0usize, 1, 10, 50, 99] {
            let emp = counts[i] as f64 / n as f64;
            assert!((emp - z.pmf(i)).abs() < 0.005, "rank {i}: emp {emp} vs pmf {}", z.pmf(i));
        }
    }

    #[test]
    fn zipf_paper_values() {
        // p(1) = (1/(1+4)^0.78) / Σ — spot-check against a hand computation.
        let z = ZipfMandelbrot::paper_video_popularity(100);
        let raw: Vec<f64> = (1..=100).map(|i| 1.0 / (i as f64 + 4.0).powf(0.78)).collect();
        let total: f64 = raw.iter().sum();
        assert!((z.pmf(0) - raw[0] / total).abs() < 1e-12);
        assert!((z.pmf(42) - raw[42] / total).abs() < 1e-12);
    }

    #[test]
    fn zipf_validation() {
        assert!(ZipfMandelbrot::new(0, 1.0, 0.0).is_err());
        assert!(ZipfMandelbrot::new(10, f64::NAN, 0.0).is_err());
        assert!(ZipfMandelbrot::new(10, 1.0, -1.0).is_err());
        assert!(!ZipfMandelbrot::new(10, 1.0, 0.0).unwrap().is_empty());
    }

    #[test]
    fn uniform_range_bounds_and_degenerate() {
        let u = UniformRange::new(1.0, 4.0).unwrap();
        let mut r = rng(17);
        for _ in 0..1000 {
            let x = u.sample(&mut r);
            assert!((1.0..=4.0).contains(&x));
        }
        let point = UniformRange::new(2.0, 2.0).unwrap();
        assert_eq!(point.sample(&mut r), 2.0);
        assert!(UniformRange::new(4.0, 1.0).is_err());
    }

    #[test]
    fn sampling_is_deterministic_for_fixed_seed() {
        let tn = TruncatedNormal::paper_inter_isp();
        let a: Vec<f64> = {
            let mut r = rng(99);
            (0..32).map(|_| tn.sample(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = rng(99);
            (0..32).map(|_| tn.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
