//! Deadline-based chunk valuation.

use p2p_types::{P2pError, SimDuration, Valuation};
use serde::{Deserialize, Serialize};

/// The paper's deadline-based valuation function
/// `v = α_d / ln(β_d + d)`, clamped to a closed range.
///
/// `d` is the time to the chunk's playback deadline in seconds; `α_d = 2`
/// and `β_d = 1.2` by default, making the valuation "within the range of
/// [0.8, 8]" (Sec. V): chunks due within ~84 ms saturate at 8, chunks due
/// beyond ~11 s floor at 0.8.
///
/// # Examples
///
/// ```
/// use p2p_workload::DeadlineValuation;
/// use p2p_types::SimDuration;
///
/// let v = DeadlineValuation::paper_defaults();
/// let urgent = v.value(SimDuration::from_millis(50));
/// let relaxed = v.value(SimDuration::from_secs(20));
/// assert!(urgent > relaxed);
/// assert_eq!(urgent.get(), 8.0);
/// assert_eq!(relaxed.get(), 0.8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeadlineValuation {
    alpha: f64,
    beta: f64,
    min: f64,
    max: f64,
}

impl DeadlineValuation {
    /// The paper's parameters: `α_d = 2`, `β_d = 1.2`, range `[0.8, 8]`.
    pub fn paper_defaults() -> Self {
        DeadlineValuation { alpha: 2.0, beta: 1.2, min: 0.8, max: 8.0 }
    }

    /// Creates a valuation function with explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] unless `alpha > 0`, `beta > 1`
    /// (so the logarithm is positive for every `d ≥ 0`) and
    /// `0 <= min <= max`.
    pub fn new(alpha: f64, beta: f64, min: f64, max: f64) -> Result<Self, P2pError> {
        if !(alpha.is_finite() && beta.is_finite() && min.is_finite() && max.is_finite()) {
            return Err(P2pError::invalid_config("valuation", "parameters must be finite"));
        }
        if alpha <= 0.0 {
            return Err(P2pError::invalid_config("valuation.alpha", "must be positive"));
        }
        if beta <= 1.0 {
            return Err(P2pError::invalid_config(
                "valuation.beta",
                "must exceed 1 so ln(beta + d) > 0 for all d >= 0",
            ));
        }
        if min < 0.0 || min > max {
            return Err(P2pError::invalid_config("valuation.range", "need 0 <= min <= max"));
        }
        Ok(DeadlineValuation { alpha, beta, min, max })
    }

    /// `α_d` (numerator constant).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// `β_d` (log offset).
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Lower clamp of the valuation range.
    pub fn min_value(&self) -> f64 {
        self.min
    }

    /// Upper clamp of the valuation range.
    pub fn max_value(&self) -> f64 {
        self.max
    }

    /// Values a chunk whose playback deadline is `time_to_deadline` away.
    pub fn value(&self, time_to_deadline: SimDuration) -> Valuation {
        let d = time_to_deadline.as_secs_f64();
        let raw = self.alpha / (self.beta + d).ln();
        Valuation::new(raw.clamp(self.min, self.max))
    }

    /// Values a chunk from a raw `d` in seconds (negative values, i.e.
    /// already-overdue chunks, saturate at the maximum valuation).
    pub fn value_secs(&self, d: f64) -> Valuation {
        self.value(SimDuration::from_secs_f64(d.max(0.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valuation_is_monotone_decreasing_in_deadline() {
        let v = DeadlineValuation::paper_defaults();
        let mut prev = v.value(SimDuration::ZERO);
        for secs in 1..=30 {
            let cur = v.value(SimDuration::from_secs(secs));
            assert!(cur <= prev, "d={secs}");
            prev = cur;
        }
    }

    #[test]
    fn paper_range_is_respected() {
        let v = DeadlineValuation::paper_defaults();
        for ms in (0..20_000).step_by(37) {
            let val = v.value(SimDuration::from_millis(ms)).get();
            assert!((0.8..=8.0).contains(&val), "d={ms}ms v={val}");
        }
    }

    #[test]
    fn clamp_boundaries_match_hand_computation() {
        // v = 8 ⇔ ln(1.2 + d) = 0.25 ⇔ d = e^0.25 − 1.2 ≈ 0.0840
        // v = 0.8 ⇔ ln(1.2 + d) = 2.5 ⇔ d = e^2.5 − 1.2 ≈ 10.98
        let v = DeadlineValuation::paper_defaults();
        assert_eq!(v.value_secs(0.05).get(), 8.0);
        assert!(v.value_secs(0.2).get() < 8.0);
        assert!(v.value_secs(10.0).get() > 0.8);
        assert_eq!(v.value_secs(11.5).get(), 0.8);
    }

    #[test]
    fn mid_range_value_matches_formula() {
        let v = DeadlineValuation::paper_defaults();
        let d = 3.0;
        let expected = 2.0 / (1.2f64 + d).ln();
        assert!((v.value_secs(d).get() - expected).abs() < 1e-12);
    }

    #[test]
    fn overdue_chunks_saturate_high() {
        let v = DeadlineValuation::paper_defaults();
        assert_eq!(v.value_secs(-5.0).get(), 8.0);
    }

    #[test]
    fn validation() {
        assert!(DeadlineValuation::new(0.0, 1.2, 0.8, 8.0).is_err());
        assert!(DeadlineValuation::new(2.0, 1.0, 0.8, 8.0).is_err());
        assert!(DeadlineValuation::new(2.0, 1.2, 9.0, 8.0).is_err());
        assert!(DeadlineValuation::new(2.0, 1.2, -1.0, 8.0).is_err());
        assert!(DeadlineValuation::new(2.0, f64::NAN, 0.8, 8.0).is_err());
        assert!(DeadlineValuation::new(2.0, 1.2, 0.8, 8.0).is_ok());
    }

    #[test]
    fn accessors() {
        let v = DeadlineValuation::paper_defaults();
        assert_eq!(v.alpha(), 2.0);
        assert_eq!(v.beta(), 1.2);
        assert_eq!(v.min_value(), 0.8);
        assert_eq!(v.max_value(), 8.0);
    }
}
