//! Poisson arrival process.

use crate::dist::Exponential;
use p2p_types::{P2pError, SimDuration, SimTime};
use rand::Rng;

/// A homogeneous Poisson process generating arrival instants.
///
/// "Peers join the system as a Poisson process with rate 1 peer per second"
/// (Sec. V). Inter-arrival gaps are exponential with the given rate.
///
/// # Examples
///
/// ```
/// use p2p_workload::PoissonProcess;
/// use p2p_types::SimTime;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut proc = PoissonProcess::new(1.0).unwrap();
/// let t1 = proc.next_arrival(&mut rng);
/// let t2 = proc.next_arrival(&mut rng);
/// assert!(t2 > t1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PoissonProcess {
    gap: Exponential,
    now: SimTime,
}

impl PoissonProcess {
    /// Creates a Poisson process with `rate` arrivals per second, starting
    /// at time zero.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] if the rate is not positive.
    pub fn new(rate: f64) -> Result<Self, P2pError> {
        Ok(PoissonProcess { gap: Exponential::new(rate)?, now: SimTime::ZERO })
    }

    /// The arrival rate, per second.
    pub fn rate(&self) -> f64 {
        self.gap.rate()
    }

    /// The time of the most recently generated arrival.
    pub fn current_time(&self) -> SimTime {
        self.now
    }

    /// Changes the arrival rate for all *future* arrivals, keeping the
    /// process clock where it is (mid-run workload events re-parameterize
    /// churn without replaying history).
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] if the rate is not positive.
    pub fn set_rate(&mut self, rate: f64) -> Result<(), P2pError> {
        self.gap = Exponential::new(rate)?;
        Ok(())
    }

    /// Fast-forwards the process clock to `t` if it lags behind (used when
    /// churn is switched on mid-run, so the process does not flood the
    /// system with back-dated arrivals). Never moves the clock backwards.
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Restarts the process clock at `t`, forwards or backwards. Used on
    /// rate changes: the exponential law is memoryless, so discarding an
    /// already-sampled future arrival and resampling from the change
    /// instant at the new rate is statistically exact — keeping it would
    /// delay the new rate by one old-rate gap.
    pub fn restart_at(&mut self, t: SimTime) {
        self.now = t;
    }

    /// Advances the process and returns the next arrival instant.
    pub fn next_arrival<R: Rng + ?Sized>(&mut self, rng: &mut R) -> SimTime {
        let gap = SimDuration::from_secs_f64(self.gap.sample(rng));
        self.now += gap;
        self.now
    }

    /// Generates all arrivals strictly before `horizon`.
    pub fn arrivals_until<R: Rng + ?Sized>(
        &mut self,
        horizon: SimTime,
        rng: &mut R,
    ) -> Vec<SimTime> {
        let mut out = Vec::new();
        loop {
            let t = self.next_arrival(rng);
            if t >= horizon {
                break;
            }
            out.push(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn arrivals_are_strictly_ordered() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut p = PoissonProcess::new(1.0).unwrap();
        let ts = p.arrivals_until(SimTime::from_secs_f64(100.0), &mut rng);
        for w in ts.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(!ts.is_empty());
    }

    #[test]
    fn arrival_count_matches_rate() {
        // With rate 1/s over 5000 s we expect ~5000 arrivals (±3σ ≈ 212).
        let mut rng = StdRng::seed_from_u64(5);
        let mut p = PoissonProcess::new(1.0).unwrap();
        let ts = p.arrivals_until(SimTime::from_secs_f64(5000.0), &mut rng);
        let n = ts.len() as f64;
        assert!((n - 5000.0).abs() < 250.0, "n = {n}");
    }

    #[test]
    fn rate_accessor_and_validation() {
        assert_eq!(PoissonProcess::new(2.0).unwrap().rate(), 2.0);
        assert!(PoissonProcess::new(0.0).is_err());
    }

    #[test]
    fn set_rate_keeps_clock_and_changes_gaps() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut p = PoissonProcess::new(1.0).unwrap();
        let _ = p.arrivals_until(SimTime::from_secs_f64(20.0), &mut rng);
        let before = p.current_time();
        p.set_rate(50.0).unwrap();
        assert_eq!(p.current_time(), before, "rate change must not move the clock");
        assert_eq!(p.rate(), 50.0);
        // At 50/s the next 100 arrivals span ~2 s; they must all come after
        // the pre-change clock.
        let ts: Vec<_> = (0..100).map(|_| p.next_arrival(&mut rng)).collect();
        assert!(ts.iter().all(|&t| t > before));
        assert!(p.set_rate(0.0).is_err());
    }

    #[test]
    fn advance_to_never_rewinds() {
        let mut p = PoissonProcess::new(1.0).unwrap();
        p.advance_to(SimTime::from_secs_f64(100.0));
        assert_eq!(p.current_time(), SimTime::from_secs_f64(100.0));
        p.advance_to(SimTime::from_secs_f64(50.0));
        assert_eq!(p.current_time(), SimTime::from_secs_f64(100.0));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let seq = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut p = PoissonProcess::new(1.0).unwrap();
            p.arrivals_until(SimTime::from_secs_f64(50.0), &mut rng)
        };
        assert_eq!(seq(9), seq(9));
    }
}
