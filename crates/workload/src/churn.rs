//! Peer arrival/departure (churn) model.
//!
//! Reproduces the dynamic model of Sec. V: peers join as a Poisson process
//! (rate 1/s), are spread evenly over the ISPs, pick a video by the
//! Zipf–Mandelbrot law, draw an upload capacity uniform in [1,4]× the
//! streaming rate, and either watch to the end or (Sec. V-E) depart early
//! "at any time with probability 0.6" — modelled as a Bernoulli(0.6) early
//! departure at a uniformly random instant of the viewing period.

use crate::arrival::PoissonProcess;
use crate::catalog::VideoCatalog;
use crate::dist::{UniformRange, ZipfMandelbrot};
use p2p_types::{IspId, P2pError, SimDuration, SimTime, VideoId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One generated peer arrival, with everything the streaming system needs to
/// instantiate the peer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeerArrival {
    /// Join instant.
    pub at: SimTime,
    /// ISP the peer lands in (round-robin ⇒ even spread, per the paper).
    pub isp: IspId,
    /// Video the peer watches (Zipf–Mandelbrot rank).
    pub video: VideoId,
    /// Upload capacity as a multiple of the streaming rate.
    pub upload_rate_multiple: f64,
    /// If `Some`, the peer departs early at this instant; otherwise it stays
    /// until playback finishes.
    pub departs_at: Option<SimTime>,
}

/// Configuration of the churn model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Poisson arrival rate in peers per second (paper: 1.0).
    pub arrival_rate: f64,
    /// Probability that a peer departs before finishing its video
    /// (paper Sec. V-E: 0.6; 0.0 reproduces the Sec. V-B dynamic model where
    /// peers "stay until they finish watching").
    pub early_departure_prob: f64,
    /// Upload capacity range in multiples of the streaming rate
    /// (paper: [1, 4]).
    pub upload_multiple: (f64, f64),
    /// Number of ISPs peers are spread over (paper: 5).
    pub isp_count: u16,
}

impl ChurnConfig {
    /// The paper's dynamic-join model without early departures (Sec. V-B).
    pub fn paper_joins_only(isp_count: u16) -> Self {
        ChurnConfig {
            arrival_rate: 1.0,
            early_departure_prob: 0.0,
            upload_multiple: (1.0, 4.0),
            isp_count,
        }
    }

    /// The paper's churn model with early departures (Sec. V-E).
    pub fn paper_with_departures(isp_count: u16) -> Self {
        ChurnConfig { early_departure_prob: 0.6, ..Self::paper_joins_only(isp_count) }
    }
}

/// Generator of peer arrivals following the paper's dynamic model.
///
/// # Examples
///
/// ```
/// use p2p_workload::{ChurnModel, VideoCatalog, StreamingParams};
/// use p2p_workload::churn::ChurnConfig;
/// use p2p_types::SimTime;
/// use rand::SeedableRng;
///
/// let catalog = VideoCatalog::uniform(100, StreamingParams::paper_defaults()).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut churn = ChurnModel::new(ChurnConfig::paper_joins_only(5), &catalog).unwrap();
/// let arrivals = churn.arrivals_until(SimTime::from_secs_f64(60.0), &catalog, &mut rng);
/// assert!(!arrivals.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct ChurnModel {
    config: ChurnConfig,
    process: PoissonProcess,
    popularity: ZipfMandelbrot,
    capacity: UniformRange,
    next_isp: u16,
}

impl ChurnModel {
    /// Creates a churn model for the given catalog.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] for non-positive rates, an empty
    /// catalog, a departure probability outside `[0,1]`, or zero ISPs.
    pub fn new(config: ChurnConfig, catalog: &VideoCatalog) -> Result<Self, P2pError> {
        if !(0.0..=1.0).contains(&config.early_departure_prob) {
            return Err(P2pError::invalid_config("early_departure_prob", "must be within [0, 1]"));
        }
        if config.isp_count == 0 {
            return Err(P2pError::invalid_config("isp_count", "must be positive"));
        }
        Ok(ChurnModel {
            config,
            process: PoissonProcess::new(config.arrival_rate)?,
            popularity: ZipfMandelbrot::new(catalog.len(), 0.78, 4.0)?,
            capacity: UniformRange::new(config.upload_multiple.0, config.upload_multiple.1)?,
            next_isp: 0,
        })
    }

    /// The configuration this model was built with (the `arrival_rate`
    /// field reflects later [`ChurnModel::set_rate`] calls).
    pub fn config(&self) -> &ChurnConfig {
        &self.config
    }

    /// Changes the Poisson arrival rate mid-run (scenario churn bursts).
    /// The process clock is preserved, so already-elapsed history is not
    /// replayed at the new rate.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] if the rate is not positive.
    pub fn set_rate(&mut self, rate: f64) -> Result<(), P2pError> {
        self.process.set_rate(rate)?;
        self.config.arrival_rate = rate;
        Ok(())
    }

    /// Replaces the video-popularity law mid-run (scenario popularity
    /// shifts, e.g. a new release concentrating demand).
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::InvalidConfig`] if the new law does not cover
    /// exactly the same number of videos as the current one.
    pub fn set_popularity(&mut self, popularity: ZipfMandelbrot) -> Result<(), P2pError> {
        if popularity.len() != self.popularity.len() {
            return Err(P2pError::invalid_config(
                "popularity",
                "new law must cover the same catalog",
            ));
        }
        self.popularity = popularity;
        Ok(())
    }

    /// Fast-forwards the arrival clock to `t` if it lags behind (used when
    /// churn is enabled mid-run so no back-dated arrival flood occurs).
    pub fn advance_to(&mut self, t: SimTime) {
        self.process.advance_to(t);
    }

    /// Restarts the arrival clock at `t` (see
    /// [`PoissonProcess::restart_at`]): callers changing the rate or the
    /// popularity law mid-run restart from the change instant so the new
    /// parameters take effect immediately instead of after one stale
    /// old-parameter gap.
    pub fn restart_at(&mut self, t: SimTime) {
        self.process.restart_at(t);
    }

    /// Generates the next arrival.
    pub fn next_arrival<R: Rng + ?Sized>(
        &mut self,
        catalog: &VideoCatalog,
        rng: &mut R,
    ) -> PeerArrival {
        let at = self.process.next_arrival(rng);
        let isp = IspId::new(self.next_isp);
        self.next_isp = (self.next_isp + 1) % self.config.isp_count;
        let video_rank = self.popularity.sample_index(rng);
        let video = VideoId::new(video_rank as u32);
        let upload_rate_multiple = self.capacity.sample(rng);

        let view_len: SimDuration = catalog.params().video_duration();
        let departs_at = if rng.gen::<f64>() < self.config.early_departure_prob {
            // Uniform instant within the viewing period.
            let frac: f64 = rng.gen();
            Some(at + SimDuration::from_secs_f64(view_len.as_secs_f64() * frac))
        } else {
            None
        };

        PeerArrival { at, isp, video, upload_rate_multiple, departs_at }
    }

    /// Generates all arrivals strictly before `horizon`.
    pub fn arrivals_until<R: Rng + ?Sized>(
        &mut self,
        horizon: SimTime,
        catalog: &VideoCatalog,
        rng: &mut R,
    ) -> Vec<PeerArrival> {
        let mut out = Vec::new();
        loop {
            let a = self.next_arrival(catalog, rng);
            if a.at >= horizon {
                break;
            }
            out.push(a);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::StreamingParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn catalog() -> VideoCatalog {
        VideoCatalog::uniform(100, StreamingParams::paper_defaults()).unwrap()
    }

    #[test]
    fn isps_are_evenly_spread() {
        let cat = catalog();
        let mut rng = StdRng::seed_from_u64(2);
        let mut churn = ChurnModel::new(ChurnConfig::paper_joins_only(5), &cat).unwrap();
        let arrivals = churn.arrivals_until(SimTime::from_secs_f64(500.0), &cat, &mut rng);
        let mut counts = [0usize; 5];
        for a in &arrivals {
            counts[a.isp.index()] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max - min <= 1, "round-robin must be perfectly even: {counts:?}");
    }

    #[test]
    fn popular_videos_dominate() {
        let cat = catalog();
        let mut rng = StdRng::seed_from_u64(3);
        let mut churn = ChurnModel::new(ChurnConfig::paper_joins_only(5), &cat).unwrap();
        let arrivals = churn.arrivals_until(SimTime::from_secs_f64(20_000.0), &cat, &mut rng);
        let head = arrivals.iter().filter(|a| a.video.index() < 10).count();
        let tail = arrivals.iter().filter(|a| a.video.index() >= 90).count();
        assert!(head > 2 * tail, "head {head} vs tail {tail}");
    }

    #[test]
    fn upload_capacity_in_range() {
        let cat = catalog();
        let mut rng = StdRng::seed_from_u64(4);
        let mut churn = ChurnModel::new(ChurnConfig::paper_joins_only(3), &cat).unwrap();
        for _ in 0..500 {
            let a = churn.next_arrival(&cat, &mut rng);
            assert!((1.0..=4.0).contains(&a.upload_rate_multiple));
            assert!(a.departs_at.is_none());
        }
    }

    #[test]
    fn departure_probability_is_honored() {
        let cat = catalog();
        let mut rng = StdRng::seed_from_u64(5);
        let mut churn = ChurnModel::new(ChurnConfig::paper_with_departures(5), &cat).unwrap();
        let n = 5_000;
        let mut early = 0usize;
        for _ in 0..n {
            let a = churn.next_arrival(&cat, &mut rng);
            if let Some(t) = a.departs_at {
                early += 1;
                assert!(t >= a.at);
                assert!(t <= a.at + cat.params().video_duration());
            }
        }
        let frac = early as f64 / n as f64;
        assert!((frac - 0.6).abs() < 0.03, "frac = {frac}");
    }

    #[test]
    fn config_validation() {
        let cat = catalog();
        let bad = ChurnConfig { early_departure_prob: 1.5, ..ChurnConfig::paper_joins_only(5) };
        assert!(ChurnModel::new(bad, &cat).is_err());
        let bad = ChurnConfig { isp_count: 0, ..ChurnConfig::paper_joins_only(5) };
        assert!(ChurnModel::new(bad, &cat).is_err());
        let bad = ChurnConfig { arrival_rate: 0.0, ..ChurnConfig::paper_joins_only(5) };
        assert!(ChurnModel::new(bad, &cat).is_err());
    }

    #[test]
    fn rate_can_change_mid_run() {
        let cat = catalog();
        let mut rng = StdRng::seed_from_u64(7);
        let mut churn = ChurnModel::new(ChurnConfig::paper_joins_only(5), &cat).unwrap();
        let before = churn.arrivals_until(SimTime::from_secs_f64(100.0), &cat, &mut rng);
        churn.set_rate(10.0).unwrap();
        assert_eq!(churn.config().arrival_rate, 10.0);
        let after = churn.arrivals_until(SimTime::from_secs_f64(200.0), &cat, &mut rng);
        // 10× the rate over an equal window ⇒ far more arrivals.
        assert!(after.len() > 3 * before.len(), "{} vs {}", after.len(), before.len());
        assert!(churn.set_rate(-1.0).is_err());
    }

    #[test]
    fn popularity_can_shift_mid_run() {
        let cat = catalog();
        let mut rng = StdRng::seed_from_u64(8);
        let mut churn = ChurnModel::new(ChurnConfig::paper_joins_only(5), &cat).unwrap();
        // A near-degenerate law: almost all mass on rank 1.
        churn.set_popularity(ZipfMandelbrot::new(cat.len(), 12.0, 0.0).unwrap()).unwrap();
        let arrivals = churn.arrivals_until(SimTime::from_secs_f64(2_000.0), &cat, &mut rng);
        let top = arrivals.iter().filter(|a| a.video.index() == 0).count();
        assert!(top as f64 > 0.95 * arrivals.len() as f64, "{top}/{}", arrivals.len());
        // Mismatched catalog size is rejected.
        assert!(churn.set_popularity(ZipfMandelbrot::new(3, 1.0, 0.0).unwrap()).is_err());
    }

    #[test]
    fn advance_skips_backlog() {
        let cat = catalog();
        let mut rng = StdRng::seed_from_u64(9);
        let mut churn = ChurnModel::new(ChurnConfig::paper_joins_only(5), &cat).unwrap();
        churn.advance_to(SimTime::from_secs_f64(500.0));
        let a = churn.next_arrival(&cat, &mut rng);
        assert!(a.at > SimTime::from_secs_f64(500.0));
    }

    #[test]
    fn arrivals_are_time_ordered() {
        let cat = catalog();
        let mut rng = StdRng::seed_from_u64(6);
        let mut churn = ChurnModel::new(ChurnConfig::paper_joins_only(5), &cat).unwrap();
        let arrivals = churn.arrivals_until(SimTime::from_secs_f64(100.0), &cat, &mut rng);
        for w in arrivals.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }
}
