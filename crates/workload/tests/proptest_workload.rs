//! Property tests for the workload generators: bounds, monotonicity and
//! determinism over the whole parameter space.

use p2p_types::SimDuration;
use p2p_workload::{
    DeadlineValuation, Exponential, StreamingParams, TruncatedNormal, UniformRange, VideoCatalog,
    ZipfMandelbrot,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn truncated_normal_never_escapes_bounds(
        mean in -10.0f64..10.0,
        std in 0.1f64..5.0,
        width in 0.5f64..10.0,
        seed in 0u64..1000,
    ) {
        let lo = mean - width;
        let hi = mean + width;
        let tn = TruncatedNormal::new(mean, std, lo, hi).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let x = tn.sample(&mut rng);
            prop_assert!(x >= lo && x <= hi);
        }
    }

    #[test]
    fn zipf_is_a_probability_law(n in 1usize..300, alpha in 0.1f64..2.0, q in 0.0f64..10.0) {
        let z = ZipfMandelbrot::new(n, alpha, q).unwrap();
        let total: f64 = (0..n).map(|i| z.pmf(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for i in 1..n {
            prop_assert!(z.pmf(i) <= z.pmf(i - 1) + 1e-12, "pmf must be non-increasing");
        }
    }

    #[test]
    fn zipf_samples_within_range(n in 1usize..100, seed in 0u64..500) {
        let z = ZipfMandelbrot::new(n, 0.78, 4.0).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert!(z.sample_index(&mut rng) < n);
        }
    }

    #[test]
    fn exponential_is_nonnegative(rate in 0.01f64..50.0, seed in 0u64..500) {
        let e = Exponential::new(rate).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert!(e.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn valuation_is_monotone_and_clamped(
        d1 in 0.0f64..60.0,
        d2 in 0.0f64..60.0,
    ) {
        let v = DeadlineValuation::paper_defaults();
        let (lo, hi) = (d1.min(d2), d1.max(d2));
        let v_lo = v.value(SimDuration::from_secs_f64(lo));
        let v_hi = v.value(SimDuration::from_secs_f64(hi));
        prop_assert!(v_lo >= v_hi, "urgency must not increase with distance");
        for x in [v_lo, v_hi] {
            prop_assert!((0.8..=8.0).contains(&x.get()));
        }
    }

    #[test]
    fn uniform_range_is_bounded(lo in -5.0f64..5.0, w in 0.0f64..10.0, seed in 0u64..200) {
        let u = UniformRange::new(lo, lo + w).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..32 {
            let x = u.sample(&mut rng);
            prop_assert!(x >= lo && x <= lo + w);
        }
    }

    #[test]
    fn catalog_chunk_math_is_consistent(
        chunk_kb in 1u64..64,
        bitrate_kbps in 64u64..4000,
        video_mb in 1u64..64,
    ) {
        let params = StreamingParams {
            chunk_size_bytes: chunk_kb * 1000,
            bitrate_bps: bitrate_kbps * 1000,
            video_size_bytes: video_mb * 1_000_000,
        };
        prop_assume!(params.validate().is_ok());
        let cat = VideoCatalog::uniform(3, params).unwrap();
        let v = cat.video(p2p_types::VideoId::new(0)).unwrap();
        // chunks × chunk size covers the video exactly (within one chunk).
        let covered = u64::from(v.chunk_count()) * params.chunk_size_bytes;
        prop_assert!(covered >= params.video_size_bytes);
        prop_assert!(covered < params.video_size_bytes + params.chunk_size_bytes);
        // duration × rate = chunk count.
        let expected = v.chunk_count() as f64;
        let derived = params.video_duration().as_secs_f64() * params.chunks_per_second();
        prop_assert!((derived - expected).abs() < 1e-3);
    }

    #[test]
    fn sampling_is_deterministic(seed in 0u64..1000) {
        let tn = TruncatedNormal::paper_inter_isp();
        let once: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..16).map(|_| tn.sample(&mut rng)).collect()
        };
        let twice: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..16).map(|_| tn.sample(&mut rng)).collect()
        };
        prop_assert_eq!(once, twice);
    }
}
