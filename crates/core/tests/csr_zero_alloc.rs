//! The flat engine's zero-allocation guarantee, asserted with a counting
//! global allocator: after the first (warm-up) slot, the CSR hot loop —
//! cold and warm runs into a reusable [`FlatOutcome`] — performs **zero**
//! heap allocations on same-shaped slots.
//!
//! This file holds exactly one `#[test]` so no sibling test can allocate
//! concurrently inside the measured windows.

use p2p_core::csr::{CsrInstance, FlatAuction, FlatOutcome};
use p2p_core::{AuctionConfig, NoProbe, ShardCount, WelfareInstance};
use p2p_types::{ChunkId, Cost, PeerId, RequestId, Valuation, VideoId};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation and reallocation routed through the global
/// allocator (deallocations are free and uncounted) — but only on threads
/// that opted in via [`MEASURED`]. The libtest harness's main thread sits
/// in a blocking `recv` while the test runs and lazily initializes its
/// channel-park context (`std::sync::mpmc::Context`) at an arbitrary
/// moment, so an unscoped counter flakes when that one-time allocation
/// races into the measured window. The hot loop under test runs entirely
/// on the test's own thread (shards=1 is sequential and shards=4 runs
/// single-worker inline), so thread-scoping loses no coverage.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Set on the thread whose allocations should count.
    static MEASURED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// True when the current thread opted into counting (false during TLS
/// teardown, when the keys are gone).
fn on_measured_thread() -> bool {
    MEASURED.try_with(std::cell::Cell::get).unwrap_or(false)
}

// SAFETY: delegates every operation verbatim to the system allocator; the
// counter is a relaxed atomic with no effect on allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if on_measured_thread() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if on_measured_thread() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if on_measured_thread() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A deterministic hash in [0, 1) — tie-free instance material (structural
/// ties at ε = 0 would livelock the paper rule; continuous values avoid
/// them).
fn unit(seed: u64) -> f64 {
    let mut z = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// A contended flash-crowd-shaped slot: `requests` requests over
/// `requests / 12` providers, ~6 candidate edges each.
fn slot_instance(salt: u64, requests: u64) -> WelfareInstance {
    let mut b = WelfareInstance::builder();
    let providers = (requests / 12).max(3);
    let us: Vec<_> = (0..providers)
        .map(|i| b.add_provider(PeerId::new(100_000 + i as u32), 1 + (unit(salt ^ i) * 4.0) as u32))
        .collect();
    for d in 0..requests {
        let r = b.add_request(RequestId::new(
            PeerId::new(d as u32),
            ChunkId::new(VideoId::new(0), d as u32),
        ));
        for k in 0..6u64 {
            let u = us[((unit(salt + d * 13 + k) * providers as f64) as usize).min(us.len() - 1)];
            let v = 2.0 + 6.0 * unit(salt + d * 31 + k * 7 + 1);
            let w = 0.2 + 3.0 * unit(salt + d * 17 + k * 11 + 2);
            if b.add_edge(r, u, Valuation::new(v), Cost::new(w)).is_err() {
                continue; // duplicate (request, provider) pair — skip
            }
        }
    }
    b.build().unwrap()
}

#[test]
fn hot_loop_allocates_nothing_after_the_first_slot() {
    MEASURED.with(|m| m.set(true));
    // Two same-shaped slots (different values — slot 2 is NOT a replay of
    // slot 1) for each engine schedule under test.
    let slot1 = slot_instance(1, 240);
    let slot2 = slot_instance(2, 240);
    let csr1 = CsrInstance::compile(&slot1);
    let csr2 = CsrInstance::compile(&slot2);

    // shards = 1 exercises the sequential sweep, 4 the batched sharded
    // schedule (single worker: the threaded fan-out trades a few control
    // allocations per slice for parallelism and is exercised elsewhere).
    for shards in [1usize, 4] {
        let mut engine =
            FlatAuction::new(AuctionConfig::with_epsilon(0.01), ShardCount::Fixed(shards))
                .with_workers(1);
        let mut out = FlatOutcome::default();
        let mut carried: Vec<f64> = Vec::new();

        // Warm-up slot: buffers grow to the slot shape here.
        engine.run_into(&csr1, &mut out).unwrap();
        carried.extend_from_slice(out.lambda());
        engine.run_warm_into(&csr2, &carried, &mut out).unwrap();
        let warmup_welfare = out.welfare();

        // Steady state: cold and warm runs over both slots, zero
        // allocations.
        let before = allocations();
        engine.run_into(&csr2, &mut out).unwrap();
        engine.run_into(&csr1, &mut out).unwrap();
        carried.clear();
        carried.extend_from_slice(out.lambda());
        engine.run_warm_into(&csr2, &carried, &mut out).unwrap();
        engine.run_into(&csr2, &mut out).unwrap();
        // Probes compiled in but disabled: the `NoProbe` entry points
        // monomorphize to the bare loop and must stay allocation-free too
        // (the observability layer's zero-overhead-when-off guarantee).
        engine.run_into_probed(&csr1, &mut out, &mut NoProbe).unwrap();
        engine.run_warm_into_probed(&csr2, &carried, &mut out, &mut NoProbe).unwrap();
        let after = allocations();
        assert_eq!(
            after - before,
            0,
            "shards={shards}: the CSR hot loop must not allocate after warm-up"
        );
        assert!(out.welfare() > 0.0);
        assert_eq!(out.welfare(), warmup_welfare, "shards={shards}: runs stay deterministic");
    }
}
