//! Property-based verification of Theorem 1: on random (tie-free,
//! continuous-valued) instances the primal-dual auction reaches exactly the
//! optimal social welfare computed by the independent min-cost-flow solver,
//! and its primal/dual pair passes the complementary-slackness certificate.

use p2p_core::bertsekas::solve_via_expansion;
use p2p_core::dist::{DistConfig, DistributedAuction};
use p2p_core::{verify_optimality, AuctionConfig, SyncAuction, WelfareInstance};
use p2p_types::{ChunkId, Cost, PeerId, RequestId, SimDuration, Valuation, VideoId};
use proptest::prelude::*;

/// A randomly generated welfare instance with continuous utilities (ties
/// have probability zero, the regime of the paper's Theorem 1).
fn arb_instance() -> impl Strategy<Value = WelfareInstance> {
    let provider = (1u32..=5).prop_map(|cap| cap); // capacity
    let providers = prop::collection::vec(provider, 1..8);
    providers.prop_flat_map(|caps| {
        let p = caps.len();
        let edge = (0..p, 0.8f64..8.0, 0.0f64..10.0);
        let request = prop::collection::vec(edge, 0..=p);
        let requests = prop::collection::vec(request, 0..20);
        (Just(caps), requests).prop_map(|(caps, reqs)| {
            let mut b = WelfareInstance::builder();
            for (i, cap) in caps.iter().enumerate() {
                b.add_provider(PeerId::new(1000 + i as u32), *cap);
            }
            for (d, edges) in reqs.into_iter().enumerate() {
                let r = b.add_request(RequestId::new(
                    PeerId::new(d as u32),
                    ChunkId::new(VideoId::new(0), d as u32),
                ));
                let mut seen = std::collections::HashSet::new();
                for (u, v, w) in edges {
                    if seen.insert(u) {
                        b.add_edge(r, u, Valuation::new(v), Cost::new(w)).unwrap();
                    }
                }
            }
            b.build().unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The ε = 0 auction matches the exact optimum on tie-free instances.
    #[test]
    fn sync_auction_is_socially_optimal(inst in arb_instance()) {
        let out = SyncAuction::new(AuctionConfig::paper()).run(&inst).unwrap();
        prop_assert!(out.converged);
        let exact = inst.optimal_welfare().get();
        let got = out.assignment.welfare(&inst).get();
        prop_assert!((got - exact).abs() < 1e-6,
            "auction {got} vs exact {exact}");
        prop_assert!(out.assignment.validate(&inst).is_ok());
    }

    /// The converged primal/dual pair passes the Theorem 1 certificate.
    #[test]
    fn sync_auction_satisfies_complementary_slackness(inst in arb_instance()) {
        let out = SyncAuction::new(AuctionConfig::paper()).run(&inst).unwrap();
        let report = verify_optimality(&inst, &out.assignment, &out.duals, 1e-7);
        prop_assert!(report.is_optimal(), "violations: {:?}", report.violations);
    }

    /// Weak duality holds strictly: primal ≤ dual for the reported pair.
    #[test]
    fn weak_duality(inst in arb_instance()) {
        let out = SyncAuction::new(AuctionConfig::paper()).run(&inst).unwrap();
        prop_assert!(out.assignment.welfare(&inst).get()
            <= out.duals.objective(&inst) + 1e-6);
    }

    /// The asynchronous message-level execution (random latencies, stale
    /// prices, racing evictions) reaches the same optimum.
    #[test]
    fn distributed_execution_matches_exact_optimum(
        inst in arb_instance(),
        latency_seed in 0u64..1000,
    ) {
        let latency: p2p_core::dist::LatencyFn = Box::new(move |from, to| {
            let mix = latency_seed
                .wrapping_mul(31)
                .wrapping_add(u64::from(from.get()) * 17 + u64::from(to.get()) * 7);
            SimDuration::from_millis(5 + mix % 150)
        });
        let out = DistributedAuction::new(DistConfig::paper(), latency)
            .run(&inst)
            .unwrap();
        let exact = inst.optimal_welfare().get();
        prop_assert!((out.assignment.welfare(&inst).get() - exact).abs() < 1e-6);
        prop_assert!(out.assignment.validate(&inst).is_ok());
    }

    /// The ε-auction is within `requests · ε` of optimal (Bertsekas bound).
    #[test]
    fn epsilon_auction_respects_bertsekas_bound(
        inst in arb_instance(),
        eps in 0.001f64..0.5,
    ) {
        let out = SyncAuction::new(AuctionConfig::with_epsilon(eps)).run(&inst).unwrap();
        let exact = inst.optimal_welfare().get();
        let bound = inst.request_count() as f64 * eps + 1e-9;
        prop_assert!(out.assignment.welfare(&inst).get() >= exact - bound);
    }

    /// The Fig. 1 expansion + classic assignment auction also reaches the
    /// ε-bound optimum. The auction's running time scales as
    /// value-range/ε (identical duplicated objects trigger ε-step price
    /// wars), so a realistically sized ε is used and the Bertsekas bound
    /// `n·ε` is asserted.
    #[test]
    fn expansion_auction_respects_bound(inst in arb_instance()) {
        let eps = 0.05;
        let a = solve_via_expansion(&inst, eps).unwrap();
        prop_assert!(a.validate(&inst).is_ok());
        let exact = inst.optimal_welfare().get();
        let bound = inst.request_count() as f64 * eps + 1e-9;
        prop_assert!(a.welfare(&inst).get() >= exact - bound);
    }

    /// ε-scaling is always feasible and respects its provable (coarse)
    /// bound `n · initial`; the tight `n · final_epsilon` bound holds only
    /// on tie-free warm starts (see `run_scaled`'s docs) and is asserted by
    /// unit tests on generic instances.
    #[test]
    fn scaled_auction_respects_coarse_bound(inst in arb_instance()) {
        let scaling = p2p_core::EpsilonScaling { initial: 2.0, decay: 4.0, final_epsilon: 0.001 };
        let out = SyncAuction::new(AuctionConfig::paper())
            .run_scaled(&inst, scaling)
            .unwrap();
        let exact = inst.optimal_welfare().get();
        let bound = inst.request_count() as f64 * scaling.initial + 1e-9;
        prop_assert!(out.assignment.welfare(&inst).get() >= exact - bound,
            "scaled {} vs exact {exact}", out.assignment.welfare(&inst).get());
        prop_assert!(out.assignment.validate(&inst).is_ok());
    }

    /// Final prices are non-negative and every unprofitable request stays
    /// unserved (the auction never forces negative-utility downloads).
    #[test]
    fn no_negative_utility_assignments(inst in arb_instance()) {
        let out = SyncAuction::new(AuctionConfig::paper()).run(&inst).unwrap();
        for l in &out.duals.lambda {
            prop_assert!(*l >= 0.0);
        }
        for (r, req) in inst.requests().iter().enumerate() {
            if let Some(e) = out.assignment.choice(r) {
                prop_assert!(req.edges[e].utility().get() >= 0.0,
                    "assigned a negative-utility edge");
            }
        }
    }
}
