//! `P2P_CORES` pinning and shard-resolution parity.
//!
//! Every core-count consumer in the workspace (both engines' `Auto` shard
//! resolution and worker fan-out, plus the bench binaries) routes through
//! the single [`available_cores`] entry point, pinnable via the
//! `P2P_CORES` environment variable. These tests mutate that variable, so
//! they live in their own integration-test binary: each test binary is its
//! own process, and the tests below run under a process-wide lock so
//! parallel test threads never observe each other's pins.

use p2p_core::csr::FlatAuction;
use p2p_core::{available_cores, AuctionConfig, ShardCount, ShardedAuction};
use std::sync::Mutex;

/// Serializes every env-mutating test in this binary.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with `P2P_CORES` set to `value` (or unset for `None`),
/// restoring the previous state afterwards.
fn with_pin<R>(value: Option<&str>, f: impl FnOnce() -> R) -> R {
    let _guard = ENV_LOCK.lock().unwrap();
    let saved = std::env::var("P2P_CORES").ok();
    match value {
        Some(v) => std::env::set_var("P2P_CORES", v),
        None => std::env::remove_var("P2P_CORES"),
    }
    let out = f();
    match saved {
        Some(v) => std::env::set_var("P2P_CORES", v),
        None => std::env::remove_var("P2P_CORES"),
    }
    out
}

#[test]
fn pin_overrides_the_machine_core_count() {
    for cores in [1usize, 2, 3, 17] {
        let pinned = with_pin(Some(&cores.to_string()), available_cores);
        assert_eq!(pinned, cores);
    }
}

#[test]
fn invalid_pins_fall_back_to_the_machine() {
    let machine = with_pin(None, available_cores);
    assert!(machine >= 1);
    for bad in ["0", "-3", "abc", "", "  ", "1.5"] {
        let got = with_pin(Some(bad), available_cores);
        assert_eq!(got, machine, "pin {bad:?} should fall back");
    }
    // Surrounding whitespace is tolerated on a valid pin.
    assert_eq!(with_pin(Some(" 4 "), available_cores), 4);
}

/// The regression the satellite pins down: `ShardedAuction` and
/// `FlatAuction` resolve `Auto` through the *same* entry point, so for the
/// same slot size on pinned cores they always pick the same effective
/// shard count — the two engines can never drift apart again.
#[test]
fn nested_and_flat_engines_resolve_identical_shard_counts() {
    for cores in [1usize, 2, 4, 8] {
        with_pin(Some(&cores.to_string()), || {
            for shards in [ShardCount::Auto, ShardCount::Fixed(3)] {
                let nested = ShardedAuction::new(AuctionConfig::paper(), shards);
                let flat = FlatAuction::new(AuctionConfig::paper(), shards);
                for requests in [0usize, 100, 256, 512, 1_000, 4_096, 10_000, 100_000] {
                    assert_eq!(
                        nested.effective_shards(requests),
                        flat.effective_shards(requests),
                        "cores={cores} shards={shards:?} requests={requests}"
                    );
                }
            }
        });
    }
}

#[test]
fn auto_resolution_is_capped_by_the_pin() {
    with_pin(Some("2"), || {
        let flat = FlatAuction::new(AuctionConfig::paper(), ShardCount::Auto);
        // Small slots stay sequential; large ones cap at the pinned cores.
        assert_eq!(flat.effective_shards(100), 1);
        assert_eq!(flat.effective_shards(10_000), 2);
        assert_eq!(ShardCount::Auto.resolve(), 2);
    });
    with_pin(Some("64"), || {
        let nested = ShardedAuction::new(AuctionConfig::paper(), ShardCount::Auto);
        // 10_000 / 256 = 39 shards, under the generous pin.
        assert_eq!(nested.effective_shards(10_000), 39);
    });
}

/// Pinning changes only the fan-out, never the outcome: a pinned 1-core
/// run and an unpinned run of the same instance are bit-identical.
#[test]
fn pinning_does_not_change_outcomes() {
    use p2p_types::{ChunkId, Cost, PeerId, RequestId, Valuation, VideoId};
    let mut b = p2p_core::WelfareInstance::builder();
    let providers: Vec<_> = (0..6).map(|u| b.add_provider(PeerId::new(100 + u), 2)).collect();
    for d in 0..40u32 {
        let r = b.add_request(RequestId::new(PeerId::new(d), ChunkId::new(VideoId::new(0), d)));
        for (i, &u) in providers.iter().enumerate() {
            let v = 2.0 + f64::from(d % 7) * 0.31 + i as f64 * 0.17;
            b.add_edge(r, u, Valuation::new(v), Cost::new(0.4 + i as f64 * 0.05)).unwrap();
        }
    }
    let inst = b.build().unwrap();
    let csr = p2p_core::CsrInstance::compile(&inst);
    let pinned = with_pin(Some("1"), || {
        FlatAuction::new(AuctionConfig::paper(), ShardCount::Fixed(4)).run(&csr).unwrap()
    });
    let free = with_pin(None, || {
        FlatAuction::new(AuctionConfig::paper(), ShardCount::Fixed(4)).run(&csr).unwrap()
    });
    assert_eq!(pinned.assignment, free.assignment);
    assert_eq!(pinned.duals, free.duals);
    assert_eq!(pinned.rounds, free.rounds);
}
