//! Determinism regression tests for the virtual-time swarm simulator.
//!
//! The swarm backend's whole value is *replayability*: a run is a pure
//! function of `(instance, network model, seed)`. These tests pin that
//! down along every axis that has historically broken determinism in
//! event-driven simulators — repeated runs, machine parallelism
//! (`P2P_CORES` pins), and the seed itself (distinct seeds must produce
//! genuinely distinct fault schedules, or "seeded" is a lie). They mutate
//! `P2P_CORES`, so they live in their own integration-test binary behind a
//! process-wide lock (same pattern as `cores_pin.rs`).

use p2p_core::{NetworkModel, SwarmAuction, SwarmConfig, SwarmOutcome, WelfareInstance};
use p2p_types::{ChunkId, Cost, PeerId, RequestId, Valuation, VideoId};
use std::sync::Mutex;

/// Serializes every env-mutating test in this binary.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with `P2P_CORES` set to `value` (or unset for `None`),
/// restoring the previous state afterwards.
fn with_pin<R>(value: Option<&str>, f: impl FnOnce() -> R) -> R {
    let _guard = ENV_LOCK.lock().unwrap();
    let saved = std::env::var("P2P_CORES").ok();
    match value {
        Some(v) => std::env::set_var("P2P_CORES", v),
        None => std::env::remove_var("P2P_CORES"),
    }
    let out = f();
    match saved {
        Some(v) => std::env::set_var("P2P_CORES", v),
        None => std::env::remove_var("P2P_CORES"),
    }
    out
}

/// A contended instance big enough that faults actually reorder traffic:
/// 8 providers × 60 requests with overlapping preferences.
fn instance() -> WelfareInstance {
    let mut b = WelfareInstance::builder();
    let providers: Vec<_> = (0..8).map(|u| b.add_provider(PeerId::new(500 + u), 3)).collect();
    for d in 0..60u32 {
        let r = b.add_request(RequestId::new(PeerId::new(d), ChunkId::new(VideoId::new(0), d)));
        for (i, &u) in
            providers.iter().enumerate().filter(|(i, _)| !(d as usize + i).is_multiple_of(3))
        {
            let v = 2.0 + f64::from(d % 11) * 0.23 + i as f64 * 0.13;
            b.add_edge(r, u, Valuation::new(v), Cost::new(0.3 + i as f64 * 0.07)).unwrap();
        }
    }
    b.build().unwrap()
}

fn lossy_run(seed: u64) -> SwarmOutcome {
    SwarmAuction::new(SwarmConfig::with_epsilon(0.05), NetworkModel::lossy())
        .run(&instance(), seed)
        .unwrap()
}

/// The event trace and every summary statistic replay byte-identically
/// across repeated runs with the same seed.
#[test]
fn same_seed_replays_identically_across_runs() {
    let a = lossy_run(42);
    let b = lossy_run(42);
    assert_eq!(a.trace_hash, b.trace_hash, "event traces diverged");
    assert_eq!(a.faults, b.faults, "fault schedules diverged");
    assert_eq!(a.events, b.events);
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.converged_at, b.converged_at);
    assert_eq!(a.assignment, b.assignment);
    assert_eq!(a.duals, b.duals);
}

/// The simulator is single-threaded by construction, so the machine's
/// core count — pinned or free — can never leak into the trace: runs
/// under `P2P_CORES=1`, `P2P_CORES=8`, and no pin are bit-identical.
#[test]
fn swarm_outcomes_are_invariant_under_cores_pins() {
    let baseline = with_pin(None, || lossy_run(7));
    for pin in ["1", "2", "8", "32"] {
        let pinned = with_pin(Some(pin), || lossy_run(7));
        assert_eq!(pinned.trace_hash, baseline.trace_hash, "P2P_CORES={pin} changed the trace");
        assert_eq!(pinned.faults, baseline.faults, "P2P_CORES={pin} changed the fault schedule");
        assert_eq!(pinned.assignment, baseline.assignment);
        assert_eq!(pinned.duals, baseline.duals);
        assert_eq!(pinned.events, baseline.events);
    }
}

/// Distinct seeds draw distinct fault schedules: over a handful of seeds
/// every trace hash is unique and the drop counters are not all equal.
#[test]
fn distinct_seeds_draw_distinct_fault_schedules() {
    let outs: Vec<SwarmOutcome> = (0..6).map(|s| lossy_run(s * 1291 + 17)).collect();
    let hashes: std::collections::HashSet<u64> = outs.iter().map(|o| o.trace_hash).collect();
    assert_eq!(hashes.len(), outs.len(), "seeds shared an event trace");
    assert!(
        outs.iter().any(|o| o.faults != outs[0].faults),
        "every seed produced the same fault counters — the schedule is not seed-driven"
    );
}
