//! The coalesced swarm loop's zero-allocation steady state, asserted with
//! a counting global allocator: once the event queue, arena mailboxes and
//! per-node buffers have grown to the run's working size, event dispatch
//! and mailbox recycling allocate nothing.
//!
//! Unlike the CSR engine (`csr_zero_alloc`), a swarm run builds its world
//! fresh per call, so warm-up cannot be a separate slot — the window is
//! carved out of a single run instead. An [`AuctionProbe`] snapshots the
//! allocation counter at every `price_change`/`round` callback into a
//! preallocated buffer; buffers reach their high-water marks in the
//! opening flash-crowd burst, so the back half of the callback stream must
//! sit on one flat allocation count.
//!
//! This file holds exactly one `#[test]` so no sibling test can allocate
//! concurrently inside the measured windows.

use p2p_core::{
    verify_optimality, AuctionProbe, NetworkModel, SwarmAuction, SwarmConfig, WelfareInstance,
};
use p2p_types::{ChunkId, Cost, PeerId, RequestId, SimDuration, Valuation, VideoId};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation and reallocation routed through the global
/// allocator (deallocations are free and uncounted) — but only on threads
/// that opted in via [`MEASURED`], for the same reason as `csr_zero_alloc`:
/// the libtest harness thread lazily allocates its channel-park context at
/// an arbitrary moment, and the swarm run is single-threaded anyway.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Set on the thread whose allocations should count.
    static MEASURED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// True when the current thread opted into counting (false during TLS
/// teardown, when the keys are gone).
fn on_measured_thread() -> bool {
    MEASURED.try_with(std::cell::Cell::get).unwrap_or(false)
}

// SAFETY: delegates every operation verbatim to the system allocator; the
// counter is a relaxed atomic with no effect on allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if on_measured_thread() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if on_measured_thread() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if on_measured_thread() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Records the allocation counter at every probe callback into a buffer
/// preallocated *before* measurement starts, so the recording itself
/// never allocates (pushes stay within capacity).
struct AllocTrace {
    snaps: Vec<u64>,
}

impl AllocTrace {
    fn with_capacity(cap: usize) -> Self {
        AllocTrace { snaps: Vec::with_capacity(cap) }
    }

    fn mark(&mut self) {
        if self.snaps.len() < self.snaps.capacity() {
            self.snaps.push(allocations());
        }
    }

    /// Allocations observed across the back half of the callback stream —
    /// zero means steady-state dispatch is allocation-free.
    fn tail_allocations(&self) -> u64 {
        let last = *self.snaps.last().expect("probe saw callbacks");
        last - self.snaps[self.snaps.len() / 2]
    }
}

impl AuctionProbe for AllocTrace {
    fn enabled(&self) -> bool {
        true
    }

    fn round(&mut self, _round: u64, _bids: u64, _conflicts: u64, _retries: u64, _retired: u64) {
        self.mark();
    }

    fn price_change(&mut self, _provider: usize, _delta: f64) {
        self.mark();
    }
}

/// A deterministic hash in [0, 1) — tie-free instance material.
fn unit(seed: u64) -> f64 {
    let mut z = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// A contended flash-crowd slot: `requests` requests over `requests / 12`
/// providers, ~5 candidate edges each — enough conflict pressure that
/// prices keep moving (and the probe keeps sampling) deep into the run.
fn slot_instance(salt: u64, requests: u64) -> WelfareInstance {
    let mut b = WelfareInstance::builder();
    let providers = (requests / 12).max(3);
    let us: Vec<_> = (0..providers)
        .map(|i| b.add_provider(PeerId::new(100_000 + i as u32), 1 + (unit(salt ^ i) * 3.0) as u32))
        .collect();
    for d in 0..requests {
        let r = b.add_request(RequestId::new(
            PeerId::new(d as u32),
            ChunkId::new(VideoId::new(0), d as u32),
        ));
        for k in 0..5u64 {
            let u = us[((unit(salt + d * 13 + k) * providers as f64) as usize).min(us.len() - 1)];
            let v = 2.0 + 6.0 * unit(salt + d * 31 + k * 7 + 1);
            let w = 0.2 + 3.0 * unit(salt + d * 17 + k * 11 + 2);
            if b.add_edge(r, u, Valuation::new(v), Cost::new(w)).is_err() {
                continue; // duplicate (request, provider) pair — skip
            }
        }
    }
    b.build().unwrap()
}

#[test]
fn swarm_dispatch_allocates_nothing_in_steady_state() {
    MEASURED.with(|m| m.set(true));
    let inst = slot_instance(5, 96);
    let config = SwarmConfig::with_epsilon(0.01);

    // Reactive mode on a latency-only network: uniform 1 ms hops make the
    // flash-crowd fan-in collide on identical timestamps, so the arena
    // mailboxes and the coalescing fast path both run hot. Zero faults
    // keep links in order — this is the dispatch/recycle loop itself, not
    // the resequencer, under the allocation microscope.
    let net = NetworkModel { base_latency: SimDuration::from_millis(1), ..NetworkModel::ideal() };
    let mut trace = AllocTrace::with_capacity(1 << 16);
    let out = SwarmAuction::new(config, net).run_probed(&inst, 42, &mut trace).unwrap();
    assert!(out.converged);
    assert!(out.coalesced_events > 0, "the coalesced path must actually execute: {out:?}");
    assert!(trace.snaps.len() >= 64, "probe window too small: {}", trace.snaps.len());
    assert_eq!(
        trace.tail_allocations(),
        0,
        "reactive dispatch + mailbox recycling must not allocate after warm-up"
    );
    let tol = 0.01 * (inst.request_count() as f64 + 1.0);
    assert!(verify_optimality(&inst, &out.assignment, &out.duals, tol).is_optimal());

    // Ideal mode: the synchronous sweep replayed on virtual time. The
    // event queue and node buffers are warm after round 1; every later
    // round must run allocation-free.
    let mut trace = AllocTrace::with_capacity(1 << 16);
    let out =
        SwarmAuction::new(config, NetworkModel::ideal()).run_probed(&inst, 42, &mut trace).unwrap();
    assert!(out.converged);
    assert!(trace.snaps.len() >= 8, "probe window too small: {}", trace.snaps.len());
    assert_eq!(
        trace.tail_allocations(),
        0,
        "the ideal sweep loop must not allocate after its first round"
    );
}
