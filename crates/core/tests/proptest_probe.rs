//! Property-based certification of the probe seam: on arbitrary
//! instances, every engine — the synchronous sweep, the sharded nested
//! engine, and the flat CSR engine at shard counts 1/2/8 — produces
//! **bit-identical** outcomes (assignments, duals, rounds, bids) whether
//! it runs bare, probed with the no-op [`NoProbe`], or probed with a
//! [`CountingProbe`]; and the counting probe's report agrees with the
//! outcome's own counters and the Theorem 1 `n·ε` slack bound.

use p2p_core::csr::{CsrInstance, FlatAuction, FlatOutcome};
use p2p_core::{
    AuctionConfig, AuctionOutcome, CountingProbe, NoProbe, ShardCount, ShardedAuction, SyncAuction,
    WelfareInstance,
};
use p2p_types::{ChunkId, Cost, PeerId, RequestId, Valuation, VideoId};
use proptest::prelude::*;

/// A randomly generated welfare instance with continuous utilities (ties
/// have probability zero, the regime of the paper's Theorem 1).
fn arb_instance() -> impl Strategy<Value = WelfareInstance> {
    let providers = prop::collection::vec(0u32..=5, 1..8);
    providers.prop_flat_map(|caps| {
        let p = caps.len();
        let edge = (0..p, 0.8f64..8.0, 0.0f64..10.0);
        let request = prop::collection::vec(edge, 0..=p);
        let requests = prop::collection::vec(request, 0..24);
        (Just(caps), requests).prop_map(|(caps, reqs)| {
            let mut b = WelfareInstance::builder();
            for (i, cap) in caps.iter().enumerate() {
                b.add_provider(PeerId::new(1000 + i as u32), *cap);
            }
            for (d, edges) in reqs.into_iter().enumerate() {
                let r = b.add_request(RequestId::new(
                    PeerId::new(d as u32),
                    ChunkId::new(VideoId::new(0), d as u32),
                ));
                let mut seen = std::collections::HashSet::new();
                for (u, v, w) in edges {
                    if seen.insert(u) {
                        b.add_edge(r, u, Valuation::new(v), Cost::new(w)).unwrap();
                    }
                }
            }
            b.build().unwrap()
        })
    })
}

fn assert_outcomes_identical(label: &str, probed: &AuctionOutcome, bare: &AuctionOutcome) {
    assert_eq!(probed.assignment, bare.assignment, "{label}: assignment");
    assert_eq!(probed.duals, bare.duals, "{label}: duals");
    assert_eq!(probed.rounds, bare.rounds, "{label}: rounds");
    assert_eq!(probed.bids_submitted, bare.bids_submitted, "{label}: bids");
}

/// The probe's run-level counters must agree with the outcome's own and
/// the slack must carry the Theorem 1 certificate.
fn assert_report_consistent(
    label: &str,
    probe: &mut CountingProbe,
    out: &AuctionOutcome,
    inst: &WelfareInstance,
    eps: f64,
) {
    let report = probe.take_report();
    assert_eq!(report.runs, 1, "{label}: runs");
    assert_eq!(report.rounds, out.rounds, "{label}: report rounds");
    assert_eq!(report.bids, out.bids_submitted, "{label}: report bids");
    assert_eq!(report.assigned, out.assignment.assigned_count() as u64, "{label}: assigned");
    let tol = eps * (inst.request_count() as f64 + 1.0) + 1e-6;
    assert!(
        report.slack.is_finite() && report.slack <= tol,
        "{label}: slack {} exceeds n·ε bound {tol}",
        report.slack
    );
    // Every bid moved some price, so the delta histogram saw every bid
    // that was not a retirement/abstention no-op; it can never see more
    // events than bids were submitted.
    assert!(report.price_deltas.total() <= report.bids, "{label}: more price deltas than bids");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The synchronous sweep is bit-identical bare vs `NoProbe` vs
    /// `CountingProbe`, and the counting report matches the outcome.
    #[test]
    fn sync_probes_never_perturb_outcomes(
        inst in arb_instance(),
        eps in 0.001f64..0.5,
    ) {
        let engine = SyncAuction::new(AuctionConfig::with_epsilon(eps));
        let bare = engine.run(&inst).unwrap();
        let noop = engine.run_probed(&inst, &mut NoProbe).unwrap();
        assert_outcomes_identical("sync noop", &noop, &bare);
        let mut probe = CountingProbe::new();
        let counted = engine.run_probed(&inst, &mut probe).unwrap();
        assert_outcomes_identical("sync counted", &counted, &bare);
        assert_report_consistent("sync", &mut probe, &bare, &inst, eps);
    }

    /// The sharded nested engine is bit-identical bare vs probed at
    /// shard counts 2 and 8.
    #[test]
    fn sharded_probes_never_perturb_outcomes(
        inst in arb_instance(),
        eps in 0.001f64..0.5,
    ) {
        for shards in [2usize, 8] {
            let engine = ShardedAuction::new(
                AuctionConfig::with_epsilon(eps),
                ShardCount::Fixed(shards),
            );
            let bare = engine.run(&inst).unwrap();
            let mut probe = CountingProbe::new();
            let counted = engine.run_probed(&inst, &mut probe).unwrap();
            assert_outcomes_identical(&format!("sharded {shards}"), &counted, &bare);
            assert_report_consistent(&format!("sharded {shards}"), &mut probe, &bare, &inst, eps);
        }
    }

    /// The flat CSR engine is bit-identical bare vs `NoProbe` vs
    /// `CountingProbe` at shard counts 1/2/8, cold and warm-started.
    #[test]
    fn flat_probes_never_perturb_outcomes(
        inst in arb_instance(),
        eps in 0.001f64..0.5,
    ) {
        let csr = CsrInstance::compile(&inst);
        for shards in [1usize, 2, 8] {
            let cfg = AuctionConfig::with_epsilon(eps);
            let mut engine = FlatAuction::new(cfg, ShardCount::Fixed(shards));
            let mut out = FlatOutcome::default();
            engine.run_into(&csr, &mut out).unwrap();
            let bare = out.to_outcome();

            engine.run_into_probed(&csr, &mut out, &mut NoProbe).unwrap();
            assert_outcomes_identical(&format!("flat noop {shards}"), &out.to_outcome(), &bare);

            let mut probe = CountingProbe::new();
            engine.run_into_probed(&csr, &mut out, &mut probe).unwrap();
            assert_outcomes_identical(&format!("flat counted {shards}"), &out.to_outcome(), &bare);
            assert_report_consistent(&format!("flat {shards}"), &mut probe, &bare, &inst, eps);

            // Warm-started from the cold duals: probed and bare agree too.
            let carried = bare.duals.lambda.clone();
            engine.run_warm_into(&csr, &carried, &mut out).unwrap();
            let warm_bare = out.to_outcome();
            engine.run_warm_into_probed(&csr, &carried, &mut out, &mut probe).unwrap();
            assert_outcomes_identical(
                &format!("flat warm {shards}"),
                &out.to_outcome(),
                &warm_bare,
            );
        }
    }

    /// A probe accumulates across runs and `take_report` drains it: two
    /// probed passes double the counters, and the drained probe reports
    /// empty afterwards.
    #[test]
    fn counting_probe_accumulates_and_drains(inst in arb_instance()) {
        let engine = SyncAuction::new(AuctionConfig::with_epsilon(0.01));
        let bare = engine.run(&inst).unwrap();
        let mut probe = CountingProbe::new();
        engine.run_probed(&inst, &mut probe).unwrap();
        engine.run_probed(&inst, &mut probe).unwrap();
        let report = probe.take_report();
        prop_assert_eq!(report.runs, 2);
        prop_assert_eq!(report.rounds, bare.rounds * 2);
        prop_assert_eq!(report.bids, bare.bids_submitted * 2);
        prop_assert!(probe.take_report().is_empty());
    }
}
