//! Property-based gate for reactive event coalescing: a coalesced run
//! must be **byte-identical** to the one-event-per-message baseline on
//! arbitrary instances under arbitrary seeded fault schedules — same
//! trace hash, same fault counters, same assignment/duals/bid counts,
//! same quiescence time — while still carrying the Theorem 1 `n·ε`
//! certificate. Coalescing is only allowed to change *bookkeeping*
//! (event count, queue depth), never anything a message saw.
//!
//! Two network families stress different regimes: the `lossy`-style
//! continuous models (reorder/duplicate races with jitter) and
//! quantized zero-jitter models whose synchronized latencies and
//! retry-timeout grid make same-timestamp fan-in — the case coalescing
//! actually batches — common instead of measure-zero.

use p2p_core::{
    verify_optimality, NetworkModel, SwarmAuction, SwarmConfig, SwarmOutcome, WelfareInstance,
};
use p2p_types::{ChunkId, Cost, PeerId, RequestId, SimDuration, SimTime, Valuation, VideoId};
use proptest::prelude::*;

/// A randomly generated welfare instance with continuous utilities (same
/// generator family as `proptest_swarm`).
fn arb_instance() -> impl Strategy<Value = WelfareInstance> {
    let providers = prop::collection::vec(1u32..=5, 1..8);
    providers.prop_flat_map(|caps| {
        let p = caps.len();
        let edge = (0..p, 0.8f64..8.0, 0.0f64..10.0);
        let request = prop::collection::vec(edge, 0..=p);
        let requests = prop::collection::vec(request, 0..16);
        (Just(caps), requests).prop_map(|(caps, reqs)| {
            let mut b = WelfareInstance::builder();
            for (i, cap) in caps.iter().enumerate() {
                b.add_provider(PeerId::new(1000 + i as u32), *cap);
            }
            for (d, edges) in reqs.into_iter().enumerate() {
                let r = b.add_request(RequestId::new(
                    PeerId::new(d as u32),
                    ChunkId::new(VideoId::new(0), d as u32),
                ));
                let mut seen = std::collections::HashSet::new();
                for (u, v, w) in edges {
                    if seen.insert(u) {
                        b.add_edge(r, u, Valuation::new(v), Cost::new(w)).unwrap();
                    }
                }
            }
            b.build().unwrap()
        })
    })
}

/// Continuous faulty models: every fault class with jittered latencies,
/// so deliveries genuinely race (the `lossy` preset's regime).
fn arb_faulty_net() -> impl Strategy<Value = NetworkModel> {
    (
        0.0f64..0.4,  // drop
        0.0f64..0.25, // duplicate
        0.0f64..0.4,  // reorder
        1u64..10,     // base latency ms
        0u64..8,      // link spread ms
        0u64..8,      // jitter ms
    )
        .prop_map(|(drop, dup, reorder, base, spread, jitter)| NetworkModel {
            base_latency: SimDuration::from_millis(base),
            link_spread: SimDuration::from_millis(spread),
            jitter: SimDuration::from_millis(jitter),
            drop_prob: drop,
            duplicate_prob: dup,
            reorder_prob: reorder,
            reorder_delay: SimDuration::from_millis(20),
            ..NetworkModel::lossy()
        })
}

/// Quantized zero-jitter models: uniform latency, drops retried on a
/// fixed timeout grid, optional partition-heal bursts. Arrival times
/// collide constantly, so the coalescing fast path actually executes.
fn arb_quantized_net() -> impl Strategy<Value = NetworkModel> {
    (
        0.0f64..0.4,   // drop
        0.0f64..0.25,  // duplicate
        1u64..6,       // base latency ms
        any::<bool>(), // partition burst?
        1u64..5,       // retry timeout ms
    )
        .prop_map(|(drop, dup, base, split, retry)| {
            let net = NetworkModel {
                base_latency: SimDuration::from_millis(base),
                link_spread: SimDuration::ZERO,
                jitter: SimDuration::ZERO,
                drop_prob: drop,
                duplicate_prob: dup,
                reorder_prob: 0.0,
                reorder_delay: SimDuration::ZERO,
                retry_timeout: SimDuration::from_millis(retry),
                broadcast_window: SimDuration::from_millis(1),
                ..NetworkModel::lossy()
            };
            if split {
                net.with_partition(SimTime::from_micros(500), SimTime::from_micros(40_000))
            } else {
                net
            }
        })
}

fn run_both(
    inst: &WelfareInstance,
    net: &NetworkModel,
    seed: u64,
    eps: f64,
) -> (SwarmOutcome, SwarmOutcome) {
    let on = SwarmConfig::with_epsilon(eps);
    let off = SwarmConfig { coalesce: false, ..on };
    let a = SwarmAuction::new(on, net.clone()).run(inst, seed).unwrap();
    let b = SwarmAuction::new(off, net.clone()).run(inst, seed).unwrap();
    (a, b)
}

/// Everything a message could have observed must match; only event-count
/// bookkeeping (events, peak queue) may differ.
fn assert_byte_identical(a: &SwarmOutcome, b: &SwarmOutcome) {
    assert_eq!(a.trace_hash, b.trace_hash, "delivery order diverged");
    assert_eq!(a.faults, b.faults, "fault schedules diverged");
    assert_eq!(a.messages, b.messages);
    assert_eq!(&a.assignment, &b.assignment);
    assert_eq!(&a.duals.lambda, &b.duals.lambda);
    assert_eq!(a.bids_submitted, b.bids_submitted);
    assert_eq!(a.converged_at, b.converged_at);
    assert_eq!(a.converged, b.converged);
    assert_eq!(b.coalesced_events, 0, "the baseline must not coalesce");
    assert!(a.events <= b.events, "coalescing can only shrink the event count");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("PROPTEST_CASES").ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)))]

    /// Coalesced ≡ uncoalesced under continuous reorder/duplicate races,
    /// and the coalesced outcome still certifies.
    #[test]
    fn coalescing_is_invisible_under_faulty_nets(
        inst in arb_instance(),
        net in arb_faulty_net(),
        seed in 0u64..1000,
        eps in 0.01f64..0.2,
    ) {
        let (a, b) = run_both(&inst, &net, seed, eps);
        assert_byte_identical(&a, &b);
        prop_assert!(a.assignment.validate(&inst).is_ok(), "conservation");
        let tol = eps * (inst.request_count() as f64 + 1.0);
        let report = verify_optimality(&inst, &a.assignment, &a.duals, tol);
        prop_assert!(report.is_optimal(), "violations: {:?}", report.violations);
    }

    /// Coalesced ≡ uncoalesced on the quantized grid where same-timestamp
    /// fan-in (and so actual batching) is the common case, not the rare one.
    #[test]
    fn coalescing_is_invisible_under_quantized_nets(
        inst in arb_instance(),
        net in arb_quantized_net(),
        seed in 0u64..1000,
        eps in 0.01f64..0.2,
    ) {
        let (a, b) = run_both(&inst, &net, seed, eps);
        assert_byte_identical(&a, &b);
        let tol = eps * (inst.request_count() as f64 + 1.0);
        let report = verify_optimality(&inst, &a.assignment, &a.duals, tol);
        prop_assert!(report.is_optimal(), "violations: {:?}", report.violations);
    }

    /// The `lossy` preset itself — the model the bench gates on.
    #[test]
    fn coalescing_is_invisible_under_the_lossy_preset(
        inst in arb_instance(),
        seed in 0u64..1000,
    ) {
        let (a, b) = run_both(&inst, &NetworkModel::lossy(), seed, 0.05);
        assert_byte_identical(&a, &b);
    }

    /// Warm restarts (multi-pass CS 1 repair loop) coalesce invisibly too:
    /// per-pass seeds and the cross-pass trace hash fold must line up.
    #[test]
    fn warm_start_coalescing_is_invisible(
        inst in arb_instance(),
        net in arb_quantized_net(),
        seed in 0u64..1000,
    ) {
        let eps = 0.05;
        let on = SwarmConfig::with_epsilon(eps);
        let off = SwarmConfig { coalesce: false, ..on };
        let cold = SwarmAuction::new(on, net.clone()).run(&inst, seed).unwrap();
        let a = SwarmAuction::new(on, net.clone())
            .run_warm(&inst, &cold.duals.lambda, seed + 1)
            .unwrap();
        let b = SwarmAuction::new(off, net.clone())
            .run_warm(&inst, &cold.duals.lambda, seed + 1)
            .unwrap();
        assert_byte_identical(&a, &b);
    }
}

/// Deterministic anchor outside proptest: a partition-heal burst on a
/// zero-jitter net *must* exercise the batching fast path, so the
/// equivalence above is not vacuously comparing two identical code paths.
#[test]
fn quantized_partition_burst_actually_coalesces() {
    let mut b = WelfareInstance::builder();
    let u = b.add_provider(PeerId::new(900), 2);
    let v = b.add_provider(PeerId::new(901), 2);
    for d in 0..10u32 {
        let r = b.add_request(RequestId::new(PeerId::new(d), ChunkId::new(VideoId::new(0), d)));
        b.add_edge(r, u, Valuation::new(3.0 + f64::from(d) * 0.11), Cost::new(0.5)).unwrap();
        b.add_edge(r, v, Valuation::new(2.5 + f64::from(d) * 0.07), Cost::new(0.4)).unwrap();
    }
    let inst = b.build().unwrap();
    let net = NetworkModel {
        base_latency: SimDuration::from_millis(1),
        link_spread: SimDuration::ZERO,
        jitter: SimDuration::ZERO,
        drop_prob: 0.2,
        duplicate_prob: 0.1,
        reorder_prob: 0.0,
        retry_timeout: SimDuration::from_millis(2),
        ..NetworkModel::ideal()
    }
    .with_partition(SimTime::from_micros(100), SimTime::from_micros(30_000));
    let out =
        SwarmAuction::new(SwarmConfig::with_epsilon(0.02), net.clone()).run(&inst, 11).unwrap();
    assert!(out.coalesced_events > 0, "synchronized fan-in must batch: {out:?}");
    let off =
        SwarmAuction::new(SwarmConfig { coalesce: false, ..SwarmConfig::with_epsilon(0.02) }, net)
            .run(&inst, 11)
            .unwrap();
    assert_eq!(out.trace_hash, off.trace_hash);
    assert_eq!(out.faults, off.faults);
    assert_eq!(out.assignment, off.assignment);
    assert!(out.events < off.events);
}
