//! Property-based certification of the flat CSR engines: on arbitrary
//! instances — and arbitrary warm-started *slot chains*, the engine-level
//! image of scenario event sequences — [`FlatAuction`] is **bit-identical**
//! to the nested-layout engines (prices, assignments, rounds, bids,
//! welfare, and hence the Theorem 1 `n·ε` certificate) at shard counts
//! 1/2/8, and the `SyncAuction` retirement flag never changes outcomes.

use p2p_core::csr::{CsrInstance, FlatAuction};
use p2p_core::{
    verify_optimality, AuctionConfig, AuctionOutcome, ShardCount, ShardedAuction, SyncAuction,
    WelfareInstance,
};
use p2p_types::{ChunkId, Cost, PeerId, RequestId, Valuation, VideoId};
use proptest::prelude::*;

/// A randomly generated welfare instance with continuous utilities (ties
/// have probability zero, the regime of the paper's Theorem 1).
fn arb_instance() -> impl Strategy<Value = WelfareInstance> {
    let providers = prop::collection::vec(0u32..=5, 1..8);
    providers.prop_flat_map(|caps| {
        let p = caps.len();
        let edge = (0..p, 0.8f64..8.0, 0.0f64..10.0);
        let request = prop::collection::vec(edge, 0..=p);
        let requests = prop::collection::vec(request, 0..24);
        (Just(caps), requests).prop_map(|(caps, reqs)| {
            let mut b = WelfareInstance::builder();
            for (i, cap) in caps.iter().enumerate() {
                b.add_provider(PeerId::new(1000 + i as u32), *cap);
            }
            for (d, edges) in reqs.into_iter().enumerate() {
                let r = b.add_request(RequestId::new(
                    PeerId::new(d as u32),
                    ChunkId::new(VideoId::new(0), d as u32),
                ));
                let mut seen = std::collections::HashSet::new();
                for (u, v, w) in edges {
                    if seen.insert(u) {
                        b.add_edge(r, u, Valuation::new(v), Cost::new(w)).unwrap();
                    }
                }
            }
            b.build().unwrap()
        })
    })
}

/// A chain of 1–4 slot instances (the engine-level image of a scenario's
/// slot sequence: populations and demand change arbitrarily slot to slot).
fn arb_slot_chain() -> impl Strategy<Value = Vec<WelfareInstance>> {
    prop::collection::vec(arb_instance(), 1..4)
}

/// Shard counts exercised per case, as the satellite requires: 1 (the
/// sequential sweep), 2 and 8.
const SHARDS: [usize; 3] = [1, 2, 8];

fn assert_outcomes_identical(label: &str, flat: &AuctionOutcome, nested: &AuctionOutcome) {
    assert_eq!(flat.assignment, nested.assignment, "{label}: assignment");
    assert_eq!(flat.duals, nested.duals, "{label}: duals");
    assert_eq!(flat.rounds, nested.rounds, "{label}: rounds");
    assert_eq!(flat.bids_submitted, nested.bids_submitted, "{label}: bids");
}

/// The nested oracle for a given shard count: the synchronous sweep at 1,
/// the sharded engine otherwise.
fn nested_run(inst: &WelfareInstance, eps: f64, shards: usize) -> AuctionOutcome {
    if shards == 1 {
        SyncAuction::new(AuctionConfig::with_epsilon(eps)).run(inst).unwrap()
    } else {
        ShardedAuction::new(AuctionConfig::with_epsilon(eps), ShardCount::Fixed(shards))
            .run(inst)
            .unwrap()
    }
}

fn nested_run_warm(
    inst: &WelfareInstance,
    eps: f64,
    shards: usize,
    carried: &[f64],
) -> AuctionOutcome {
    if shards == 1 {
        SyncAuction::new(AuctionConfig::with_epsilon(eps)).run_warm(inst, carried).unwrap()
    } else {
        ShardedAuction::new(AuctionConfig::with_epsilon(eps), ShardCount::Fixed(shards))
            .run_warm(inst, carried)
            .unwrap()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cold runs are bit-identical to the nested engines at every shard
    /// count, and the flat outcome carries the same Theorem 1 certificate.
    #[test]
    fn flat_cold_runs_are_bit_identical(
        inst in arb_instance(),
        eps in 0.001f64..0.5,
    ) {
        let csr = CsrInstance::compile(&inst);
        prop_assert!(csr.matches(&inst));
        for shards in SHARDS {
            let nested = nested_run(&inst, eps, shards);
            let mut flat =
                FlatAuction::new(AuctionConfig::with_epsilon(eps), ShardCount::Fixed(shards));
            let out = flat.run(&csr).unwrap();
            assert_outcomes_identical(&format!("cold shards={shards}"), &out, &nested);
            let tol = eps * (inst.request_count() as f64 + 1.0);
            let report = verify_optimality(&inst, &out.assignment, &out.duals, tol);
            prop_assert!(report.is_optimal(), "shards={shards}: {:?}", report.violations);
        }
    }

    /// The ε = 0 paper rule: flat and nested agree bit-for-bit there too.
    #[test]
    fn flat_paper_rule_is_bit_identical(inst in arb_instance()) {
        let csr = CsrInstance::compile(&inst);
        for shards in SHARDS {
            let nested = nested_run(&inst, 0.0, shards);
            let mut flat = FlatAuction::new(AuctionConfig::paper(), ShardCount::Fixed(shards));
            let out = flat.run(&csr).unwrap();
            assert_outcomes_identical(&format!("paper shards={shards}"), &out, &nested);
        }
    }

    /// Warm-started slot chains — one engine reused across slots, prices
    /// carried from each slot into the next (arbitrary slot-to-slot
    /// changes) — stay bit-identical to the nested engines and certified
    /// at every slot. This is the engine-level image of running a scenario
    /// event sequence under a warm-starting scheduler.
    #[test]
    fn warm_slot_chains_are_bit_identical_and_certified(
        chain in arb_slot_chain(),
        eps in 0.001f64..0.3,
    ) {
        for shards in SHARDS {
            let mut flat =
                FlatAuction::new(AuctionConfig::with_epsilon(eps), ShardCount::Fixed(shards));
            let mut carried: Option<Vec<f64>> = None;
            for (slot, inst) in chain.iter().enumerate() {
                let csr = CsrInstance::compile(inst);
                let (out, nested) = match &carried {
                    None => (flat.run(&csr).unwrap(), nested_run(inst, eps, shards)),
                    Some(prices) => (
                        flat.run_warm(&csr, prices).unwrap(),
                        nested_run_warm(inst, eps, shards, prices),
                    ),
                };
                assert_outcomes_identical(&format!("slot {slot} shards={shards}"), &out, &nested);
                let tol = eps * (inst.request_count() as f64 + 1.0);
                let report = verify_optimality(inst, &out.assignment, &out.duals, tol);
                prop_assert!(
                    report.is_optimal(),
                    "slot {slot} shards={shards}: {:?}",
                    report.violations
                );
                carried = Some(out.duals.lambda);
            }
        }
    }

    /// `shards = auto` resolves identically for both layouts (the adaptive
    /// slot-size rule), so Auto outcomes are bit-identical too.
    #[test]
    fn auto_shard_resolution_is_bit_identical(inst in arb_instance()) {
        let csr = CsrInstance::compile(&inst);
        let nested = ShardedAuction::new(AuctionConfig::with_epsilon(0.01), ShardCount::Auto)
            .run(&inst)
            .unwrap();
        let mut flat = FlatAuction::new(AuctionConfig::with_epsilon(0.01), ShardCount::Auto);
        let out = flat.run(&csr).unwrap();
        assert_outcomes_identical("auto", &out, &nested);
    }

    /// The retirement flag folded back into `SyncAuction` never changes
    /// outcomes — retired requests could only have abstained — it only
    /// skips their re-scans.
    #[test]
    fn sync_retirement_flag_never_changes_outcomes(
        inst in arb_instance(),
        eps in 0.0f64..0.5,
    ) {
        let plain = SyncAuction::new(AuctionConfig::with_epsilon(eps)).run(&inst).unwrap();
        let retiring =
            SyncAuction::new(AuctionConfig::with_epsilon(eps).retiring_priced_out())
                .run(&inst)
                .unwrap();
        assert_outcomes_identical("retirement", &retiring, &plain);
        // The flat sweep honors the same flag with the same invariance.
        let csr = CsrInstance::compile(&inst);
        let mut flat = FlatAuction::new(
            AuctionConfig::with_epsilon(eps).retiring_priced_out(),
            ShardCount::Fixed(1),
        );
        let out = flat.run(&csr).unwrap();
        assert_outcomes_identical("flat retirement", &out, &plain);
    }

    /// Repeated runs of one engine (scratch reused) and a fresh engine are
    /// identical, threaded or not: scratch reuse and worker fan-out never
    /// leak into results.
    #[test]
    fn scratch_reuse_and_threads_never_leak_into_results(
        inst in arb_instance(),
        shards in 2usize..9,
    ) {
        let csr = CsrInstance::compile(&inst);
        let cfg = AuctionConfig::with_epsilon(0.01);
        let mut reused = FlatAuction::new(cfg, ShardCount::Fixed(shards));
        let first = reused.run(&csr).unwrap();
        let second = reused.run(&csr).unwrap();
        let threaded =
            FlatAuction::new(cfg, ShardCount::Fixed(shards)).with_workers(2).run(&csr).unwrap();
        assert_outcomes_identical("reused", &second, &first);
        assert_outcomes_identical("threaded", &threaded, &first);
    }
}
