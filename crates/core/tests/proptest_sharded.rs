//! Property-based verification of the sharded parallel engine: on arbitrary
//! instances and shard counts its welfare matches the synchronous engine
//! within the Bertsekas `n·ε` bound, the Theorem 1 certificate holds, warm
//! starts compose, and `shards = 1` is bit-identical to the sequential
//! sweep.

use p2p_core::{
    verify_optimality, AuctionConfig, ShardCount, ShardedAuction, SyncAuction, WelfareInstance,
};
use p2p_types::{ChunkId, Cost, PeerId, RequestId, Valuation, VideoId};
use proptest::prelude::*;

/// A randomly generated welfare instance with continuous utilities (ties
/// have probability zero, the regime of the paper's Theorem 1).
fn arb_instance() -> impl Strategy<Value = WelfareInstance> {
    let providers = prop::collection::vec(1u32..=5, 1..8);
    providers.prop_flat_map(|caps| {
        let p = caps.len();
        let edge = (0..p, 0.8f64..8.0, 0.0f64..10.0);
        let request = prop::collection::vec(edge, 0..=p);
        let requests = prop::collection::vec(request, 0..24);
        (Just(caps), requests).prop_map(|(caps, reqs)| {
            let mut b = WelfareInstance::builder();
            for (i, cap) in caps.iter().enumerate() {
                b.add_provider(PeerId::new(1000 + i as u32), *cap);
            }
            for (d, edges) in reqs.into_iter().enumerate() {
                let r = b.add_request(RequestId::new(
                    PeerId::new(d as u32),
                    ChunkId::new(VideoId::new(0), d as u32),
                ));
                let mut seen = std::collections::HashSet::new();
                for (u, v, w) in edges {
                    if seen.insert(u) {
                        b.add_edge(r, u, Valuation::new(v), Cost::new(w)).unwrap();
                    }
                }
            }
            b.build().unwrap()
        })
    })
}

/// Shard counts exercised per case, as the satellite requires: 1 (the
/// delegation case), 2 and 8.
const SHARDS: [usize; 3] = [1, 2, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// For every shard count, welfare is within `n·ε` of the synchronous
    /// engine's (both are within `n·ε` of optimal, asserted against the
    /// exact optimum) and the Theorem 1 certificate holds.
    #[test]
    fn sharded_welfare_matches_sync_within_the_bound(
        inst in arb_instance(),
        eps in 0.001f64..0.5,
    ) {
        let sync = SyncAuction::new(AuctionConfig::with_epsilon(eps)).run(&inst).unwrap();
        let exact = inst.optimal_welfare().get();
        let bound = inst.request_count() as f64 * eps + 1e-9;
        prop_assert!(sync.assignment.welfare(&inst).get() >= exact - bound);
        for shards in SHARDS {
            let out = ShardedAuction::new(
                AuctionConfig::with_epsilon(eps),
                ShardCount::Fixed(shards),
            )
            .run(&inst)
            .unwrap();
            let welfare = out.assignment.welfare(&inst).get();
            prop_assert!(
                welfare >= exact - bound,
                "shards={shards}: welfare {welfare} vs exact {exact} (bound {bound})"
            );
            prop_assert!(
                (welfare - sync.assignment.welfare(&inst).get()).abs() <= 2.0 * bound,
                "shards={shards}: strayed from the sync engine"
            );
            prop_assert!(out.assignment.validate(&inst).is_ok());
            let tol = eps * (inst.request_count() as f64 + 1.0);
            let report = verify_optimality(&inst, &out.assignment, &out.duals, tol);
            prop_assert!(report.is_optimal(), "shards={shards}: {:?}", report.violations);
        }
    }

    /// `shards = 1` delegates to the synchronous engine bit-for-bit.
    #[test]
    fn one_shard_equals_the_sync_engine_exactly(
        inst in arb_instance(),
        eps in 0.0f64..0.5,
    ) {
        let sync = SyncAuction::new(AuctionConfig::with_epsilon(eps)).run(&inst).unwrap();
        let sharded = ShardedAuction::new(AuctionConfig::with_epsilon(eps), ShardCount::Fixed(1))
            .run(&inst)
            .unwrap();
        prop_assert_eq!(&sharded.assignment, &sync.assignment);
        prop_assert_eq!(&sharded.duals, &sync.duals);
        prop_assert_eq!(sharded.rounds, sync.rounds);
        prop_assert_eq!(sharded.bids_submitted, sync.bids_submitted);
    }

    /// The ε = 0 paper rule on tie-free instances reaches the exact optimum
    /// under sharding, like the synchronous engine.
    #[test]
    fn epsilon_zero_sharded_is_socially_optimal(inst in arb_instance()) {
        let out = ShardedAuction::new(AuctionConfig::paper(), ShardCount::Fixed(8))
            .run(&inst)
            .unwrap();
        let exact = inst.optimal_welfare().get();
        prop_assert!((out.assignment.welfare(&inst).get() - exact).abs() < 1e-6);
        let report = verify_optimality(&inst, &out.assignment, &out.duals, 1e-7);
        prop_assert!(report.is_optimal(), "{:?}", report.violations);
    }

    /// Warm starts compose with sharding: re-running from carried prices
    /// keeps the certificate (the `run_warm` clamp + CS 1 repair loop), for
    /// any shard count and any carried-price perturbation.
    #[test]
    fn warm_started_sharded_runs_stay_certified(
        inst in arb_instance(),
        eps in 0.001f64..0.3,
        scale in 0.0f64..3.0,
        shards in 1usize..9,
    ) {
        let engine =
            ShardedAuction::new(AuctionConfig::with_epsilon(eps), ShardCount::Fixed(shards));
        let cold = engine.run(&inst).unwrap();
        // Perturbed carried prices model a changed next slot: scaled copies
        // of the converged vector (0 = cold restart, > 1 = overpriced).
        let carried: Vec<f64> = cold.duals.lambda.iter().map(|l| l * scale).collect();
        let warm = engine.run_warm(&inst, &carried).unwrap();
        prop_assert!(warm.converged);
        prop_assert!(warm.assignment.validate(&inst).is_ok());
        let tol = eps * (inst.request_count() as f64 + 1.0);
        let report = verify_optimality(&inst, &warm.assignment, &warm.duals, tol);
        prop_assert!(report.is_optimal(), "shards={shards}: {:?}", report.violations);
    }

    /// The engine is a pure function of (instance, config, shard count):
    /// repeated runs are bit-identical, including with forced worker
    /// threads (thread scheduling must not leak into results).
    #[test]
    fn sharded_outcomes_are_deterministic(inst in arb_instance(), shards in 2usize..9) {
        let engine =
            ShardedAuction::new(AuctionConfig::with_epsilon(0.01), ShardCount::Fixed(shards));
        let a = engine.run(&inst).unwrap();
        let b = engine.run(&inst).unwrap();
        let threaded = engine.clone().with_workers(2).run(&inst).unwrap();
        prop_assert_eq!(&a.assignment, &b.assignment);
        prop_assert_eq!(&a.duals, &b.duals);
        prop_assert_eq!(a.bids_submitted, b.bids_submitted);
        prop_assert_eq!(&a.assignment, &threaded.assignment);
        prop_assert_eq!(&a.duals, &threaded.duals);
        prop_assert_eq!(a.bids_submitted, threaded.bids_submitted);
    }
}
