//! Fuzz-shaped certification of the wire codec: encode/decode is a
//! bit-exact roundtrip for *arbitrary* protocol messages — including NaN,
//! ±∞ and subnormal prices, whose bit images must survive the trip — and
//! the decoder fails gracefully (typed error, no panic) on arbitrary byte
//! junk, every strict prefix of a valid encoding, and foreign versions.

use p2p_core::codec::{decode_msg, encode_msg, frame, frame_len, MAX_FRAME_LEN, WIRE_VERSION};
use p2p_core::messages::AuctionMsg;
use p2p_types::P2pError;
use proptest::prelude::*;

/// Any `f64` bit pattern: covers NaNs (quiet and signaling payloads), both
/// infinities, subnormals and -0.0 — the codec promises all of them travel
/// bit-exactly.
fn arb_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(f64::from_bits)
}

fn arb_index() -> impl Strategy<Value = usize> {
    any::<u64>().prop_map(|v| v as usize)
}

fn arb_msg() -> impl Strategy<Value = AuctionMsg> {
    prop_oneof![
        (arb_index(), arb_index(), arb_index(), arb_f64()).prop_map(
            |(request, edge, provider, amount)| AuctionMsg::Bid { request, edge, provider, amount }
        ),
        (arb_index(), arb_index())
            .prop_map(|(request, provider)| AuctionMsg::Accepted { request, provider }),
        (arb_index(), arb_index(), arb_f64()).prop_map(|(request, provider, price)| {
            AuctionMsg::Rejected { request, provider, price }
        }),
        (arb_index(), arb_index(), arb_f64()).prop_map(|(request, provider, price)| {
            AuctionMsg::Evicted { request, provider, price }
        }),
        (arb_index(), arb_index(), arb_f64()).prop_map(|(listener, provider, price)| {
            AuctionMsg::PriceUpdate { listener, provider, price }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("PROPTEST_CASES").ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256)))]

    /// Encode → decode → encode reproduces the original bytes exactly, for
    /// every message including non-finite float payloads. (Byte-level
    /// comparison is NaN-safe where `PartialEq` on the message is not.)
    #[test]
    fn roundtrip_is_bit_exact(msg in arb_msg()) {
        let bytes = encode_msg(&msg);
        let decoded = decode_msg(&bytes).expect("valid encoding must decode");
        prop_assert_eq!(encode_msg(&decoded), bytes);
    }

    /// Arbitrary byte junk never panics the decoder, and when it *does*
    /// decode, the bytes were canonical: re-encoding reproduces them.
    #[test]
    fn junk_decodes_gracefully_or_canonically(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        match decode_msg(&bytes) {
            Ok(msg) => prop_assert_eq!(encode_msg(&msg), bytes),
            Err(
                P2pError::WireTruncated { .. }
                | P2pError::WireVersion { .. }
                | P2pError::WireMalformed { .. },
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
        }
    }

    /// Every strict prefix of a valid encoding is rejected — a short read
    /// can never be mistaken for a complete message.
    #[test]
    fn strict_prefixes_never_decode(msg in arb_msg(), frac in 0.0f64..1.0) {
        let bytes = encode_msg(&msg);
        let cut = ((bytes.len() as f64) * frac) as usize; // always < len
        prop_assert!(decode_msg(&bytes[..cut]).is_err());
    }

    /// A foreign version byte is rejected with the version numbers, no
    /// matter what follows it.
    #[test]
    fn foreign_versions_are_rejected(version in 0u8..=255, msg in arb_msg()) {
        prop_assume!(version != WIRE_VERSION);
        let mut bytes = encode_msg(&msg);
        bytes[0] = version;
        prop_assert_eq!(
            decode_msg(&bytes),
            Err(P2pError::WireVersion { found: version, supported: WIRE_VERSION })
        );
    }

    /// Frame headers outside (0, MAX_FRAME_LEN] are rejected before any
    /// allocation; in-range ones roundtrip through `frame`.
    #[test]
    fn frame_headers_are_guarded(len in 0u32..=u32::MAX) {
        let announced = len as usize;
        let ok = frame_len(len.to_le_bytes());
        if announced == 0 || announced > MAX_FRAME_LEN {
            prop_assert!(ok.is_err());
        } else {
            prop_assert_eq!(ok.unwrap(), announced);
        }
    }

    /// Framing a payload prepends exactly its length and nothing else.
    #[test]
    fn framed_payloads_roundtrip(payload in prop::collection::vec(any::<u8>(), 1..128)) {
        let framed = frame(&payload).unwrap();
        let header = [framed[0], framed[1], framed[2], framed[3]];
        prop_assert_eq!(frame_len(header).unwrap(), payload.len());
        prop_assert_eq!(&framed[4..], payload.as_slice());
    }
}
