//! Property-based certification of the branchless bid kernel
//! ([`BidKernel::Lanes`]): on tie-free instances the lane top-2 reduction
//! is **bit-identical** to the sequential `decide_bid_over` scan at every
//! row length 0..64 — empty rows, sub-lane rows, exact chunk multiples and
//! ragged tails — and on adversarial all-ties instances (where reduction
//! order is under the most pressure) the kernel still matches the scalar
//! path bid for bid and its outcome stays within the Theorem 1 `n·ε`
//! certificate.

use p2p_core::csr::{CsrInstance, FlatAuction};
use p2p_core::{
    verify_optimality, AuctionConfig, AuctionOutcome, BidKernel, ShardCount, WelfareInstance,
};
use p2p_types::{ChunkId, Cost, PeerId, RequestId, Valuation, VideoId};
use proptest::prelude::*;

/// Longest row exercised by the exhaustive-length sweep; spans several
/// lane-chunk boundaries of the kernel (`LANES = 4`).
const MAX_ROW: usize = 64;

/// Builds a single-request instance whose row is the first `n` of the
/// given `(valuation, cost)` edges — one provider per edge, so the row
/// length is exactly `n`.
fn row_instance(edges: &[(f64, f64)], n: usize, caps: &[u32]) -> WelfareInstance {
    let mut b = WelfareInstance::builder();
    let providers: Vec<_> = (0..n.max(1))
        .map(|u| b.add_provider(PeerId::new(1000 + u as u32), caps[u % caps.len()]))
        .collect();
    let r = b.add_request(RequestId::new(PeerId::new(0), ChunkId::new(VideoId::new(0), 0)));
    for (u, &(v, w)) in edges.iter().take(n).enumerate() {
        b.add_edge(r, providers[u], Valuation::new(v), Cost::new(w)).unwrap();
    }
    b.build().unwrap()
}

/// Runs the flat engine with the given kernel at the given shard count.
fn run(kernel: BidKernel, shards: usize, eps: f64, csr: &CsrInstance) -> AuctionOutcome {
    FlatAuction::new(AuctionConfig::with_epsilon(eps), ShardCount::Fixed(shards))
        .with_kernel(kernel)
        .run(csr)
        .unwrap()
}

fn assert_identical(label: &str, lanes: &AuctionOutcome, scalar: &AuctionOutcome) {
    assert_eq!(lanes.assignment, scalar.assignment, "{label}: assignment");
    assert_eq!(lanes.duals, scalar.duals, "{label}: duals");
    assert_eq!(lanes.rounds, scalar.rounds, "{label}: rounds");
    assert_eq!(lanes.bids_submitted, scalar.bids_submitted, "{label}: bids");
}

/// A multi-request instance where *every* utility is the same constant —
/// the adversarial all-ties regime: every comparison in the top-2
/// reduction is an exact tie, so any order-dependence in the kernel would
/// surface here first.
fn arb_all_ties() -> impl Strategy<Value = WelfareInstance> {
    (prop::collection::vec(1u32..=3, 1..6), 1usize..16, 1.0f64..6.0).prop_map(
        |(caps, requests, utility)| {
            let mut b = WelfareInstance::builder();
            let providers: Vec<_> = caps
                .iter()
                .enumerate()
                .map(|(u, &cap)| b.add_provider(PeerId::new(1000 + u as u32), cap))
                .collect();
            for d in 0..requests {
                let r = b.add_request(RequestId::new(
                    PeerId::new(d as u32),
                    ChunkId::new(VideoId::new(0), d as u32),
                ));
                for &u in &providers {
                    // Constant utility on every edge: v − w = `utility`.
                    b.add_edge(r, u, Valuation::new(utility + 1.0), Cost::new(1.0)).unwrap();
                }
            }
            b.build().unwrap()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tie-free rows: the lane kernel bit-matches the scalar scan at every
    /// row length 0..64 — including the empty row (no candidates), rows
    /// shorter than one lane, exact chunk multiples and ragged tails —
    /// for mixed capacities (zero-capacity providers put `φ = −∞` edges
    /// in the lanes) and ε both zero and positive.
    #[test]
    fn kernel_bit_matches_scalar_at_every_row_length(
        edges in prop::collection::vec((0.8f64..8.0, 0.0f64..10.0), MAX_ROW),
        caps in prop::collection::vec(0u32..=3, 1..4),
        eps_idx in 0usize..3,
    ) {
        let eps = [0.0f64, 0.01, 0.25][eps_idx];
        for n in 0..=MAX_ROW {
            let inst = row_instance(&edges, n, &caps);
            let csr = CsrInstance::compile(&inst);
            let lanes = run(BidKernel::Lanes, 1, eps, &csr);
            let scalar = run(BidKernel::Scalar, 1, eps, &csr);
            assert_identical(&format!("row length {n}"), &lanes, &scalar);
        }
    }

    /// Adversarial all-ties instances: the kernel matches the scalar path
    /// bid for bid (the merge tie-break reproduces the sequential
    /// earliest-edge rule exactly), and with ε > 0 the outcome carries the
    /// Theorem 1 certificate — welfare within `n·ε` of the exact optimum.
    #[test]
    fn all_ties_kernel_stays_within_n_epsilon(
        inst in arb_all_ties(),
        eps in 0.001f64..0.5,
        shards_idx in 0usize..2,
    ) {
        let shards = [1usize, 4][shards_idx];
        let csr = CsrInstance::compile(&inst);
        let lanes = run(BidKernel::Lanes, shards, eps, &csr);
        let scalar = run(BidKernel::Scalar, shards, eps, &csr);
        assert_identical(&format!("all-ties shards={shards}"), &lanes, &scalar);

        let exact = inst.optimal_welfare().get();
        let bound = inst.request_count() as f64 * eps + 1e-9;
        let welfare = lanes.assignment.welfare(&inst).get();
        prop_assert!(
            welfare >= exact - bound,
            "welfare {welfare} vs exact {exact} (n·ε bound {bound})"
        );
        prop_assert!(lanes.assignment.validate(&inst).is_ok());
        let tol = eps * (inst.request_count() as f64 + 1.0);
        let report = verify_optimality(&inst, &lanes.assignment, &lanes.duals, tol);
        prop_assert!(report.is_optimal(), "violations: {:?}", report.violations);
    }

    /// All-ties under the paper's ε = 0 abstain-on-ties rule: both kernels
    /// abstain identically (no livelock, identical partial assignment).
    #[test]
    fn all_ties_epsilon_zero_abstains_identically(inst in arb_all_ties()) {
        let csr = CsrInstance::compile(&inst);
        let lanes = run(BidKernel::Lanes, 1, 0.0, &csr);
        let scalar = run(BidKernel::Scalar, 1, 0.0, &csr);
        assert_identical("all-ties ε=0", &lanes, &scalar);
    }

    /// Warm starts through the kernel: carried (possibly perturbed) prices
    /// keep the two kernels bit-identical through the clamp + CS 1 repair
    /// loop.
    #[test]
    fn warm_started_kernel_matches_scalar(
        edges in prop::collection::vec((0.8f64..8.0, 0.0f64..10.0), MAX_ROW),
        n in 0usize..=MAX_ROW,
        bump in 0.0f64..2.0,
        eps_idx in 0usize..2,
    ) {
        let eps = [0.0f64, 0.05][eps_idx];
        let inst = row_instance(&edges, n, &[1, 2]);
        let csr = CsrInstance::compile(&inst);
        let cold = run(BidKernel::Lanes, 1, eps, &csr);
        let warm: Vec<f64> = cold.duals.lambda.iter().map(|l| l + bump).collect();
        let mut lanes_engine = FlatAuction::new(
            AuctionConfig::with_epsilon(eps), ShardCount::Fixed(1),
        ).with_kernel(BidKernel::Lanes);
        let mut scalar_engine = FlatAuction::new(
            AuctionConfig::with_epsilon(eps), ShardCount::Fixed(1),
        ).with_kernel(BidKernel::Scalar);
        let lanes = lanes_engine.run_warm(&csr, &warm).unwrap();
        let scalar = scalar_engine.run_warm(&csr, &warm).unwrap();
        assert_identical(&format!("warm n={n}"), &lanes, &scalar);
    }
}
