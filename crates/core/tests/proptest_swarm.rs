//! Property-based verification of the virtual-time swarm simulator: the
//! DES backend must be indistinguishable from the in-process engine under
//! a zero-fault network, and must preserve the paper's correctness
//! guarantees — conservation and the Theorem 1 `n·ε` certificate — under
//! *arbitrary* seeded drop/delay/reorder/duplicate schedules (the model
//! guarantees eventual delivery, so convergence is still due).

use p2p_core::{
    verify_optimality, AuctionConfig, NetworkModel, SwarmAuction, SwarmConfig, SyncAuction,
    WelfareInstance,
};
use p2p_types::{ChunkId, Cost, PeerId, RequestId, SimDuration, Valuation, VideoId};
use proptest::prelude::*;

/// A randomly generated welfare instance with continuous utilities (ties
/// have probability zero, the regime of the paper's Theorem 1).
fn arb_instance() -> impl Strategy<Value = WelfareInstance> {
    let providers = prop::collection::vec(1u32..=5, 1..8);
    providers.prop_flat_map(|caps| {
        let p = caps.len();
        let edge = (0..p, 0.8f64..8.0, 0.0f64..10.0);
        let request = prop::collection::vec(edge, 0..=p);
        let requests = prop::collection::vec(request, 0..16);
        (Just(caps), requests).prop_map(|(caps, reqs)| {
            let mut b = WelfareInstance::builder();
            for (i, cap) in caps.iter().enumerate() {
                b.add_provider(PeerId::new(1000 + i as u32), *cap);
            }
            for (d, edges) in reqs.into_iter().enumerate() {
                let r = b.add_request(RequestId::new(
                    PeerId::new(d as u32),
                    ChunkId::new(VideoId::new(0), d as u32),
                ));
                let mut seen = std::collections::HashSet::new();
                for (u, v, w) in edges {
                    if seen.insert(u) {
                        b.add_edge(r, u, Valuation::new(v), Cost::new(w)).unwrap();
                    }
                }
            }
            b.build().unwrap()
        })
    })
}

/// An arbitrary faulty network: every fault class the model supports, with
/// probabilities high enough to bite on small instances, plus non-trivial
/// latency spread so deliveries genuinely race.
fn arb_faulty_net() -> impl Strategy<Value = NetworkModel> {
    (
        0.0f64..0.4,  // drop
        0.0f64..0.25, // duplicate
        0.0f64..0.4,  // reorder
        1u64..10,     // base latency ms
        0u64..8,      // link spread ms
        0u64..8,      // jitter ms
    )
        .prop_map(|(drop, dup, reorder, base, spread, jitter)| NetworkModel {
            base_latency: SimDuration::from_millis(base),
            link_spread: SimDuration::from_millis(spread),
            jitter: SimDuration::from_millis(jitter),
            drop_prob: drop,
            duplicate_prob: dup,
            reorder_prob: reorder,
            reorder_delay: SimDuration::from_millis(20),
            ..NetworkModel::lossy()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("PROPTEST_CASES").ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)))]

    /// Zero-fault DES execution is *bit-identical* to the synchronous
    /// in-process engine on arbitrary instances: same assignment, same
    /// duals, same round and bid counts.
    #[test]
    fn ideal_swarm_is_bit_identical_to_sync(inst in arb_instance(), seed in 0u64..1000) {
        let swarm = SwarmAuction::new(SwarmConfig::paper(), NetworkModel::ideal())
            .run(&inst, seed)
            .unwrap();
        let sync = SyncAuction::new(AuctionConfig::paper()).run(&inst).unwrap();
        prop_assert_eq!(&swarm.assignment, &sync.assignment);
        prop_assert_eq!(&swarm.duals.lambda, &sync.duals.lambda);
        prop_assert_eq!(swarm.rounds, sync.rounds);
        prop_assert_eq!(swarm.bids_submitted, sync.bids_submitted);
    }

    /// Warm restarts agree too: priming both engines with the same prior
    /// prices yields the same repaired outcome.
    #[test]
    fn ideal_warm_swarm_matches_sync_warm(inst in arb_instance(), seed in 0u64..1000) {
        let engine = SyncAuction::new(AuctionConfig::paper());
        let cold = engine.run(&inst).unwrap();
        let warm_sync = engine.run_warm(&inst, &cold.duals.lambda).unwrap();
        let warm_swarm = SwarmAuction::new(SwarmConfig::paper(), NetworkModel::ideal())
            .run_warm(&inst, &cold.duals.lambda, seed)
            .unwrap();
        prop_assert_eq!(&warm_swarm.assignment, &warm_sync.assignment);
        prop_assert_eq!(&warm_swarm.duals.lambda, &warm_sync.duals.lambda);
    }

    /// Under an arbitrary fault schedule (drops retried to eventual
    /// delivery, duplicates discarded by sequencing, reorders resequenced)
    /// the swarm still converges to a feasible assignment that passes the
    /// Theorem 1 `n·ε` certificate.
    #[test]
    fn faulty_swarm_conserves_and_certifies(
        inst in arb_instance(),
        net in arb_faulty_net(),
        seed in 0u64..1000,
        eps in 0.01f64..0.2,
    ) {
        let out = SwarmAuction::new(SwarmConfig::with_epsilon(eps), net)
            .run(&inst, seed)
            .unwrap();
        prop_assert!(out.converged, "faulty run must still quiesce");
        prop_assert!(out.assignment.validate(&inst).is_ok(), "conservation");
        let tol = eps * (inst.request_count() as f64 + 1.0);
        let report = verify_optimality(&inst, &out.assignment, &out.duals, tol);
        prop_assert!(report.is_optimal(), "violations: {:?}", report.violations);
    }

    /// The fault schedule is a pure function of the seed: replaying the
    /// same (instance, model, seed) triple reproduces the entire run —
    /// trace hash, fault counters, assignment and duals.
    #[test]
    fn same_seed_replays_the_whole_run(
        inst in arb_instance(),
        net in arb_faulty_net(),
        seed in 0u64..1000,
    ) {
        let engine = SwarmAuction::new(SwarmConfig::with_epsilon(0.05), net);
        let a = engine.run(&inst, seed).unwrap();
        let b = engine.run(&inst, seed).unwrap();
        prop_assert_eq!(a.trace_hash, b.trace_hash);
        prop_assert_eq!(a.faults, b.faults);
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(&a.assignment, &b.assignment);
        prop_assert_eq!(&a.duals.lambda, &b.duals.lambda);
    }
}
