//! The bidder side of the auction: pure bid computation.
//!
//! "Bidding of Peer d" (Sec. IV-B): for a chunk `c`, the peer computes the
//! net utility `φ_u = v^{(c)}(d) − w_{u→d} − λ_u` for every neighbor caching
//! `c`, targets the neighbor `u*` with the largest net utility, and bids
//!
//! ```text
//! b(d, c, u*) = λ_{u*} + φ(u*) − φ(û)  =  w_{û→d} − w_{u*→d} + λ_û
//! ```
//!
//! where `û` is the second-best neighbor. If `b == λ_{u*}` the peer does not
//! send the bid and waits for prices to change (the paper's abstention
//! rule). Two refinements make the bidder rational and ε-capable:
//!
//! * the second-best utility is floored at the outside option 0 (never bid
//!   above your own value `v − w`), which coincides with the paper's rule
//!   whenever a profitable second choice exists and with Bertsekas' classic
//!   single-object rule otherwise;
//! * an optional `ε` is added to the bid (Bertsekas ε-complementary
//!   slackness), guaranteeing termination under ties at a welfare loss of
//!   at most `n·ε` — `ε = 0` is the paper-faithful mode.

use crate::instance::ProviderIdx;
use serde::{Deserialize, Serialize};

/// A bidder-visible candidate edge: the provider and the edge's welfare
/// weight `v − w` (price-independent part of the net utility).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeView {
    /// Which provider this edge points at.
    pub provider: ProviderIdx,
    /// The edge's `v − w`.
    pub utility: f64,
}

/// Outcome of one bid computation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BidDecision {
    /// Submit `amount` for one bandwidth unit at `provider` (the request's
    /// `edge`-th candidate).
    Bid {
        /// Index of the chosen edge within the request's candidate list.
        edge: usize,
        /// The chosen provider (the `u*` of the paper).
        provider: ProviderIdx,
        /// The bid `b(d, c, u*)`.
        amount: f64,
    },
    /// No profitable strictly-improving bid exists right now.
    Abstain {
        /// Why the bidder stays quiet.
        reason: AbstainReason,
    },
}

/// Why a bidder abstains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AbstainReason {
    /// The request has no candidate edges at all.
    NoCandidates,
    /// Every candidate has negative net utility at current prices
    /// (`φ* < 0`): downloading would cost more than it is worth.
    Unprofitable,
    /// The best and second-best utilities tie (`b == λ*`), so the paper's
    /// rule is to wait for a price change.
    ZeroMargin,
}

/// Computes the paper's bid for one request.
///
/// `price_of(p)` must return the bidder's current knowledge of `λ_p`
/// (possibly stale in asynchronous executions — the auctioneer re-validates
/// every bid against its true price). `epsilon ≥ 0` selects the ε-variant.
///
/// Ties between equally good providers break toward the earliest edge in
/// `edges`, making every engine deterministic.
///
/// # Examples
///
/// ```
/// use p2p_core::{BidDecision, EdgeView};
/// use p2p_core::bidder::decide_bid;
///
/// let edges = [
///     EdgeView { provider: 0, utility: 4.0 }, // v - w = 4
///     EdgeView { provider: 1, utility: 1.0 }, // v - w = 1
/// ];
/// // Prices are all zero: best φ = 4 at provider 0, second-best 1.
/// let d = decide_bid(&edges, |_| 0.0, 0.0);
/// assert_eq!(d, BidDecision::Bid { edge: 0, provider: 0, amount: 3.0 });
/// ```
pub fn decide_bid(
    edges: &[EdgeView],
    price_of: impl Fn(ProviderIdx) -> f64,
    epsilon: f64,
) -> BidDecision {
    decide_bid_with_floor(edges, price_of, epsilon, MIN_INCREMENT)
}

/// The default floor under which a bid increment counts as a tie.
///
/// Floating-point arithmetic can leave two structurally tied candidates
/// with a residual margin of a few ULPs; bidding on such a margin creeps
/// the price by ~1e-13 per round and the ε = 0 auction livelocks. Margins
/// below the floor are treated as the exact ties they are, triggering the
/// paper's wait rule. The welfare cost is at most `requests × floor`.
pub const MIN_INCREMENT: f64 = 1e-9;

/// [`decide_bid`] with an explicit tie floor: abstain unless the effective
/// bid increment `margin + ε` reaches `min_increment`.
pub fn decide_bid_with_floor(
    edges: &[EdgeView],
    price_of: impl Fn(ProviderIdx) -> f64,
    epsilon: f64,
    min_increment: f64,
) -> BidDecision {
    decide_bid_over(edges.iter().map(|e| (e.provider, e.utility)), price_of, epsilon, min_increment)
}

/// The top-2 reduction a bid decision is made from: the best candidate
/// (largest `φ`, earliest edge on ties) and the second-largest `φ` counting
/// multiplicity (a duplicate maximum *is* the second-best).
///
/// Both quantities are order-invariant functions of the `(edge, φ)`
/// multiset — they depend only on exact float comparisons, never on the
/// visit order — which is what lets [`crate::csr::kernel`] compute them
/// lane-parallel and still match the sequential scan bit for bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Top2 {
    /// Local index of the best edge within the request's candidate list.
    pub edge: usize,
    /// The best candidate's provider.
    pub provider: ProviderIdx,
    /// The best net utility `φ* = v − w − λ`.
    pub best_phi: f64,
    /// The best candidate's price `λ*` at decision time.
    pub best_lambda: f64,
    /// The second-largest net utility (`−∞` with a single candidate).
    pub second_phi: f64,
}

/// Turns a [`Top2`] reduction into the paper's bid decision — the epilogue
/// shared by every scan layout (iterator, scalar rows, kernel lanes), so a
/// decision differs between layouts only if the reductions differ.
pub(crate) fn decision_from_top2(
    top: Option<Top2>,
    epsilon: f64,
    min_increment: f64,
) -> BidDecision {
    let Some(Top2 { edge, provider, best_phi, best_lambda, second_phi }) = top else {
        return BidDecision::Abstain { reason: AbstainReason::NoCandidates };
    };
    if best_phi < 0.0 {
        return BidDecision::Abstain { reason: AbstainReason::Unprofitable };
    }

    // The outside option (staying unassigned, utility 0) floors the
    // second-best: never bid above own value.
    let reference = second_phi.max(0.0);
    let margin = best_phi - reference;
    debug_assert!(margin >= 0.0);
    if margin + epsilon < min_increment {
        return BidDecision::Abstain { reason: AbstainReason::ZeroMargin };
    }
    let amount = best_lambda + margin + epsilon;
    if amount <= best_lambda {
        return BidDecision::Abstain { reason: AbstainReason::ZeroMargin };
    }
    BidDecision::Bid { edge, provider, amount }
}

/// The layout-independent decision core shared by the nested
/// ([`EdgeView`] slice) and the flat CSR ([`crate::csr`]) engines: both map
/// their edge storage onto the same `(provider, utility)` iterator, so the
/// two layouts produce bit-identical decisions by construction.
pub(crate) fn decide_bid_over(
    edges: impl Iterator<Item = (ProviderIdx, f64)>,
    price_of: impl Fn(ProviderIdx) -> f64,
    epsilon: f64,
    min_increment: f64,
) -> BidDecision {
    // Single pass: track the best and second-best net utilities.
    let mut best: Option<(usize, f64, f64, ProviderIdx)> = None; // (edge, φ, λ, u)
    let mut second_phi = f64::NEG_INFINITY;
    for (k, (provider, utility)) in edges.enumerate() {
        let lambda = price_of(provider);
        let phi = utility - lambda;
        match best {
            Some((_, best_phi, _, _)) if phi <= best_phi => {
                if phi > second_phi {
                    second_phi = phi;
                }
            }
            Some((_, best_phi, _, _)) => {
                second_phi = best_phi;
                best = Some((k, phi, lambda, provider));
            }
            None => best = Some((k, phi, lambda, provider)),
        }
    }
    let top = best.map(|(edge, best_phi, best_lambda, provider)| Top2 {
        edge,
        provider,
        best_phi,
        best_lambda,
        second_phi,
    });
    decision_from_top2(top, epsilon, min_increment)
}

/// The best achievable net utility `max_u (v − w − λ_u)` for a request, or
/// `None` when it has no candidates. Used for the dual variables
/// `η^{(c)}_d` and the third complementary-slackness condition.
pub fn best_net_utility(edges: &[EdgeView], price_of: impl Fn(ProviderIdx) -> f64) -> Option<f64> {
    edges
        .iter()
        .map(|e| e.utility - price_of(e.provider))
        .fold(None, |acc, phi| Some(acc.map_or(phi, |a: f64| a.max(phi))))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prices(p: &[f64]) -> impl Fn(ProviderIdx) -> f64 + '_ {
        move |i| p[i]
    }

    #[test]
    fn paper_bid_formula() {
        // φ0 = 5-1-λ0, φ1 = 5-4-λ1 with λ = (2, 0):
        // φ0 = 2, φ1 = 1 → bid at 0 with amount λ0 + (2-1) = 3
        // = w_hat - w_star + λ_hat = 4 - 1 + 0 = 3 ✓ (the paper's form)
        let edges =
            [EdgeView { provider: 0, utility: 4.0 }, EdgeView { provider: 1, utility: 1.0 }];
        let d = decide_bid(&edges, prices(&[2.0, 0.0]), 0.0);
        assert_eq!(d, BidDecision::Bid { edge: 0, provider: 0, amount: 3.0 });
    }

    #[test]
    fn no_candidates_abstains() {
        assert_eq!(
            decide_bid(&[], |_| 0.0, 0.0),
            BidDecision::Abstain { reason: AbstainReason::NoCandidates }
        );
    }

    #[test]
    fn unprofitable_abstains() {
        let edges = [EdgeView { provider: 0, utility: -2.0 }];
        assert_eq!(
            decide_bid(&edges, |_| 0.0, 0.0),
            BidDecision::Abstain { reason: AbstainReason::Unprofitable }
        );
        // Profitable utility but price pushes φ below zero.
        let edges = [EdgeView { provider: 0, utility: 2.0 }];
        assert_eq!(
            decide_bid(&edges, |_| 3.0, 0.0),
            BidDecision::Abstain { reason: AbstainReason::Unprofitable }
        );
    }

    #[test]
    fn tie_abstains_without_epsilon_but_bids_with_it() {
        let edges =
            [EdgeView { provider: 0, utility: 2.0 }, EdgeView { provider: 1, utility: 2.0 }];
        assert_eq!(
            decide_bid(&edges, |_| 0.0, 0.0),
            BidDecision::Abstain { reason: AbstainReason::ZeroMargin }
        );
        let d = decide_bid(&edges, |_| 0.0, 0.5);
        assert_eq!(d, BidDecision::Bid { edge: 0, provider: 0, amount: 0.5 });
    }

    #[test]
    fn single_candidate_bids_full_value() {
        // No second-best: the outside option (0) is the reference, so the
        // bid rises to the full surplus λ + φ = v − w.
        let edges = [EdgeView { provider: 3, utility: 7.5 }];
        let d = decide_bid(&edges, |_| 1.0, 0.0);
        assert_eq!(d, BidDecision::Bid { edge: 0, provider: 3, amount: 7.5 });
    }

    #[test]
    fn negative_second_best_is_floored_at_outside_option() {
        let edges =
            [EdgeView { provider: 0, utility: 3.0 }, EdgeView { provider: 1, utility: -5.0 }];
        // Without flooring the bid would be λ0 + 3 − (−5) = 8 > value 3.
        let d = decide_bid(&edges, |_| 0.0, 0.0);
        assert_eq!(d, BidDecision::Bid { edge: 0, provider: 0, amount: 3.0 });
    }

    #[test]
    fn deterministic_tie_break_prefers_first_edge() {
        let edges = [
            EdgeView { provider: 5, utility: 2.0 },
            EdgeView { provider: 2, utility: 2.0 },
            EdgeView { provider: 9, utility: 1.0 },
        ];
        // Margin vs second-best (=2): zero → abstain at ε=0; with ε the
        // first maximal edge is chosen.
        let d = decide_bid(&edges, |_| 0.0, 0.1);
        assert!(matches!(d, BidDecision::Bid { edge: 0, provider: 5, .. }));
    }

    #[test]
    fn stale_prices_still_produce_bids() {
        // The bidder believes λ0 = 0 even though the true price is higher;
        // the auctioneer will reject, but the decision itself is valid.
        let edges = [EdgeView { provider: 0, utility: 1.0 }];
        let d = decide_bid(&edges, |_| 0.0, 0.0);
        assert_eq!(d, BidDecision::Bid { edge: 0, provider: 0, amount: 1.0 });
    }

    #[test]
    fn best_net_utility_matches_max() {
        let edges =
            [EdgeView { provider: 0, utility: 4.0 }, EdgeView { provider: 1, utility: 6.0 }];
        let phi = best_net_utility(&edges, prices(&[0.0, 3.0])).unwrap();
        assert_eq!(phi, 4.0);
        assert_eq!(best_net_utility(&[], |_| 0.0), None);
    }
}
