//! Virtual-time swarm backend: protocol state machines as logical actors
//! on the discrete-event simulator, behind a seeded fault-injecting
//! network model.
//!
//! Two execution modes share the [`BidderNode`]/[`AuctioneerNode`] state
//! machines of [`crate::protocol`]:
//!
//! * **Ideal mode** ([`NetworkModel::ideal`], zero latency and zero
//!   faults): the swarm replays the synchronous Gauss–Seidel sweep of
//!   [`crate::SyncAuction`] on virtual time — one `Poll` event per live
//!   request per round, bids resolved instantly, evicted losers re-polled
//!   at their sweep position. The outcome (assignment, duals, rounds,
//!   bids) is **bit-identical** to the in-process engines; the
//!   engine-equivalence harness enforces it.
//! * **Reactive mode** (any model with latency or faults): every message
//!   travels a per-link channel with seeded latency, drop/duplicate/
//!   reorder faults and ISP-level partitions, all derived from
//!   [`derive_seed`] so a run is a pure function of `(instance, seed)`.
//!   Dropped attempts retry on a virtual timeout that fires through
//!   fast-forward — no wall-clock races — and the final attempt always
//!   lands (eventual delivery), so Theorem 1's `n·ε` certificate still
//!   holds at quiescence for ε > 0.
//!
//! Per-link sequence numbers restore FIFO order at the receiver (a
//! reordered `Accepted`/`Evicted` pair would otherwise strand a bidder in
//! the wrong phase), and duplicates are discarded by the same mechanism.
//! Every delivered protocol message folds into an order-sensitive FNV-1a
//! trace hash, the determinism regression anchor: same seed → same hash,
//! distinct seeds → distinct fault schedules.
//!
//! Reactive deliveries ride **arena-backed mailboxes**
//! ([`p2p_sim::MailboxArena`]): the event queue carries an 8-byte
//! generation-checked key instead of a fat message payload, and the
//! payload buffers are recycled rather than freed, so steady-state
//! dispatch allocates nothing. On top of that sits **event coalescing**
//! ([`SwarmConfig::coalesce`]): while a scheduled mailbox wake-up remains
//! the most recent queue entry at its timestamp, further deliveries to
//! the same peer at that timestamp append to the open batch instead of
//! pushing new events. Because same-time events pop in push order, an
//! appended message is processed at exactly the position it would have
//! popped on its own — delivery order, `trace_hash`, fault counters and
//! outcomes are byte-identical to the uncoalesced run (a proptest and
//! bench gate), while flash-crowd fan-in shrinks the queue by the
//! fan-out factor.

use crate::bidder::{AbstainReason, BidDecision};
use crate::engine::{edge_views, final_prices_from, run_warm_with, AuctionOutcome};
use crate::instance::{ProviderIdx, RequestIdx, WelfareInstance};
use crate::messages::AuctionMsg;
use crate::protocol::{AuctioneerNode, BidderNode, BidderPhase, LearnPolicy};
use crate::solution::{Assignment, DualSolution};
use p2p_metrics::{AuctionProbe, NoProbe};
use p2p_sim::{derive_seed, Context, MailKey, MailboxArena, Simulation, World};
use p2p_types::{P2pError, PeerId, SimDuration, SimTime};

/// One microsecond per sweep position: round `k` polls request `r` at
/// `round_start + r` µs, so FIFO tie-breaking inside a timestamp never
/// has to disambiguate two different requests.
const SWEEP_STEP: SimDuration = SimDuration::from_micros(1);

/// Seed stream offsets (disjoint from per-message counters, which stay
/// far below 2⁶⁰).
const LINK_SALT: u64 = 0x1000_0000_0000_0000;
const GROUP_SALT: u64 = 0x2000_0000_0000_0000;
const REORDER_SALT: u64 = 1_000_003;
const DUP_SALT: u64 = 1_000_007;

/// An ISP-level partition: cross-group messages sent during
/// `[at, heal)` are deferred to `heal` (the transport buffers and
/// retransmits, Sec. IV's "network remains eventually connected").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionWindow {
    /// When the partition opens.
    pub at: SimTime,
    /// When it heals; deferred traffic departs here.
    pub heal: SimTime,
}

/// Seeded network behavior for the swarm backend. All randomness is
/// derived from the run seed via [`derive_seed`], so fault schedules are
/// replayable events, not wall-clock accidents.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkModel {
    /// Latency floor applied to every delivery.
    pub base_latency: SimDuration,
    /// Per-link deterministic latency spread (each link draws a fixed
    /// extra in `[0, link_spread)` from the seed — "per-link latency
    /// distributions").
    pub link_spread: SimDuration,
    /// Per-message jitter in `[0, jitter)`.
    pub jitter: SimDuration,
    /// Probability a delivery attempt is dropped (retried after
    /// `retry_timeout`; the attempt after `max_retries` always lands).
    pub drop_prob: f64,
    /// Probability a message is delivered twice.
    pub duplicate_prob: f64,
    /// Probability a message takes an extra `[0, reorder_delay)` detour,
    /// arriving behind younger traffic on its link.
    pub reorder_prob: f64,
    /// Maximum reorder detour.
    pub reorder_delay: SimDuration,
    /// Virtual retransmission timeout for dropped attempts.
    pub retry_timeout: SimDuration,
    /// Retries before delivery is forced (eventual delivery).
    pub max_retries: u32,
    /// Price-announcement coalescing window (reactive mode).
    pub broadcast_window: SimDuration,
    /// Optional ISP-level partition.
    pub partition: Option<PartitionWindow>,
}

impl NetworkModel {
    /// Zero latency, zero faults: the bit-identical replay of the
    /// synchronous sweep.
    pub fn ideal() -> Self {
        NetworkModel {
            base_latency: SimDuration::ZERO,
            link_spread: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            reorder_prob: 0.0,
            reorder_delay: SimDuration::ZERO,
            retry_timeout: SimDuration::from_millis(10),
            max_retries: 3,
            broadcast_window: SimDuration::ZERO,
            partition: None,
        }
    }

    /// Sub-millisecond latencies, no faults: racy but reliable delivery.
    pub fn lan() -> Self {
        NetworkModel {
            base_latency: SimDuration::from_micros(200),
            link_spread: SimDuration::from_micros(300),
            jitter: SimDuration::from_micros(200),
            broadcast_window: SimDuration::from_micros(500),
            retry_timeout: SimDuration::from_millis(5),
            ..NetworkModel::ideal()
        }
    }

    /// Wide-area latencies with drop/duplicate/reorder faults.
    pub fn lossy() -> Self {
        NetworkModel {
            base_latency: SimDuration::from_millis(2),
            link_spread: SimDuration::from_millis(3),
            jitter: SimDuration::from_millis(5),
            drop_prob: 0.05,
            duplicate_prob: 0.02,
            reorder_prob: 0.10,
            reorder_delay: SimDuration::from_millis(20),
            retry_timeout: SimDuration::from_millis(25),
            max_retries: 3,
            broadcast_window: SimDuration::from_millis(1),
            partition: None,
        }
    }

    /// Looks a preset up by name (`ideal`, `lan`, `lossy`) — the spec key
    /// the scenario runner resolves.
    pub fn preset(name: &str) -> Option<NetworkModel> {
        match name {
            "ideal" => Some(NetworkModel::ideal()),
            "lan" => Some(NetworkModel::lan()),
            "lossy" => Some(NetworkModel::lossy()),
            _ => None,
        }
    }

    /// Adds an ISP-level partition over `[at, heal)`.
    ///
    /// # Panics
    ///
    /// Panics if `heal <= at`.
    #[must_use]
    pub fn with_partition(mut self, at: SimTime, heal: SimTime) -> Self {
        assert!(heal > at, "partition must heal after it opens");
        self.partition = Some(PartitionWindow { at, heal });
        self
    }

    /// Whether the model is the zero-latency, zero-fault ideal — the mode
    /// that replays the synchronous sweep bit for bit.
    pub fn is_ideal(&self) -> bool {
        self.base_latency.is_zero()
            && self.link_spread.is_zero()
            && self.jitter.is_zero()
            && self.drop_prob == 0.0
            && self.duplicate_prob == 0.0
            && self.reorder_prob == 0.0
            && self.partition.is_none()
    }
}

/// Counters of injected (and repaired) network faults — part of the
/// replayable record a determinism test compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Delivery attempts dropped (each retried after `retry_timeout`).
    pub dropped: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Duplicate deliveries discarded by receiver sequencing.
    pub duplicates_discarded: u64,
    /// Messages that took a reorder detour.
    pub reordered: u64,
    /// Out-of-order arrivals held in a resequencing buffer.
    pub resequenced: u64,
    /// Cross-partition sends deferred to the heal time.
    pub deferred: u64,
}

/// Configuration of the swarm execution.
#[derive(Debug, Clone, Copy)]
pub struct SwarmConfig {
    /// Bid increment ε (see [`crate::AuctionConfig::epsilon`]). Use ε > 0
    /// under faulty models: racy delivery can freeze ε = 0 on dynamically
    /// created ties, exactly as in the threaded runtime.
    pub epsilon: f64,
    /// Safety cap on sweep rounds (ideal mode).
    pub max_rounds: u64,
    /// Safety cap on simulator events (reactive mode).
    pub max_events: u64,
    /// Permanently retire priced-out requests in the ideal sweep (must
    /// match the synchronous engine's flag for bit-identity).
    pub retire_priced_out: bool,
    /// Coalesce same-timestamp deliveries to one peer into a single
    /// batched mailbox wake-up (reactive mode). Delivery order — and with
    /// it the trace hash and every outcome bit — is unchanged; only the
    /// event count and queue depth shrink. Disable to run the one event
    /// per message baseline the equivalence gates compare against.
    pub coalesce: bool,
}

impl SwarmConfig {
    /// Paper-faithful defaults, mirroring [`crate::AuctionConfig::paper`].
    pub fn paper() -> Self {
        SwarmConfig {
            epsilon: 0.0,
            max_rounds: 1_000_000,
            max_events: 200_000_000,
            retire_priced_out: false,
            coalesce: true,
        }
    }

    /// Paper configuration with a positive ε.
    pub fn with_epsilon(epsilon: f64) -> Self {
        SwarmConfig { epsilon, ..SwarmConfig::paper() }
    }
}

impl Default for SwarmConfig {
    fn default() -> Self {
        SwarmConfig::paper()
    }
}

/// Result of one swarm run.
#[derive(Debug, Clone)]
pub struct SwarmOutcome {
    /// The converged primal solution.
    pub assignment: Assignment,
    /// The converged dual prices.
    pub duals: DualSolution,
    /// Sweep rounds executed (ideal mode; 0 in reactive mode, which has
    /// no global rounds).
    pub rounds: u64,
    /// Bids submitted (ideal) / delivered (reactive).
    pub bids_submitted: u64,
    /// Protocol messages exchanged.
    pub messages: u64,
    /// Simulator events processed.
    pub events: u64,
    /// Virtual time of the last protocol activity.
    pub converged_at: SimTime,
    /// Whether quiescence was reached within the event budget.
    pub converged: bool,
    /// Injected-fault counters.
    pub faults: FaultStats,
    /// Order-sensitive FNV-1a hash over every delivered protocol message
    /// `(time, kind, fields)` — the determinism anchor.
    pub trace_hash: u64,
    /// Deliveries that rode an already-scheduled same-peer, same-time
    /// mailbox wake-up instead of their own queue event (reactive mode
    /// with [`SwarmConfig::coalesce`]; 0 otherwise).
    pub coalesced_events: u64,
    /// High-water mark of the pending-event queue across all passes.
    pub peak_queue: u64,
}

impl SwarmOutcome {
    /// Converts to the engine-shaped outcome (for schedulers and the
    /// equivalence harness).
    pub fn to_outcome(&self) -> AuctionOutcome {
        AuctionOutcome {
            assignment: self.assignment.clone(),
            duals: self.duals.clone(),
            rounds: self.rounds,
            bids_submitted: self.bids_submitted,
            converged: self.converged,
            price_trace: Vec::new(),
        }
    }
}

/// Order-sensitive FNV-1a over 64-bit words.
#[derive(Debug, Clone, Copy)]
struct TraceHash(u64);

impl TraceHash {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        TraceHash(Self::OFFSET)
    }

    fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn msg(&mut self, at: SimTime, msg: &AuctionMsg) {
        self.word(at.as_micros());
        match *msg {
            AuctionMsg::Bid { request, edge, provider, amount } => {
                self.word(1);
                self.word(request as u64);
                self.word(edge as u64);
                self.word(provider as u64);
                self.word(amount.to_bits());
            }
            AuctionMsg::Accepted { request, provider } => {
                self.word(2);
                self.word(request as u64);
                self.word(provider as u64);
            }
            AuctionMsg::Rejected { request, provider, price } => {
                self.word(3);
                self.word(request as u64);
                self.word(provider as u64);
                self.word(price.to_bits());
            }
            AuctionMsg::Evicted { request, provider, price } => {
                self.word(4);
                self.word(request as u64);
                self.word(provider as u64);
                self.word(price.to_bits());
            }
            AuctionMsg::PriceUpdate { listener, provider, price } => {
                self.word(5);
                self.word(listener as u64);
                self.word(provider as u64);
                self.word(price.to_bits());
            }
        }
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Uniform `[0, 1)` from 64 random bits.
fn unit(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// A seeded draw in `[0, d)`.
fn scaled(d: SimDuration, bits: u64) -> SimDuration {
    SimDuration::from_micros((unit(bits) * d.as_micros() as f64) as u64)
}

/// Side stats accumulated across warm-start repair passes.
#[derive(Debug)]
struct SideStats {
    messages: u64,
    events: u64,
    converged_at: SimTime,
    faults: FaultStats,
    hash: TraceHash,
    passes: u64,
    coalesced: u64,
    peak_queue: u64,
}

impl SideStats {
    fn new() -> Self {
        SideStats {
            messages: 0,
            events: 0,
            converged_at: SimTime::ZERO,
            faults: FaultStats::default(),
            hash: TraceHash::new(),
            passes: 0,
            coalesced: 0,
            peak_queue: 0,
        }
    }
}

/// The swarm auction engine: one logical actor per peer on the event
/// queue, network behavior from a seeded [`NetworkModel`].
///
/// # Examples
///
/// ```
/// use p2p_core::{WelfareInstance, SwarmAuction, SwarmConfig, NetworkModel};
/// use p2p_types::{PeerId, RequestId, ChunkId, VideoId, Valuation, Cost};
///
/// let mut b = WelfareInstance::builder();
/// let u = b.add_provider(PeerId::new(9), 1);
/// let r = b.add_request(RequestId::new(PeerId::new(0), ChunkId::new(VideoId::new(0), 0)));
/// b.add_edge(r, u, Valuation::new(4.0), Cost::new(1.0)).unwrap();
/// let inst = b.build().unwrap();
///
/// let out = SwarmAuction::new(SwarmConfig::paper(), NetworkModel::ideal())
///     .run(&inst, 42)
///     .unwrap();
/// assert!(out.converged);
/// assert_eq!(out.assignment.assigned_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SwarmAuction {
    config: SwarmConfig,
    net: NetworkModel,
}

impl SwarmAuction {
    /// Creates the engine.
    pub fn new(config: SwarmConfig, net: NetworkModel) -> Self {
        SwarmAuction { config, net }
    }

    /// The configuration.
    pub fn config(&self) -> &SwarmConfig {
        &self.config
    }

    /// The network model.
    pub fn net(&self) -> &NetworkModel {
        &self.net
    }

    /// Runs the auction cold.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::AuctionDiverged`] if the round cap (ideal
    /// mode) or event cap (reactive mode) is reached before quiescence.
    pub fn run(&self, instance: &WelfareInstance, seed: u64) -> Result<SwarmOutcome, P2pError> {
        self.run_probed(instance, seed, &mut NoProbe)
    }

    /// [`run`](SwarmAuction::run) with an observer probe.
    ///
    /// # Errors
    ///
    /// As for [`run`](SwarmAuction::run).
    pub fn run_probed<P: AuctionProbe>(
        &self,
        instance: &WelfareInstance,
        seed: u64,
        probe: &mut P,
    ) -> Result<SwarmOutcome, P2pError> {
        let mut side = SideStats::new();
        let outcome = self.once(instance, None, seed, probe, &mut side)?;
        Ok(assemble(outcome, &side))
    }

    /// Runs with carried prices from the previous slot, including the
    /// CS 1 repair loop shared with the synchronous engine (so warm-start
    /// semantics cannot drift between transports).
    ///
    /// # Errors
    ///
    /// As for [`run`](SwarmAuction::run).
    pub fn run_warm(
        &self,
        instance: &WelfareInstance,
        prior_prices: &[f64],
        seed: u64,
    ) -> Result<SwarmOutcome, P2pError> {
        self.run_warm_probed(instance, prior_prices, seed, &mut NoProbe)
    }

    /// [`run_warm`](SwarmAuction::run_warm) with an observer probe.
    ///
    /// # Errors
    ///
    /// As for [`run`](SwarmAuction::run).
    pub fn run_warm_probed<P: AuctionProbe>(
        &self,
        instance: &WelfareInstance,
        prior_prices: &[f64],
        seed: u64,
        probe: &mut P,
    ) -> Result<SwarmOutcome, P2pError> {
        let mut side = SideStats::new();
        let outcome = run_warm_with(instance, prior_prices, self.config.epsilon, |prices| {
            self.once(instance, prices, seed, probe, &mut side)
        })?;
        Ok(assemble(outcome, &side))
    }

    /// One auction pass: ideal replay or reactive network execution.
    fn once<P: AuctionProbe>(
        &self,
        instance: &WelfareInstance,
        warm: Option<&[f64]>,
        seed: u64,
        probe: &mut P,
        side: &mut SideStats,
    ) -> Result<AuctionOutcome, P2pError> {
        let pass_seed = derive_seed(seed, side.passes);
        side.passes += 1;
        if self.net.is_ideal() {
            self.ideal_once(instance, warm, probe, side)
        } else {
            self.reactive_once(instance, warm, pass_seed, probe, side)
        }
    }

    /// Ideal mode: the synchronous sweep replayed as `Poll` events on
    /// virtual time. Bit-identical to [`crate::SyncAuction`].
    fn ideal_once<P: AuctionProbe>(
        &self,
        instance: &WelfareInstance,
        warm: Option<&[f64]>,
        probe: &mut P,
        side: &mut SideStats,
    ) -> Result<AuctionOutcome, P2pError> {
        if self.config.max_rounds == 0 {
            return Err(P2pError::AuctionDiverged { iterations: 0 });
        }
        let n = instance.request_count();
        let (bidders, auctioneers) = build_nodes(instance, warm, self.config.epsilon);
        let retire = self.config.retire_priced_out;
        let world = IdealWorld {
            probe,
            bidders,
            auctioneers,
            assigned_edge: vec![None; n],
            retire,
            retired: vec![false; if retire { n } else { 0 }],
            round: 1,
            round_start: SimTime::ZERO,
            bids_this_round: 0,
            conflicts_this_round: 0,
            retired_this_round: 0,
            bids_total: 0,
            max_rounds: self.config.max_rounds,
            diverged: false,
            messages: 0,
            hash: TraceHash::new(),
            converged_at: SimTime::ZERO,
        };
        let mut sim = Simulation::new(world).with_event_capacity(n + 1);
        for r in 0..n {
            sim.schedule_at(SimTime::ZERO + SWEEP_STEP * r as u64, IdealEv::Poll(r));
        }
        sim.schedule_at(SimTime::ZERO + SWEEP_STEP * n as u64, IdealEv::RoundEnd);
        let stats = sim.run_to_completion();
        let world = sim.into_world();
        if world.diverged {
            return Err(P2pError::AuctionDiverged { iterations: world.round });
        }

        side.messages += world.messages;
        side.events += stats.events_processed;
        side.converged_at = side.converged_at.max(world.converged_at);
        side.peak_queue = side.peak_queue.max(stats.peak_pending as u64);
        side.hash.word(world.hash.finish());

        let lambda = final_prices_from(
            instance,
            world.auctioneers.iter().map(AuctioneerNode::price).collect(),
        );
        let outcome = AuctionOutcome {
            assignment: Assignment::new(world.assigned_edge),
            duals: DualSolution::from_prices(instance, lambda),
            rounds: world.round,
            bids_submitted: world.bids_total,
            converged: true,
            price_trace: Vec::new(),
        };
        report_complete(instance, &outcome, world.probe);
        Ok(outcome)
    }

    /// Reactive mode: per-link channels with seeded latency and faults.
    fn reactive_once<P: AuctionProbe>(
        &self,
        instance: &WelfareInstance,
        warm: Option<&[f64]>,
        seed: u64,
        probe: &mut P,
        side: &mut SideStats,
    ) -> Result<AuctionOutcome, P2pError> {
        let n = instance.request_count();
        let provider_count = instance.provider_count();
        let (bidders, auctioneers) = build_nodes(instance, warm, self.config.epsilon);

        let bidder_peer: Vec<PeerId> =
            instance.requests().iter().map(|r| r.id.downstream()).collect();
        let provider_peer: Vec<PeerId> = instance.providers().iter().map(|p| p.peer).collect();

        // Flattened edge slots: link 2e is the bid direction of edge slot
        // e, link 2e+1 the reply/announce direction.
        let mut row_start = Vec::with_capacity(n);
        let mut edge_total: u32 = 0;
        for r in instance.requests() {
            row_start.push(edge_total);
            edge_total += r.edges.len() as u32;
        }
        let links = (0..2 * edge_total as usize)
            .map(|_| LinkState { sent: 0, delivered: 0, buffer: Vec::new() })
            .collect();

        let mut listeners: Vec<Vec<(RequestIdx, u32)>> = vec![Vec::new(); provider_count];
        for (r, req) in instance.requests().iter().enumerate() {
            for (k, e) in req.edges.iter().enumerate() {
                listeners[e.provider].push((r, k as u32));
            }
        }

        let world = NetWorld {
            probe,
            net: &self.net,
            seed,
            bidders,
            auctioneers,
            assigned_edge: vec![None; n],
            bidder_peer,
            provider_peer,
            row_start,
            listeners,
            links,
            broadcast_pending: vec![false; provider_count],
            msg_counter: 0,
            messages: 0,
            bids_delivered: 0,
            faults: FaultStats::default(),
            hash: TraceHash::new(),
            last_activity: SimTime::ZERO,
            arena: MailboxArena::with_capacity(64),
            open: None,
            coalesce: self.config.coalesce,
            coalesced: 0,
        };
        let mut sim =
            Simulation::new(world).with_max_events(self.config.max_events).with_event_capacity(n);
        for r in 0..n {
            sim.schedule_at(SimTime::ZERO, NetEv::Start(r));
        }
        let stats = sim.run_to_completion();
        let converged = stats.events_processed < self.config.max_events;
        let world = sim.into_world();
        if !converged {
            return Err(P2pError::AuctionDiverged { iterations: stats.events_processed });
        }

        side.messages += world.messages;
        side.events += stats.events_processed;
        side.converged_at = side.converged_at.max(world.last_activity);
        side.peak_queue = side.peak_queue.max(stats.peak_pending as u64);
        side.coalesced += world.coalesced;
        side.faults.dropped += world.faults.dropped;
        side.faults.duplicated += world.faults.duplicated;
        side.faults.duplicates_discarded += world.faults.duplicates_discarded;
        side.faults.reordered += world.faults.reordered;
        side.faults.resequenced += world.faults.resequenced;
        side.faults.deferred += world.faults.deferred;
        side.hash.word(world.hash.finish());

        let lambda = final_prices_from(
            instance,
            world.auctioneers.iter().map(AuctioneerNode::price).collect(),
        );
        let outcome = AuctionOutcome {
            assignment: Assignment::new(world.assigned_edge),
            duals: DualSolution::from_prices(instance, lambda),
            rounds: 0,
            bids_submitted: world.bids_delivered,
            converged: true,
            price_trace: Vec::new(),
        };
        report_complete(instance, &outcome, world.probe);
        Ok(outcome)
    }
}

/// Builds the protocol nodes shared by both modes, mirroring the
/// synchronous engine's warm-start initialization exactly.
fn build_nodes(
    instance: &WelfareInstance,
    warm: Option<&[f64]>,
    epsilon: f64,
) -> (Vec<BidderNode>, Vec<AuctioneerNode>) {
    let views = edge_views(instance);
    let bidders = views
        .into_iter()
        .enumerate()
        .map(|(r, vs)| {
            BidderNode::new(r, vs, epsilon, LearnPolicy::Monotone, |u| {
                let warm_price = warm
                    .and_then(|ps| ps.get(u).copied())
                    .filter(|w| w.is_finite() && *w >= 0.0)
                    .unwrap_or(0.0);
                if instance.provider(u).capacity.is_zero() {
                    f64::INFINITY
                } else {
                    warm_price
                }
            })
        })
        .collect();
    let auctioneers = instance
        .providers()
        .iter()
        .enumerate()
        .map(|(u, p)| {
            let warm_price = warm
                .and_then(|ps| ps.get(u).copied())
                .filter(|w| w.is_finite() && *w >= 0.0)
                .unwrap_or(0.0);
            if p.capacity.is_zero() {
                AuctioneerNode::new(u, 0)
            } else {
                AuctioneerNode::with_price(u, p.capacity.chunks_per_slot(), warm_price)
            }
        })
        .collect();
    (bidders, auctioneers)
}

/// Emits the Theorem 1 certificate to the probe, as the synchronous
/// engine does after each pass.
fn report_complete<P: AuctionProbe>(
    instance: &WelfareInstance,
    outcome: &AuctionOutcome,
    probe: &mut P,
) {
    if probe.enabled() {
        let slack = outcome.duals.objective(instance) - outcome.assignment.welfare(instance).get();
        probe.run_complete(
            outcome.rounds,
            outcome.bids_submitted,
            outcome.assignment.assigned_count() as u64,
            slack,
        );
    }
}

fn assemble(outcome: AuctionOutcome, side: &SideStats) -> SwarmOutcome {
    SwarmOutcome {
        assignment: outcome.assignment,
        duals: outcome.duals,
        rounds: outcome.rounds,
        bids_submitted: outcome.bids_submitted,
        messages: side.messages,
        events: side.events,
        converged_at: side.converged_at,
        converged: outcome.converged,
        faults: side.faults,
        trace_hash: side.hash.finish(),
        coalesced_events: side.coalesced,
        peak_queue: side.peak_queue,
    }
}

// --- Ideal mode world ---

#[derive(Debug, Clone, Copy)]
enum IdealEv {
    /// Request `r` takes its turn in the current sweep.
    Poll(RequestIdx),
    /// The sweep round closes; quiescence check and next-round setup.
    RoundEnd,
}

struct IdealWorld<'a, P: AuctionProbe> {
    probe: &'a mut P,
    bidders: Vec<BidderNode>,
    auctioneers: Vec<AuctioneerNode>,
    assigned_edge: Vec<Option<usize>>,
    retire: bool,
    retired: Vec<bool>,
    round: u64,
    round_start: SimTime,
    bids_this_round: u64,
    conflicts_this_round: u64,
    retired_this_round: u64,
    bids_total: u64,
    max_rounds: u64,
    diverged: bool,
    messages: u64,
    hash: TraceHash,
    converged_at: SimTime,
}

impl<P: AuctionProbe> IdealWorld<'_, P> {
    fn record(&mut self, at: SimTime, msg: &AuctionMsg) {
        self.messages += 1;
        self.hash.msg(at, msg);
    }
}

impl<P: AuctionProbe> World for IdealWorld<'_, P> {
    type Event = IdealEv;

    fn handle(&mut self, ctx: &mut Context<'_, IdealEv>, ev: IdealEv) {
        match ev {
            IdealEv::Poll(r) => {
                if self.retire && self.retired[r] {
                    return;
                }
                if self.bidders[r].phase() != BidderPhase::Idle {
                    return;
                }
                // Poll-time price oracle: zero latency means the bidder
                // reads exact current prices, just as the synchronous
                // sweep reads `eff_price` live (∞ entries for
                // zero-capacity providers stay pinned).
                let auctioneers = &self.auctioneers;
                self.bidders[r].refresh_prices(|u| auctioneers[u].price());
                match self.bidders[r].decide() {
                    BidDecision::Abstain { reason } => {
                        if self.retire
                            && matches!(
                                reason,
                                AbstainReason::Unprofitable | AbstainReason::NoCandidates
                            )
                        {
                            self.retired[r] = true;
                            self.retired_this_round += 1;
                        }
                    }
                    BidDecision::Bid { edge, provider, amount } => {
                        self.bids_this_round += 1;
                        let now = ctx.now();
                        let bid = AuctionMsg::Bid { request: r, edge, provider, amount };
                        self.record(now, &bid);
                        let before = self.auctioneers[provider].price();
                        let reply = self.auctioneers[provider].on_bid(r, amount);
                        // With exact prices the bid is strictly above λ,
                        // so synchronous rejections are unreachable.
                        debug_assert!(
                            matches!(reply.reply, AuctionMsg::Accepted { .. }),
                            "ideal-mode bid rejected"
                        );
                        self.record(now, &reply.reply);
                        self.bidders[r].absorb(&reply.reply);
                        if matches!(reply.reply, AuctionMsg::Accepted { .. }) {
                            self.assigned_edge[r] = Some(edge);
                        }
                        if let Some(notice) = reply.evicted {
                            self.record(now, &notice);
                            if let AuctionMsg::Evicted { request: loser, .. } = notice {
                                self.assigned_edge[loser] = None;
                                self.conflicts_this_round += 1;
                                self.bidders[loser].absorb(&notice);
                                if loser > r {
                                    // The loser's sweep position is still
                                    // ahead this round: re-poll it there,
                                    // exactly the synchronous re-scan.
                                    ctx.schedule_at(
                                        self.round_start + SWEEP_STEP * loser as u64,
                                        IdealEv::Poll(loser),
                                    );
                                }
                            }
                        }
                        if let Some(p) = reply.price_changed {
                            self.probe.price_change(provider, p - before);
                        }
                        self.converged_at = now;
                    }
                }
            }
            IdealEv::RoundEnd => {
                self.bids_total += self.bids_this_round;
                self.probe.round(
                    self.round,
                    self.bids_this_round,
                    self.conflicts_this_round,
                    0,
                    self.retired_this_round,
                );
                if self.bids_this_round == 0 {
                    ctx.stop();
                    return;
                }
                if self.round + 1 > self.max_rounds {
                    self.diverged = true;
                    ctx.stop();
                    return;
                }
                self.round += 1;
                self.round_start = ctx.now();
                self.bids_this_round = 0;
                self.conflicts_this_round = 0;
                self.retired_this_round = 0;
                let n = self.bidders.len();
                for r in 0..n {
                    if self.retire && self.retired[r] {
                        continue;
                    }
                    if self.bidders[r].phase() == BidderPhase::Idle {
                        ctx.schedule_at(self.round_start + SWEEP_STEP * r as u64, IdealEv::Poll(r));
                    }
                }
                ctx.schedule_at(self.round_start + SWEEP_STEP * n as u64, IdealEv::RoundEnd);
            }
        }
    }
}

// --- Reactive mode world ---

#[derive(Debug, Clone, Copy)]
enum NetEv {
    /// A bidder wakes up and considers its first bid.
    Start(RequestIdx),
    /// A mailbox wake-up: one or more messages arrived for one peer at
    /// this timestamp. The payloads live in the arena; the heap entry is
    /// just the generation-checked key.
    Mail(MailKey),
    /// A provider's coalesced price announcement fires.
    Broadcast(ProviderIdx),
}

/// One in-flight message: `(link, send-order sequence, payload)`.
type Envelope = (u32, u32, AuctionMsg);

/// The mailbox wake-up that is still the most recent queue entry at its
/// timestamp — the only batch a new same-peer, same-time delivery may
/// legally join (see the coalescing notes in the module docs).
#[derive(Debug, Clone, Copy)]
struct OpenMail {
    at: SimTime,
    peer: PeerId,
    key: MailKey,
}

struct LinkState {
    sent: u32,
    delivered: u32,
    buffer: Vec<(u32, AuctionMsg)>,
}

struct NetWorld<'a, P: AuctionProbe> {
    probe: &'a mut P,
    net: &'a NetworkModel,
    seed: u64,
    bidders: Vec<BidderNode>,
    auctioneers: Vec<AuctioneerNode>,
    assigned_edge: Vec<Option<usize>>,
    bidder_peer: Vec<PeerId>,
    provider_peer: Vec<PeerId>,
    row_start: Vec<u32>,
    listeners: Vec<Vec<(RequestIdx, u32)>>,
    links: Vec<LinkState>,
    broadcast_pending: Vec<bool>,
    msg_counter: u64,
    messages: u64,
    bids_delivered: u64,
    faults: FaultStats,
    hash: TraceHash,
    last_activity: SimTime,
    arena: MailboxArena<Envelope>,
    open: Option<OpenMail>,
    coalesce: bool,
    coalesced: u64,
}

impl<P: AuctionProbe> NetWorld<'_, P> {
    fn group_of(&self, peer: PeerId) -> u64 {
        derive_seed(self.seed, GROUP_SALT | u64::from(peer.get())) & 1
    }

    /// Schedules a non-delivery event, retiring any open batch at the
    /// same timestamp: once another entry lands at that time, the batch
    /// is no longer the most recent push there, so appending to it would
    /// reorder same-time processing.
    fn push_event(&mut self, ctx: &mut Context<'_, NetEv>, at: SimTime, ev: NetEv) {
        if self.open.is_some_and(|o| o.at == at) {
            self.open = None;
        }
        ctx.schedule_at(at, ev);
    }

    /// Routes one envelope to `peer` at `at`: appends to the open batch
    /// when that is provably order-preserving (same peer, same timestamp,
    /// no queue entry pushed at that timestamp since the batch opened),
    /// otherwise allocates a fresh mailbox and schedules its wake-up.
    fn deliver(&mut self, ctx: &mut Context<'_, NetEv>, at: SimTime, peer: PeerId, env: Envelope) {
        if self.coalesce {
            if let Some(o) = self.open {
                if o.at == at && o.peer == peer {
                    self.arena.push(o.key, env);
                    self.coalesced += 1;
                    return;
                }
            }
        }
        let key = self.arena.alloc();
        self.arena.push(key, env);
        self.push_event(ctx, at, NetEv::Mail(key));
        self.open = Some(OpenMail { at, peer, key });
    }

    /// Ships one message over a link: partition deferral, seeded retry
    /// loop over drop faults (the final attempt always lands), per-link +
    /// per-message latency, optional reorder detour and duplication. All
    /// fate is a pure function of `(seed, msg_counter)`.
    fn send(
        &mut self,
        ctx: &mut Context<'_, NetEv>,
        from: PeerId,
        to: PeerId,
        link: u32,
        msg: AuctionMsg,
    ) {
        let seq = self.links[link as usize].sent;
        self.links[link as usize].sent += 1;
        let fate = derive_seed(self.seed, self.msg_counter);
        self.msg_counter += 1;

        let mut base = ctx.now();
        if let Some(w) = self.net.partition {
            if base >= w.at && base < w.heal && self.group_of(from) != self.group_of(to) {
                base = w.heal;
                self.faults.deferred += 1;
            }
        }

        let link_extra =
            scaled(self.net.link_spread, derive_seed(self.seed, LINK_SALT | u64::from(link)));
        let mut attempt: u64 = 0;
        let arrival = loop {
            let roll = derive_seed(fate, 2 * attempt);
            if attempt < u64::from(self.net.max_retries) && unit(roll) < self.net.drop_prob {
                self.faults.dropped += 1;
                base += self.net.retry_timeout;
                attempt += 1;
                continue;
            }
            let jitter = scaled(self.net.jitter, derive_seed(fate, 2 * attempt + 1));
            let mut lat = self.net.base_latency + link_extra + jitter;
            if self.net.reorder_prob > 0.0
                && unit(derive_seed(fate, REORDER_SALT)) < self.net.reorder_prob
            {
                lat = lat + scaled(self.net.reorder_delay, derive_seed(fate, REORDER_SALT + 1));
                self.faults.reordered += 1;
            }
            break base + lat;
        };
        self.deliver(ctx, arrival, to, (link, seq, msg));

        if self.net.duplicate_prob > 0.0
            && unit(derive_seed(fate, DUP_SALT)) < self.net.duplicate_prob
        {
            self.faults.duplicated += 1;
            let extra = self.net.base_latency
                + link_extra
                + scaled(self.net.jitter, derive_seed(fate, DUP_SALT + 1));
            self.deliver(ctx, arrival + extra, to, (link, seq, msg));
        }
    }

    fn send_bid(&mut self, ctx: &mut Context<'_, NetEv>, bid: AuctionMsg) {
        if let AuctionMsg::Bid { request, edge, provider, .. } = bid {
            let up = 2 * (self.row_start[request] + edge as u32);
            let (from, to) = (self.bidder_peer[request], self.provider_peer[provider]);
            self.send(ctx, from, to, up, bid);
        }
    }

    fn schedule_broadcast(&mut self, ctx: &mut Context<'_, NetEv>, provider: ProviderIdx) {
        if !self.broadcast_pending[provider] {
            self.broadcast_pending[provider] = true;
            let at = ctx.now() + self.net.broadcast_window;
            self.push_event(ctx, at, NetEv::Broadcast(provider));
        }
    }

    /// Receiver-side resequencing: per-link FIFO restored from sequence
    /// numbers; duplicates (seq already consumed or already buffered)
    /// discarded.
    fn on_deliver(&mut self, ctx: &mut Context<'_, NetEv>, link: u32, seq: u32, msg: AuctionMsg) {
        {
            let ls = &mut self.links[link as usize];
            if seq < ls.delivered {
                self.faults.duplicates_discarded += 1;
                return;
            }
            if seq > ls.delivered {
                if ls.buffer.iter().any(|&(s, _)| s == seq) {
                    self.faults.duplicates_discarded += 1;
                } else {
                    ls.buffer.push((seq, msg));
                    self.faults.resequenced += 1;
                }
                return;
            }
            ls.delivered += 1;
        }
        self.process(ctx, msg);
        loop {
            let next = {
                let ls = &mut self.links[link as usize];
                let due = ls.delivered;
                match ls.buffer.iter().position(|&(s, _)| s == due) {
                    Some(pos) => {
                        let (_, m) = ls.buffer.swap_remove(pos);
                        ls.delivered += 1;
                        Some(m)
                    }
                    None => None,
                }
            };
            match next {
                Some(m) => self.process(ctx, m),
                None => break,
            }
        }
    }

    /// Handles one in-order protocol message at its destination actor.
    fn process(&mut self, ctx: &mut Context<'_, NetEv>, msg: AuctionMsg) {
        self.messages += 1;
        self.last_activity = ctx.now();
        self.hash.msg(ctx.now(), &msg);
        match msg {
            AuctionMsg::Bid { request, edge, provider, amount } => {
                self.bids_delivered += 1;
                let before = self.auctioneers[provider].price();
                let reply = self.auctioneers[provider].on_bid(request, amount);
                if matches!(reply.reply, AuctionMsg::Accepted { .. }) {
                    self.assigned_edge[request] = Some(edge);
                }
                let down = 2 * (self.row_start[request] + edge as u32) + 1;
                let (pp, bp) = (self.provider_peer[provider], self.bidder_peer[request]);
                self.send(ctx, pp, bp, down, reply.reply);
                if let Some(notice) = reply.evicted {
                    if let AuctionMsg::Evicted { request: loser, .. } = notice {
                        let ledge = self.assigned_edge[loser]
                            .take()
                            .expect("evicted loser held an assignment");
                        let ldown = 2 * (self.row_start[loser] + ledge as u32) + 1;
                        let lb = self.bidder_peer[loser];
                        self.send(ctx, pp, lb, ldown, notice);
                    }
                }
                if let Some(p) = reply.price_changed {
                    self.probe.price_change(provider, p - before);
                    self.schedule_broadcast(ctx, provider);
                }
            }
            AuctionMsg::Accepted { request, .. }
            | AuctionMsg::Rejected { request, .. }
            | AuctionMsg::Evicted { request, .. } => {
                if let Some(bid) = self.bidders[request].on_message(&msg) {
                    self.send_bid(ctx, bid);
                }
            }
            AuctionMsg::PriceUpdate { listener, .. } => {
                if let Some(bid) = self.bidders[listener].on_message(&msg) {
                    self.send_bid(ctx, bid);
                }
            }
        }
    }
}

impl<P: AuctionProbe> World for NetWorld<'_, P> {
    type Event = NetEv;

    fn handle(&mut self, ctx: &mut Context<'_, NetEv>, ev: NetEv) {
        match ev {
            NetEv::Start(r) => {
                if let Some(bid) = self.bidders[r].poll() {
                    self.send_bid(ctx, bid);
                }
            }
            NetEv::Mail(key) => {
                // The batch stops being appendable the moment it pops:
                // a zero-latency send during processing must open a new
                // wake-up, not write into the one being drained.
                if self.open.is_some_and(|o| o.key == key) {
                    self.open = None;
                }
                let mut batch = self.arena.take(key);
                for (link, seq, msg) in batch.drain(..) {
                    self.on_deliver(ctx, link, seq, msg);
                }
                self.arena.recycle(key, batch);
            }
            NetEv::Broadcast(u) => {
                self.broadcast_pending[u] = false;
                let price = self.auctioneers[u].price();
                let pp = self.provider_peer[u];
                for i in 0..self.listeners[u].len() {
                    let (r, k) = self.listeners[u][i];
                    let down = 2 * (self.row_start[r] + k) + 1;
                    let bp = self.bidder_peer[r];
                    self.send(
                        ctx,
                        pp,
                        bp,
                        down,
                        AuctionMsg::PriceUpdate { listener: r, provider: u, price },
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{AuctionConfig, SyncAuction};
    use crate::verify::verify_optimality;
    use p2p_types::{ChunkId, Cost, RequestId, Valuation, VideoId};

    fn rid(d: u32, c: u32) -> RequestId {
        RequestId::new(PeerId::new(d), ChunkId::new(VideoId::new(0), c))
    }

    /// Deterministic pseudo-random instance (no external RNG: a small
    /// multiplicative generator keeps the test self-contained).
    fn random_instance(seed: u64, providers: usize, requests: usize) -> WelfareInstance {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = WelfareInstance::builder();
        let mut us = Vec::new();
        for u in 0..providers {
            let cap = 1 + (next() % 4) as u32;
            us.push(b.add_provider(PeerId::new(1000 + u as u32), cap));
        }
        for r in 0..requests {
            let req = b.add_request(rid(r as u32, 0));
            let degree = 1 + (next() % 4) as usize;
            let mut seen = Vec::new();
            for _ in 0..degree {
                let u = (next() % providers as u64) as usize;
                if seen.contains(&u) {
                    continue;
                }
                seen.push(u);
                let v = 1.0 + (next() % 700) as f64 / 100.0;
                let w = (next() % 500) as f64 / 100.0;
                b.add_edge(req, us[u], Valuation::new(v), Cost::new(w)).unwrap();
            }
        }
        b.build().unwrap()
    }

    fn assert_bit_identical(sync: &AuctionOutcome, swarm: &SwarmOutcome) {
        assert_eq!(sync.assignment, swarm.assignment, "assignments diverge");
        assert_eq!(sync.duals.lambda, swarm.duals.lambda, "duals diverge");
        assert_eq!(sync.rounds, swarm.rounds, "round counts diverge");
        assert_eq!(sync.bids_submitted, swarm.bids_submitted, "bid counts diverge");
    }

    #[test]
    fn ideal_mode_is_bit_identical_to_sync_sweep() {
        for seed in 0..8u64 {
            let inst = random_instance(seed, 4, 24);
            let sync = SyncAuction::new(AuctionConfig::paper()).run(&inst).unwrap();
            let swarm = SwarmAuction::new(SwarmConfig::paper(), NetworkModel::ideal())
                .run(&inst, seed)
                .unwrap();
            assert_bit_identical(&sync, &swarm);
            assert!(swarm.converged);
            assert_eq!(swarm.faults, FaultStats::default(), "ideal mode injects no faults");
        }
    }

    #[test]
    fn ideal_mode_bit_identity_holds_with_epsilon_and_retirement() {
        for seed in 0..4u64 {
            let inst = random_instance(100 + seed, 5, 30);
            let cfg = AuctionConfig::with_epsilon(0.01).retiring_priced_out();
            let sync = SyncAuction::new(cfg).run(&inst).unwrap();
            let scfg =
                SwarmConfig { epsilon: 0.01, retire_priced_out: true, ..SwarmConfig::paper() };
            let swarm = SwarmAuction::new(scfg, NetworkModel::ideal()).run(&inst, seed).unwrap();
            assert_bit_identical(&sync, &swarm);
        }
    }

    #[test]
    fn ideal_warm_start_matches_sync_warm_start() {
        for seed in 0..4u64 {
            let inst = random_instance(200 + seed, 4, 20);
            let cold = SyncAuction::new(AuctionConfig::paper()).run(&inst).unwrap();
            let prior = cold.duals.lambda.clone();
            let shifted = random_instance(300 + seed, 4, 20);
            let sync = SyncAuction::new(AuctionConfig::paper()).run_warm(&shifted, &prior).unwrap();
            let swarm = SwarmAuction::new(SwarmConfig::paper(), NetworkModel::ideal())
                .run_warm(&shifted, &prior, seed)
                .unwrap();
            assert_bit_identical(&sync, &swarm);
        }
    }

    #[test]
    fn lossy_mode_converges_within_the_epsilon_bound() {
        let inst = random_instance(7, 4, 18);
        let eps = 0.05;
        let out = SwarmAuction::new(SwarmConfig::with_epsilon(eps), NetworkModel::lossy())
            .run(&inst, 99)
            .unwrap();
        assert!(out.converged);
        assert!(out.assignment.validate(&inst).is_ok(), "conservation holds");
        let report = verify_optimality(&inst, &out.assignment, &out.duals, eps + 1e-9);
        assert!(report.is_optimal(), "n·ε certificate lost: {:?}", report.violations);
        assert!(
            out.faults.dropped + out.faults.duplicated + out.faults.reordered > 0,
            "a lossy run of this size must inject faults: {:?}",
            out.faults
        );
    }

    #[test]
    fn same_seed_replays_the_exact_trace() {
        let inst = random_instance(11, 3, 15);
        let engine = SwarmAuction::new(SwarmConfig::with_epsilon(0.02), NetworkModel::lossy());
        let a = engine.run(&inst, 1234).unwrap();
        let b = engine.run(&inst, 1234).unwrap();
        assert_eq!(a.trace_hash, b.trace_hash);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.duals.lambda, b.duals.lambda);
        assert_eq!(a.converged_at, b.converged_at);
    }

    #[test]
    fn distinct_seeds_draw_distinct_fault_schedules() {
        let inst = random_instance(13, 3, 15);
        let engine = SwarmAuction::new(SwarmConfig::with_epsilon(0.02), NetworkModel::lossy());
        let a = engine.run(&inst, 1).unwrap();
        let b = engine.run(&inst, 2).unwrap();
        assert_ne!(a.trace_hash, b.trace_hash, "seeds must steer the fault schedule");
    }

    #[test]
    fn coalesced_and_uncoalesced_lossy_runs_are_byte_identical() {
        let inst = random_instance(29, 4, 18);
        let on = SwarmConfig::with_epsilon(0.03);
        let off = SwarmConfig { coalesce: false, ..on };
        for seed in [1, 7, 99] {
            let a = SwarmAuction::new(on, NetworkModel::lossy()).run(&inst, seed).unwrap();
            let b = SwarmAuction::new(off, NetworkModel::lossy()).run(&inst, seed).unwrap();
            assert_eq!(a.trace_hash, b.trace_hash, "seed {seed}: traces diverge");
            assert_eq!(a.faults, b.faults, "seed {seed}: fault schedules diverge");
            assert_eq!(a.messages, b.messages, "seed {seed}");
            assert_eq!(a.assignment, b.assignment, "seed {seed}");
            assert_eq!(a.duals.lambda, b.duals.lambda, "seed {seed}");
            assert_eq!(a.bids_submitted, b.bids_submitted, "seed {seed}");
            assert_eq!(a.converged_at, b.converged_at, "seed {seed}");
            assert_eq!(b.coalesced_events, 0, "the baseline must not coalesce");
            assert!(a.events <= b.events, "coalescing can only shrink the event count");
        }
    }

    #[test]
    fn flash_crowd_fan_in_coalesces_into_batched_wakeups() {
        // One popular provider behind synchronized (zero-jitter) links:
        // every opening bid lands on the provider's peer at the same
        // virtual instant, the flash-crowd worst case for the queue.
        let mut b = WelfareInstance::builder();
        let u = b.add_provider(PeerId::new(900), 2);
        for d in 0..12u32 {
            let r = b.add_request(rid(d, 0));
            b.add_edge(r, u, Valuation::new(2.0 + f64::from(d) * 0.1), Cost::new(0.5)).unwrap();
        }
        let inst = b.build().unwrap();
        let net =
            NetworkModel { base_latency: SimDuration::from_millis(1), ..NetworkModel::ideal() };
        assert!(!net.is_ideal(), "positive latency must select reactive mode");
        let cfg = SwarmConfig::with_epsilon(0.01);
        let on = SwarmAuction::new(cfg, net.clone()).run(&inst, 3).unwrap();
        let off =
            SwarmAuction::new(SwarmConfig { coalesce: false, ..cfg }, net).run(&inst, 3).unwrap();
        assert!(
            on.coalesced_events >= 11,
            "11 of the 12 opening bids must ride the first wake-up, got {}",
            on.coalesced_events
        );
        assert!(on.events < off.events, "coalescing must shrink the event count");
        assert_eq!(on.trace_hash, off.trace_hash);
        assert_eq!(on.assignment, off.assignment);
        assert_eq!(on.duals.lambda, off.duals.lambda);
        assert!(on.peak_queue > 0 && off.peak_queue > 0, "peak queue depth is recorded");
    }

    #[test]
    fn partition_defers_traffic_and_still_converges() {
        let inst = random_instance(17, 4, 16);
        let net = NetworkModel::lan()
            .with_partition(SimTime::from_micros(500), SimTime::from_micros(50_000));
        let eps = 0.05;
        let out = SwarmAuction::new(SwarmConfig::with_epsilon(eps), net).run(&inst, 5).unwrap();
        assert!(out.converged);
        assert!(out.faults.deferred > 0, "cross-group traffic must hit the partition");
        assert!(out.assignment.validate(&inst).is_ok());
        let report = verify_optimality(&inst, &out.assignment, &out.duals, eps + 1e-9);
        assert!(report.is_optimal(), "{:?}", report.violations);
    }

    #[test]
    fn presets_parse_by_name() {
        assert!(NetworkModel::preset("ideal").unwrap().is_ideal());
        assert!(!NetworkModel::preset("lan").unwrap().is_ideal());
        assert!(NetworkModel::preset("lossy").unwrap().drop_prob > 0.0);
        assert!(NetworkModel::preset("wan").is_none());
    }

    #[test]
    fn empty_instance_finishes_in_one_quiet_round() {
        let inst = WelfareInstance::builder().build().unwrap();
        let out =
            SwarmAuction::new(SwarmConfig::paper(), NetworkModel::ideal()).run(&inst, 0).unwrap();
        assert_eq!(out.rounds, 1);
        assert_eq!(out.bids_submitted, 0);
        assert_eq!(out.assignment.assigned_count(), 0);
    }

    #[test]
    fn divergence_guard_fires_with_tiny_round_budget() {
        let inst = random_instance(19, 3, 10);
        let cfg = SwarmConfig { max_rounds: 0, ..SwarmConfig::paper() };
        let err = SwarmAuction::new(cfg, NetworkModel::ideal()).run(&inst, 0).unwrap_err();
        assert!(matches!(err, P2pError::AuctionDiverged { .. }));
    }

    #[test]
    fn reactive_event_cap_reports_divergence() {
        let inst = random_instance(23, 3, 10);
        let cfg = SwarmConfig { max_events: 2, ..SwarmConfig::with_epsilon(0.05) };
        let err = SwarmAuction::new(cfg, NetworkModel::lan()).run(&inst, 0).unwrap_err();
        assert!(matches!(err, P2pError::AuctionDiverged { .. }));
    }
}
