//! Transport-agnostic protocol state machines for the distributed auction.
//!
//! The per-peer bid/price logic used to live twice: once inside the
//! threaded runtime's actor closures and once inside the discrete-event
//! world of [`crate::dist`]. This module extracts it into two pure state
//! machines — [`BidderNode`] (one per request) and [`AuctioneerNode`] (one
//! per provider) — that know nothing about threads, channels, wall clocks
//! or event queues. A transport feeds them messages and forwards the
//! messages they emit; *when* and *in what order* those messages arrive is
//! entirely the transport's business.
//!
//! Three transports drive these machines today:
//!
//! * the threaded runtime (`p2p_runtime`): real OS threads, crossbeam
//!   mailboxes, wall-clock latency — the paper's emulator style;
//! * the reactive discrete-event world ([`crate::dist`]): virtual-time
//!   message races with per-link latency, reproducing Fig. 2;
//! * the virtual-time swarm backend ([`crate::swarm`]): logical actors on
//!   the simulator's event queue with a seeded fault-injecting network
//!   model, scaling to 10⁵ peers in seconds.
//!
//! The split between [`BidderNode::absorb`] (state update only) and
//! [`BidderNode::poll`] (emit a bid if one is due) is what lets one state
//! machine serve both execution styles: reactive transports call
//! [`BidderNode::on_message`] (absorb + poll) so every delivery can trigger
//! a counter-bid immediately, while the synchronous-rounds transport
//! absorbs deliveries silently and polls each bidder exactly once per
//! sweep — reproducing the Gauss–Seidel order of [`crate::SyncAuction`]
//! bid for bid.

use crate::auctioneer::{Auctioneer, BidOutcome};
use crate::bidder::{decide_bid, BidDecision, EdgeView};
use crate::instance::{ProviderIdx, RequestIdx};
use crate::messages::AuctionMsg;

/// How a bidder reconciles a newly observed price with what it already
/// knows about a provider.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LearnPolicy {
    /// Keep the maximum ever observed. Correct whenever prices are
    /// monotone within a run (no departures), and robust to reordered or
    /// duplicated observations — the policy of the threaded runtime and
    /// the swarm backend.
    Monotone,
    /// Believe the latest observation. Required when departures can
    /// *reset* prices (Sec. IV-C): a release genuinely lowers λ and the
    /// bidder must believe the decrease. Needs per-link FIFO delivery to
    /// keep observations ordered — the policy of [`crate::dist`].
    Latest,
}

/// Bidder protocol phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BidderPhase {
    /// Unassigned; free to bid when prices allow.
    Idle,
    /// A bid is in flight; wait for the outcome before bidding again.
    Pending,
    /// Holds a bandwidth unit at the provider.
    Assigned(ProviderIdx),
}

/// The per-request bidder state machine: edge views, locally known prices
/// and the protocol phase. Pure — no threads, no channels, no clocks; it
/// only reacts to the messages a transport feeds it.
#[derive(Debug, Clone)]
pub struct BidderNode {
    request: RequestIdx,
    views: Vec<EdgeView>,
    known: Vec<f64>,
    phase: BidderPhase,
    epsilon: f64,
    policy: LearnPolicy,
    cancelled: bool,
}

impl BidderNode {
    /// Creates the node with initial price knowledge drawn from
    /// `price_of` (`0` for cold starts, the carried λ for warm starts;
    /// pass `+∞` for zero-capacity providers so the bidder never targets
    /// them — the convention every engine shares).
    pub fn new(
        request: RequestIdx,
        views: Vec<EdgeView>,
        epsilon: f64,
        policy: LearnPolicy,
        price_of: impl Fn(ProviderIdx) -> f64,
    ) -> Self {
        let known = views.iter().map(|v| price_of(v.provider)).collect();
        BidderNode {
            request,
            views,
            known,
            phase: BidderPhase::Idle,
            epsilon,
            policy,
            cancelled: false,
        }
    }

    /// The request this node bids for.
    pub fn request(&self) -> RequestIdx {
        self.request
    }

    /// The node's edge views (provider + net utility per candidate edge).
    pub fn views(&self) -> &[EdgeView] {
        &self.views
    }

    /// The current protocol phase.
    pub fn phase(&self) -> BidderPhase {
        self.phase
    }

    /// Whether the request has been cancelled (its downstream peer left).
    pub fn is_cancelled(&self) -> bool {
        self.cancelled
    }

    /// Cancels the request (Sec. IV-C bidder departure): the node ignores
    /// every further message and never bids again.
    pub fn cancel(&mut self) {
        self.cancelled = true;
    }

    /// Records an observed price for `provider` per the learn policy.
    pub fn learn(&mut self, provider: ProviderIdx, price: f64) {
        if let Some(k) = self.views.iter().position(|v| v.provider == provider) {
            match self.policy {
                LearnPolicy::Latest => self.known[k] = price,
                LearnPolicy::Monotone => {
                    if price > self.known[k] {
                        self.known[k] = price;
                    }
                }
            }
        }
    }

    /// Overwrites the known price of every *live* candidate (entries
    /// currently `+∞` mark zero-capacity providers and stay pinned there).
    /// The ideal zero-latency transport uses this as its price oracle: at
    /// each poll the bidder sees exact current prices, just as the
    /// synchronous sweep reads `eff_price` live.
    pub fn refresh_prices(&mut self, price_of: impl Fn(ProviderIdx) -> f64) {
        for (k, v) in self.views.iter().enumerate() {
            if self.known[k].is_finite() {
                self.known[k] = price_of(v.provider);
            }
        }
    }

    /// [`refresh_prices`](Self::refresh_prices) from a price slice aligned
    /// with the edge order (`prices[k]` belongs to `views()[k]`) — the
    /// layout polls travel in on the wire, so transports can refresh
    /// without building a provider-keyed map first. Live entries are
    /// overwritten; `+∞` zero-capacity pins stay pinned.
    ///
    /// # Panics
    ///
    /// Panics if `prices.len()` differs from the number of edges.
    pub fn refresh_prices_aligned(&mut self, prices: &[f64]) {
        assert_eq!(prices.len(), self.views.len(), "one price per candidate edge");
        for (k, p) in prices.iter().enumerate() {
            if self.known[k].is_finite() {
                self.known[k] = *p;
            }
        }
    }

    /// Updates state from a delivered message **without** emitting a
    /// counter-bid. Cancelled nodes ignore everything.
    pub fn absorb(&mut self, msg: &AuctionMsg) {
        if self.cancelled {
            return;
        }
        match *msg {
            AuctionMsg::Accepted { provider, .. } => {
                self.phase = BidderPhase::Assigned(provider);
            }
            AuctionMsg::Rejected { provider, price, .. }
            | AuctionMsg::Evicted { provider, price, .. } => {
                // A rejection/eviction may cross an Accepted message in
                // flight; in either order the request must end up Idle
                // with the price learned.
                self.learn(provider, price);
                self.phase = BidderPhase::Idle;
            }
            AuctionMsg::PriceUpdate { provider, price, .. } => {
                self.learn(provider, price);
            }
            AuctionMsg::Bid { .. } => {
                debug_assert!(false, "bidders never receive bids");
            }
        }
    }

    /// Full bid decision over the known prices (Sec. IV-B top-2 rule).
    /// On a `Bid` decision the node transitions to [`BidderPhase::Pending`]
    /// and the transport must deliver the returned message; abstentions
    /// leave the phase untouched and report why (the synchronous-rounds
    /// transport uses the reason to retire priced-out requests).
    pub fn decide(&mut self) -> BidDecision {
        if self.cancelled || self.phase != BidderPhase::Idle {
            return BidDecision::Abstain { reason: crate::bidder::AbstainReason::NoCandidates };
        }
        let views = &self.views;
        let known = &self.known;
        let decision = decide_bid(
            views,
            |p| {
                views
                    .iter()
                    .position(|v| v.provider == p)
                    .map(|k| known[k])
                    .unwrap_or(f64::INFINITY)
            },
            self.epsilon,
        );
        if let BidDecision::Bid { .. } = decision {
            self.phase = BidderPhase::Pending;
        }
        decision
    }

    /// Lets an idle bidder reconsider; returns the bid message to deliver
    /// if one is due.
    pub fn poll(&mut self) -> Option<AuctionMsg> {
        match self.decide() {
            BidDecision::Bid { edge, provider, amount } => {
                Some(AuctionMsg::Bid { request: self.request, edge, provider, amount })
            }
            BidDecision::Abstain { .. } => None,
        }
    }

    /// Reactive step function: absorb the delivery, then poll — the one
    /// call reactive transports need per delivered message.
    pub fn on_message(&mut self, msg: &AuctionMsg) -> Option<AuctionMsg> {
        self.absorb(msg);
        self.poll()
    }
}

/// Everything an auctioneer says in response to one bid: the direct reply
/// to the bidder, an eviction notice for the displaced loser (if any) and
/// the new price to announce (if it changed). Destinations are implicit in
/// the message fields; how the announcement travels — immediate fan-out,
/// coalesced broadcast, piggy-backed gossip — is the transport's choice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BidReply {
    /// `Accepted` or `Rejected`, addressed to the bidding request.
    pub reply: AuctionMsg,
    /// `Evicted` notice for the displaced request, if the bid evicted one
    /// (priced at the provider's λ *after* the accept).
    pub evicted: Option<AuctionMsg>,
    /// The provider's new price, if this bid raised it.
    pub price_changed: Option<f64>,
}

/// The per-provider auctioneer state machine: a thin, transport-free shell
/// over [`Auctioneer`] that turns bid outcomes into protocol messages and
/// handles the Sec. IV-C departure protocol.
#[derive(Debug)]
pub struct AuctioneerNode {
    provider: ProviderIdx,
    state: Auctioneer,
    offline: bool,
}

impl AuctioneerNode {
    /// Creates the node for `provider` with `capacity` units at price 0.
    pub fn new(provider: ProviderIdx, capacity: u32) -> Self {
        AuctioneerNode { provider, state: Auctioneer::new(capacity), offline: false }
    }

    /// Creates the node with a warm-start price (see
    /// [`Auctioneer::with_price`]).
    pub fn with_price(provider: ProviderIdx, capacity: u32, price: f64) -> Self {
        AuctioneerNode { provider, state: Auctioneer::with_price(capacity, price), offline: false }
    }

    /// The provider this node auctions for.
    pub fn provider(&self) -> ProviderIdx {
        self.provider
    }

    /// The current price λ.
    pub fn price(&self) -> f64 {
        self.state.price()
    }

    /// Capacity in units.
    pub fn capacity(&self) -> u32 {
        self.state.capacity()
    }

    /// Whether the provider has departed.
    pub fn is_offline(&self) -> bool {
        self.offline
    }

    /// Currently assigned `(request, bid)` pairs.
    pub fn assigned(&self) -> impl Iterator<Item = (RequestIdx, f64)> + '_ {
        self.state.assigned()
    }

    /// Handles one bid, yielding every message the auctioneer owes in
    /// response. An offline auctioneer rejects at price `+∞` so the bidder
    /// looks elsewhere.
    pub fn on_bid(&mut self, request: RequestIdx, amount: f64) -> BidReply {
        let provider = self.provider;
        if self.offline {
            return BidReply {
                reply: AuctionMsg::Rejected { request, provider, price: f64::INFINITY },
                evicted: None,
                price_changed: None,
            };
        }
        match self.state.handle_bid(request, amount) {
            BidOutcome::Rejected { price } => BidReply {
                reply: AuctionMsg::Rejected { request, provider, price },
                evicted: None,
                price_changed: None,
            },
            BidOutcome::Accepted { evicted, new_price } => BidReply {
                reply: AuctionMsg::Accepted { request, provider },
                evicted: evicted.map(|loser| AuctionMsg::Evicted {
                    request: loser,
                    provider,
                    price: self.state.price(),
                }),
                price_changed: new_price,
            },
        }
    }

    /// Releases a departed bidder's unit; returns the reset price if the
    /// provider was full (the transport should then announce it). No-op on
    /// an offline auctioneer.
    pub fn release(&mut self, request: RequestIdx) -> Option<f64> {
        if self.offline {
            return None;
        }
        self.state.release(request)
    }

    /// Takes the provider offline (Sec. IV-C auctioneer departure) and
    /// returns the `Evicted` notice (price `+∞`) owed to every winner. The
    /// transport should follow with a farewell price announcement of `+∞`.
    pub fn go_offline(&mut self) -> Vec<AuctionMsg> {
        self.offline = true;
        let provider = self.provider;
        self.state
            .take_all()
            .into_iter()
            .map(|request| AuctionMsg::Evicted { request, provider, price: f64::INFINITY })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bidder::AbstainReason;

    fn views() -> Vec<EdgeView> {
        vec![EdgeView { provider: 0, utility: 5.0 }, EdgeView { provider: 1, utility: 3.0 }]
    }

    #[test]
    fn bidder_bids_best_net_utility_and_goes_pending() {
        let mut b = BidderNode::new(7, views(), 0.0, LearnPolicy::Monotone, |_| 0.0);
        let msg = b.poll().expect("profitable request must bid");
        match msg {
            AuctionMsg::Bid { request, provider, amount, .. } => {
                assert_eq!(request, 7);
                assert_eq!(provider, 0);
                assert!(amount > 0.0);
            }
            other => panic!("expected bid, got {other:?}"),
        }
        assert_eq!(b.phase(), BidderPhase::Pending);
        assert!(b.poll().is_none(), "pending bidders never double-bid");
    }

    #[test]
    fn absorb_transitions_follow_the_protocol() {
        let mut b = BidderNode::new(0, views(), 0.0, LearnPolicy::Monotone, |_| 0.0);
        b.poll().unwrap();
        b.absorb(&AuctionMsg::Accepted { request: 0, provider: 0 });
        assert_eq!(b.phase(), BidderPhase::Assigned(0));
        b.absorb(&AuctionMsg::Evicted { request: 0, provider: 0, price: 4.0 });
        assert_eq!(b.phase(), BidderPhase::Idle);
        // The eviction price was learned; the next bid targets provider 1.
        match b.poll().unwrap() {
            AuctionMsg::Bid { provider, .. } => assert_eq!(provider, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn learn_policies_differ_on_decreases() {
        let mut mono = BidderNode::new(0, views(), 0.0, LearnPolicy::Monotone, |_| 0.0);
        let mut latest = BidderNode::new(0, views(), 0.0, LearnPolicy::Latest, |_| 0.0);
        for b in [&mut mono, &mut latest] {
            b.learn(0, 3.0);
            b.learn(0, 1.0);
        }
        assert_eq!(mono.known[0], 3.0, "monotone keeps the max");
        assert_eq!(latest.known[0], 1.0, "latest believes the decrease");
    }

    #[test]
    fn cancelled_bidders_are_inert() {
        let mut b = BidderNode::new(0, views(), 0.0, LearnPolicy::Latest, |_| 0.0);
        b.cancel();
        assert!(b.poll().is_none());
        b.absorb(&AuctionMsg::Accepted { request: 0, provider: 0 });
        assert_eq!(b.phase(), BidderPhase::Idle, "cancelled nodes ignore messages");
    }

    #[test]
    fn zero_capacity_knowledge_survives_refresh() {
        let price_of = |p: ProviderIdx| if p == 1 { f64::INFINITY } else { 0.0 };
        let mut b = BidderNode::new(0, views(), 0.0, LearnPolicy::Monotone, price_of);
        b.refresh_prices(|_| 2.5);
        assert_eq!(b.known[0], 2.5);
        assert_eq!(b.known[1], f64::INFINITY, "zero-capacity entries stay pinned");
    }

    #[test]
    fn aligned_refresh_matches_the_oracle_refresh() {
        let price_of = |p: ProviderIdx| if p == 1 { f64::INFINITY } else { 0.0 };
        let mut by_oracle = BidderNode::new(0, views(), 0.0, LearnPolicy::Monotone, price_of);
        let mut by_slice = by_oracle.clone();
        by_oracle.refresh_prices(|p| if p == 0 { 4.5 } else { 1.25 });
        by_slice.refresh_prices_aligned(&[4.5, 1.25]);
        assert_eq!(by_oracle.known, by_slice.known);
        assert_eq!(by_slice.known[1], f64::INFINITY, "pins survive the aligned path too");
        assert_eq!(by_oracle.decide(), by_slice.decide());
    }

    #[test]
    #[should_panic(expected = "one price per candidate edge")]
    fn aligned_refresh_rejects_mismatched_lengths() {
        let mut b = BidderNode::new(0, views(), 0.0, LearnPolicy::Monotone, |_| 0.0);
        b.refresh_prices_aligned(&[1.0]);
    }

    #[test]
    fn unprofitable_abstention_reports_reason() {
        let mut b = BidderNode::new(0, views(), 0.0, LearnPolicy::Monotone, |_| 100.0);
        match b.decide() {
            BidDecision::Abstain { reason } => assert_eq!(reason, AbstainReason::Unprofitable),
            other => panic!("{other:?}"),
        }
        assert_eq!(b.phase(), BidderPhase::Idle);
    }

    #[test]
    fn auctioneer_replies_accept_evict_and_announce() {
        let mut a = AuctioneerNode::new(3, 1);
        let first = a.on_bid(10, 2.0);
        assert_eq!(first.reply, AuctionMsg::Accepted { request: 10, provider: 3 });
        assert!(first.evicted.is_none());
        assert_eq!(first.price_changed, Some(2.0), "full provider prices at the min bid");
        let second = a.on_bid(11, 5.0);
        assert_eq!(second.reply, AuctionMsg::Accepted { request: 11, provider: 3 });
        assert_eq!(
            second.evicted,
            Some(AuctionMsg::Evicted { request: 10, provider: 3, price: 5.0 }),
            "the eviction carries the post-accept price"
        );
        let low = a.on_bid(12, 1.0);
        assert_eq!(low.reply, AuctionMsg::Rejected { request: 12, provider: 3, price: 5.0 });
    }

    #[test]
    fn offline_auctioneer_evicts_all_and_rejects_at_infinity() {
        let mut a = AuctioneerNode::new(0, 2);
        a.on_bid(1, 1.0);
        a.on_bid(2, 2.0);
        let notices = a.go_offline();
        assert_eq!(notices.len(), 2);
        for n in &notices {
            assert!(matches!(n, AuctionMsg::Evicted { price, .. } if price.is_infinite()), "{n:?}");
        }
        let r = a.on_bid(3, 9.0);
        assert!(
            matches!(r.reply, AuctionMsg::Rejected { price, .. } if price.is_infinite()),
            "{:?}",
            r.reply
        );
        assert_eq!(a.release(1), None, "offline releases are no-ops");
    }
}
