//! Message-level distributed execution of the auction on the discrete-event
//! simulator, with per-link latencies.
//!
//! This is the execution the paper actually deploys: "a set of distributed,
//! interleaving auctions" where bids, rejections, evictions and price
//! announcements are real messages subject to network latency. The engine
//! reproduces the within-slot price dynamics of Fig. 2 — prices climb as
//! bids race in, then flatten once no bidder wants to move — and, by the
//! same Theorem-1 argument as the synchronous engine, terminates at the
//! same social welfare when costs are tie-free.
//!
//! Price announcements are coalesced per provider over a configurable
//! window (default 100 ms): rapid successive changes produce one broadcast,
//! mirroring the piggy-backed gossip a real implementation would use and
//! keeping the event count tractable at the paper's 500-peer scale.

use crate::engine::{edge_views, final_prices_from, AuctionConfig};
use crate::instance::{ProviderIdx, RequestIdx, WelfareInstance};
use crate::messages::AuctionMsg;
use crate::protocol::{AuctioneerNode, BidderNode, LearnPolicy};
use crate::solution::{Assignment, DualSolution};
use p2p_sim::{Context, Simulation, World};
use p2p_types::{P2pError, PeerId, SimDuration, SimTime};

/// Latency oracle: one-way delay from `from` to `to`.
pub type LatencyFn = Box<dyn Fn(PeerId, PeerId) -> SimDuration>;

/// A scheduled mid-auction departure (Sec. IV-C): at `at`, every role of
/// `peer` — auctioneer and/or bidder — leaves the system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepartureEvent {
    /// When the peer departs.
    pub at: SimTime,
    /// The departing peer.
    pub peer: PeerId,
}

/// A recorded `(time, provider, price)` sample — the raw material of Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PricePoint {
    /// Simulated instant of the change.
    pub at: SimTime,
    /// The provider whose price changed.
    pub provider: ProviderIdx,
    /// The new price.
    pub price: f64,
}

/// Outcome of a distributed auction run.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedOutcome {
    /// The binary primal solution.
    pub assignment: Assignment,
    /// The dual solution at termination.
    pub duals: DualSolution,
    /// Simulated instant at which the last protocol message was handled
    /// (the convergence time of Fig. 2).
    pub converged_at: SimTime,
    /// Total protocol messages delivered.
    pub messages: u64,
    /// Whether the protocol quiesced (vs hitting the event cap).
    pub converged: bool,
    /// Time-stamped price changes of every provider.
    pub price_trace: Vec<PricePoint>,
}

/// Configuration of the distributed execution.
pub struct DistConfig {
    /// Bid increment ε (see [`AuctionConfig::epsilon`]).
    pub epsilon: f64,
    /// Price-announcement coalescing window.
    pub broadcast_window: SimDuration,
    /// Safety cap on delivered messages.
    pub max_messages: u64,
    /// Record the price trace.
    pub record_price_trace: bool,
}

impl DistConfig {
    /// Defaults matching [`AuctionConfig::paper`] with a 100 ms
    /// announcement window.
    pub fn paper() -> Self {
        DistConfig {
            epsilon: 0.0,
            broadcast_window: SimDuration::from_millis(100),
            max_messages: 500_000_000,
            record_price_trace: false,
        }
    }

    /// Enables trace recording (builder-style).
    #[must_use]
    pub fn recording_trace(mut self) -> Self {
        self.record_price_trace = true;
        self
    }

    /// Sets ε (builder-style).
    #[must_use]
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }
}

impl From<&AuctionConfig> for DistConfig {
    fn from(c: &AuctionConfig) -> Self {
        DistConfig {
            epsilon: c.epsilon,
            record_price_trace: c.record_price_trace,
            ..DistConfig::paper()
        }
    }
}

/// Internal DES events.
#[derive(Debug)]
enum Ev {
    /// A protocol message arrives at its destination.
    Deliver(AuctionMsg),
    /// A bidder wakes up at auction start.
    Start(RequestIdx),
    /// A provider's coalesced price broadcast fires.
    Broadcast(ProviderIdx),
    /// A peer departs mid-auction (Sec. IV-C).
    Depart(PeerId),
}

struct DistWorld {
    // Static problem data.
    bidder_peer: Vec<PeerId>,
    provider_peer: Vec<PeerId>,
    listeners: Vec<Vec<RequestIdx>>,
    latency: LatencyFn,
    broadcast_window: SimDuration,
    record_trace: bool,
    // Protocol state machines (transport-agnostic; this world is just the
    // latency-aware transport driving them).
    auctioneers: Vec<AuctioneerNode>,
    bidders: Vec<BidderNode>,
    broadcast_pending: Vec<bool>,
    // Outputs.
    assigned_edge: Vec<Option<usize>>,
    trace: Vec<PricePoint>,
    messages: u64,
    last_activity: SimTime,
}

impl DistWorld {
    /// Delivers a node-emitted bid to its auctioneer after link latency.
    fn send_bid(&mut self, ctx: &mut Context<'_, Ev>, bid: AuctionMsg) {
        if let AuctionMsg::Bid { request, provider, .. } = bid {
            let delay = (self.latency)(self.bidder_peer[request], self.provider_peer[provider]);
            ctx.schedule_in(delay, Ev::Deliver(bid));
        }
    }

    /// Lets an idle bidder reconsider; emits a bid message if one is due.
    fn maybe_bid(&mut self, ctx: &mut Context<'_, Ev>, request: RequestIdx) {
        if let Some(bid) = self.bidders[request].poll() {
            self.send_bid(ctx, bid);
        }
    }

    /// Schedules a coalesced price broadcast for `provider` if none pending.
    fn schedule_broadcast(&mut self, ctx: &mut Context<'_, Ev>, provider: ProviderIdx) {
        if !self.broadcast_pending[provider] {
            self.broadcast_pending[provider] = true;
            ctx.schedule_in(self.broadcast_window, Ev::Broadcast(provider));
        }
    }

    fn record_price(&mut self, at: SimTime, provider: ProviderIdx, price: f64) {
        if self.record_trace {
            self.trace.push(PricePoint { at, provider, price });
        }
    }
}

impl World for DistWorld {
    type Event = Ev;

    fn handle(&mut self, ctx: &mut Context<'_, Ev>, event: Ev) {
        self.last_activity = ctx.now();
        match event {
            Ev::Start(request) => self.maybe_bid(ctx, request),
            Ev::Depart(peer) => self.on_departure(ctx, peer),
            Ev::Broadcast(provider) => {
                self.broadcast_pending[provider] = false;
                if self.auctioneers[provider].is_offline() {
                    return; // the departure already announced +∞
                }
                let price = self.auctioneers[provider].price();
                for i in 0..self.listeners[provider].len() {
                    let listener = self.listeners[provider][i];
                    let delay =
                        (self.latency)(self.provider_peer[provider], self.bidder_peer[listener]);
                    ctx.schedule_in(
                        delay,
                        Ev::Deliver(AuctionMsg::PriceUpdate { listener, provider, price }),
                    );
                }
            }
            Ev::Deliver(msg) => {
                self.messages += 1;
                self.on_message(ctx, msg);
            }
        }
    }
}

impl DistWorld {
    /// Sec. IV-C departure handling: an auctioneer's departure evicts its
    /// winners and announces an infinite price; a bidder's departure
    /// cancels its requests and releases any units they held (the released
    /// provider re-opens at price 0 and re-runs its local competition).
    fn on_departure(&mut self, ctx: &mut Context<'_, Ev>, peer: PeerId) {
        // Auctioneer role.
        for u in 0..self.provider_peer.len() {
            if self.provider_peer[u] != peer || self.auctioneers[u].is_offline() {
                continue;
            }
            let up = self.provider_peer[u];
            for notice in self.auctioneers[u].go_offline() {
                if let AuctionMsg::Evicted { request, .. } = notice {
                    self.assigned_edge[request] = None;
                    let delay = (self.latency)(up, self.bidder_peer[request]);
                    ctx.schedule_in(delay, Ev::Deliver(notice));
                }
            }
            // Immediate (uncoalesced) farewell announcement: nobody should
            // target a dead provider.
            for i in 0..self.listeners[u].len() {
                let listener = self.listeners[u][i];
                let delay = (self.latency)(up, self.bidder_peer[listener]);
                ctx.schedule_in(
                    delay,
                    Ev::Deliver(AuctionMsg::PriceUpdate {
                        listener,
                        provider: u,
                        price: f64::INFINITY,
                    }),
                );
            }
        }
        // Bidder role.
        for r in 0..self.bidder_peer.len() {
            if self.bidder_peer[r] != peer || self.bidders[r].is_cancelled() {
                continue;
            }
            self.bidders[r].cancel();
            if let Some(edge) = self.assigned_edge[r].take() {
                let u = self.bidders[r].views()[edge].provider;
                if !self.auctioneers[u].is_offline() {
                    if let Some(price) = self.auctioneers[u].release(r) {
                        self.record_price(ctx.now(), u, price);
                        self.schedule_broadcast(ctx, u);
                    }
                }
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Ev>, msg: AuctionMsg) {
        match msg {
            AuctionMsg::Bid { request, edge, provider, amount } => {
                if self.bidders[request].is_cancelled() {
                    return; // bid from a peer that has since departed
                }
                let up = self.provider_peer[provider];
                let down = self.bidder_peer[request];
                let reply = self.auctioneers[provider].on_bid(request, amount);
                if matches!(reply.reply, AuctionMsg::Accepted { .. }) {
                    self.assigned_edge[request] = Some(edge);
                }
                let delay = (self.latency)(up, down);
                ctx.schedule_in(delay, Ev::Deliver(reply.reply));
                if let Some(notice) = reply.evicted {
                    if let AuctionMsg::Evicted { request: loser, .. } = notice {
                        self.assigned_edge[loser] = None;
                        let delay = (self.latency)(up, self.bidder_peer[loser]);
                        ctx.schedule_in(delay, Ev::Deliver(notice));
                    }
                }
                if let Some(price) = reply.price_changed {
                    self.record_price(ctx.now(), provider, price);
                    self.schedule_broadcast(ctx, provider);
                }
            }
            AuctionMsg::Accepted { request, .. }
            | AuctionMsg::Rejected { request, .. }
            | AuctionMsg::Evicted { request, .. } => {
                if let Some(bid) = self.bidders[request].on_message(&msg) {
                    self.send_bid(ctx, bid);
                }
            }
            AuctionMsg::PriceUpdate { listener, .. } => {
                if let Some(bid) = self.bidders[listener].on_message(&msg) {
                    self.send_bid(ctx, bid);
                }
            }
        }
    }
}

/// The distributed auction engine.
///
/// # Examples
///
/// ```
/// use p2p_core::dist::{DistributedAuction, DistConfig};
/// use p2p_core::WelfareInstance;
/// use p2p_types::*;
///
/// let mut b = WelfareInstance::builder();
/// let u = b.add_provider(PeerId::new(7), 1);
/// let r = b.add_request(RequestId::new(PeerId::new(0), ChunkId::new(VideoId::new(0), 0)));
/// b.add_edge(r, u, Valuation::new(4.0), Cost::new(1.0)).unwrap();
/// let inst = b.build().unwrap();
///
/// let auction = DistributedAuction::new(
///     DistConfig::paper(),
///     Box::new(|_, _| SimDuration::from_millis(50)),
/// );
/// let out = auction.run(&inst).unwrap();
/// assert!(out.converged);
/// assert_eq!(out.assignment.assigned_count(), 1);
/// // One bid round trip: 50 ms out, convergence stamped at the last event.
/// assert!(out.converged_at.as_secs_f64() > 0.0);
/// ```
pub struct DistributedAuction {
    config: DistConfig,
    latency: LatencyFn,
}

impl DistributedAuction {
    /// Creates the engine with a latency oracle.
    pub fn new(config: DistConfig, latency: LatencyFn) -> Self {
        DistributedAuction { config, latency }
    }

    /// Runs the distributed auction to quiescence.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::AuctionDiverged`] if the message cap is reached
    /// before quiescence.
    pub fn run(self, instance: &WelfareInstance) -> Result<DistributedOutcome, P2pError> {
        self.run_with_departures(instance, &[])
    }

    /// Runs the auction with mid-auction peer departures (Sec. IV-C): "the
    /// algorithm can handle it smoothly and converge to the maximum social
    /// welfare where the departed peer is excluded". Departed auctioneers
    /// evict their winners and announce an infinite price; departed
    /// bidders' requests are cancelled and their held units released.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::AuctionDiverged`] if the message cap is reached
    /// before quiescence.
    pub fn run_with_departures(
        self,
        instance: &WelfareInstance,
        departures: &[DepartureEvent],
    ) -> Result<DistributedOutcome, P2pError> {
        let views = edge_views(instance);
        let request_count = instance.request_count();
        let provider_count = instance.provider_count();

        let mut listeners: Vec<Vec<RequestIdx>> = vec![Vec::new(); provider_count];
        for (r, vs) in views.iter().enumerate() {
            for v in vs {
                listeners[v.provider].push(r);
            }
        }

        // Bidders start knowing price 0 for live providers and +∞ for
        // zero-capacity providers (which never sell). The learn policy is
        // `Latest`: departures reset prices (Sec. IV-C), so decreases must
        // be believed; per-link FIFO delivery keeps observations ordered,
        // and a stale low price merely costs one rejected re-bid.
        let epsilon = self.config.epsilon;
        let bidders: Vec<BidderNode> = views
            .into_iter()
            .enumerate()
            .map(|(r, vs)| {
                BidderNode::new(r, vs, epsilon, LearnPolicy::Latest, |u| {
                    if instance.provider(u).capacity.is_zero() {
                        f64::INFINITY
                    } else {
                        0.0
                    }
                })
            })
            .collect();

        let world = DistWorld {
            bidder_peer: instance.requests().iter().map(|r| r.id.downstream()).collect(),
            provider_peer: instance.providers().iter().map(|p| p.peer).collect(),
            listeners,
            latency: self.latency,
            broadcast_window: self.config.broadcast_window,
            record_trace: self.config.record_price_trace,
            auctioneers: instance
                .providers()
                .iter()
                .enumerate()
                .map(|(u, p)| AuctioneerNode::new(u, p.capacity.chunks_per_slot()))
                .collect(),
            bidders,
            broadcast_pending: vec![false; provider_count],
            assigned_edge: vec![None; request_count],
            trace: Vec::new(),
            messages: 0,
            last_activity: SimTime::ZERO,
        };

        let mut sim = Simulation::new(world).with_max_events(self.config.max_messages);
        for r in 0..request_count {
            sim.schedule_at(SimTime::ZERO, Ev::Start(r));
        }
        for d in departures {
            sim.schedule_at(d.at, Ev::Depart(d.peer));
        }
        let stats = sim.run_to_completion();
        let converged = stats.events_processed < self.config.max_messages;
        let world = sim.into_world();
        if !converged {
            return Err(P2pError::AuctionDiverged { iterations: stats.events_processed });
        }

        let lambda = final_prices_from(
            instance,
            world.auctioneers.iter().map(AuctioneerNode::price).collect(),
        );
        Ok(DistributedOutcome {
            assignment: Assignment::new(world.assigned_edge),
            duals: DualSolution::from_prices(instance, lambda),
            converged_at: world.last_activity,
            messages: world.messages,
            converged: true,
            price_trace: world.trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SyncAuction;
    use p2p_types::{ChunkId, Cost, RequestId, Valuation, VideoId};

    fn rid(d: u32, c: u32) -> RequestId {
        RequestId::new(PeerId::new(d), ChunkId::new(VideoId::new(0), c))
    }

    fn uniform_latency(ms: u64) -> LatencyFn {
        Box::new(move |_, _| SimDuration::from_millis(ms))
    }

    /// A 3-request / 2-provider instance with distinct utilities.
    fn instance() -> WelfareInstance {
        let mut b = WelfareInstance::builder();
        let u0 = b.add_provider(PeerId::new(100), 1);
        let u1 = b.add_provider(PeerId::new(101), 1);
        let r0 = b.add_request(rid(0, 0));
        let r1 = b.add_request(rid(1, 0));
        let r2 = b.add_request(rid(2, 0));
        b.add_edge(r0, u0, Valuation::new(6.0), Cost::new(0.5)).unwrap();
        b.add_edge(r0, u1, Valuation::new(6.0), Cost::new(2.0)).unwrap();
        b.add_edge(r1, u0, Valuation::new(5.0), Cost::new(0.7)).unwrap();
        b.add_edge(r1, u1, Valuation::new(5.0), Cost::new(2.5)).unwrap();
        b.add_edge(r2, u0, Valuation::new(3.0), Cost::new(0.9)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn matches_synchronous_welfare() {
        let inst = instance();
        let sync = SyncAuction::default().run(&inst).unwrap();
        let dist =
            DistributedAuction::new(DistConfig::paper(), uniform_latency(20)).run(&inst).unwrap();
        assert_eq!(dist.assignment.welfare(&inst).get(), sync.assignment.welfare(&inst).get());
        assert_eq!(dist.assignment.welfare(&inst), inst.optimal_welfare());
        assert!(dist.assignment.validate(&inst).is_ok());
        assert!(dist.duals.validate(&inst, 1e-9).is_ok());
    }

    #[test]
    fn latency_shifts_convergence_time() {
        let inst = instance();
        let fast =
            DistributedAuction::new(DistConfig::paper(), uniform_latency(10)).run(&inst).unwrap();
        let slow =
            DistributedAuction::new(DistConfig::paper(), uniform_latency(200)).run(&inst).unwrap();
        assert!(slow.converged_at > fast.converged_at);
    }

    #[test]
    fn price_trace_is_monotone_per_provider() {
        let inst = instance();
        let out =
            DistributedAuction::new(DistConfig::paper().recording_trace(), uniform_latency(30))
                .run(&inst)
                .unwrap();
        assert!(!out.price_trace.is_empty());
        let mut last = vec![0.0; inst.provider_count()];
        for p in &out.price_trace {
            assert!(p.price >= last[p.provider]);
            last[p.provider] = p.price;
        }
        // Trace is time-ordered.
        for w in out.price_trace.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn heterogeneous_latencies_still_converge_to_optimum() {
        let inst = instance();
        // Latency depends on peer ids — stale prices and message races occur.
        let latency: LatencyFn = Box::new(|from, to| {
            SimDuration::from_millis(7 + u64::from((from.get() * 13 + to.get() * 31) % 120))
        });
        let out = DistributedAuction::new(DistConfig::paper(), latency).run(&inst).unwrap();
        assert_eq!(out.assignment.welfare(&inst), inst.optimal_welfare());
    }

    #[test]
    fn message_cap_raises_divergence() {
        let inst = instance();
        let cfg = DistConfig { max_messages: 2, ..DistConfig::paper() };
        let err = DistributedAuction::new(cfg, uniform_latency(10)).run(&inst).unwrap_err();
        assert!(matches!(err, P2pError::AuctionDiverged { .. }));
    }

    #[test]
    fn auctioneer_departure_converges_to_reduced_optimum() {
        // u0 is everyone's best source; it departs mid-auction, so the
        // final schedule must be the optimum of the instance without u0
        // (Sec. IV-C's claim).
        let inst = instance();
        let departures =
            [DepartureEvent { at: SimTime::from_micros(35_000), peer: PeerId::new(100) }];
        let out = DistributedAuction::new(DistConfig::paper(), uniform_latency(20))
            .run_with_departures(&inst, &departures)
            .unwrap();
        // Nobody may end up assigned to the departed provider.
        for r in 0..inst.request_count() {
            assert_ne!(out.assignment.provider_of(&inst, r), Some(0), "request {r}");
        }
        // Reduced instance: same requests, only u1 available.
        let mut b = WelfareInstance::builder();
        let u1 = b.add_provider(PeerId::new(101), 1);
        let r0 = b.add_request(rid(0, 0));
        let r1 = b.add_request(rid(1, 0));
        b.add_edge(r0, u1, Valuation::new(6.0), Cost::new(2.0)).unwrap();
        b.add_edge(r1, u1, Valuation::new(5.0), Cost::new(2.5)).unwrap();
        let reduced = b.build().unwrap();
        assert!(
            (out.assignment.welfare(&inst).get() - reduced.optimal_welfare().get()).abs() < 1e-9,
            "welfare {} vs reduced optimum {}",
            out.assignment.welfare(&inst).get(),
            reduced.optimal_welfare()
        );
    }

    #[test]
    fn bidder_departure_releases_units_to_rivals() {
        // A (value 8) wins the single unit, pricing B (value 5) out; when
        // A departs, the release resets the price to 0 and the broadcast
        // must wake B (which had abstained as unprofitable) to claim it.
        let mut b = WelfareInstance::builder();
        let u = b.add_provider(PeerId::new(100), 1);
        let a = b.add_request(rid(0, 0));
        let rival = b.add_request(rid(1, 0));
        b.add_edge(a, u, Valuation::new(8.0), Cost::new(0.5)).unwrap();
        b.add_edge(rival, u, Valuation::new(5.0), Cost::new(0.5)).unwrap();
        let inst = b.build().unwrap();

        // Sanity: without the departure, A wins and B stays out.
        let before =
            DistributedAuction::new(DistConfig::paper(), uniform_latency(20)).run(&inst).unwrap();
        assert_eq!(before.assignment.provider_of(&inst, a), Some(u));
        assert_eq!(before.assignment.choice(rival), None);

        let departures =
            [DepartureEvent { at: SimTime::from_micros(400_000), peer: PeerId::new(0) }];
        let out = DistributedAuction::new(DistConfig::paper(), uniform_latency(20))
            .run_with_departures(&inst, &departures)
            .unwrap();
        assert_eq!(out.assignment.choice(a), None, "departed peer's request is cancelled");
        assert_eq!(
            out.assignment.provider_of(&inst, rival),
            Some(u),
            "the released unit must be re-sold to the rival"
        );
    }

    #[test]
    fn bidder_departure_keeps_remaining_schedule_feasible() {
        // On the general contested instance, a mid-auction bidder departure
        // must leave a feasible schedule with the departed requests
        // cancelled (assigned survivors keep their units per the protocol —
        // they only move when evicted).
        let inst = instance();
        let departures =
            [DepartureEvent { at: SimTime::from_micros(400_000), peer: PeerId::new(0) }];
        let out = DistributedAuction::new(DistConfig::paper(), uniform_latency(20))
            .run_with_departures(&inst, &departures)
            .unwrap();
        assert_eq!(out.assignment.choice(0), None);
        assert!(out.assignment.validate(&inst).is_ok());
        assert!(out.assignment.choice(1).is_some(), "survivors keep profitable units");
    }

    #[test]
    fn departure_of_unknown_peer_is_harmless() {
        let inst = instance();
        let departures =
            [DepartureEvent { at: SimTime::from_micros(10_000), peer: PeerId::new(9999) }];
        let out = DistributedAuction::new(DistConfig::paper(), uniform_latency(20))
            .run_with_departures(&inst, &departures)
            .unwrap();
        assert_eq!(out.assignment.welfare(&inst), inst.optimal_welfare());
    }

    #[test]
    fn empty_instance_converges_with_no_messages() {
        let inst = WelfareInstance::builder().build().unwrap();
        let out =
            DistributedAuction::new(DistConfig::paper(), uniform_latency(10)).run(&inst).unwrap();
        assert!(out.converged);
        assert_eq!(out.messages, 0);
    }
}
