//! Internal totally-ordered `f64` wrapper for heap keys.

use std::cmp::Ordering;

/// An `f64` with `Ord` via `total_cmp`. Internal: all values flowing in are
/// validated finite at the API boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OrdF64(pub(crate) f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_like_f64() {
        assert!(OrdF64(1.0) < OrdF64(2.0));
        assert!(OrdF64(-1.0) < OrdF64(0.0));
        assert_eq!(OrdF64(3.5), OrdF64(3.5));
    }

    #[test]
    fn usable_in_binary_heap() {
        use std::collections::BinaryHeap;
        let mut h = BinaryHeap::new();
        h.push(OrdF64(1.0));
        h.push(OrdF64(3.0));
        h.push(OrdF64(2.0));
        assert_eq!(h.pop(), Some(OrdF64(3.0)));
    }
}
