//! Branchless bid kernels over the flat CSR layout.
//!
//! PR 5's flat engine still walked each request's row through the
//! edge-at-a-time iterator of [`decide_bid_over`](crate::bidder) — correct,
//! but opaque to the vectorizer: the running best/second state is carried
//! through a `match` with two data-dependent branches per edge. This module
//! re-expresses the same reduction in a chunked, branchless form the
//! compiler can keep in vector registers:
//!
//! * [`row_top2`] — the top-2 reduction over one request's
//!   `edge_utility` row, `LANES` independent per-lane recurrences (prices
//!   gathered per lane from the dense `eff_price` array) merged at the end
//!   with an index tie-break. Selected implementation: `core::simd` when
//!   the nightly-only `portable-simd` feature is on, otherwise fixed-size
//!   `[f64; LANES]` chunks written as straight-line selects that stable
//!   rustc autovectorizes (verified by the `flat_bench` kernel/scalar
//!   split in `BENCH_simd.json`).
//! * [`scan_slice`] — the batched variant: one pass over a whole shard
//!   slice of requests against a single price snapshot, emitting bids and
//!   retirements exactly as the nested engines' `compute_slice` does.
//! * [`segment_min`] — the batched price-update reduction over an
//!   auctioneer arena unit segment (the new price is the smallest admitted
//!   bid). The *pass itself* stays per-accepted-bid — within a merge batch
//!   later bids are rejected against the already-updated price, so
//!   deferring the update would change admissions — but the reduction over
//!   the segment is branchless and chunked.
//!
//! # Why the kernel is bit-identical to the sequential scan
//!
//! The sequential recurrence in `decide_bid_over` computes two quantities:
//! the best candidate (largest `φ`, earliest edge on exact ties) and the
//! second-largest `φ` counting multiplicity (a duplicated maximum is its
//! own runner-up). Both are order-invariant functions of the `(edge, φ)`
//! multiset: they involve only exact float comparisons — no arithmetic —
//! and the per-edge `φ = utility − λ` is computed by the same single
//! subtraction in every layout. Splitting the row into lanes and merging
//! the per-lane top-2 states with an `(φ, edge)` tie-break therefore
//! reproduces the sequential result *bit for bit, including on exact
//! ties*, for every finite-`φ` input — which the builders guarantee by
//! rejecting non-finite utilities ([`P2pError::NonFiniteUtility`]), and
//! which zero-capacity providers cannot break (their `φ = −∞` candidates
//! lose every comparison exactly as they do sequentially).
//!
//! The one scan the lane split *could* reorder is the second-best's sign
//! of zero (`+0.0` vs `−0.0` compare equal, so different visit orders may
//! keep different bit patterns). A sign of zero never survives into a
//! decision: the epilogue floors the second-best at the outside option
//! (`max(second, 0.0)`) and `x − (±0.0)` is bit-identical for every
//! finite `x`, so even those rows decide identically. The all-ties
//! adversarial case — where this reasoning is under the most pressure —
//! is additionally pinned by the Theorem 1 `n·ε` certificate proptests in
//! `crates/core/tests/proptest_kernel.rs`.
//!
//! [`P2pError::NonFiniteUtility`]: p2p_types::P2pError::NonFiniteUtility

use super::{CsrData, FlatBid};
use crate::bidder::{
    decide_bid_over, decision_from_top2, AbstainReason, BidDecision, Top2, MIN_INCREMENT,
};

/// Lane width of the chunked reductions: four `f64`s — one AVX2 register,
/// two NEON registers — is wide enough to saturate the FP select ports
/// while keeping the merge epilogue and sub-lane rows cheap.
pub const LANES: usize = 4;

/// Which bid-scan implementation [`FlatAuction`](super::FlatAuction) uses.
///
/// Both implementations are always compiled; the `simd` cargo feature
/// (default-on) only selects which one [`BidKernel::default`] returns, so
/// the fallback can never rot unnoticed — CI builds and tests both
/// selections, and `flat_bench` cross-checks their outcomes bid for bid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum BidKernel {
    /// The chunked branchless lane reduction ([`row_top2`]).
    Lanes,
    /// The sequential edge-at-a-time scan of PR 5
    /// (`decide_bid_over` over the row iterator).
    Scalar,
}

impl Default for BidKernel {
    /// [`BidKernel::Lanes`] with the `simd` feature (the default build),
    /// [`BidKernel::Scalar`] without it.
    fn default() -> Self {
        if cfg!(feature = "simd") {
            BidKernel::Lanes
        } else {
            BidKernel::Scalar
        }
    }
}

impl BidKernel {
    /// The CLI/bench name of this kernel (`lanes` or `scalar`).
    pub fn name(self) -> &'static str {
        match self {
            BidKernel::Lanes => "lanes",
            BidKernel::Scalar => "scalar",
        }
    }
}

/// One lane-parallel top-2 state: `LANES` independent copies of the
/// sequential recurrence, kept in parallel arrays so the update loop is
/// pure straight-line selects.
struct LaneState {
    best_phi: [f64; LANES],
    best_idx: [u32; LANES],
    second: [f64; LANES],
}

impl LaneState {
    /// Seeds lane `j` with edge `j` — every lane starts non-empty, so a
    /// legitimate `φ = −∞` candidate (zero-capacity provider) is a real
    /// entry, never confused with an empty-lane sentinel.
    #[inline]
    fn seed(phi: [f64; LANES]) -> Self {
        LaneState {
            best_phi: phi,
            best_idx: core::array::from_fn(|j| j as u32),
            second: [f64::NEG_INFINITY; LANES],
        }
    }

    /// Folds one chunk of `φ` values (edges `base .. base + LANES`, lane
    /// `j` handling edge `base + j`) into the running per-lane states.
    ///
    /// Per lane this is exactly the sequential recurrence, rewritten
    /// branch-free: the value demoted to the runner-up pool is
    /// `min(φ, best)` — the incoming `φ` when it loses or ties, the old
    /// best when `φ` wins — and the best advances only on a strict win,
    /// which preserves the earliest-edge tie-break because lane indices
    /// only grow.
    #[inline]
    fn fold_chunk(&mut self, base: u32, phi: [f64; LANES]) {
        #[cfg(feature = "portable-simd")]
        {
            use core::simd::prelude::*;
            let p = Simd::<f64, LANES>::from_array(phi);
            let best = Simd::<f64, LANES>::from_array(self.best_phi);
            let second = Simd::<f64, LANES>::from_array(self.second);
            let idx = Simd::<u64, LANES>::from_array(self.best_idx.map(u64::from));
            let here = Simd::<u64, LANES>::from_array(core::array::from_fn(|j| j as u64))
                + Simd::<u64, LANES>::splat(u64::from(base));
            let demoted = p.simd_lt(best).select(p, best);
            let second = demoted.simd_gt(second).select(demoted, second);
            let better = p.simd_gt(best);
            let best = better.select(p, best);
            let idx = better.select(here, idx);
            self.best_phi = best.to_array();
            self.second = second.to_array();
            let idx = idx.to_array();
            for j in 0..LANES {
                self.best_idx[j] = idx[j] as u32;
            }
        }
        #[cfg(not(feature = "portable-simd"))]
        // Indexed form, not iterators: the four parallel arrays update in
        // lockstep and the vectorizer needs to see them as one loop body.
        #[allow(clippy::needless_range_loop)]
        for j in 0..LANES {
            let p = phi[j];
            let best = self.best_phi[j];
            let demoted = if p < best { p } else { best };
            self.second[j] = if demoted > self.second[j] { demoted } else { self.second[j] };
            let better = p > best;
            self.best_idx[j] = if better { base + j as u32 } else { self.best_idx[j] };
            self.best_phi[j] = if better { p } else { best };
        }
    }
}

/// Merges two top-2 partial states over disjoint edge subsets:
/// `(best φ, best edge, second φ)` each. Pure comparisons — exact — with
/// the earliest-edge tie-break on equal bests; the losing best joins the
/// runner-up pool (a duplicated maximum is the second-best).
#[inline]
fn merge(a: (f64, u32, f64), b: (f64, u32, f64)) -> (f64, u32, f64) {
    let (a_best, a_idx, a_second) = a;
    let (b_best, b_idx, b_second) = b;
    let b_wins = b_best > a_best || (b_best == a_best && b_idx < a_idx);
    let (best, idx, loser) = if b_wins { (b_best, b_idx, a_best) } else { (a_best, a_idx, b_best) };
    let mut second = if a_second > b_second { a_second } else { b_second };
    if loser > second {
        second = loser;
    }
    (best, idx, second)
}

/// The sequential top-2 recurrence over a sub-range of a row — used for
/// rows shorter than one lane and for the chunk remainder. Identical to
/// the `decide_bid_over` recurrence (it *is* the reference semantics).
#[inline]
fn fold_scalar(
    providers: &[u32],
    utilities: &[f64],
    prices: &[f64],
    base: u32,
) -> Option<(f64, u32, f64)> {
    let mut state: Option<(f64, u32, f64)> = None;
    for (k, (&p, &u)) in providers.iter().zip(utilities).enumerate() {
        let phi = u - prices[p as usize];
        state = Some(match state {
            None => (phi, base + k as u32, f64::NEG_INFINITY),
            Some((best, idx, second)) if phi <= best => {
                (best, idx, if phi > second { phi } else { second })
            }
            Some((best, _, second)) => {
                (phi, base + k as u32, if best > second { best } else { second })
            }
        });
    }
    state
}

/// The branchless chunked top-2 reduction over one request's row: the
/// kernel counterpart of the sequential scan, bit-identical to it on every
/// finite-utility instance (see the [module docs](self) for the argument).
///
/// `prices` is the dense bidder-visible price array (`eff_price`); lane
/// `j` of each chunk gathers `prices[providers[base + j]]`.
pub(crate) fn row_top2(providers: &[u32], utilities: &[f64], prices: &[f64]) -> Option<Top2> {
    let n = utilities.len();
    if n < LANES {
        // Sub-lane rows (including empty) take the reference recurrence —
        // no lanes to fill, nothing to merge.
        return finish(fold_scalar(providers, utilities, prices, 0), providers, prices);
    }
    let mut phi = [0.0f64; LANES];
    #[allow(clippy::needless_range_loop)] // lockstep gather, see fold_chunk
    for j in 0..LANES {
        phi[j] = utilities[j] - prices[providers[j] as usize];
    }
    let mut state = LaneState::seed(phi);
    let chunks = providers[LANES..].chunks_exact(LANES).zip(utilities[LANES..].chunks_exact(LANES));
    let mut base = LANES as u32;
    for (ps, us) in chunks {
        let mut phi = [0.0f64; LANES];
        #[allow(clippy::needless_range_loop)] // lockstep gather, see fold_chunk
        for j in 0..LANES {
            phi[j] = us[j] - prices[ps[j] as usize];
        }
        state.fold_chunk(base, phi);
        base += LANES as u32;
    }
    // Merge the lanes (any order — the reduction is order-invariant; lane
    // order keeps it deterministic), then the remainder tail.
    let mut acc = (state.best_phi[0], state.best_idx[0], state.second[0]);
    for j in 1..LANES {
        acc = merge(acc, (state.best_phi[j], state.best_idx[j], state.second[j]));
    }
    // Edges consumed by the seed and the full chunks; the rest is the tail.
    let consumed = LANES + (n - LANES) / LANES * LANES;
    if let Some(rest) =
        fold_scalar(&providers[consumed..], &utilities[consumed..], prices, consumed as u32)
    {
        acc = merge(acc, rest);
    }
    finish(Some(acc), providers, prices)
}

/// Rehydrates the full [`Top2`] from the reduced `(φ, edge, second)`
/// triple: the winning edge's provider and price are looked up once at the
/// end instead of being carried through every lane.
#[inline]
fn finish(state: Option<(f64, u32, f64)>, providers: &[u32], prices: &[f64]) -> Option<Top2> {
    state.map(|(best_phi, idx, second_phi)| {
        let provider = providers[idx as usize] as usize;
        Top2 { edge: idx as usize, provider, best_phi, best_lambda: prices[provider], second_phi }
    })
}

/// One request's bid decision through the selected kernel. Both paths run
/// the shared decision epilogue, so they can only differ if the top-2
/// reductions differ — which the module invariant (and the proptest
/// suite) rules out.
#[inline]
pub(crate) fn decide_row(
    kernel: BidKernel,
    providers: &[u32],
    utilities: &[f64],
    prices: &[f64],
    epsilon: f64,
) -> BidDecision {
    match kernel {
        BidKernel::Lanes => {
            decision_from_top2(row_top2(providers, utilities, prices), epsilon, MIN_INCREMENT)
        }
        BidKernel::Scalar => decide_bid_over(
            providers.iter().zip(utilities).map(|(&p, &u)| (p as usize, u)),
            |p| prices[p],
            epsilon,
            MIN_INCREMENT,
        ),
    }
}

/// The batched slice scan: every request of a shard slice decided against
/// one price snapshot in a single pass, bids and permanent retirements
/// appended exactly as the nested engines' `compute_slice` emits them.
pub(crate) fn scan_slice(
    kernel: BidKernel,
    csr: &CsrData,
    slice: &[u32],
    prices: &[f64],
    epsilon: f64,
    bids: &mut Vec<FlatBid>,
    retired: &mut Vec<u32>,
) {
    for &r in slice {
        let (providers, utilities) = csr.row(r as usize);
        match decide_row(kernel, providers, utilities, prices, epsilon) {
            BidDecision::Bid { edge, provider, amount } => {
                bids.push(FlatBid {
                    amount,
                    request: r,
                    edge: edge as u32,
                    provider: provider as u32,
                });
            }
            BidDecision::Abstain { reason } => match reason {
                AbstainReason::Unprofitable | AbstainReason::NoCandidates => retired.push(r),
                AbstainReason::ZeroMargin => {}
            },
        }
    }
}

/// The batched price-update reduction: the smallest admitted bid in a full
/// arena unit segment, chunked and branchless. Exact — the reduction is
/// pure comparisons, and admitted bids are strictly positive, so there is
/// no `±0.0` ambiguity to reorder.
pub(crate) fn segment_min(bids: &[f64]) -> f64 {
    let mut acc = [f64::INFINITY; LANES];
    let chunks = bids.chunks_exact(LANES);
    let rest = chunks.remainder();
    for ch in chunks {
        #[allow(clippy::needless_range_loop)] // lockstep min, see fold_chunk
        for j in 0..LANES {
            acc[j] = if ch[j] < acc[j] { ch[j] } else { acc[j] };
        }
    }
    let mut min = f64::INFINITY;
    for &v in rest {
        if v < min {
            min = v;
        }
    }
    for &a in &acc {
        if a < min {
            min = a;
        }
    }
    min
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decisions_match(providers: &[u32], utilities: &[f64], prices: &[f64], epsilon: f64) {
        let lanes = decide_row(BidKernel::Lanes, providers, utilities, prices, epsilon);
        let scalar = decide_row(BidKernel::Scalar, providers, utilities, prices, epsilon);
        assert_eq!(lanes, scalar, "providers={providers:?} utilities={utilities:?}");
    }

    #[test]
    fn kernel_matches_scalar_on_every_row_shape() {
        // Every length through several chunk boundaries, values engineered
        // to include duplicates, zeros, and a max at every position class.
        for n in 0..64usize {
            let providers: Vec<u32> = (0..n).map(|k| (k % 7) as u32).collect();
            let prices: Vec<f64> = (0..7).map(|u| f64::from(u) * 0.25).collect();
            for variant in 0..4 {
                let utilities: Vec<f64> = (0..n)
                    .map(|k| match variant {
                        0 => (k as f64 * 17.0) % 5.3 - 1.0,
                        1 => 2.0, // all ties
                        2 => {
                            if k == n / 2 {
                                9.0
                            } else {
                                1.0
                            }
                        } // unique max mid-row
                        _ => -(k as f64) - 1.0, // all unprofitable
                    })
                    .collect();
                for eps in [0.0, 0.01, 0.5] {
                    decisions_match(&providers, &utilities, &prices, eps);
                }
            }
        }
    }

    #[test]
    fn kernel_handles_infinite_prices_like_the_scalar_scan() {
        // Zero-capacity providers surface as eff_price = +∞ (φ = −∞).
        let providers = [0u32, 1, 2, 0, 1, 2, 0];
        let prices = [f64::INFINITY, 0.5, f64::INFINITY];
        let utilities = [4.0, 3.0, 2.0, 1.0, 5.0, 0.0, 8.0];
        decisions_match(&providers, &utilities, &prices, 0.0);
        // All candidates at −∞: abstains Unprofitable either way.
        let dead = [0u32; 6];
        let dead_prices = [f64::INFINITY];
        let utils = [1.0; 6];
        decisions_match(&dead, &utils, &dead_prices, 0.0);
        assert_eq!(
            decide_row(BidKernel::Lanes, &dead, &utils, &dead_prices, 0.0),
            BidDecision::Abstain { reason: AbstainReason::Unprofitable }
        );
    }

    #[test]
    fn segment_min_matches_a_sequential_scan() {
        for n in 0..24usize {
            let bids: Vec<f64> = (0..n).map(|k| ((k as f64 * 13.7) % 6.1) + 0.1).collect();
            let mut min = f64::INFINITY;
            for &b in &bids {
                if b < min {
                    min = b;
                }
            }
            assert_eq!(segment_min(&bids), min);
        }
    }

    #[test]
    fn kernel_names_and_default_are_stable() {
        assert_eq!(BidKernel::Lanes.name(), "lanes");
        assert_eq!(BidKernel::Scalar.name(), "scalar");
        let expect = if cfg!(feature = "simd") { BidKernel::Lanes } else { BidKernel::Scalar };
        assert_eq!(BidKernel::default(), expect);
    }
}
