//! Flat CSR instance layout and the zero-allocation auction hot path.
//!
//! The nested [`WelfareInstance`] stores one `Vec<EdgeSpec>` per request —
//! simple to build and patch, but the auction inner loop then chases one
//! pointer per request and re-derives `v − w` per visit, and every engine
//! run reallocates its round scratch (edge views, auctioneer heaps, bid
//! batches, worklists). At the 10³–10⁴-request flash-crowd slots the
//! ROADMAP targets, that memory traffic dominates per-slot latency.
//!
//! This module compiles an instance into a structure-of-arrays form and
//! runs the *same* auction over it with reusable scratch:
//!
//! * [`CsrInstance`] — dense `edge_provider` / `edge_utility` arrays
//!   (`v − w` precomputed once) with CSR row bounds per request, plus a
//!   dense provider-capacity array. The arrays live behind one `Arc`, so
//!   sharded worker threads share them without copying.
//! * [`CsrBuilder`] — the incremental constructor. It recycles its own
//!   buffers between slots ([`CsrBuilder::begin`] reclaims the previous
//!   emission when the caller has dropped it), which is how
//!   `SlotProblemCache` emits a fresh `CsrInstance` every slot without
//!   allocating in steady state.
//! * [`AuctionScratch`] + [`FlatOutcome`] — every buffer the engine needs
//!   (auctioneer arena, prices, assignment, worklists, bid batches),
//!   allocated once and reused across rounds *and* slots: after the first
//!   (warm-up) slot, [`FlatAuction::run_into`] performs **zero heap
//!   allocations** on same-shaped slots (asserted by a counting-allocator
//!   test).
//! * [`FlatAuction`] — one engine covering both schedules: an effective
//!   shard count of 1 runs the sequential Gauss–Seidel sweep of
//!   [`SyncAuction`](crate::SyncAuction), ≥ 2 runs the block-Gauss–Seidel
//!   batched schedule of [`ShardedAuction`](crate::ShardedAuction), over
//!   CSR rows. Shard slices are contiguous ranges of the round's worklist —
//!   no per-shard copying of instance data.
//!
//! # Bit-equality with the nested engines
//!
//! The flat engines are not "approximately" the nested engines — they are
//! the same auction over a different memory layout. Bid decisions run the
//! branchless [`kernel`] reduction by default (selected by the `simd`
//! cargo feature, overridable per engine with
//! [`FlatAuction::with_kernel`]) — bit-identical to the shared
//! [`crate::bidder`] decision core by the order-invariance argument in the
//! [`kernel`] docs — merges apply the same total order, and the
//! auctioneer arena replicates the heap
//! semantics (evict the minimum `(bid, admission-seq)` entry; price = the
//! smallest admitted bid when full), so outcomes — prices, assignments,
//! rounds, bids, welfare, the Theorem 1 `n·ε` certificate — are
//! **bit-identical** to [`SyncAuction`](crate::SyncAuction) (shards = 1)
//! and [`ShardedAuction`](crate::ShardedAuction) (shards ≥ 2), at any
//! shard count, warm or cold. The property suite
//! (`crates/core/tests/proptest_csr.rs`) enforces this.
//!
//! # Worker threads
//!
//! With shards ≥ 2 and more than one worker, slice bids fan out across
//! threads obtained from a [`WorkerSpawner`] — by default detached OS
//! threads, or a shared `p2p_runtime::WorkerPool` when the caller
//! installs one with [`FlatAuction::with_spawner`]. Workers are leased
//! once per engine and parked on a channel between slices, so repeated
//! slot auctions spawn zero new threads; when the engine drops, pool
//! workers return to the pool for the next run. Thread count never affects
//! results (slices are pure functions of their price snapshot).
//!
//! # Examples
//!
//! ```
//! use p2p_core::csr::{CsrInstance, FlatAuction};
//! use p2p_core::{AuctionConfig, ShardCount, SyncAuction, WelfareInstance};
//! use p2p_types::{ChunkId, Cost, PeerId, RequestId, Valuation, VideoId};
//!
//! let mut b = WelfareInstance::builder();
//! let u = b.add_provider(PeerId::new(9), 1);
//! for d in 0..3 {
//!     let r = b.add_request(RequestId::new(PeerId::new(d), ChunkId::new(VideoId::new(0), 0)));
//!     b.add_edge(r, u, Valuation::new(5.0 - f64::from(d)), Cost::new(1.0)).unwrap();
//! }
//! let inst = b.build().unwrap();
//! let csr = CsrInstance::compile(&inst);
//!
//! let mut flat = FlatAuction::new(AuctionConfig::paper(), ShardCount::Fixed(1));
//! let out = flat.run(&csr).unwrap();
//! let sync = SyncAuction::new(AuctionConfig::paper()).run(&inst).unwrap();
//! assert_eq!(out.assignment, sync.assignment);
//! assert_eq!(out.duals, sync.duals);
//! ```

use crate::bidder::{AbstainReason, BidDecision};
use crate::engine::{AuctionConfig, AuctionOutcome, EpsilonScaling, PriceChange};
use crate::instance::WelfareInstance;
use crate::shard::ShardCount;
use crate::solution::{Assignment, DualSolution};
use p2p_metrics::{AuctionProbe, NoProbe};
use p2p_types::P2pError;
use std::sync::mpsc;
use std::sync::Arc;

pub mod kernel;

pub use kernel::BidKernel;

/// Sentinel for "request unassigned" in the flat choice vector.
const NONE: u32 = u32::MAX;

/// The flat structure-of-arrays payload of a [`CsrInstance`]. All arrays
/// are index-aligned: `capacity[u]` per provider, `row_offsets[r] ..
/// row_offsets[r + 1]` bounding request `r`'s edges inside
/// `edge_provider` / `edge_utility`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CsrData {
    /// Per provider: upload capacity `B(u)` in chunks per slot.
    capacity: Vec<u32>,
    /// CSR row bounds: request `r` owns edges `row_offsets[r] ..
    /// row_offsets[r + 1]`; length is `request_count + 1`.
    row_offsets: Vec<u32>,
    /// Per edge: the provider index.
    edge_provider: Vec<u32>,
    /// Per edge: the welfare weight `v − w`, precomputed once.
    edge_utility: Vec<f64>,
}

impl CsrData {
    fn clear(&mut self) {
        self.capacity.clear();
        self.row_offsets.clear();
        self.edge_provider.clear();
        self.edge_utility.clear();
    }

    /// Number of requests (rows).
    pub fn request_count(&self) -> usize {
        self.row_offsets.len().saturating_sub(1)
    }

    /// Number of providers.
    pub fn provider_count(&self) -> usize {
        self.capacity.len()
    }

    /// Number of candidate edges.
    pub fn edge_count(&self) -> usize {
        self.edge_provider.len()
    }

    /// One request's edges as parallel `(providers, utilities)` slices.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let lo = self.row_offsets[r] as usize;
        let hi = self.row_offsets[r + 1] as usize;
        (&self.edge_provider[lo..hi], &self.edge_utility[lo..hi])
    }

    /// A provider's capacity.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn capacity(&self, u: usize) -> u32 {
        self.capacity[u]
    }
}

/// A compiled, shareable flat instance (see the [module docs](self)).
///
/// Cloning is an `Arc` bump — worker threads and cached slot problems share
/// one set of arrays.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrInstance {
    data: Arc<CsrData>,
}

impl CsrInstance {
    /// Compiles a nested instance into the flat layout (one pass; `v − w`
    /// is precomputed per edge exactly as [`crate::EdgeSpec::utility`]
    /// computes it, so downstream floats are bit-identical).
    pub fn compile(instance: &WelfareInstance) -> Self {
        let mut b = CsrBuilder::new();
        b.begin();
        for p in instance.providers() {
            b.add_provider(p.capacity.chunks_per_slot());
        }
        for r in instance.requests() {
            b.add_request();
            for e in &r.edges {
                // The nested builder already rejected non-finite utilities.
                b.add_edge(e.provider as u32, e.utility().get())
                    .expect("validated instance has finite utilities");
            }
        }
        b.finish()
    }

    /// The flat arrays.
    pub fn data(&self) -> &CsrData {
        &self.data
    }

    /// A shared handle to the arrays (what worker threads hold).
    pub fn shared(&self) -> Arc<CsrData> {
        Arc::clone(&self.data)
    }

    /// Number of providers.
    pub fn provider_count(&self) -> usize {
        self.data.provider_count()
    }

    /// Number of requests.
    pub fn request_count(&self) -> usize {
        self.data.request_count()
    }

    /// Number of candidate edges.
    pub fn edge_count(&self) -> usize {
        self.data.edge_count()
    }

    /// Whether this compilation matches `instance` value-for-value — the
    /// debug/test oracle for builders that emit CSR directly.
    pub fn matches(&self, instance: &WelfareInstance) -> bool {
        *self.data == *CsrInstance::compile(instance).data
    }
}

/// Incremental [`CsrInstance`] constructor with buffer recycling.
///
/// Call order per emission: [`CsrBuilder::begin`], then every
/// [`CsrBuilder::add_provider`], then per request
/// [`CsrBuilder::add_request`] followed by its
/// [`CsrBuilder::add_edge`] calls (edges attach to the most recent
/// request), then [`CsrBuilder::finish`]. `begin` reclaims the previous
/// emission's buffers when the caller has dropped its `CsrInstance`, so a
/// slot loop that emits one instance per slot allocates nothing in steady
/// state.
///
/// This is a trusting low-level API (indices are not validated); it is fed
/// by already-validated builders — [`CsrInstance::compile`] and the
/// incremental slot-problem cache. The one check it does make is edge
/// *finiteness* ([`CsrBuilder::add_edge`]): a NaN or infinite `v − w`
/// would silently corrupt every downstream argmax, and this builder is the
/// last gate before the kernels.
#[derive(Debug, Default)]
pub struct CsrBuilder {
    data: CsrData,
    /// The previous emission, kept so `begin` can reclaim its buffers once
    /// the caller's handle is gone.
    recycle: Option<Arc<CsrData>>,
}

impl CsrBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new emission, reclaiming the previous emission's buffers if
    /// no other handle to it survives.
    pub fn begin(&mut self) {
        if let Some(prev) = self.recycle.take() {
            if let Ok(prev) = Arc::try_unwrap(prev) {
                self.data = prev;
            }
        }
        self.data.clear();
    }

    /// Adds a provider with `capacity` chunks per slot; returns its index.
    pub fn add_provider(&mut self, capacity: u32) -> u32 {
        self.data.capacity.push(capacity);
        (self.data.capacity.len() - 1) as u32
    }

    /// Opens the next request's row; returns its index.
    pub fn add_request(&mut self) -> u32 {
        self.data.row_offsets.push(self.data.edge_provider.len() as u32);
        (self.data.row_offsets.len() - 1) as u32
    }

    /// Appends an edge (provider, precomputed `v − w`) to the most recently
    /// added request.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::NonFiniteUtility`] for a NaN or infinite
    /// `utility`: a non-finite `v − w` entering the bid scan makes every
    /// `φ` comparison (and the kernel's lane reduction) pick an undefined
    /// winner, silently corrupting the argmax, so it is rejected here at
    /// build time instead.
    pub fn add_edge(&mut self, provider: u32, utility: f64) -> Result<(), P2pError> {
        debug_assert!((provider as usize) < self.data.capacity.len(), "provider out of range");
        debug_assert!(!self.data.row_offsets.is_empty(), "add_request before add_edge");
        if !utility.is_finite() {
            return Err(P2pError::NonFiniteUtility {
                request: (self.data.row_offsets.len().max(1) - 1) as u32,
                provider,
                utility,
            });
        }
        self.data.edge_provider.push(provider);
        self.data.edge_utility.push(utility);
        Ok(())
    }

    /// Closes the emission and returns the shareable instance.
    pub fn finish(&mut self) -> CsrInstance {
        self.data.row_offsets.push(self.data.edge_provider.len() as u32);
        let arc = Arc::new(std::mem::take(&mut self.data));
        self.recycle = Some(Arc::clone(&arc));
        CsrInstance { data: arc }
    }
}

/// Spawns long-lived worker jobs for the flat engine's slice fan-out.
///
/// The engine leases `min(shards, cores)` workers once and parks them on a
/// command channel between slices; a job therefore runs until the engine
/// drops. [`ThreadSpawner`] backs the lease with detached OS threads;
/// `p2p_runtime::WorkerPool` implements this trait so one shared pool can
/// serve every engine of a process (scenario sweeps, `System` slot loops)
/// without spawning per run.
pub trait WorkerSpawner: Send + Sync {
    /// Launches `job` on some worker thread. `job` runs to completion. The
    /// returned closure blocks until the job has fully finished *and its
    /// thread is reusable again* — the engine invokes it when the lease
    /// ends, so "repeated runs spawn zero new threads" is a guarantee, not
    /// a race.
    fn spawn_worker(&self, job: Box<dyn FnOnce() + Send + 'static>) -> WorkerJoin;
}

/// Blocks until a spawned worker job has fully released its thread (see
/// [`WorkerSpawner::spawn_worker`]).
pub type WorkerJoin = Box<dyn FnOnce() + Send>;

/// The default [`WorkerSpawner`]: one OS thread per leased worker, joined
/// when its engine drops.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadSpawner;

impl WorkerSpawner for ThreadSpawner {
    fn spawn_worker(&self, job: Box<dyn FnOnce() + Send + 'static>) -> WorkerJoin {
        let handle = std::thread::spawn(job);
        Box::new(move || {
            let _ = handle.join();
        })
    }
}

/// One bid computed against a round's price snapshot.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FlatBid {
    pub(crate) amount: f64,
    pub(crate) request: u32,
    /// Local edge index within the request's row.
    pub(crate) edge: u32,
    pub(crate) provider: u32,
}

/// One slice's compute order (and, on the way back, its results): owned
/// data only, so it can cross to leased worker threads. Buffers are
/// recycled through [`Lease::free`].
struct SliceCmd {
    idx: usize,
    chunk: Vec<u32>,
    csr: Arc<CsrData>,
    prices: Arc<Vec<f64>>,
    epsilon: f64,
    kernel: BidKernel,
    bids: Vec<FlatBid>,
    retired: Vec<u32>,
}

/// Recyclable buffer set for one [`SliceCmd`].
type SliceBufs = (Vec<u32>, Vec<FlatBid>, Vec<u32>);

/// Leased worker threads: one command channel per worker, one shared
/// result channel back. Dropping the lease closes the command channels and
/// releases the threads (pool workers park for reuse).
struct Lease {
    workers: usize,
    cmd_txs: Vec<mpsc::Sender<SliceCmd>>,
    res_rx: mpsc::Receiver<SliceCmd>,
    /// Joined on drop, after closing the command channels, so the lease's
    /// end synchronously releases every worker back to its spawner.
    joins: Vec<WorkerJoin>,
    /// Recycled command buffers.
    free: Vec<SliceBufs>,
    /// Reassembly slots (reused across slices).
    pending: Vec<Option<SliceCmd>>,
}

impl Lease {
    fn spawn(workers: usize, spawner: &dyn WorkerSpawner) -> Self {
        let (res_tx, res_rx) = mpsc::channel::<SliceCmd>();
        let mut cmd_txs = Vec::with_capacity(workers);
        let mut joins = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = mpsc::channel::<SliceCmd>();
            cmd_txs.push(tx);
            let res_tx = res_tx.clone();
            joins.push(spawner.spawn_worker(Box::new(move || {
                while let Ok(mut cmd) = rx.recv() {
                    cmd.bids.clear();
                    cmd.retired.clear();
                    kernel::scan_slice(
                        cmd.kernel,
                        &cmd.csr,
                        &cmd.chunk,
                        &cmd.prices,
                        cmd.epsilon,
                        &mut cmd.bids,
                        &mut cmd.retired,
                    );
                    if res_tx.send(cmd).is_err() {
                        break;
                    }
                }
            })));
        }
        Lease { workers, cmd_txs, res_rx, joins, free: Vec::new(), pending: Vec::new() }
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        // Close the command channels (ends every worker loop), then wait
        // for each worker to actually release its thread.
        self.cmd_txs.clear();
        for join in self.joins.drain(..) {
            join();
        }
    }
}

/// Computes one slice's bids against a read-only price snapshot — a pure
/// function of `(slice, prices, kernel)`, safe to fan out in any chunking.
/// Mirrors the nested sharded engine's `compute_slice` (unprofitable and
/// candidate-less requests are reported for permanent retirement), running
/// each row through the selected bid kernel — see [`kernel::scan_slice`].
fn compute_slice(
    kernel: BidKernel,
    csr: &CsrData,
    slice: &[u32],
    prices: &[f64],
    epsilon: f64,
    bids: &mut Vec<FlatBid>,
    retired: &mut Vec<u32>,
) {
    kernel::scan_slice(kernel, csr, slice, prices, epsilon, bids, retired);
}

/// The reusable engine state: every buffer the hot loop touches, allocated
/// once and recycled across rounds and slots. Owned by [`FlatAuction`];
/// grows to the largest slot seen and never shrinks.
#[derive(Debug, Default)]
pub struct AuctionScratch {
    // ---- auctioneer arena: per-provider unit segments ----
    /// Per provider: start of its unit segment in the `entry_*` arrays
    /// (`provider_count + 1` entries; prefix sums of capacities).
    unit_offsets: Vec<u32>,
    entry_bid: Vec<f64>,
    entry_seq: Vec<u64>,
    entry_req: Vec<u32>,
    /// Per provider: admitted count (also the provider load after a run).
    filled: Vec<u32>,
    /// Per provider: the auctioneer price λ.
    price: Vec<f64>,
    /// Per provider: the bidder-visible price (+∞ for zero capacity).
    eff_price: Vec<f64>,
    /// Admission sequence (FIFO tie-break on equal bids, as the nested
    /// auctioneer's heap does).
    seq: u64,
    // ---- request state ----
    /// Per request: chosen local edge index, or [`NONE`].
    assigned: Vec<u32>,
    retired: Vec<bool>,
    worklist: Vec<u32>,
    spill: Vec<u32>,
    retry: Vec<u32>,
    bids: Vec<FlatBid>,
    slice_retired: Vec<u32>,
    /// Slice-generation marks for the merge collision check.
    collision_mark: Vec<u64>,
    trace: Vec<PriceChange>,
    // ---- warm-start buffers ----
    warm_prices: Vec<f64>,
    potential: Vec<u32>,
    warm_trace: Vec<PriceChange>,
}

impl AuctionScratch {
    /// Resets the arena and request state for a run over `csr`, seeding
    /// prices from `initial` exactly as the nested engines do (non-finite
    /// or negative entries become 0; zero-capacity providers price at 0
    /// with an infinite effective price).
    fn reset(&mut self, csr: &CsrData, initial: Option<&[f64]>) {
        let providers = csr.provider_count();
        let requests = csr.request_count();
        self.unit_offsets.clear();
        self.price.clear();
        self.eff_price.clear();
        let mut total_units = 0u32;
        for (u, &cap) in csr.capacity.iter().enumerate() {
            self.unit_offsets.push(total_units);
            total_units += cap;
            let warm = initial
                .and_then(|ps| ps.get(u).copied())
                .filter(|w| w.is_finite() && *w >= 0.0)
                .unwrap_or(0.0);
            if cap == 0 {
                self.price.push(0.0);
                self.eff_price.push(f64::INFINITY);
            } else {
                self.price.push(warm);
                self.eff_price.push(warm);
            }
        }
        self.unit_offsets.push(total_units);
        let units = total_units as usize;
        self.entry_bid.clear();
        self.entry_bid.resize(units, 0.0);
        self.entry_seq.clear();
        self.entry_seq.resize(units, 0);
        self.entry_req.clear();
        self.entry_req.resize(units, 0);
        self.filled.clear();
        self.filled.resize(providers, 0);
        self.collision_mark.clear();
        self.collision_mark.resize(providers, 0);
        self.seq = 0;
        self.assigned.clear();
        self.assigned.resize(requests, NONE);
        self.retired.clear();
        self.retired.resize(requests, false);
        self.trace.clear();
    }
}

/// Outcome of the arena's bid handling (mirrors
/// [`crate::auctioneer::BidOutcome`]).
enum ArenaOutcome {
    Rejected,
    Accepted { evicted: Option<u32>, new_price: Option<f64> },
}

/// The auctioneer state machine over the flat arena — semantically
/// identical to [`crate::auctioneer::Auctioneer::handle_bid`]: reject at or
/// below the price, evict the minimum `(bid, admission-seq)` entry when
/// full, announce the new price (the smallest admitted bid) when the set is
/// full and the minimum changed.
#[allow(clippy::too_many_arguments)]
fn arena_handle_bid(
    capacity: &[u32],
    unit_offsets: &[u32],
    entry_bid: &mut [f64],
    entry_seq: &mut [u64],
    entry_req: &mut [u32],
    filled: &mut [u32],
    price: &mut [f64],
    seq: &mut u64,
    provider: usize,
    request: u32,
    amount: f64,
) -> ArenaOutcome {
    debug_assert!(amount.is_finite(), "bid must be finite");
    let cap = capacity[provider];
    if cap == 0 || amount <= price[provider] {
        return ArenaOutcome::Rejected;
    }
    let start = unit_offsets[provider] as usize;
    let mut evicted = None;
    if filled[provider] == cap {
        // Full: evict the minimum (bid, seq) entry — the heap root of the
        // nested auctioneer. seq values are unique, so the order is total.
        let seg = start..start + cap as usize;
        let mut m = start;
        for i in seg.skip(1) {
            if entry_bid[i] < entry_bid[m]
                || (entry_bid[i] == entry_bid[m] && entry_seq[i] < entry_seq[m])
            {
                m = i;
            }
        }
        evicted = Some(entry_req[m]);
        entry_bid[m] = amount;
        entry_seq[m] = *seq;
        entry_req[m] = request;
    } else {
        let slot = start + filled[provider] as usize;
        entry_bid[slot] = amount;
        entry_seq[slot] = *seq;
        entry_req[slot] = request;
        filled[provider] += 1;
    }
    *seq += 1;
    let mut new_price = None;
    if filled[provider] == cap {
        // Batched price update: one branchless reduction over the full
        // unit segment (exact — see `kernel::segment_min`). The pass stays
        // per-accepted-bid because later bids in the same merge batch are
        // admitted or rejected against the updated price.
        let min = kernel::segment_min(&entry_bid[start..start + cap as usize]);
        if min != price[provider] {
            price[provider] = min;
            new_price = Some(min);
        }
    }
    ArenaOutcome::Accepted { evicted, new_price }
}

/// A reusable engine result: the flat counterpart of
/// [`AuctionOutcome`], with buffers that survive across slots so
/// [`FlatAuction::run_into`] allocates nothing in steady state. Convert
/// with [`FlatOutcome::to_outcome`] when the owned types are needed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlatOutcome {
    /// Per request: chosen local edge index, or `u32::MAX` for unassigned.
    choice: Vec<u32>,
    /// Final prices λ (zero-capacity providers report their standalone
    /// feasible price, as the nested engines do).
    lambda: Vec<f64>,
    /// Final request utilities η (derived from λ as
    /// [`DualSolution::from_prices`] derives them).
    eta: Vec<f64>,
    /// The assignment's social welfare `Σ (v − w)`.
    welfare: f64,
    /// Rounds executed.
    rounds: u64,
    /// Total bids submitted.
    bids_submitted: u64,
    /// Price changes, if tracing was enabled.
    price_trace: Vec<PriceChange>,
}

impl FlatOutcome {
    /// Per request: the chosen edge (local index within the request's row),
    /// or `None`.
    pub fn choice(&self, request: usize) -> Option<usize> {
        match self.choice[request] {
            NONE => None,
            e => Some(e as usize),
        }
    }

    /// Number of served requests.
    pub fn assigned_count(&self) -> usize {
        self.choice.iter().filter(|&&c| c != NONE).count()
    }

    /// The final prices λ.
    pub fn lambda(&self) -> &[f64] {
        &self.lambda
    }

    /// The final request utilities η.
    pub fn eta(&self) -> &[f64] {
        &self.eta
    }

    /// The assignment's social welfare.
    pub fn welfare(&self) -> f64 {
        self.welfare
    }

    /// Rounds executed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total bids submitted.
    pub fn bids_submitted(&self) -> u64 {
        self.bids_submitted
    }

    /// Builds the owned [`Assignment`] — the one allocation a slot
    /// schedule cannot avoid (the schedule owns its choices).
    pub fn to_assignment(&self) -> Assignment {
        let choices =
            self.choice.iter().map(|&c| if c == NONE { None } else { Some(c as usize) }).collect();
        Assignment::new(choices)
    }

    /// Converts to the owned [`AuctionOutcome`] (allocates; bit-identical
    /// to what the nested engines return for the same run).
    pub fn to_outcome(&self) -> AuctionOutcome {
        AuctionOutcome {
            assignment: self.to_assignment(),
            duals: DualSolution { lambda: self.lambda.clone(), eta: self.eta.clone() },
            rounds: self.rounds,
            bids_submitted: self.bids_submitted,
            converged: true,
            price_trace: self.price_trace.clone(),
        }
    }
}

/// The flat CSR auction engine (see the [module docs](self)).
pub struct FlatAuction {
    config: AuctionConfig,
    shards: ShardCount,
    /// Which bid-scan implementation the engine runs (kernel lanes by
    /// default; see [`BidKernel`]).
    kernel: BidKernel,
    /// Test/bench override for the worker-thread count (normally
    /// `min(shards, cores)`).
    workers: Option<usize>,
    spawner: Arc<dyn WorkerSpawner>,
    scratch: AuctionScratch,
    lease: Option<Lease>,
}

impl std::fmt::Debug for FlatAuction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlatAuction")
            .field("config", &self.config)
            .field("shards", &self.shards)
            .field("kernel", &self.kernel)
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl Clone for FlatAuction {
    /// Clones the configuration; scratch and worker leases are per-engine
    /// and start fresh.
    fn clone(&self) -> Self {
        FlatAuction {
            config: self.config,
            shards: self.shards,
            kernel: self.kernel,
            workers: self.workers,
            spawner: Arc::clone(&self.spawner),
            scratch: AuctionScratch::default(),
            lease: None,
        }
    }
}

impl Default for FlatAuction {
    fn default() -> Self {
        Self::new(AuctionConfig::default(), ShardCount::default())
    }
}

impl FlatAuction {
    /// Creates an engine with the given configuration and shard count.
    pub fn new(config: AuctionConfig, shards: ShardCount) -> Self {
        FlatAuction {
            config,
            shards,
            kernel: BidKernel::default(),
            workers: None,
            spawner: Arc::new(ThreadSpawner),
            scratch: AuctionScratch::default(),
            lease: None,
        }
    }

    /// The engine's auction configuration.
    pub fn config(&self) -> &AuctionConfig {
        &self.config
    }

    /// The engine's shard count.
    pub fn shards(&self) -> ShardCount {
        self.shards
    }

    /// The bid kernel the engine runs.
    pub fn kernel(&self) -> BidKernel {
        self.kernel
    }

    /// Selects the bid-scan implementation (builder-style). Outcomes are
    /// bit-identical either way (see the [`kernel`] docs); this exists so
    /// benches and the cross-check suites can pin one path.
    #[must_use]
    pub fn with_kernel(mut self, kernel: BidKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// The effective shard count this engine would use for a slot with
    /// `requests` active requests — the single
    /// [`ShardCount::resolve_for`] resolution every engine shares, exposed
    /// so tests can pin nested/flat agreement.
    pub fn effective_shards(&self, requests: usize) -> usize {
        self.shards.resolve_for(requests)
    }

    /// Forces the worker-thread count regardless of the machine's core
    /// count (builder-style). Results are unaffected.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self.lease = None;
        self
    }

    /// Installs a worker source — typically a shared
    /// `p2p_runtime::WorkerPool` — replacing the default detached-thread
    /// spawner (builder-style). Results are unaffected.
    #[must_use]
    pub fn with_spawner(mut self, spawner: Arc<dyn WorkerSpawner>) -> Self {
        self.spawner = spawner;
        self.lease = None;
        self
    }

    /// Runs the auction to convergence, returning an owned outcome.
    ///
    /// An effective shard count of 1 runs the sequential Gauss–Seidel
    /// sweep (bit-identical to [`crate::SyncAuction::run`]); ≥ 2 runs the
    /// batched sharded schedule (bit-identical to
    /// [`crate::ShardedAuction::run`] at the same count).
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::AuctionDiverged`] if quiescence is not reached
    /// within `max_rounds`.
    pub fn run(&mut self, csr: &CsrInstance) -> Result<AuctionOutcome, P2pError> {
        let mut out = FlatOutcome::default();
        self.run_into(csr, &mut out)?;
        Ok(out.to_outcome())
    }

    /// [`FlatAuction::run`] into a caller-owned reusable [`FlatOutcome`] —
    /// the zero-allocation hot path: after a warm-up run, repeated calls on
    /// same-shaped slots perform no heap allocation.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::AuctionDiverged`] if quiescence is not reached
    /// within `max_rounds`.
    pub fn run_into(&mut self, csr: &CsrInstance, out: &mut FlatOutcome) -> Result<(), P2pError> {
        self.run_from(csr, None, self.config.epsilon, out, &mut NoProbe)
    }

    /// [`FlatAuction::run_into`] with an observation probe. The engine is
    /// generic over the probe, so the [`NoProbe`] path (what `run_into`
    /// uses) monomorphizes to the uninstrumented, zero-allocation loop —
    /// outcomes are bit-identical either way (property-tested).
    pub fn run_into_probed(
        &mut self,
        csr: &CsrInstance,
        out: &mut FlatOutcome,
        probe: &mut impl AuctionProbe,
    ) -> Result<(), P2pError> {
        self.run_from(csr, None, self.config.epsilon, out, probe)
    }

    /// Runs warm-started from `prior_prices`, with exactly the price
    /// clamping and CS 1 repair-loop semantics of
    /// [`crate::SyncAuction::run_warm`] — outcomes are bit-identical to the
    /// nested engines' warm runs.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::AuctionDiverged`] if any pass exceeds
    /// `max_rounds`.
    pub fn run_warm(
        &mut self,
        csr: &CsrInstance,
        prior_prices: &[f64],
    ) -> Result<AuctionOutcome, P2pError> {
        let mut out = FlatOutcome::default();
        self.run_warm_into(csr, prior_prices, &mut out)?;
        Ok(out.to_outcome())
    }

    /// [`FlatAuction::run_warm`] into a reusable [`FlatOutcome`]
    /// (zero-allocation after warm-up, like [`FlatAuction::run_into`]).
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::AuctionDiverged`] if any pass exceeds
    /// `max_rounds`.
    pub fn run_warm_into(
        &mut self,
        csr: &CsrInstance,
        prior_prices: &[f64],
        out: &mut FlatOutcome,
    ) -> Result<(), P2pError> {
        self.run_warm_into_probed(csr, prior_prices, out, &mut NoProbe)
    }

    /// [`FlatAuction::run_warm_into`] with an observation probe (every
    /// CS 1 repair pass reports into the same probe).
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::AuctionDiverged`] if any pass exceeds
    /// `max_rounds`.
    pub fn run_warm_into_probed(
        &mut self,
        csr: &CsrInstance,
        prior_prices: &[f64],
        out: &mut FlatOutcome,
        probe: &mut impl AuctionProbe,
    ) -> Result<(), P2pError> {
        let eps = self.config.epsilon;
        // Take the warm buffers out of the scratch so the repair loop can
        // hold them across `run_from` calls (no allocation: `take` swaps in
        // empty vectors, and the buffers go back below).
        let mut prices = std::mem::take(&mut self.scratch.warm_prices);
        let mut potential = std::mem::take(&mut self.scratch.potential);
        let mut trace = std::mem::take(&mut self.scratch.warm_trace);
        clamp_warm_prices(csr.data(), prior_prices, eps, &mut prices, &mut potential);
        trace.clear();
        let mut rounds = 0;
        let mut bids = 0;
        let result = loop {
            if let Err(e) = self.run_from(csr, Some(&prices), eps, out, &mut *probe) {
                break Err(e);
            }
            rounds += out.rounds;
            bids += out.bids_submitted;
            trace.extend(out.price_trace.iter().copied());
            // CS 1 support check, identical to the nested repair loop: a
            // provider with spare capacity at λ > 0 kept an unsupported
            // warm price; zero it (never re-warming a repaired one) and
            // rerun. Each pass permanently clears at least one provider.
            let data = csr.data();
            let mut repaired = false;
            for (u, &cap) in data.capacity.iter().enumerate() {
                if cap > 0 && self.scratch.filled[u] < cap && prices[u] > 0.0 && out.lambda[u] > 0.0
                {
                    prices[u] = 0.0;
                    repaired = true;
                }
            }
            if !repaired {
                out.rounds = rounds;
                out.bids_submitted = bids;
                out.price_trace.clear();
                out.price_trace.extend(trace.iter().copied());
                break Ok(());
            }
        };
        self.scratch.warm_prices = prices;
        self.scratch.potential = potential;
        self.scratch.warm_trace = trace;
        result
    }

    /// Runs with ε-scaling, mirroring [`crate::SyncAuction::run_scaled`]'s
    /// phase schedule and inter-phase price relaxation over the flat
    /// layout (bit-identical at shards = 1).
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::AuctionDiverged`] if any phase exceeds
    /// `max_rounds`, or [`P2pError::InvalidConfig`] for invalid scaling
    /// parameters.
    pub fn run_scaled(
        &mut self,
        csr: &CsrInstance,
        scaling: EpsilonScaling,
    ) -> Result<AuctionOutcome, P2pError> {
        scaling.validate()?;
        let mut out = FlatOutcome::default();
        let mut epsilon = scaling.initial;
        let mut prices: Option<Vec<f64>> = None;
        let mut rounds = 0;
        let mut bids = 0;
        let mut trace = Vec::new();
        loop {
            let last_phase = epsilon <= scaling.final_epsilon;
            let eps = epsilon.max(scaling.final_epsilon);
            self.run_from(csr, prices.as_deref(), eps, &mut out, &mut NoProbe)?;
            rounds += out.rounds;
            bids += out.bids_submitted;
            trace.extend(out.price_trace.iter().copied());
            if last_phase {
                out.rounds = rounds;
                out.bids_submitted = bids;
                out.price_trace = trace;
                return Ok(out.to_outcome());
            }
            // Carry prices relaxed by the phase's ε (see the nested
            // engine's rationale).
            prices = Some(out.lambda.iter().map(|l| (l - eps).max(0.0)).collect());
            epsilon /= scaling.decay;
        }
    }

    /// Core dispatch: optional warm prices, explicit ε, generic probe.
    fn run_from<P: AuctionProbe>(
        &mut self,
        csr: &CsrInstance,
        initial: Option<&[f64]>,
        epsilon: f64,
        out: &mut FlatOutcome,
        probe: &mut P,
    ) -> Result<(), P2pError> {
        let shards = self.shards.resolve_for(csr.request_count());
        if shards <= 1 {
            self.run_sweep(csr, initial, epsilon, out, probe)
        } else {
            self.run_sharded(csr, initial, epsilon, shards.max(2), out, probe)
        }
    }

    /// The sequential Gauss–Seidel sweep over CSR rows — the schedule of
    /// [`crate::SyncAuction`], bid for bid.
    fn run_sweep<P: AuctionProbe>(
        &mut self,
        csr: &CsrInstance,
        initial: Option<&[f64]>,
        epsilon: f64,
        out: &mut FlatOutcome,
        probe: &mut P,
    ) -> Result<(), P2pError> {
        let data = csr.data();
        let s = &mut self.scratch;
        s.reset(data, initial);
        let retire = self.config.retire_priced_out;
        let requests = data.request_count();
        let mut rounds = 0u64;
        let mut bids_submitted = 0u64;
        loop {
            rounds += 1;
            if rounds > self.config.max_rounds {
                return Err(P2pError::AuctionDiverged { iterations: rounds - 1 });
            }
            let mut bids_this_round = 0u64;
            let mut conflicts_this_round = 0u64;
            let mut retired_this_round = 0u64;
            for r in 0..requests {
                if s.assigned[r] != NONE {
                    continue;
                }
                if retire && s.retired[r] {
                    continue;
                }
                let (providers, utilities) = data.row(r);
                let decision =
                    kernel::decide_row(self.kernel, providers, utilities, &s.eff_price, epsilon);
                match decision {
                    BidDecision::Abstain { reason } => {
                        if retire
                            && matches!(
                                reason,
                                AbstainReason::Unprofitable | AbstainReason::NoCandidates
                            )
                        {
                            s.retired[r] = true;
                            retired_this_round += 1;
                        }
                    }
                    BidDecision::Bid { edge, provider, amount } => {
                        bids_this_round += 1;
                        match arena_handle_bid(
                            &data.capacity,
                            &s.unit_offsets,
                            &mut s.entry_bid,
                            &mut s.entry_seq,
                            &mut s.entry_req,
                            &mut s.filled,
                            &mut s.price,
                            &mut s.seq,
                            provider,
                            r as u32,
                            amount,
                        ) {
                            ArenaOutcome::Rejected => {
                                // Unreachable with up-to-date prices: the
                                // bidder only bids strictly above λ.
                                debug_assert!(false, "synchronous bid rejected");
                            }
                            ArenaOutcome::Accepted { evicted, new_price } => {
                                s.assigned[r] = edge as u32;
                                if let Some(loser) = evicted {
                                    s.assigned[loser as usize] = NONE;
                                    conflicts_this_round += 1;
                                }
                                if let Some(p) = new_price {
                                    probe.price_change(provider, p - s.eff_price[provider]);
                                    s.eff_price[provider] = p;
                                    if self.config.record_price_trace {
                                        s.trace.push(PriceChange {
                                            round: rounds,
                                            provider,
                                            price: p,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
            bids_submitted += bids_this_round;
            probe.round(rounds, bids_this_round, conflicts_this_round, 0, retired_this_round);
            if bids_this_round == 0 {
                break;
            }
        }
        finalize(data, s, rounds, bids_submitted, out, probe);
        Ok(())
    }

    /// The batched sharded schedule over CSR rows — the schedule of
    /// [`crate::ShardedAuction`], merge for merge: contiguous worklist
    /// slices bid against price snapshots, merges apply in a total order,
    /// same-round retry passes resolve eviction chains, and priced-out
    /// requests retire permanently.
    #[allow(clippy::too_many_arguments)]
    fn run_sharded<P: AuctionProbe>(
        &mut self,
        csr: &CsrInstance,
        initial: Option<&[f64]>,
        epsilon: f64,
        shards: usize,
        out: &mut FlatOutcome,
        probe: &mut P,
    ) -> Result<(), P2pError> {
        let workers = self
            .workers
            .unwrap_or_else(|| shards.min(crate::shard::available_cores()))
            .max(1)
            .min(shards);
        if workers > 1 && self.lease.as_ref().is_none_or(|l| l.workers != workers) {
            self.lease = Some(Lease::spawn(workers, self.spawner.as_ref()));
        }
        let data = csr.data();
        let s = &mut self.scratch;
        s.reset(data, initial);
        let requests = data.request_count();
        // Loop-local state taken out of the scratch so the merge below can
        // borrow the arena mutably while iterating these (swapped back at
        // the end; `take` allocates nothing).
        let mut worklist = std::mem::take(&mut s.worklist);
        let mut spill = std::mem::take(&mut s.spill);
        let mut retry = std::mem::take(&mut s.retry);
        let mut bids = std::mem::take(&mut s.bids);
        let mut slice_retired = std::mem::take(&mut s.slice_retired);
        worklist.clear();
        worklist.extend(0..requests as u32);
        let mut rounds_mark: u64 = 1;
        let mut rounds = 0u64;
        let mut bids_submitted = 0u64;

        let result = 'run: loop {
            rounds += 1;
            if rounds > self.config.max_rounds {
                break 'run Err(P2pError::AuctionDiverged { iterations: rounds - 1 });
            }
            let mut round_bids = 0u64;
            let mut round_conflicts = 0u64;
            let mut round_retired = 0u64;
            // Finer batching in the contended first round, exactly as the
            // nested sharded engine does.
            let batches = if rounds == 1 { shards * 4 } else { shards };
            let chunk = worklist.len().div_ceil(batches).max(1);
            const MAX_RETRY_PASSES: u32 = 64;
            let mut retry_passes = 0u32;
            spill.clear();
            let mut slices = worklist.chunks(chunk);
            loop {
                let slice: &[u32] =
                    match slices.next() {
                        Some(sl) => sl,
                        None if !spill.is_empty() && retry_passes < MAX_RETRY_PASSES => {
                            retry_passes += 1;
                            retry.clear();
                            retry.extend(spill.drain(..).filter(|&r| {
                                s.assigned[r as usize] == NONE && !s.retired[r as usize]
                            }));
                            if retry.is_empty() {
                                break;
                            }
                            &retry
                        }
                        None => break,
                    };
                bids.clear();
                slice_retired.clear();
                // Compute the slice's bids: inline on this thread, or
                // fanned out across the leased workers for big slices
                // (identical results either way — pure function of the
                // snapshot).
                if workers > 1 && slice.len() >= 2 * workers {
                    let lease = self.lease.as_mut().expect("leased above");
                    exec_threaded(
                        lease,
                        csr,
                        slice,
                        &s.eff_price,
                        epsilon,
                        self.kernel,
                        workers,
                        &mut bids,
                        &mut slice_retired,
                    );
                } else {
                    compute_slice(
                        self.kernel,
                        data,
                        slice,
                        &s.eff_price,
                        epsilon,
                        &mut bids,
                        &mut slice_retired,
                    );
                }
                for &r in &slice_retired {
                    s.retired[r as usize] = true;
                }
                round_retired += slice_retired.len() as u64;
                if bids.is_empty() {
                    continue;
                }
                round_bids += bids.len() as u64;
                // Batched merge in the nested engine's total order: amount
                // descending, request ascending; the sort is skipped when
                // no two bids share a provider (they commute).
                let mut colliding = false;
                for bid in &bids {
                    if s.collision_mark[bid.provider as usize] == rounds_mark {
                        colliding = true;
                        break;
                    }
                    s.collision_mark[bid.provider as usize] = rounds_mark;
                }
                rounds_mark += 1;
                if colliding {
                    bids.sort_unstable_by_key(|b| {
                        (std::cmp::Reverse(b.amount.to_bits()), b.request)
                    });
                }
                for bid in &bids {
                    match arena_handle_bid(
                        &data.capacity,
                        &s.unit_offsets,
                        &mut s.entry_bid,
                        &mut s.entry_seq,
                        &mut s.entry_req,
                        &mut s.filled,
                        &mut s.price,
                        &mut s.seq,
                        bid.provider as usize,
                        bid.request,
                        bid.amount,
                    ) {
                        ArenaOutcome::Rejected => {
                            spill.push(bid.request);
                            round_conflicts += 1;
                        }
                        ArenaOutcome::Accepted { evicted, new_price } => {
                            s.assigned[bid.request as usize] = bid.edge;
                            if let Some(loser) = evicted {
                                s.assigned[loser as usize] = NONE;
                                spill.push(loser);
                                round_conflicts += 1;
                            }
                            if let Some(p) = new_price {
                                probe.price_change(
                                    bid.provider as usize,
                                    p - s.eff_price[bid.provider as usize],
                                );
                                s.eff_price[bid.provider as usize] = p;
                                if self.config.record_price_trace {
                                    s.trace.push(PriceChange {
                                        round: rounds,
                                        provider: bid.provider as usize,
                                        price: p,
                                    });
                                }
                            }
                        }
                    }
                }
            }
            debug_assert_eq!(
                s.assigned.iter().filter(|&&a| a != NONE).count(),
                s.filled.iter().map(|&f| f as usize).sum::<usize>(),
                "round {rounds}: assignment/auctioneer desync"
            );
            bids_submitted += round_bids;
            probe.round(
                rounds,
                round_bids,
                round_conflicts,
                u64::from(retry_passes),
                round_retired,
            );
            if round_bids == 0 {
                break 'run Ok(());
            }
            worklist.clear();
            worklist.extend(
                (0..requests as u32)
                    .filter(|&r| s.assigned[r as usize] == NONE && !s.retired[r as usize]),
            );
            if worklist.is_empty() {
                break 'run Ok(());
            }
        };
        s.worklist = worklist;
        s.spill = spill;
        s.retry = retry;
        s.bids = bids;
        s.slice_retired = slice_retired;
        result?;
        finalize(data, s, rounds, bids_submitted, out, probe);
        Ok(())
    }
}

/// Fans one slice out across the leased workers and reassembles the
/// results in chunk order (so the merge input — and every outcome field —
/// is independent of thread timing, as in the nested engine).
#[allow(clippy::too_many_arguments)]
fn exec_threaded(
    lease: &mut Lease,
    csr: &CsrInstance,
    slice: &[u32],
    prices: &[f64],
    epsilon: f64,
    kernel: BidKernel,
    workers: usize,
    bids: &mut Vec<FlatBid>,
    retired: &mut Vec<u32>,
) {
    let snapshot = Arc::new(prices.to_vec());
    let per = slice.len().div_ceil(workers).max(1);
    // One reassembly slot per chunk (not per successful send): a chunk
    // computed inline because its worker died still lands at its own
    // index, and a live worker's result index can never exceed the slot
    // count.
    let chunk_count = slice.len().div_ceil(per);
    lease.pending.clear();
    lease.pending.resize_with(chunk_count, || None);
    let mut active = 0usize;
    for (w, chunk) in slice.chunks(per).enumerate() {
        let (mut chunk_buf, bid_buf, retired_buf) = lease.free.pop().unwrap_or_default();
        chunk_buf.clear();
        chunk_buf.extend_from_slice(chunk);
        let cmd = SliceCmd {
            idx: w,
            chunk: chunk_buf,
            csr: csr.shared(),
            prices: Arc::clone(&snapshot),
            epsilon,
            kernel,
            bids: bid_buf,
            retired: retired_buf,
        };
        match lease.cmd_txs[w].send(cmd) {
            Ok(()) => active += 1,
            // A worker died (its spawner was torn down mid-run); fall back
            // to computing the chunk inline, parked at its own reassembly
            // slot so the merge order stays chunk order — results are
            // identical.
            Err(mpsc::SendError(mut cmd)) => {
                cmd.bids.clear();
                cmd.retired.clear();
                compute_slice(
                    kernel,
                    csr.data(),
                    &cmd.chunk,
                    prices,
                    epsilon,
                    &mut cmd.bids,
                    &mut cmd.retired,
                );
                lease.pending[w] = Some(cmd);
            }
        }
    }
    for _ in 0..active {
        match lease.res_rx.recv() {
            Ok(cmd) => {
                let idx = cmd.idx;
                lease.pending[idx] = Some(cmd);
            }
            Err(_) => {
                // Every worker died mid-slice; recompute the whole slice
                // inline (pure function — same result).
                bids.clear();
                retired.clear();
                compute_slice(kernel, csr.data(), slice, prices, epsilon, bids, retired);
                lease.pending.clear();
                return;
            }
        }
    }
    for slot in lease.pending.iter_mut() {
        if let Some(cmd) = slot.take() {
            bids.extend_from_slice(&cmd.bids);
            retired.extend_from_slice(&cmd.retired);
            lease.free.push((cmd.chunk, cmd.bids, cmd.retired));
        }
    }
}

/// Writes the converged run's results into `out` without allocating beyond
/// the buffers' high-water marks: final λ (with the zero-capacity
/// standalone prices of the nested `final_prices`), η derived exactly as
/// [`DualSolution::from_prices`], choices, welfare and counters.
fn finalize<P: AuctionProbe>(
    data: &CsrData,
    s: &mut AuctionScratch,
    rounds: u64,
    bids_submitted: u64,
    out: &mut FlatOutcome,
    probe: &mut P,
) {
    out.lambda.clear();
    out.lambda.extend_from_slice(&s.price);
    // Zero-capacity providers constrain nothing but still appear in dual
    // constraint (6): report the smallest feasible standalone price
    // `max(0, max incident v − w)` — the nested `final_prices` rule.
    if data.capacity.contains(&0) {
        for (e, &p) in data.edge_provider.iter().enumerate() {
            let u = p as usize;
            if data.capacity[u] == 0 && data.edge_utility[e] > out.lambda[u] {
                out.lambda[u] = data.edge_utility[e];
            }
        }
    }
    out.eta.clear();
    out.choice.clear();
    out.welfare = 0.0;
    for r in 0..data.request_count() {
        let lo = data.row_offsets[r] as usize;
        let hi = data.row_offsets[r + 1] as usize;
        let mut eta = 0.0_f64;
        for e in lo..hi {
            eta = eta.max(data.edge_utility[e] - out.lambda[data.edge_provider[e] as usize]);
        }
        out.eta.push(eta);
        let choice = s.assigned[r];
        out.choice.push(choice);
        if choice != NONE {
            out.welfare += data.edge_utility[lo + choice as usize];
        }
    }
    out.rounds = rounds;
    out.bids_submitted = bids_submitted;
    out.price_trace.clear();
    out.price_trace.extend_from_slice(&s.trace);
    if probe.enabled() {
        // Theorem 1's ε-certificate: the duality gap `Σ λ·B + Σ η − welfare`
        // bounds the welfare loss. Only computed when someone is listening,
        // so the NoProbe hot path keeps its instruction count.
        let mut dual = 0.0_f64;
        for (u, &cap) in data.capacity.iter().enumerate() {
            dual += out.lambda[u] * f64::from(cap);
        }
        dual += out.eta.iter().sum::<f64>();
        let assigned = out.choice.iter().filter(|&&c| c != NONE).count() as u64;
        probe.run_complete(rounds, bids_submitted, assigned, dual - out.welfare);
    }
}

/// Carried prices made ε-valid for a warm start, written into `prices`
/// without allocating: the clamp and cheap support pre-filter of the
/// nested `clamped_warm_prices`, over the flat arrays.
fn clamp_warm_prices(
    data: &CsrData,
    prior: &[f64],
    eps: f64,
    prices: &mut Vec<f64>,
    potential: &mut Vec<u32>,
) {
    prices.clear();
    for u in 0..data.provider_count() {
        let p = prior.get(u).copied().unwrap_or(0.0);
        prices.push(if p.is_finite() { (p - eps).max(0.0) } else { 0.0 });
    }
    potential.clear();
    potential.resize(data.provider_count(), 0);
    for (e, &p) in data.edge_provider.iter().enumerate() {
        let u = p as usize;
        if prices[u] > 0.0 && data.edge_utility[e] > prices[u] {
            potential[u] += 1;
        }
    }
    for u in 0..data.provider_count() {
        if prices[u] > 0.0 && potential[u] < data.capacity[u] {
            prices[u] = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SyncAuction;
    use crate::shard::ShardedAuction;
    use p2p_types::{ChunkId, Cost, PeerId, RequestId, Valuation, VideoId};

    fn rid(d: u32, c: u32) -> RequestId {
        RequestId::new(PeerId::new(d), ChunkId::new(VideoId::new(0), c))
    }

    /// A deterministic hash in [0, 1) — tie-free instance material.
    fn unit(seed: u64) -> f64 {
        let mut z = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xD1B5_4A32_D192_ED03);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    fn contended_instance(requests: u64) -> WelfareInstance {
        let mut b = WelfareInstance::builder();
        let us: Vec<_> = [2u32, 2, 1, 3]
            .iter()
            .enumerate()
            .map(|(i, &c)| b.add_provider(PeerId::new(100 + i as u32), c))
            .collect();
        for d in 0..requests {
            let r = b.add_request(rid(d as u32, 0));
            for (i, &u) in us.iter().enumerate() {
                let v = 2.0 + 6.0 * unit(d * 31 + i as u64 * 7 + 1);
                let w = 0.2 + 3.0 * unit(d * 17 + i as u64 * 13 + 2);
                b.add_edge(r, u, Valuation::new(v), Cost::new(w)).unwrap();
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn compile_roundtrips_shape_and_values() {
        let inst = contended_instance(12);
        let csr = CsrInstance::compile(&inst);
        assert_eq!(csr.provider_count(), inst.provider_count());
        assert_eq!(csr.request_count(), inst.request_count());
        assert_eq!(csr.edge_count(), inst.edge_count());
        assert!(csr.matches(&inst));
        let (providers, utilities) = csr.data().row(3);
        for (k, e) in inst.request(3).edges.iter().enumerate() {
            assert_eq!(providers[k] as usize, e.provider);
            assert_eq!(utilities[k], e.utility().get());
        }
        for u in 0..inst.provider_count() {
            assert_eq!(csr.data().capacity(u), inst.provider(u).capacity.chunks_per_slot());
        }
    }

    #[test]
    fn builder_recycles_buffers_between_emissions() {
        let inst = contended_instance(8);
        let mut b = CsrBuilder::new();
        let emit = |b: &mut CsrBuilder| {
            b.begin();
            for p in inst.providers() {
                b.add_provider(p.capacity.chunks_per_slot());
            }
            for r in inst.requests() {
                b.add_request();
                for e in &r.edges {
                    b.add_edge(e.provider as u32, e.utility().get()).unwrap();
                }
            }
            b.finish()
        };
        let first = emit(&mut b);
        let ptr = first.data().edge_utility.as_ptr();
        drop(first);
        // The caller dropped its handle: the second emission reuses the
        // first's buffers (same allocation).
        let second = emit(&mut b);
        assert_eq!(second.data().edge_utility.as_ptr(), ptr);
        assert!(second.matches(&inst));
        // A surviving handle blocks recycling but not correctness.
        let third = emit(&mut b);
        let fourth = emit(&mut b);
        assert_eq!(third, fourth);
        assert!(!std::ptr::eq(third.data(), fourth.data()));
    }

    #[test]
    fn sweep_is_bit_identical_to_sync() {
        for eps in [0.0, 0.01] {
            let inst = contended_instance(12);
            let csr = CsrInstance::compile(&inst);
            let sync = SyncAuction::new(AuctionConfig::with_epsilon(eps)).run(&inst).unwrap();
            let mut flat = FlatAuction::new(AuctionConfig::with_epsilon(eps), ShardCount::Fixed(1));
            let out = flat.run(&csr).unwrap();
            assert_eq!(out.assignment, sync.assignment, "eps={eps}");
            assert_eq!(out.duals, sync.duals, "eps={eps}");
            assert_eq!(out.rounds, sync.rounds, "eps={eps}");
            assert_eq!(out.bids_submitted, sync.bids_submitted, "eps={eps}");
        }
    }

    #[test]
    fn sharded_is_bit_identical_to_nested_sharded() {
        for shards in [2usize, 4, 8] {
            let inst = contended_instance(24);
            let csr = CsrInstance::compile(&inst);
            let nested =
                ShardedAuction::new(AuctionConfig::with_epsilon(0.01), ShardCount::Fixed(shards))
                    .run(&inst)
                    .unwrap();
            let mut flat =
                FlatAuction::new(AuctionConfig::with_epsilon(0.01), ShardCount::Fixed(shards));
            let out = flat.run(&csr).unwrap();
            assert_eq!(out.assignment, nested.assignment, "shards={shards}");
            assert_eq!(out.duals, nested.duals, "shards={shards}");
            assert_eq!(out.rounds, nested.rounds, "shards={shards}");
            assert_eq!(out.bids_submitted, nested.bids_submitted, "shards={shards}");
        }
    }

    #[test]
    fn warm_runs_match_the_nested_engines() {
        let inst = contended_instance(16);
        let csr = CsrInstance::compile(&inst);
        let cfg = AuctionConfig::with_epsilon(0.01);
        let sync_cold = SyncAuction::new(cfg).run(&inst).unwrap();
        // Warm from converged, scaled, and garbage carried prices.
        for carried in [
            sync_cold.duals.lambda.clone(),
            sync_cold.duals.lambda.iter().map(|l| l * 2.5).collect(),
            vec![1e6; 4],
            vec![f64::NAN, -3.0],
            vec![],
        ] {
            let sync = SyncAuction::new(cfg).run_warm(&inst, &carried).unwrap();
            let mut flat = FlatAuction::new(cfg, ShardCount::Fixed(1));
            let out = flat.run_warm(&csr, &carried).unwrap();
            assert_eq!(out.assignment, sync.assignment);
            assert_eq!(out.duals, sync.duals);
            assert_eq!(out.rounds, sync.rounds);
            assert_eq!(out.bids_submitted, sync.bids_submitted);

            let nested =
                ShardedAuction::new(cfg, ShardCount::Fixed(4)).run_warm(&inst, &carried).unwrap();
            let mut flat4 = FlatAuction::new(cfg, ShardCount::Fixed(4));
            let out4 = flat4.run_warm(&csr, &carried).unwrap();
            assert_eq!(out4.assignment, nested.assignment);
            assert_eq!(out4.duals, nested.duals);
        }
    }

    #[test]
    fn scaled_runs_match_the_sync_engine() {
        let inst = contended_instance(10);
        let csr = CsrInstance::compile(&inst);
        let scaling = EpsilonScaling { initial: 4.0, decay: 4.0, final_epsilon: 0.01 };
        let sync = SyncAuction::default().run_scaled(&inst, scaling).unwrap();
        let mut flat = FlatAuction::new(AuctionConfig::paper(), ShardCount::Fixed(1));
        let out = flat.run_scaled(&csr, scaling).unwrap();
        assert_eq!(out.assignment, sync.assignment);
        assert_eq!(out.duals, sync.duals);
        assert_eq!(out.bids_submitted, sync.bids_submitted);
        assert!(FlatAuction::default()
            .run_scaled(&csr, EpsilonScaling { initial: 0.0, decay: 4.0, final_epsilon: 1e-6 })
            .is_err());
    }

    #[test]
    fn forced_worker_threads_match_the_inline_path() {
        let inst = contended_instance(64);
        let csr = CsrInstance::compile(&inst);
        let cfg = AuctionConfig::with_epsilon(0.01).recording_trace();
        let mut inline = FlatAuction::new(cfg, ShardCount::Fixed(4)).with_workers(1);
        let mut threaded = FlatAuction::new(cfg, ShardCount::Fixed(4)).with_workers(3);
        let a = inline.run(&csr).unwrap();
        let b = threaded.run(&csr).unwrap();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.duals, b.duals);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.bids_submitted, b.bids_submitted);
        assert_eq!(a.price_trace, b.price_trace);
        // The lease persists: a second run reuses the same workers.
        let c = threaded.run(&csr).unwrap();
        assert_eq!(a.assignment, c.assignment);
    }

    #[test]
    fn reusable_outcome_and_scratch_are_stable_across_runs() {
        let inst = contended_instance(20);
        let csr = CsrInstance::compile(&inst);
        let mut flat = FlatAuction::new(AuctionConfig::with_epsilon(0.01), ShardCount::Fixed(2));
        let mut out1 = FlatOutcome::default();
        flat.run_into(&csr, &mut out1).unwrap();
        let mut out2 = FlatOutcome::default();
        flat.run_into(&csr, &mut out2).unwrap();
        assert_eq!(out1, out2);
        assert_eq!(out1.assigned_count(), out1.to_outcome().assignment.assigned_count());
        assert!(out1.welfare() > 0.0);
        assert!(out1.rounds() >= 1);
        assert!(out1.bids_submitted() >= 1);
        assert_eq!(out1.lambda().len(), csr.provider_count());
        assert_eq!(out1.eta().len(), csr.request_count());
        assert_eq!(out1.choice(0).is_some(), out1.to_outcome().assignment.choice(0).is_some());
    }

    #[test]
    fn empty_instance_converges_immediately() {
        let inst = WelfareInstance::builder().build().unwrap();
        let csr = CsrInstance::compile(&inst);
        let mut flat = FlatAuction::default();
        let out = flat.run(&csr).unwrap();
        assert_eq!(out.rounds, 1);
        assert_eq!(out.bids_submitted, 0);
    }

    #[test]
    fn zero_capacity_providers_are_ignored_and_priced_feasibly() {
        let mut b = WelfareInstance::builder();
        let dead = b.add_provider(PeerId::new(9), 0);
        let live = b.add_provider(PeerId::new(10), 1);
        let r = b.add_request(rid(0, 0));
        b.add_edge(r, dead, Valuation::new(8.0), Cost::new(0.0)).unwrap();
        b.add_edge(r, live, Valuation::new(8.0), Cost::new(2.0)).unwrap();
        let inst = b.build().unwrap();
        let csr = CsrInstance::compile(&inst);
        let mut flat = FlatAuction::new(AuctionConfig::paper(), ShardCount::Fixed(1));
        let out = flat.run(&csr).unwrap();
        assert_eq!(out.assignment.provider_of(&inst, 0), Some(live));
        assert!(out.duals.validate(&inst, 1e-9).is_ok());
        assert!(out.duals.lambda[dead] >= 8.0 - 1e-9);
        let sync = SyncAuction::new(AuctionConfig::paper()).run(&inst).unwrap();
        assert_eq!(out.duals, sync.duals);
    }

    #[test]
    fn divergence_guard_fires_with_tiny_round_budget() {
        let inst = contended_instance(8);
        let csr = CsrInstance::compile(&inst);
        let cfg = AuctionConfig { max_rounds: 0, ..AuctionConfig::paper() };
        for shards in [1, 4] {
            let mut flat = FlatAuction::new(cfg, ShardCount::Fixed(shards));
            let err = flat.run(&csr).unwrap_err();
            assert!(matches!(err, P2pError::AuctionDiverged { .. }));
            // The engine recovers after a divergence error.
            let mut ok = FlatAuction::new(AuctionConfig::paper(), ShardCount::Fixed(shards));
            assert!(ok.run(&csr).is_ok());
        }
    }

    #[test]
    fn auto_matches_the_nested_auto_resolution() {
        let inst = contended_instance(40);
        let csr = CsrInstance::compile(&inst);
        let nested = ShardedAuction::new(AuctionConfig::with_epsilon(0.01), ShardCount::Auto)
            .run(&inst)
            .unwrap();
        let mut flat = FlatAuction::new(AuctionConfig::with_epsilon(0.01), ShardCount::Auto);
        let out = flat.run(&csr).unwrap();
        assert_eq!(out.assignment, nested.assignment);
        assert_eq!(out.duals, nested.duals);
        // 40 requests is a small slot: Auto runs the sequential sweep.
        assert_eq!(ShardCount::Auto.resolve_for(inst.request_count()), 1);
    }

    #[test]
    fn clone_and_debug_cover_the_engine_surface() {
        let flat = FlatAuction::new(AuctionConfig::with_epsilon(0.5), ShardCount::Fixed(3))
            .with_workers(2)
            .with_kernel(BidKernel::Scalar)
            .with_spawner(Arc::new(ThreadSpawner));
        let cloned = flat.clone();
        assert_eq!(cloned.config().epsilon, 0.5);
        assert_eq!(cloned.shards(), ShardCount::Fixed(3));
        assert_eq!(cloned.kernel(), BidKernel::Scalar);
        assert!(format!("{flat:?}").contains("FlatAuction"));
        assert_eq!(FlatAuction::default().kernel(), BidKernel::default());
    }

    #[test]
    fn kernel_and_scalar_paths_are_bit_identical_end_to_end() {
        for (shards, eps) in [(1usize, 0.0), (1, 0.01), (4, 0.0), (4, 0.01)] {
            let inst = contended_instance(40);
            let csr = CsrInstance::compile(&inst);
            let cfg = AuctionConfig::with_epsilon(eps).recording_trace();
            let mut lanes =
                FlatAuction::new(cfg, ShardCount::Fixed(shards)).with_kernel(BidKernel::Lanes);
            let mut scalar =
                FlatAuction::new(cfg, ShardCount::Fixed(shards)).with_kernel(BidKernel::Scalar);
            let a = lanes.run(&csr).unwrap();
            let b = scalar.run(&csr).unwrap();
            assert_eq!(a.assignment, b.assignment, "shards={shards} eps={eps}");
            assert_eq!(a.duals, b.duals, "shards={shards} eps={eps}");
            assert_eq!(a.rounds, b.rounds, "shards={shards} eps={eps}");
            assert_eq!(a.bids_submitted, b.bids_submitted, "shards={shards} eps={eps}");
            assert_eq!(a.price_trace, b.price_trace, "shards={shards} eps={eps}");
            // Warm starts agree too.
            let aw = lanes.run_warm(&csr, &a.duals.lambda).unwrap();
            let bw = scalar.run_warm(&csr, &b.duals.lambda).unwrap();
            assert_eq!(aw.assignment, bw.assignment, "warm shards={shards} eps={eps}");
            assert_eq!(aw.duals, bw.duals, "warm shards={shards} eps={eps}");
        }
    }

    #[test]
    fn builder_rejects_non_finite_utilities() {
        let mut b = CsrBuilder::new();
        b.begin();
        b.add_provider(1);
        b.add_request();
        b.add_edge(0, 1.5).unwrap();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = b.add_edge(0, bad).unwrap_err();
            assert!(
                matches!(err, P2pError::NonFiniteUtility { request: 0, provider: 0, .. }),
                "{err}"
            );
        }
        // The rejected edges left no trace: the emission is intact.
        let csr = b.finish();
        assert_eq!(csr.edge_count(), 1);
        assert_eq!(csr.data().row(0).1, &[1.5]);
    }
}
