//! Strategic bidding study — the paper's stated future work.
//!
//! The paper closes: "We are improving the auction mechanism design to
//! enforce truthfulness of the bids in cases of selfish peers that may
//! manipulate the mechanism, in our ongoing work." This module quantifies
//! *why* that matters: the auction allocates by reported net utility but
//! charges no payments, so a selfish peer can misreport its valuations and
//! the mechanism is **not** incentive compatible.
//!
//! The study runs the auction on a *reported* instance (some requests
//! misreport their valuations) and evaluates the resulting allocation
//! against *true* valuations, separating the manipulators' gain from the
//! honest peers' and society's loss — the standard measurement for
//! non-truthful mechanisms.
//!
//! # Examples
//!
//! ```
//! use p2p_core::strategic::{evaluate_manipulation, Misreport};
//! use p2p_core::WelfareInstance;
//! use p2p_types::*;
//!
//! // Two peers contend for one unit; the lower-value peer manipulates.
//! let mut b = WelfareInstance::builder();
//! let u = b.add_provider(PeerId::new(9), 1);
//! let honest = b.add_request(RequestId::new(PeerId::new(0), ChunkId::new(VideoId::new(0), 0)));
//! let selfish = b.add_request(RequestId::new(PeerId::new(1), ChunkId::new(VideoId::new(0), 0)));
//! b.add_edge(honest, u, Valuation::new(6.0), Cost::new(1.0)).unwrap();
//! b.add_edge(selfish, u, Valuation::new(4.0), Cost::new(1.0)).unwrap();
//! let inst = b.build().unwrap();
//!
//! let out = evaluate_manipulation(&inst, &[selfish], Misreport::Inflate(3.0)).unwrap();
//! // The manipulator steals the unit…
//! assert_eq!(out.manipulator_chunks, 1);
//! // …and society pays: true welfare drops from 5 (honest wins) to 3.
//! assert!(out.true_welfare < out.truthful_welfare);
//! ```

use crate::engine::{AuctionConfig, SyncAuction};
use crate::instance::{RequestIdx, WelfareInstance};
use p2p_types::{P2pError, Valuation};
use serde::{Deserialize, Serialize};

/// How a selfish peer misreports a chunk's valuation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Misreport {
    /// Multiply the true valuation by a factor > 1 (exaggerate urgency to
    /// win more auctions — the dominant manipulation in a payment-free
    /// allocation).
    Inflate(f64),
    /// Multiply by a factor in (0, 1) (understate, e.g. to appear
    /// cooperative; generally self-harming).
    Shade(f64),
    /// Report the maximum valuation for everything (the paper's
    /// deadline-based cap, 8.0).
    MaxOut,
}

impl Misreport {
    fn apply(self, v: Valuation) -> Valuation {
        match self {
            Misreport::Inflate(f) | Misreport::Shade(f) => {
                Valuation::new((v.get() * f).clamp(0.0, 1e6))
            }
            Misreport::MaxOut => Valuation::new(8.0),
        }
    }
}

/// Outcome of one manipulation experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StrategicOutcome {
    /// True social welfare when everyone reports truthfully.
    pub truthful_welfare: f64,
    /// True social welfare under the manipulated reports.
    pub true_welfare: f64,
    /// Σ true `v − w` of chunks won by manipulators under manipulation.
    pub manipulator_utility: f64,
    /// The manipulators' utility had everyone been truthful.
    pub manipulator_truthful_utility: f64,
    /// Σ true `v − w` of chunks won by honest peers under manipulation.
    pub honest_utility: f64,
    /// Honest peers' utility had everyone been truthful.
    pub honest_truthful_utility: f64,
    /// Chunks the manipulators won under manipulation.
    pub manipulator_chunks: usize,
    /// Chunks the manipulators win when truthful.
    pub manipulator_truthful_chunks: usize,
}

impl StrategicOutcome {
    /// Fraction of true social welfare destroyed by the manipulation.
    pub fn welfare_loss_fraction(&self) -> f64 {
        if self.truthful_welfare.abs() < f64::EPSILON {
            0.0
        } else {
            (self.truthful_welfare - self.true_welfare) / self.truthful_welfare
        }
    }
}

/// Builds the reported instance: manipulators' valuations transformed,
/// everything else untouched.
///
/// # Errors
///
/// Returns [`P2pError::MalformedInstance`] if a manipulator index is out of
/// range.
pub fn misreport_instance(
    instance: &WelfareInstance,
    manipulators: &[RequestIdx],
    misreport: Misreport,
) -> Result<WelfareInstance, P2pError> {
    for &m in manipulators {
        if m >= instance.request_count() {
            return Err(P2pError::MalformedInstance(format!("manipulator index {m} out of range")));
        }
    }
    let mut b = WelfareInstance::builder();
    for p in instance.providers() {
        b.add_provider(p.peer, p.capacity.chunks_per_slot());
    }
    for (r, req) in instance.requests().iter().enumerate() {
        let idx = b.add_request(req.id);
        debug_assert_eq!(idx, r);
        let lying = manipulators.contains(&r);
        for e in &req.edges {
            let v = if lying { misreport.apply(e.valuation) } else { e.valuation };
            b.add_edge(idx, e.provider, v, e.cost)?;
        }
    }
    b.build()
}

/// Runs the truthful and manipulated auctions and scores both against true
/// valuations.
///
/// # Errors
///
/// Propagates auction divergence or malformed manipulator indices.
pub fn evaluate_manipulation(
    instance: &WelfareInstance,
    manipulators: &[RequestIdx],
    misreport: Misreport,
) -> Result<StrategicOutcome, P2pError> {
    // ε > 0 keeps both runs robust to the ties misreporting can create
    // (e.g. MaxOut gives many requests identical valuations).
    let engine = SyncAuction::new(AuctionConfig::with_epsilon(1e-6));

    let truthful = engine.run(instance)?;
    let reported = misreport_instance(instance, manipulators, misreport)?;
    let manipulated = engine.run(&reported)?;

    let score = |assignment: &crate::solution::Assignment| {
        let mut manip = 0.0;
        let mut honest = 0.0;
        let mut manip_chunks = 0usize;
        for (r, req) in instance.requests().iter().enumerate() {
            if let Some(e) = assignment.choice(r) {
                let true_utility = req.edges[e].utility().get();
                if manipulators.contains(&r) {
                    manip += true_utility;
                    manip_chunks += 1;
                } else {
                    honest += true_utility;
                }
            }
        }
        (manip, honest, manip_chunks)
    };

    let (mt, ht, ct) = score(&truthful.assignment);
    let (mm, hm, cm) = score(&manipulated.assignment);
    Ok(StrategicOutcome {
        truthful_welfare: mt + ht,
        true_welfare: mm + hm,
        manipulator_utility: mm,
        manipulator_truthful_utility: mt,
        honest_utility: hm,
        honest_truthful_utility: ht,
        manipulator_chunks: cm,
        manipulator_truthful_chunks: ct,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_types::{ChunkId, Cost, PeerId, RequestId, VideoId};

    fn rid(d: u32, c: u32) -> RequestId {
        RequestId::new(PeerId::new(d), ChunkId::new(VideoId::new(0), c))
    }

    /// One contested unit: honest value 6, selfish value 4.
    fn contested() -> WelfareInstance {
        let mut b = WelfareInstance::builder();
        let u = b.add_provider(PeerId::new(9), 1);
        let honest = b.add_request(rid(0, 0));
        let selfish = b.add_request(rid(1, 0));
        b.add_edge(honest, u, Valuation::new(6.0), Cost::new(1.0)).unwrap();
        b.add_edge(selfish, u, Valuation::new(4.0), Cost::new(1.0)).unwrap();
        let _ = (honest, selfish);
        b.build().unwrap()
    }

    #[test]
    fn inflation_steals_allocation_and_destroys_welfare() {
        let inst = contested();
        let out = evaluate_manipulation(&inst, &[1], Misreport::Inflate(3.0)).unwrap();
        assert_eq!(out.manipulator_truthful_chunks, 0, "truthfully the selfish peer loses");
        assert_eq!(out.manipulator_chunks, 1, "inflated, it wins");
        assert!(out.manipulator_utility > out.manipulator_truthful_utility);
        assert!(out.honest_utility < out.honest_truthful_utility);
        assert!(out.true_welfare < out.truthful_welfare);
        assert!((out.welfare_loss_fraction() - 2.0 / 5.0).abs() < 1e-9); // 5 → 3
    }

    #[test]
    fn max_out_is_the_dominant_manipulation() {
        let inst = contested();
        let out = evaluate_manipulation(&inst, &[1], Misreport::MaxOut).unwrap();
        assert_eq!(out.manipulator_chunks, 1);
        assert!(out.true_welfare < out.truthful_welfare);
    }

    #[test]
    fn shading_is_self_harming() {
        // The selfish peer has the HIGHER value here; shading loses it.
        let mut b = WelfareInstance::builder();
        let u = b.add_provider(PeerId::new(9), 1);
        let selfish = b.add_request(rid(0, 0));
        let honest = b.add_request(rid(1, 0));
        b.add_edge(selfish, u, Valuation::new(6.0), Cost::new(1.0)).unwrap();
        b.add_edge(honest, u, Valuation::new(4.0), Cost::new(1.0)).unwrap();
        let inst = b.build().unwrap();
        let out = evaluate_manipulation(&inst, &[selfish], Misreport::Shade(0.3)).unwrap();
        assert_eq!(out.manipulator_truthful_chunks, 1);
        assert_eq!(out.manipulator_chunks, 0, "shading forfeits the unit");
        assert!(out.manipulator_utility < out.manipulator_truthful_utility);
    }

    #[test]
    fn truthful_everyone_is_a_fixed_point() {
        let inst = contested();
        let out = evaluate_manipulation(&inst, &[], Misreport::Inflate(10.0)).unwrap();
        assert_eq!(out.true_welfare, out.truthful_welfare);
        assert_eq!(out.manipulator_chunks, 0);
    }

    #[test]
    fn out_of_range_manipulator_rejected() {
        let inst = contested();
        assert!(evaluate_manipulation(&inst, &[7], Misreport::MaxOut).is_err());
        assert!(misreport_instance(&inst, &[7], Misreport::MaxOut).is_err());
    }

    #[test]
    fn misreport_transforms_only_manipulators() {
        let inst = contested();
        let rep = misreport_instance(&inst, &[1], Misreport::Inflate(2.0)).unwrap();
        assert_eq!(rep.request(0).edges[0].valuation, Valuation::new(6.0));
        assert_eq!(rep.request(1).edges[0].valuation, Valuation::new(8.0));
        // Costs and capacities untouched.
        assert_eq!(rep.request(1).edges[0].cost, Cost::new(1.0));
        assert_eq!(rep.provider(0).capacity, inst.provider(0).capacity);
    }
}
