//! Protocol messages exchanged by bidders and auctioneers in asynchronous
//! executions (the discrete-event engine in [`crate::dist`] and the
//! threaded runtime in the `p2p-runtime` crate share this vocabulary).

use crate::instance::{ProviderIdx, RequestIdx};
use serde::{Deserialize, Serialize};

/// A wire message of the distributed auction protocol.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AuctionMsg {
    /// Bidder → auctioneer: bid `amount` for one bandwidth unit, on behalf
    /// of `request`, choosing its `edge`-th candidate.
    Bid {
        /// The bidding request.
        request: RequestIdx,
        /// Index of the chosen edge within the request's candidate list.
        edge: usize,
        /// Target provider.
        provider: ProviderIdx,
        /// The bid `b(d, c, u)`.
        amount: f64,
    },
    /// Auctioneer → bidder: the bid was admitted.
    Accepted {
        /// The winning request.
        request: RequestIdx,
        /// The provider that admitted it.
        provider: ProviderIdx,
    },
    /// Auctioneer → bidder: the bid was below the (newer) price.
    Rejected {
        /// The rejected request.
        request: RequestIdx,
        /// The provider that rejected it.
        provider: ProviderIdx,
        /// The provider's current price, refreshing the bidder's knowledge.
        price: f64,
    },
    /// Auctioneer → bidder: a previously admitted request lost its unit to
    /// a higher bid.
    Evicted {
        /// The evicted request.
        request: RequestIdx,
        /// The provider it was evicted from.
        provider: ProviderIdx,
        /// The provider's current price.
        price: f64,
    },
    /// Auctioneer → neighborhood: price announcement ("informs its
    /// neighbors this updated bandwidth price").
    PriceUpdate {
        /// The request being informed (fan-out is per listener).
        listener: RequestIdx,
        /// The provider whose price changed.
        provider: ProviderIdx,
        /// The new price.
        price: f64,
    },
}

impl AuctionMsg {
    /// The provider involved in this message.
    pub fn provider(&self) -> ProviderIdx {
        match self {
            AuctionMsg::Bid { provider, .. }
            | AuctionMsg::Accepted { provider, .. }
            | AuctionMsg::Rejected { provider, .. }
            | AuctionMsg::Evicted { provider, .. }
            | AuctionMsg::PriceUpdate { provider, .. } => *provider,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provider_accessor_covers_all_variants() {
        let msgs = [
            AuctionMsg::Bid { request: 0, edge: 0, provider: 3, amount: 1.0 },
            AuctionMsg::Accepted { request: 0, provider: 3 },
            AuctionMsg::Rejected { request: 0, provider: 3, price: 1.0 },
            AuctionMsg::Evicted { request: 0, provider: 3, price: 1.0 },
            AuctionMsg::PriceUpdate { listener: 0, provider: 3, price: 1.0 },
        ];
        for m in msgs {
            assert_eq!(m.provider(), 3);
        }
    }
}
